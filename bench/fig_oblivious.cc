// Oblivious-mode overhead: every evaluated TPC-H query, host-only
// (hons), plain vs oblivious execution (docs/OBLIVIOUS.md). Columns:
// plain row engine / plain vectorized engine / oblivious mode, all
// simulated, plus the oblivious/vectorized overhead factor. The
// committed BENCH_oblivious.json carries the oblivious measurement in
// the `sim_cycles` column and the plain row-engine run in `row_*`, so
// `baseline_check --require-sim-overhead` gates the expected direction:
// the padded pipeline must pay — full scans with no pushdown, padded
// filters/aggregates, O(n log^2 n) sort networks and sort-merge joins
// over both full inputs buy a value-independent access sequence with
// simulated cycles, never for free.
//
//   fig_oblivious [sf] [--quick] [--json=<path>] [--workers=N]
//
// `--quick` truncates to the first three queries (the oblivious_smoke
// ctest); `--json=<path>` writes the baseline.

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::SystemConfig;

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  BaselineWriter baseline(args, "fig_oblivious");
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));

  PrintHeader("Oblivious-mode overhead, host-only TPC-H (SF=" +
              std::to_string(sf) + ")");
  std::printf("%5s %14s %14s %14s %10s %10s\n", "query", "row(ms)", "vec(ms)",
              "oblivious(ms)", "overhead", "wall(ms)");

  WallClock total;
  double sum_overhead = 0;
  int n = 0;
  int remaining = args.quick ? 3 : std::numeric_limits<int>::max();
  for (const auto& query : tpch::Queries()) {
    if (remaining-- <= 0) break;
    WallClock wall;

    system->set_engine(sql::ExecEngine::kRow);
    WallClock row_wall;
    BENCH_ASSIGN(auto row, system->Run(SystemConfig::kHons, query.sql));
    double row_wall_ms = row_wall.ms();

    system->set_engine(sql::ExecEngine::kVectorized);
    BENCH_ASSIGN(auto vec, system->Run(SystemConfig::kHons, query.sql));

    system->set_oblivious(true);
    WallClock obl_wall;
    BENCH_ASSIGN(auto obl, system->Run(SystemConfig::kHons, query.sql));
    double obl_wall_ms = obl_wall.ms();
    system->set_oblivious(false);

    if (obl.result.rows.size() != vec.result.rows.size()) {
      std::fprintf(stderr, "q%d: oblivious row count diverges: %zu vs %zu\n",
                   query.number, obl.result.rows.size(),
                   vec.result.rows.size());
      return 1;
    }

    std::string key = "q" + std::to_string(query.number);
    baseline.Add(key, obl.cost.elapsed_ns(), obl_wall_ms);
    baseline.AddRow(key, row.cost.elapsed_ns(), row_wall_ms);

    double overhead = obl.cost.elapsed_ms() / vec.cost.elapsed_ms();
    sum_overhead += overhead;
    ++n;
    std::printf("%5d %14.3f %14.3f %14.3f %9.2fx %10.1f\n", query.number,
                row.cost.elapsed_ms(), vec.cost.elapsed_ms(),
                obl.cost.elapsed_ms(), overhead, wall.ms());
  }
  std::printf("\naverage oblivious/vectorized overhead: %.2fx over %d "
              "queries\n",
              sum_overhead / n, n);
  PrintWallClock(total);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
