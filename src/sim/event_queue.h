#ifndef IRONSAFE_SIM_EVENT_QUEUE_H_
#define IRONSAFE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "sim/cost_model.h"

namespace ironsafe::sim {

/// Deterministic discrete-event spine for components that interleave
/// work on the simulated timeline (the serving pipeline's stage events,
/// flow-control credit grants, ...).
///
/// Events are ordered by (fire time, insertion sequence): two events at
/// the same simulated instant run in the order they were posted, so the
/// execution order is a pure function of the posting schedule — never of
/// wall-clock timing or thread interleaving. Handlers run on the thread
/// that calls RunNext()/RunUntilIdle() and may post further events
/// (including at the current time, which run after everything already
/// queued for that instant).
///
/// The clock never goes backwards: posting an event before now() clamps
/// it to now(), and now() advances to each event's fire time as it pops.
///
/// Not thread-safe; the owner serializes access (QueryService runs the
/// queue under its dispatch lock).
class EventQueue {
 public:
  using Handler = std::function<void(SimNanos now)>;

  /// Schedules `fn` at simulated time `at` (clamped to now()).
  void Post(SimNanos at, Handler fn);

  /// Schedules `fn` `delay` nanoseconds after now().
  void PostAfter(SimNanos delay, Handler fn) { Post(now_ + delay, std::move(fn)); }

  /// Pops and runs the earliest event, advancing now() to its fire time.
  /// Returns false (and runs nothing) when the queue is empty.
  bool RunNext();

  /// Runs events until none remain; returns how many ran. Handlers that
  /// post new events extend the run.
  size_t RunUntilIdle();

  /// The simulated clock: the fire time of the most recent event (0
  /// before any event has run). Monotone non-decreasing.
  SimNanos now() const { return now_; }

  bool pending() const { return !events_.empty(); }
  size_t size() const { return events_.size(); }

 private:
  // (fire time, insertion seq) -> handler. std::map iteration order is
  // the deterministic execution order.
  std::map<std::pair<SimNanos, uint64_t>, Handler> events_;
  SimNanos now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace ironsafe::sim

#endif  // IRONSAFE_SIM_EVENT_QUEUE_H_
