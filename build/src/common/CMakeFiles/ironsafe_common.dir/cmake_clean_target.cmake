file(REMOVE_RECURSE
  "libironsafe_common.a"
)
