#ifndef IRONSAFE_COMMON_RESULT_H_
#define IRONSAFE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace ironsafe {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. The IronSafe analogue of arrow::Result / StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so call sites can `return value;`
  /// or `return Status::NotFound(...)`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result built from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(rep_);
  }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace ironsafe

#define IRONSAFE_CONCAT_IMPL_(x, y) x##y
#define IRONSAFE_CONCAT_(x, y) IRONSAFE_CONCAT_IMPL_(x, y)

/// ASSIGN_OR_RETURN(auto v, Fallible()) — binds the value or propagates
/// the error Status to the caller.
#define ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  ASSIGN_OR_RETURN_IMPL_(IRONSAFE_CONCAT_(_res_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL_(res, lhs, rexpr) \
  auto res = (rexpr);                           \
  if (!res.ok()) return res.status();           \
  lhs = std::move(res).value()

#endif  // IRONSAFE_COMMON_RESULT_H_
