#ifndef IRONSAFE_COMMON_BYTES_H_
#define IRONSAFE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ironsafe {

/// Owned byte buffer used throughout crypto/storage/networking code.
using Bytes = std::vector<uint8_t>;

/// Builds a Bytes from a string (no encoding change).
Bytes ToBytes(std::string_view s);

/// Builds a std::string view copy of a byte buffer.
std::string ToString(const Bytes& b);

/// Lowercase hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const Bytes& b);

/// Parses lowercase/uppercase hex; fails on odd length or non-hex chars.
Result<Bytes> HexDecode(std::string_view hex);

/// Constant-time equality for MACs and keys (length leaks, contents do not).
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);
bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t len);

/// Little-endian fixed-width integer codecs.
void PutU16(Bytes* out, uint16_t v);
void PutU32(Bytes* out, uint32_t v);
void PutU64(Bytes* out, uint64_t v);
uint16_t GetU16(const uint8_t* p);
uint32_t GetU32(const uint8_t* p);
uint64_t GetU64(const uint8_t* p);

/// Appends `src` to `out`.
void Append(Bytes* out, const Bytes& src);
void Append(Bytes* out, const uint8_t* data, size_t len);
void Append(Bytes* out, std::string_view s);

/// Length-prefixed (u32) string/bytes codec used by message serializers.
void PutLengthPrefixed(Bytes* out, const Bytes& v);
void PutLengthPrefixed(Bytes* out, std::string_view v);

/// Cursor-style reader over a byte buffer for deserialization.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data.data()), len_(data.size()) {}
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<Bytes> ReadBytes(size_t n);
  Result<Bytes> ReadLengthPrefixed();
  Result<std::string> ReadLengthPrefixedString();

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace ironsafe

#endif  // IRONSAFE_COMMON_BYTES_H_
