// Violating fixture: linted as if it lived in src/engine/, which sits
// below the serving layer — nothing beneath server may include it.
#include "engine/ironsafe.h"
#include "server/query_service.h"

void ServerLayeringViolatingFixture() {}
