#ifndef IRONSAFE_SQL_TOKENIZER_H_
#define IRONSAFE_SQL_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ironsafe::sql {

/// Lexical token kinds for the SQL dialect.
enum class TokenKind {
  kIdent,    ///< identifiers and keywords (parser decides)
  kInt,      ///< integer literal
  kDouble,   ///< floating literal
  kString,   ///< 'single quoted'
  kSymbol,   ///< operators and punctuation, e.g. "<=", "(", ","
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< raw text (identifier case preserved)
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;       ///< byte offset for error messages

  /// Case-insensitive keyword comparison (kIdent only).
  bool IsKeyword(std::string_view kw) const;
  bool IsSymbol(std::string_view s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// Tokenizes `sql`; fails on unterminated strings or stray characters.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_TOKENIZER_H_
