#ifndef IRONSAFE_SERVER_QUERY_SERVICE_H_
#define IRONSAFE_SERVER_QUERY_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/chacha20.h"
#include "engine/ironsafe.h"
#include "net/secure_channel.h"
#include "server/plan_cache.h"
#include "server/scheduler.h"
#include "sim/cost_model.h"

namespace ironsafe::server {

/// One statement as a client submits it (sealed on its session channel).
struct StatementRequest {
  std::string sql;
  std::string execution_policy;
  std::optional<int64_t> insert_expiry;
  std::optional<int64_t> insert_reuse;
};

Bytes EncodeStatementRequest(const StatementRequest& request);
Result<StatementRequest> DecodeStatementRequest(const Bytes& plain);

/// What the service seals back for one executed statement. `status` is
/// the engine/monitor outcome (a policy rejection travels here, inside
/// the channel); the remaining fields are meaningful only when it is OK.
struct StatementResponse {
  Status status = Status::OK();
  sql::QueryResult result;
  sim::SimNanos monitor_ns = 0;
  sim::SimNanos execution_ns = 0;
  bool offloaded = false;
  bool plan_cache_hit = false;

  sim::SimNanos total_ns() const { return monitor_ns + execution_ns; }
};

Bytes EncodeStatementResponse(const StatementResponse& response);
Result<StatementResponse> DecodeStatementResponse(const Bytes& plain);

/// Terminal record for one submitted statement. `transport` is OK when
/// `response_frame` holds a sealed StatementResponse; it is kUnavailable
/// when the session dropped or closed before the statement ran (the
/// statement did NOT execute — safe to resubmit on a new session).
struct Completion {
  uint64_t seq = 0;
  Status transport = Status::OK();
  Bytes response_frame;
};

struct ServiceOptions {
  SchedulerLimits limits;
  size_t plan_cache_capacity = 128;
  /// Seeds the DRBG behind every per-session handshake, so a fixed
  /// session-open order yields identical channel keys (and thus
  /// byte-identical frames) run over run.
  uint64_t handshake_seed = 0x5e55104e;
};

/// Multi-tenant serving front end over one IronSafeSystem (the "many
/// clients" deployment of paper Figure 2): per-session attested secure
/// channels, bounded fair admission, a policy-epoch-keyed plan cache,
/// and graceful drain.
///
/// Threading model: Submit / TakeCompletions / CloseSession are
/// thread-safe and may be called from concurrent client threads.
/// RunUntilIdle dispatches queued statements ONE AT A TIME in the fair
/// scheduler's order (morsel parallelism happens inside the engine via
/// common::ThreadPool), which is what keeps aggregate cost totals and
/// the default trace bit-identical across worker counts: the simulated
/// account depends on the submission schedule, never on thread timing.
class QueryService {
 public:
  QueryService(engine::IronSafeSystem* system, ServiceOptions options);

  /// The client's half of an open session: the service keeps the mirror
  /// channel, so frames sealed on `channel` authenticate at the service
  /// and vice versa.
  struct ClientSession {
    uint64_t id = 0;
    std::unique_ptr<net::SecureChannel> channel;
  };

  /// Authenticates `client_key_id` against the monitor's client registry
  /// (RegisterClient keys) and runs a fresh net::Handshake for the
  /// session. kUnauthenticated for unknown clients; kUnavailable while
  /// draining.
  Result<ClientSession> OpenSession(const std::string& client_key_id);

  /// Closes a session: zeroizes the service-side channel keys and
  /// completes any still-queued statements with kUnavailable.
  Status CloseSession(uint64_t session_id);

  /// Admits one sealed request frame; returns the statement's seq.
  /// kResourceExhausted (retryable backpressure, see common/retry) when
  /// the session quota or global queue bound is hit; kUnavailable while
  /// draining; kNotFound for unknown/closed sessions.
  Result<uint64_t> Submit(uint64_t session_id, const Bytes& request_frame);

  /// Dispatches queued statements in fair order until the queue is
  /// empty; returns how many executed. Safe to call from any thread
  /// (concurrent callers serialize); determinism holds whenever the
  /// submission schedule itself is deterministic.
  size_t RunUntilIdle();

  /// Pops every finished completion for the session, submission order.
  std::vector<Completion> TakeCompletions(uint64_t session_id);

  /// Stops admission (new Submit/OpenSession fail kUnavailable), then
  /// executes everything already admitted. Every admitted statement ends
  /// in exactly one completion: nothing is lost, nothing runs twice.
  /// Returns how many queued statements the drain flushed.
  size_t Drain();

  /// Drain + close every session (keys zeroized).
  void Shutdown();

  bool draining() const;

  struct Stats {
    uint64_t sessions_opened = 0;
    uint64_t sessions_closed = 0;
    uint64_t statements_admitted = 0;
    uint64_t statements_rejected = 0;  ///< admission backpressure
    uint64_t statements_executed = 0;
    uint64_t statements_aborted = 0;   ///< completed kUnavailable
    uint64_t plan_cache_hits = 0;
    uint64_t plan_cache_misses = 0;
    size_t peak_queue_depth = 0;
    sim::SimNanos total_monitor_ns = 0;
    sim::SimNanos total_execution_ns = 0;
    sim::SimNanos total_serve_ns = 0;  ///< response sealing/shipping
  };
  Stats stats() const;

 private:
  struct Session {
    std::string client_key;
    std::unique_ptr<net::SecureChannel> channel;  // service end
    int lane = 0;          ///< detail-span display lane
    uint64_t next_seq = 0;
    bool closed = false;
    std::deque<Completion> completions;
  };

  /// Runs one statement end to end (already popped from the scheduler).
  /// Called with dispatch_mu_ held, mu_ released.
  void DispatchStatement(const QueuedStatement& item);

  /// Executes the decoded request against the engine, going through the
  /// plan cache for SELECTs.
  StatementResponse ExecuteRequest(const std::string& client_key,
                                   const StatementRequest& request);

  engine::IronSafeSystem* system_;
  ServiceOptions options_;
  crypto::Drbg handshake_drbg_;

  /// Guards sessions_, scheduler_, draining_, counters and serve_cost_.
  mutable std::mutex mu_;
  /// Serializes statement dispatch; always acquired before mu_.
  std::mutex dispatch_mu_;

  std::map<uint64_t, Session> sessions_;
  FairScheduler scheduler_;
  PlanCache plan_cache_;
  uint64_t next_session_id_ = 1;
  int next_lane_ = 0;
  bool draining_ = false;

  sim::CostModel serve_cost_;
  Stats stats_;
};

}  // namespace ironsafe::server

#endif  // IRONSAFE_SERVER_QUERY_SERVICE_H_
