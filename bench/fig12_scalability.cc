// Figure 12: storage-engine scalability, reproduced as real scale-out
// over the sharded fleet (src/dist, docs/SHARDING.md). Each shard count
// gets its own fleet with the TPC-H tables hash/range-partitioned across
// N replica groups; the plot is the simulated elapsed time of the
// distributed scs plan, normalized to one shard. The paper sees linear
// scaling for all queries except the memory-intensive #13.
//
// Emits the committed BENCH_fig12.json with --json: one entry per
// (query, shard count), keyed "q<N>@<shards>", with the 1-shard run as
// each multi-shard entry's row_* baseline so baseline_check's
// --require-sim-improvement and --require-shard-scaling gates both read
// the scale-out direction from the file (fig12_smoke ctest).
//
// The bench self-checks the determinism contract as it sweeps: result
// rows must be bit-identical across every shard count (FNV digest of the
// exact row serialization, order included).

#include "bench/bench_util.h"

#include "dist/fleet.h"
#include "tpch/table_spec.h"

namespace ironsafe::bench {
namespace {

uint64_t RowDigest(const sql::QueryResult& result) {
  uint64_t digest = kDigestOffset;
  for (const auto& row : result.rows) {
    for (const auto& v : row) {
      digest = DigestBytes(digest, v.ToString());
      digest = (digest ^ '|') * kDigestPrime;
    }
    digest = (digest ^ '\n') * kDigestPrime;
  }
  return digest;
}

Result<std::unique_ptr<dist::ShardedCsaFleet>> MakeFleet(double sf,
                                                         int shards) {
  dist::FleetOptions options;
  options.shard_count = shards;
  options.replicas_per_shard = 2;
  options.partitions = tpch::TpchPartitionScheme();
  auto fleet = dist::ShardedCsaFleet::Create(options);
  if (!fleet.ok()) return fleet.status();
  Status st = (*fleet)->Load([&](sql::Database* db) {
    tpch::TpchGenerator gen(tpch::TpchConfig{sf, kSeed});
    return gen.LoadInto(db);
  });
  if (!st.ok()) return st;
  return std::move(*fleet);
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  BaselineWriter baseline(args, "fig12_scalability");

  // Scan/aggregate-heavy evaluated queries, where the offloaded portion
  // dominates and shards have real work to split. Q13 is kept as the
  // paper's known sub-linear case (group-by over the whole join).
  std::vector<int> query_numbers = {3, 6, 12, 13, 14};
  std::vector<int> shard_counts = {1, 2, 4, 8};
  if (args.quick) {
    query_numbers = {3, 6};
    shard_counts = {1, 4};
  }

  std::vector<std::unique_ptr<dist::ShardedCsaFleet>> fleets;
  for (int shards : shard_counts) {
    BENCH_ASSIGN(auto fleet, MakeFleet(sf, shards));
    fleets.push_back(std::move(fleet));
  }

  PrintHeader(
      "Figure 12: distributed scs elapsed vs shard count "
      "(normalized to 1 shard; < 1.0 = scale-out win)");
  std::printf("%5s %16s", "query", "1-shard ms(sim)");
  for (size_t i = 1; i < shard_counts.size(); ++i) {
    std::printf(" %7d-shard", shard_counts[i]);
  }
  std::printf(" %18s\n", "row digest");

  WallClock wall;
  int digest_mismatches = 0;
  for (int number : query_numbers) {
    BENCH_ASSIGN(const tpch::TpchQuery* query, tpch::GetQuery(number));
    std::printf("%5d", number);
    sim::SimNanos single_ns = 0;
    uint64_t single_digest = 0;
    for (size_t i = 0; i < shard_counts.size(); ++i) {
      WallClock run_wall;
      BENCH_ASSIGN(auto out, fleets[i]->Run(query->sql));
      double run_ms = run_wall.ms();
      uint64_t digest = RowDigest(out.result);
      std::string key =
          "q" + std::to_string(number) + "@" +
          std::to_string(shard_counts[i]);
      baseline.Add(key, out.cost.elapsed_ns(), run_ms);
      if (shard_counts[i] == 1) {
        single_ns = out.cost.elapsed_ns();
        single_digest = digest;
        std::printf(" %16.3f", out.cost.elapsed_ms());
      } else {
        // The 1-shard run is every multi-shard entry's "before" column.
        baseline.AddRow(key, single_ns, run_ms);
        std::printf(" %13.3f", static_cast<double>(out.cost.elapsed_ns()) /
                                   static_cast<double>(single_ns));
      }
      if (digest != single_digest) {
        ++digest_mismatches;
        std::fprintf(stderr,
                     "FIG12 DETERMINISM VIOLATION: q%d rows diverge at "
                     "%d shards\n",
                     number, shard_counts[i]);
      }
    }
    std::printf("   0x%016llx\n",
                static_cast<unsigned long long>(single_digest));
  }
  std::printf(
      "(normalized column < 1.0 = faster than single-shard; identical "
      "digests = bit-identical rows at every shard count)\n");
  PrintWallClock(wall);
  if (digest_mismatches > 0) {
    std::fprintf(stderr, "fig12: %d digest mismatch(es)\n",
                 digest_mismatches);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
