# Empty dependencies file for gdpr_sharing.
# This may be replaced when dependencies are built.
