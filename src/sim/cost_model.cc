#include "sim/cost_model.h"

#include <algorithm>
#include <sstream>

namespace ironsafe::sim {

SimNanos CostModel::CyclesToNs(Site site, uint64_t cycles, int ways) const {
  const CpuProfile& cpu =
      site == Site::kHost ? profile_.host_cpu : profile_.storage_cpu;
  int parallel = std::max(1, std::min(ways, cpu.cores));
  double effective_hz = cpu.ghz * 1e9 * cpu.ipc_factor * parallel;
  return static_cast<SimNanos>(static_cast<double>(cycles) / effective_hz * 1e9);
}

void CostModel::ChargeCycles(Site site, uint64_t cycles) {
  SimNanos ns = CyclesToNs(site, cycles, 1);
  compute_ns_ += ns;
  total_ns_ += ns;
}

void CostModel::ChargeParallelCycles(Site site, uint64_t cycles, int ways) {
  SimNanos ns = CyclesToNs(site, cycles, ways);
  compute_ns_ += ns;
  total_ns_ += ns;
}

void CostModel::ChargeDiskRead(uint64_t bytes) {
  SimNanos ns = profile_.nvme.latency_ns / kReadaheadPages +
                static_cast<SimNanos>(static_cast<double>(bytes) /
                                      profile_.nvme.bytes_per_second * 1e9);
  disk_ns_ += ns;
  total_ns_ += ns;
  disk_bytes_ += bytes;
}

void CostModel::ChargeDiskWrite(uint64_t bytes) {
  SimNanos ns = profile_.nvme.latency_ns / kReadaheadPages +
                static_cast<SimNanos>(static_cast<double>(bytes) /
                                      profile_.nvme.bytes_per_second * 1e9);
  disk_ns_ += ns;
  total_ns_ += ns;
  disk_bytes_ += bytes;
  disk_write_bytes_ += bytes;
}

void CostModel::ChargeNetwork(uint64_t bytes) {
  SimNanos ns = profile_.network.latency_ns +
                static_cast<SimNanos>(static_cast<double>(bytes) /
                                      profile_.network.bytes_per_second * 1e9);
  network_ns_ += ns;
  total_ns_ += ns;
  network_bytes_ += bytes;
}

void CostModel::ChargeNetworkBytes(uint64_t bytes) {
  SimNanos ns = profile_.network.latency_ns / kReadaheadPages +
                static_cast<SimNanos>(static_cast<double>(bytes) /
                                      profile_.network.bytes_per_second * 1e9);
  network_ns_ += ns;
  total_ns_ += ns;
  network_bytes_ += bytes;
}

void CostModel::ChargeEnclaveTransition() {
  SimNanos ns = CyclesToNs(Site::kHost, profile_.sgx.transition_cycles, 1);
  transition_ns_ += ns;
  total_ns_ += ns;
  ++transitions_;
}

void CostModel::ChargeEpcFault() {
  SimNanos ns = CyclesToNs(Site::kHost, profile_.sgx.epc_fault_cycles, 1);
  epc_fault_ns_ += ns;
  total_ns_ += ns;
  ++epc_faults_;
}

void CostModel::ChargeFixed(SimNanos ns) {
  fixed_ns_ += ns;
  total_ns_ += ns;
}

SimNanos CostModel::CryptoCyclesToNs(Site site, uint64_t cycles) const {
  const CpuProfile& cpu =
      site == Site::kHost ? profile_.host_cpu : profile_.storage_cpu;
  // Hardware crypto engines run at clock speed on both CPUs; enclave
  // memory traffic additionally pays the MEE slowdown on the host.
  double effective_hz = cpu.ghz * 1e9;
  double factor = site == Site::kHost ? profile_.sgx.mee_slowdown : 1.0;
  return static_cast<SimNanos>(static_cast<double>(cycles) * factor /
                               effective_hz * 1e9);
}

void CostModel::ChargePageDecrypt(Site site) {
  SimNanos ns = CryptoCyclesToNs(site, profile_.page_decrypt_cycles);
  decrypt_ns_ += ns;
  total_ns_ += ns;
  ++pages_decrypted_;
}

void CostModel::ChargePageMacVerify(Site site) {
  SimNanos ns = CryptoCyclesToNs(site, profile_.page_hmac_cycles);
  freshness_ns_ += ns;
  total_ns_ += ns;
}

void CostModel::ChargeMerkleNodes(Site site, uint64_t nodes) {
  SimNanos ns = CryptoCyclesToNs(site, profile_.merkle_node_cycles * nodes);
  freshness_ns_ += ns;
  total_ns_ += ns;
}

void CostModel::MergeChild(const CostModel& child) {
  total_ns_ += child.total_ns_;
  compute_ns_ += child.compute_ns_;
  disk_ns_ += child.disk_ns_;
  network_ns_ += child.network_ns_;
  transition_ns_ += child.transition_ns_;
  epc_fault_ns_ += child.epc_fault_ns_;
  decrypt_ns_ += child.decrypt_ns_;
  freshness_ns_ += child.freshness_ns_;
  fixed_ns_ += child.fixed_ns_;
  transitions_ += child.transitions_;
  epc_faults_ += child.epc_faults_;
  disk_bytes_ += child.disk_bytes_;
  disk_write_bytes_ += child.disk_write_bytes_;
  network_bytes_ += child.network_bytes_;
  pages_decrypted_ += child.pages_decrypted_;
}

void CostModel::MergeParallelTimelines(
    const std::vector<const CostModel*>& children) {
  SimNanos makespan = 0;
  for (const CostModel* child : children) {
    SimNanos child_elapsed = child->total_ns_;
    MergeChild(*child);
    total_ns_ -= child_elapsed;  // MergeChild added it serially
    makespan = std::max(makespan, child_elapsed);
  }
  total_ns_ += makespan;
}

void CostModel::Reset() {
  total_ns_ = compute_ns_ = disk_ns_ = network_ns_ = 0;
  transition_ns_ = epc_fault_ns_ = decrypt_ns_ = freshness_ns_ = fixed_ns_ = 0;
  transitions_ = epc_faults_ = 0;
  disk_bytes_ = disk_write_bytes_ = network_bytes_ = pages_decrypted_ = 0;
}

std::string CostModel::Summary() const {
  std::ostringstream os;
  auto ms = [](SimNanos ns) { return static_cast<double>(ns) / 1e6; };
  os << "total=" << elapsed_ms() << "ms"
     << " compute=" << ms(compute_ns_) << "ms"
     << " disk=" << ms(disk_ns_) << "ms"
     << " net=" << ms(network_ns_) << "ms"
     << " transitions=" << transitions_ << " (" << ms(transition_ns_) << "ms)"
     << " epc_faults=" << epc_faults_ << " (" << ms(epc_fault_ns_) << "ms)"
     << " decrypt=" << ms(decrypt_ns_) << "ms"
     << " freshness=" << ms(freshness_ns_) << "ms";
  return os.str();
}

}  // namespace ironsafe::sim
