#include "obs/trace.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace ironsafe::obs {

namespace {

thread_local Tracer* tls_tracer = nullptr;

/// Integer nanoseconds rendered as decimal microseconds ("12.345"):
/// Chrome's ts/dur unit with no floating-point round-trip, so the text
/// is a deterministic function of the simulated value.
std::string NsAsUsString(sim::SimNanos ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  return buf;
}

}  // namespace

Tracer* CurrentTracer() { return tls_tracer; }
void SetCurrentTracer(Tracer* tracer) { tls_tracer = tracer; }

// Wall-clock fields feed only the opt-in --trace-wall lane and are
// excluded from the default deterministic export (see Span docs).
Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()) {}  // ironsafe-lint: allow(determinism)

int64_t Tracer::WallNowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             // ironsafe-lint: allow(determinism) — opt-in wall lane only
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int64_t Tracer::OpenSpan(std::string_view name, std::string_view category,
                         const sim::CostModel* cost) {
  int64_t wall = WallNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = static_cast<int64_t>(spans_.size());
  span.name = std::string(name);
  span.category = std::string(category);
  span.depth = static_cast<int>(open_.size());
  span.wall_start_us = wall;

  OpenState state;
  state.id = span.id;
  state.has_model = cost != nullptr;
  state.raw_open = cost != nullptr ? cost->elapsed_ns() : 0;
  if (open_.empty()) {
    span.parent = -1;
    state.start = root_cursor_;
  } else {
    span.parent = open_.back().id;
    state.start = open_.back().cursor;
  }
  state.cursor = state.start;
  span.sim_start_ns = state.start;
  span.sim_end_ns = state.start;  // patched at close

  spans_.push_back(std::move(span));
  open_.push_back(state);
  return state.id;
}

void Tracer::CloseSpan(int64_t id, const sim::CostModel* cost) {
  int64_t wall = WallNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  assert(!open_.empty() && open_.back().id == id &&
         "CloseSpan out of nesting order");
  if (open_.empty() || open_.back().id != id) return;
  OpenState state = open_.back();
  open_.pop_back();

  sim::SimNanos raw_delta = 0;
  if (state.has_model && cost != nullptr) {
    sim::SimNanos now = cost->elapsed_ns();
    raw_delta = now >= state.raw_open ? now - state.raw_open : 0;
  }
  sim::SimNanos end = std::max(state.start + raw_delta, state.cursor);

  Span& span = spans_[static_cast<size_t>(id)];
  span.sim_end_ns = end;
  span.wall_end_us = wall;

  if (open_.empty()) {
    root_cursor_ = std::max(root_cursor_, end);
  } else {
    open_.back().cursor = std::max(open_.back().cursor, end);
  }
}

void Tracer::AddTag(int64_t id, std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  spans_[static_cast<size_t>(id)].tags.emplace_back(std::string(key),
                                                    std::string(value));
}

void Tracer::AddTag(int64_t id, std::string_view key, int64_t value) {
  AddTag(id, key, std::string_view(std::to_string(value)));
}

int64_t Tracer::AddDetailSpan(std::string_view name, std::string_view category,
                              sim::SimNanos sim_dur_ns, int lane,
                              int64_t wall_start_us, int64_t wall_end_us) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = static_cast<int64_t>(spans_.size());
  span.name = std::string(name);
  span.category = std::string(category);
  span.detail = true;
  span.lane = lane;
  span.wall_start_us = wall_start_us;
  span.wall_end_us = wall_end_us;
  if (open_.empty()) {
    span.parent = -1;
    span.depth = 0;
    span.sim_start_ns = root_cursor_;
  } else {
    span.parent = open_.back().id;
    span.depth = static_cast<int>(open_.size());
    span.sim_start_ns = open_.back().cursor;
  }
  span.sim_end_ns = span.sim_start_ns + sim_dur_ns;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

int64_t Tracer::AddTimelineSpan(std::string_view name,
                                std::string_view category,
                                sim::SimNanos sim_start_ns,
                                sim::SimNanos sim_end_ns, int lane) {
  int64_t wall = WallNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = static_cast<int64_t>(spans_.size());
  span.name = std::string(name);
  span.category = std::string(category);
  span.detail = true;
  span.lane = lane;
  span.wall_start_us = wall;
  span.wall_end_us = wall;
  // Explicit placement: the caller owns the timeline (an event queue),
  // so no cursor is consulted or advanced. Parentage still records the
  // innermost open span for tree readers.
  span.parent = open_.empty() ? -1 : open_.back().id;
  span.depth = static_cast<int>(open_.size());
  span.sim_start_ns = sim_start_ns;
  span.sim_end_ns = sim_end_ns < sim_start_ns ? sim_start_ns : sim_end_ns;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

size_t Tracer::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_.clear();
  root_cursor_ = 0;
}

void Tracer::ExportChromeTrace(std::ostream& out,
                               const ExportOptions& opts) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Internal ids count every recorded span, including detail spans whose
  // number depends on the real worker count. Renumber over the spans
  // actually exported so the default (no-detail) trace is identical
  // regardless of parallelism.
  std::vector<int64_t> exported_id(spans_.size(), -1);
  int64_t next_id = 0;
  for (const Span& span : spans_) {
    if (span.detail && !opts.include_detail) continue;
    exported_id[static_cast<size_t>(span.id)] = next_id++;
  }
  auto remap = [&](int64_t id) {
    return id < 0 ? id : exported_id[static_cast<size_t>(id)];
  };
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans_) {
    if (span.detail && !opts.include_detail) continue;
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":" << JsonQuote(span.name)
        << ",\"cat\":" << JsonQuote(span.category) << ",\"ph\":\"X\""
        << ",\"ts\":" << NsAsUsString(span.sim_start_ns)
        << ",\"dur\":" << NsAsUsString(span.sim_duration_ns())
        << ",\"pid\":1,\"tid\":" << (span.detail ? span.lane + 1 : 0)
        << ",\"args\":{\"id\":" << remap(span.id)
        << ",\"parent\":" << remap(span.parent);
    if (span.detail) out << ",\"detail\":true";
    for (const auto& [key, value] : span.tags) {
      out << "," << JsonQuote(key) << ":" << JsonQuote(value);
    }
    if (opts.include_wall) {
      out << ",\"wall_start_us\":" << span.wall_start_us
          << ",\"wall_dur_us\":" << (span.wall_end_us - span.wall_start_us);
    }
    out << "}}";
  }
  out << "\n]";
  if (opts.metrics != nullptr) {
    out << ",\"counters\":{";
    bool first_metric = true;
    for (const auto& [name, value] : opts.metrics->Snapshot()) {
      if (!first_metric) out << ",";
      first_metric = false;
      out << "\n" << JsonQuote(name) << ":" << value;
    }
    out << "\n}";
  }
  out << "}\n";
}

Status Tracer::WriteChromeTrace(const std::string& path,
                                const ExportOptions& opts) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open trace file: " + path);
  ExportChromeTrace(out, opts);
  out.flush();
  if (!out) return Status::Internal("short write to trace file: " + path);
  return Status::OK();
}

void Tracer::ExportTree(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& span : spans_) {
    for (int i = 0; i < span.depth; ++i) out << "  ";
    out << span.name << "  " << NsAsUsString(span.sim_duration_ns()) << " us";
    if (span.detail) out << "  [detail lane " << span.lane << "]";
    for (const auto& [key, value] : span.tags) {
      out << "  " << key << "=" << value;
    }
    out << "\n";
  }
}

}  // namespace ironsafe::obs
