file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_policy.dir/interpreter.cc.o"
  "CMakeFiles/ironsafe_policy.dir/interpreter.cc.o.d"
  "CMakeFiles/ironsafe_policy.dir/policy.cc.o"
  "CMakeFiles/ironsafe_policy.dir/policy.cc.o.d"
  "CMakeFiles/ironsafe_policy.dir/rewriter.cc.o"
  "CMakeFiles/ironsafe_policy.dir/rewriter.cc.o.d"
  "libironsafe_policy.a"
  "libironsafe_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
