file(REMOVE_RECURSE
  "CMakeFiles/fig9_microbench.dir/fig9_microbench.cc.o"
  "CMakeFiles/fig9_microbench.dir/fig9_microbench.cc.o.d"
  "fig9_microbench"
  "fig9_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
