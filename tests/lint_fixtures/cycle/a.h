#ifndef IRONSAFE_TESTS_LINT_FIXTURES_CYCLE_A_H_
#define IRONSAFE_TESTS_LINT_FIXTURES_CYCLE_A_H_

// Half of a deliberate include cycle for the cross-file layering check.
#include "cycle/b.h"

inline int A() { return B() + 1; }

#endif  // IRONSAFE_TESTS_LINT_FIXTURES_CYCLE_A_H_
