// Attestation tour: walks through the paper's Figure 4 protocols at the
// TEE-primitive level — SGX quote generation/verification for the host,
// the TrustZone challenge-response with the ROTPK certificate chain for
// the storage node — and shows what happens when an attacker substitutes
// a trojaned image or a rogue device.
//
//   build/examples/attestation_tour

#include <cstdio>

#include "monitor/monitor.h"
#include "tee/sgx.h"
#include "tee/trustzone.h"

using namespace ironsafe;  // example code; the library never does this

int main() {
  // --- The cast ---
  tee::SgxMachine host_machine(ToBytes("host platform"));
  tee::DeviceManufacturer manufacturer(ToBytes("device vendor"));
  tee::TrustZoneDevice storage(ToBytes("storage serial 42"), manufacturer,
                               tee::StorageNodeConfig{"storage-1",
                                                      "eu-west-1", 3});
  auto host_enclave =
      host_machine.LoadEnclave("host-engine", ToBytes("host engine v3"));
  auto monitor_enclave =
      host_machine.LoadEnclave("monitor", ToBytes("monitor v3"));

  tee::SgxAttestationService ias;
  ias.RegisterPlatform(host_machine.platform_id(),
                       host_machine.attestation_public_key());

  monitor::TrustedMonitor monitor(monitor_enclave.get(), &ias,
                                  manufacturer.root_public_key());
  monitor.TrustHostMeasurement(host_enclave->measurement());

  // --- Figure 4.a: host attestation ---
  std::printf("[4.a] host enclave measurement: %s...\n",
              HexEncode(host_enclave->measurement()).substr(0, 16).c_str());
  tee::SgxQuote quote = host_enclave->GetQuote(Bytes(64, 0x42));
  auto cert = monitor.AttestHost(quote, "eu-west-1", 3);
  std::printf("[4.a] monitor verdict: %s\n", cert.status().ToString().c_str());

  // A forged quote (attacker claims a different measurement) fails.
  tee::SgxQuote forged = quote;
  forged.measurement = Bytes(32, 0xEE);
  std::printf("[4.a] forged quote: %s\n",
              monitor.AttestHost(forged, "eu-west-1", 3)
                  .status()
                  .ToString()
                  .c_str());

  // --- Figure 4.b: storage attestation ---
  storage.Boot({{"BL2", ToBytes("bl2 v3")},
                {"TrustedOS", ToBytes("op-tee 3.4")},
                {"NormalWorld", ToBytes("linux + storage engine v3")}});
  monitor.TrustStorageMeasurement(storage.normal_world_hash());
  monitor.set_latest_firmware(3, 3);

  Bytes challenge = monitor.IssueStorageChallenge();
  auto response = storage.RespondToChallenge(challenge);
  std::printf("[4.b] boot chain stages: %zu, normal world: %s...\n",
              storage.cert_chain().size(),
              HexEncode(storage.normal_world_hash()).substr(0, 16).c_str());
  std::printf("[4.b] monitor verdict: %s\n",
              monitor.AttestStorage("storage-1", challenge, *response)
                  .ToString()
                  .c_str());

  // A trojaned normal world measures differently and is rejected.
  storage.Boot({{"BL2", ToBytes("bl2 v3")},
                {"TrustedOS", ToBytes("op-tee 3.4")},
                {"NormalWorld", ToBytes("linux + TROJAN")}});
  Bytes challenge2 = monitor.IssueStorageChallenge();
  auto trojan_response = storage.RespondToChallenge(challenge2);
  std::printf("[4.b] trojaned image: %s\n",
              monitor.AttestStorage("storage-1", challenge2, *trojan_response)
                  .ToString()
                  .c_str());

  // A rogue device certified by a different vendor is rejected even with
  // a pristine software stack.
  tee::DeviceManufacturer evil(ToBytes("knockoff vendor"));
  tee::TrustZoneDevice rogue(ToBytes("rogue serial"), evil,
                             tee::StorageNodeConfig{"storage-1",
                                                    "eu-west-1", 3});
  rogue.Boot({{"BL2", ToBytes("bl2 v3")},
              {"TrustedOS", ToBytes("op-tee 3.4")},
              {"NormalWorld", ToBytes("linux + storage engine v3")}});
  Bytes challenge3 = monitor.IssueStorageChallenge();
  auto rogue_response = rogue.RespondToChallenge(challenge3);
  std::printf("[4.b] rogue device: %s\n",
              monitor.AttestStorage("storage-1", challenge3, *rogue_response)
                  .ToString()
                  .c_str());
  return 0;
}
