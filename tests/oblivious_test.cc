// The oblivious mode's access-pattern-equality property harness
// (docs/OBLIVIOUS.md). The headline property: with ExecOptions::oblivious
// set, the access trace — operator events including every morsel-unit
// read, plus the deterministic span signature — is bit-identical across
// value-randomized same-shape inputs, for every oblivious operator and
// every TPC-H query, while the plain engines' traces diverge on the same
// inputs (the negative witness). The suite also pins the differential
// contract: oblivious-row vs oblivious-vectorized are bit-identical in
// rows, stats, cost and trace; oblivious vs plain agree on the result
// multiset and row counts while the oblivious cost is strictly higher;
// and all of it is invariant across 1/4/16 real workers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/access_trace.h"
#include "obs/trace.h"
#include "sql/database.h"
#include "sql/oblivious_kernels.h"
#include "sql/parser.h"
#include "storage/block_device.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace ironsafe::sql {
namespace {

constexpr int kSeeds = 16;  // value-randomized variants per property

ExecOptions Oblivious(ExecEngine engine = ExecEngine::kVectorized) {
  ExecOptions opts;
  opts.engine = engine;
  opts.oblivious = true;
  return opts;
}

ExecOptions Plain(ExecEngine engine = ExecEngine::kVectorized) {
  ExecOptions opts;
  opts.engine = engine;
  return opts;
}

/// Everything observable about one traced execution.
struct Capture {
  std::string access;  ///< obs::AccessLog::ToString()
  uint64_t access_fp = 0;
  std::string spans;  ///< obs::DeterministicSpanSignature
  QueryResult result;
  ExecStats stats;
  sim::SimNanos cost_ns = 0;
};

Capture RunTraced(Database* db, const std::string& sql,
                  const ExecOptions& opts) {
  Capture out;
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status().ToString();
  if (!stmt.ok()) return out;
  obs::Tracer tracer;
  obs::ScopedTracer tracer_scope(&tracer);
  obs::AccessLog log;
  obs::ScopedAccessLog log_scope(&log);
  sim::CostModel cost;
  auto r = ExecuteSelect(db, **stmt, nullptr, &cost, opts, &out.stats);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  if (!r.ok()) return out;
  out.access = log.ToString();
  out.access_fp = log.Fingerprint();
  out.spans = obs::DeterministicSpanSignature(tracer);
  out.result = std::move(*r);
  out.cost_ns = cost.elapsed_ns();
  return out;
}

/// Rows as a sorted multiset of printed tuples (the oblivious mode's
/// emission order may legitimately differ from the plain engines' when
/// no ORDER BY pins it).
std::vector<std::string> CanonicalRows(const QueryResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s.push_back('|');
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Synthetic fixed-width relations. All columns are INTEGER / DOUBLE, so
// every seed produces byte-identical storage layout (fixed-width value
// encoding); key columns are seed-independent so the join multiplicity
// structure — public shape — is fixed, while every non-key value is
// randomized by the seed.
// ---------------------------------------------------------------------------

uint64_t Mix(uint64_t* state) {
  *state ^= *state << 13;
  *state ^= *state >> 7;
  *state ^= *state << 17;
  return *state;
}

std::unique_ptr<Database> MakeSyntheticDb(uint64_t seed) {
  auto db = Database::CreateInMemory();
  EXPECT_TRUE(
      db->Execute(
            "CREATE TABLE data (k INTEGER, grp INTEGER, v DOUBLE, w INTEGER)")
          .ok());
  EXPECT_TRUE(db->Execute("CREATE TABLE dim (k INTEGER, d INTEGER)").ok());
  uint64_t state = seed * 0x9E3779B97F4A7C15ull + 0x1234567ull;
  constexpr int kRows = 1500;  // > 1 morsel unit of a MemoryTable
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i),  // key: seed-independent
                    Value::Int(static_cast<int64_t>(Mix(&state) % 20)),
                    Value::Double(
                        static_cast<double>(Mix(&state) % 1000000) / 999999.0),
                    Value::Int(static_cast<int64_t>(Mix(&state) % 100000))});
  }
  EXPECT_TRUE(db->BulkLoad("data", rows).ok());
  rows.clear();
  constexpr int kDimRows = 300;
  for (int i = 0; i < kDimRows; ++i) {
    rows.push_back({Value::Int(i * 5),  // multiplicity structure fixed
                    Value::Int(static_cast<int64_t>(Mix(&state) % 1000))});
  }
  EXPECT_TRUE(db->BulkLoad("dim", rows).ok());
  return db;
}

/// The per-operator query zoo: one entry per oblivious operator.
const std::vector<std::pair<std::string, std::string>>& OperatorQueries() {
  static const std::vector<std::pair<std::string, std::string>> kQueries = {
      {"scan", "SELECT k, v FROM data"},
      {"filter", "SELECT k, v FROM data WHERE v > 0.5 AND w < 50000"},
      {"join",
       "SELECT data.k, dim.d FROM data, dim "
       "WHERE data.k = dim.k AND data.v > 0.25"},
      {"aggregate",
       "SELECT grp, count(*), sum(v), min(w) FROM data "
       "WHERE v > 0.3 GROUP BY grp"},
      {"global-aggregate",
       "SELECT count(*), sum(v), max(w) FROM data WHERE v > 0.5"},
      {"sort-limit",
       "SELECT k, v FROM data WHERE w > 1000 ORDER BY v DESC, k LIMIT 10"},
      {"distinct", "SELECT DISTINCT grp FROM data WHERE v > 0.5"},
      {"having",
       "SELECT grp, sum(v) FROM data GROUP BY grp "
       "HAVING sum(v) > 10 ORDER BY grp"},
  };
  return kQueries;
}

// ---------------------------------------------------------------------------
// Property: oblivious traces are bit-identical across >= 16
// value-randomized same-shape inputs, for every operator and engine.
// ---------------------------------------------------------------------------

TEST(ObliviousProperty, TraceEqualAcrossValueRandomizedInputs) {
  for (const auto& [op, sql] : OperatorQueries()) {
    SCOPED_TRACE(op);
    auto db0 = MakeSyntheticDb(0);
    Capture base = RunTraced(db0.get(), sql, Oblivious());
    ASSERT_FALSE(base.access.empty()) << op;
    for (uint64_t seed = 1; seed < kSeeds; ++seed) {
      auto db = MakeSyntheticDb(seed);
      Capture got = RunTraced(db.get(), sql, Oblivious());
      EXPECT_EQ(got.access, base.access) << op << " seed " << seed;
      EXPECT_EQ(got.access_fp, base.access_fp) << op << " seed " << seed;
      EXPECT_EQ(got.spans, base.spans) << op << " seed " << seed;
      // Shape-only charging: the simulated cost is also value-independent.
      EXPECT_EQ(got.cost_ns, base.cost_ns) << op << " seed " << seed;
      EXPECT_EQ(got.stats.rows_scanned, base.stats.rows_scanned) << op;
    }
  }
}

TEST(ObliviousProperty, BothEnginesProduceBitIdenticalExecutions) {
  // The engine option only selects the scan decode path; rows, stats,
  // cost and the full trace must not notice.
  for (const auto& [op, sql] : OperatorQueries()) {
    SCOPED_TRACE(op);
    for (uint64_t seed : {0ull, 7ull}) {
      auto db = MakeSyntheticDb(seed);
      Capture vec = RunTraced(db.get(), sql, Oblivious(ExecEngine::kVectorized));
      Capture row = RunTraced(db.get(), sql, Oblivious(ExecEngine::kRow));
      EXPECT_EQ(vec.access, row.access) << op;
      EXPECT_EQ(vec.spans, row.spans) << op;
      EXPECT_EQ(vec.cost_ns, row.cost_ns) << op;
      EXPECT_EQ(vec.stats, row.stats) << op;
      ASSERT_EQ(vec.result.rows.size(), row.result.rows.size()) << op;
      for (size_t i = 0; i < vec.result.rows.size(); ++i) {
        for (size_t c = 0; c < vec.result.rows[i].size(); ++c) {
          EXPECT_TRUE(vec.result.rows[i][c] == row.result.rows[i][c])
              << op << " row " << i << " col " << c;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Negative witness: the plain engines' traces DIVERGE across the same
// value randomization — predicate pushdown, hash-join build-side choice
// and group counts all leak into their access sequence.
// ---------------------------------------------------------------------------

TEST(ObliviousProperty, PlainTracesDivergeAcrossValueRandomizedInputs) {
  for (ExecEngine engine : {ExecEngine::kVectorized, ExecEngine::kRow}) {
    SCOPED_TRACE(engine == ExecEngine::kRow ? "row" : "vectorized");
    int diverged = 0;
    const std::string sql = OperatorQueries()[1].second;  // filter
    auto db0 = MakeSyntheticDb(0);
    Capture base = RunTraced(db0.get(), sql, Plain(engine));
    for (uint64_t seed = 1; seed < 4; ++seed) {
      auto db = MakeSyntheticDb(seed);
      Capture got = RunTraced(db.get(), sql, Plain(engine));
      if (got.access != base.access) ++diverged;
    }
    // Selectivity differs across seeds, and the plain trace records the
    // surviving row counts — every seed must be distinguishable.
    EXPECT_EQ(diverged, 3);
  }
}

// ---------------------------------------------------------------------------
// Worker invariance: the oblivious trace (like the plain engines'
// deterministic exports) is identical for 1, 4 and 16 real workers.
// ---------------------------------------------------------------------------

TEST(ObliviousProperty, TraceInvariantAcrossWorkerCounts) {
  const std::string sql = OperatorQueries()[3].second;  // aggregate
  auto db = MakeSyntheticDb(3);
  common::ThreadPool::set_max_workers(1);
  Capture w1 = RunTraced(db.get(), sql, Oblivious());
  common::ThreadPool::set_max_workers(4);
  Capture w4 = RunTraced(db.get(), sql, Oblivious());
  common::ThreadPool::set_max_workers(16);
  Capture w16 = RunTraced(db.get(), sql, Oblivious());
  common::ThreadPool::set_max_workers(0);  // restore the hardware default
  EXPECT_EQ(w1.access, w4.access);
  EXPECT_EQ(w1.access, w16.access);
  EXPECT_EQ(w1.spans, w4.spans);
  EXPECT_EQ(w1.spans, w16.spans);
  EXPECT_EQ(w1.cost_ns, w4.cost_ns);
  EXPECT_EQ(w1.cost_ns, w16.cost_ns);
  EXPECT_EQ(w1.stats, w4.stats);
  EXPECT_EQ(w1.stats, w16.stats);
  ASSERT_EQ(w1.result.rows.size(), w16.result.rows.size());
}

// ---------------------------------------------------------------------------
// Differential contract vs the plain engines, over the PR 6
// selection-vector edge cases.
// ---------------------------------------------------------------------------

/// Oblivious (either engine) must agree with the plain vectorized engine
/// on the result multiset and the row counters, and must pay at least as
/// much simulated cost (strictly more when anything was scanned).
void ExpectDifferentialContract(Database* db, const std::string& sql) {
  Capture plain_vec = RunTraced(db, sql, Plain(ExecEngine::kVectorized));
  Capture plain_row = RunTraced(db, sql, Plain(ExecEngine::kRow));
  Capture obl_vec = RunTraced(db, sql, Oblivious(ExecEngine::kVectorized));
  Capture obl_row = RunTraced(db, sql, Oblivious(ExecEngine::kRow));

  // Plain engines agree exactly (the PR 6 contract, re-pinned here).
  EXPECT_EQ(CanonicalRows(plain_vec.result), CanonicalRows(plain_row.result))
      << sql;

  // Oblivious x {row, vectorized} are bit-identical: same rows in the
  // same order, same stats, same cost.
  ASSERT_EQ(obl_vec.result.rows.size(), obl_row.result.rows.size()) << sql;
  for (size_t i = 0; i < obl_vec.result.rows.size(); ++i) {
    for (size_t c = 0; c < obl_vec.result.rows[i].size(); ++c) {
      EXPECT_TRUE(obl_vec.result.rows[i][c] == obl_row.result.rows[i][c])
          << sql << " row " << i;
    }
  }
  EXPECT_EQ(obl_vec.stats, obl_row.stats) << sql;
  EXPECT_EQ(obl_vec.cost_ns, obl_row.cost_ns) << sql;
  EXPECT_EQ(obl_vec.access, obl_row.access) << sql;

  // Oblivious vs plain: same answer (as a multiset), same row counters,
  // strictly more simulated cost whenever anything was scanned.
  EXPECT_EQ(CanonicalRows(obl_vec.result), CanonicalRows(plain_vec.result))
      << sql;
  EXPECT_EQ(obl_vec.stats.rows_scanned, plain_vec.stats.rows_scanned) << sql;
  EXPECT_EQ(obl_vec.stats.rows_output, plain_vec.stats.rows_output) << sql;
  // On empty inputs both pipelines only pay setup noise, so the
  // direction is only meaningful when something was scanned.
  if (plain_vec.stats.rows_scanned > 0) {
    EXPECT_GT(obl_vec.cost_ns, plain_vec.cost_ns) << sql;
  }
}

TEST(ObliviousDifferential, EmptyTable) {
  auto db = Database::CreateInMemory();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ExpectDifferentialContract(db.get(), "SELECT * FROM t");
  ExpectDifferentialContract(db.get(), "SELECT a, b FROM t WHERE a > 3");
  ExpectDifferentialContract(db.get(), "SELECT count(*), sum(a) FROM t");
  ExpectDifferentialContract(db.get(),
                             "SELECT b, sum(a) FROM t GROUP BY b");
}

TEST(ObliviousDifferential, AllRowsFilteredOut) {
  auto db = Database::CreateInMemory();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(
      db->Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").ok());
  ASSERT_TRUE(db->Execute("CREATE TABLE u (a INTEGER, c VARCHAR)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO u VALUES (1, 'p'), (2, 'q')").ok());
  ExpectDifferentialContract(db.get(), "SELECT * FROM t WHERE a > 100");
  ExpectDifferentialContract(db.get(),
                             "SELECT count(*), sum(a) FROM t WHERE a > 100");
  ExpectDifferentialContract(
      db.get(), "SELECT b, count(*) FROM t WHERE a > 100 GROUP BY b");
  ExpectDifferentialContract(
      db.get(), "SELECT t.b, u.c FROM t, u WHERE t.a = u.a AND t.a > 100");
}

TEST(ObliviousDifferential, PagedTableStraddlingBatches) {
  storage::BlockDevice disk;
  PlainPageStore store(&disk);
  auto db = Database::CreatePaged(&store);
  ASSERT_TRUE(
      db->Execute("CREATE TABLE big (k INTEGER, grp INTEGER, v DOUBLE)").ok());
  std::vector<Row> rows;
  constexpr int kRows = 5000;
  for (int i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i % 7),
                    Value::Double(static_cast<double>(i) * 0.5)});
  }
  ASSERT_TRUE(db->BulkLoad("big", rows).ok());
  ExpectDifferentialContract(db.get(), "SELECT count(*), sum(k) FROM big");
  ExpectDifferentialContract(
      db.get(), "SELECT count(*) FROM big WHERE k >= 2000 AND k < 2100");
  ExpectDifferentialContract(
      db.get(),
      "SELECT grp, count(*), sum(v) FROM big GROUP BY grp ORDER BY grp");
}

TEST(ObliviousDifferential, NullHandling) {
  auto db = Database::CreateInMemory();
  ASSERT_TRUE(
      db->Execute("CREATE TABLE n (a INTEGER, b VARCHAR, c DOUBLE)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO n VALUES "
                          "(1, 'x', 1.5), (NULL, 'x', 2.5), (3, NULL, NULL), "
                          "(NULL, NULL, 4.5), (5, 'y', NULL)")
                  .ok());
  ASSERT_TRUE(db->Execute("CREATE TABLE m (a INTEGER, d VARCHAR)").ok());
  ASSERT_TRUE(
      db->Execute("INSERT INTO m VALUES (1, 'p'), (NULL, 'q'), (5, 'r')")
          .ok());
  ExpectDifferentialContract(db.get(), "SELECT * FROM n WHERE a > 0");
  ExpectDifferentialContract(db.get(), "SELECT * FROM n WHERE a IS NULL");
  ExpectDifferentialContract(
      db.get(), "SELECT count(*), count(a), sum(a), avg(c), min(a) FROM n");
  ExpectDifferentialContract(
      db.get(), "SELECT b, count(*), sum(a) FROM n GROUP BY b ORDER BY count(*)");
  ExpectDifferentialContract(
      db.get(), "SELECT n.a, m.d FROM n, m WHERE n.a = m.a ORDER BY n.a");
  ExpectDifferentialContract(db.get(), "SELECT DISTINCT b FROM n");
}

// ---------------------------------------------------------------------------
// TPC-H: trace equality across size-preserving value scrambles for every
// evaluated query, differential contract against the plain engines, and
// the plain-engine divergence witness.
// ---------------------------------------------------------------------------

/// Scrambles the fixed-width numeric measure columns of the TPC-H
/// tables in place (never the join/group keys, never dates, never
/// variable-length strings), so the stored shape — page layout, row
/// widths, key multiplicity — is byte-compatible while every predicate
/// input changes.
void ScrambleMeasures(Database* db, uint64_t seed) {
  static const std::map<std::string, std::set<std::string>> kMeasures = {
      {"lineitem",
       {"l_quantity", "l_extendedprice", "l_discount", "l_tax"}},
      {"orders", {"o_totalprice"}},
      {"customer", {"c_acctbal"}},
      {"supplier", {"s_acctbal"}},
      {"part", {"p_retailprice"}},
      {"partsupp", {"ps_supplycost"}},
  };
  uint64_t state = seed * 0x9E3779B97F4A7C15ull + 0xBEEFull;
  for (const auto& [table, cols] : kMeasures) {
    auto t = db->GetTable(table);
    ASSERT_TRUE(t.ok()) << table;
    const Schema& schema = (*t)->schema();
    std::vector<size_t> idx;
    for (size_t c = 0; c < schema.size(); ++c) {
      if (cols.count(schema.column(c).name)) idx.push_back(c);
    }
    ASSERT_EQ(idx.size(), cols.size()) << table;
    sim::CostModel scratch;
    uint64_t affected = 0;
    Status st = (*t)->Rewrite(
        [&](Row* row, bool* modified) -> Result<bool> {
          for (size_t c : idx) {
            Value& v = (*row)[c];
            if (v.is_null()) continue;
            if (v.type() == Type::kInt64) {
              v = Value::Int(static_cast<int64_t>(Mix(&state) % 100000));
            } else if (v.type() == Type::kDouble) {
              v = Value::Double(
                  static_cast<double>(Mix(&state) % 1000000) / 997.0);
            }
          }
          *modified = true;
          return true;
        },
        &scratch, &affected);
    ASSERT_TRUE(st.ok()) << table << ": " << st.ToString();
    ASSERT_GT(affected, 0u) << table;
  }
}

class ObliviousTpch : public ::testing::Test {
 protected:
  static constexpr int kScrambles = 2;  // variants beyond the original

  static void SetUpTestSuite() {
    for (int s = 0; s <= kScrambles; ++s) {
      dbs_[s] = LoadVariant(0.001, s);
      // Q2 and Q21 re-execute their correlated subquery obliviously per
      // padded outer row — quadratic in the scale factor — so the
      // property runs them on a smaller same-shape fixture to keep the
      // suite's wall clock bounded.
      small_dbs_[s] = LoadVariant(0.00025, s);
    }
  }

  static Database* LoadVariant(double sf, int scramble) {
    Database* db = Database::CreateInMemory().release();
    tpch::TpchGenerator gen(tpch::TpchConfig{sf, 42});
    auto st = gen.LoadInto(db);
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (scramble > 0) ScrambleMeasures(db, static_cast<uint64_t>(scramble));
    return db;
  }

  static Database* DbFor(int query, int scramble) {
    return (query == 2 || query == 21) ? small_dbs_[scramble]
                                       : dbs_[scramble];
  }

  static Database* dbs_[kScrambles + 1];
  static Database* small_dbs_[kScrambles + 1];
};

Database* ObliviousTpch::dbs_[ObliviousTpch::kScrambles + 1] = {};
Database* ObliviousTpch::small_dbs_[ObliviousTpch::kScrambles + 1] = {};

TEST_F(ObliviousTpch, TraceEqualAcrossScramblesForEveryQuery) {
  for (const auto& query : tpch::Queries()) {
    SCOPED_TRACE("TPC-H Q" + std::to_string(query.number));
    Capture base = RunTraced(DbFor(query.number, 0), query.sql, Oblivious());
    ASSERT_FALSE(base.access.empty());
    for (int s = 1; s <= kScrambles; ++s) {
      Capture got = RunTraced(DbFor(query.number, s), query.sql, Oblivious());
      EXPECT_EQ(got.access_fp, base.access_fp) << "scramble " << s;
      EXPECT_EQ(got.access, base.access) << "scramble " << s;
      EXPECT_EQ(got.spans, base.spans) << "scramble " << s;
      EXPECT_EQ(got.cost_ns, base.cost_ns) << "scramble " << s;
    }
  }
}

TEST_F(ObliviousTpch, EnginesBitIdenticalAndPlainContractHolds) {
  for (const auto& query : tpch::Queries()) {
    SCOPED_TRACE("TPC-H Q" + std::to_string(query.number));
    ExpectDifferentialContract(DbFor(query.number, 0), query.sql);
  }
}

TEST_F(ObliviousTpch, PlainTracesDivergeOnScrambledMeasures) {
  // The witness: on value-scrambled same-shape inputs the plain
  // engines' access traces differ wherever a recorded survivor count
  // depends on a scrambled column. The measure-only scramble (keys,
  // dates and strings untouched, to preserve shape) moves Q6's
  // pushdown band predicates (quantity/discount) and Q18's
  // HAVING sum(l_quantity) subquery — those MUST diverge, proving the
  // harness is sensitive enough to catch a leak. Queries whose
  // predicates read only keys/dates/strings keep identical plain
  // traces under this scramble, and Q19's measure band sits inside a
  // conjunction so selective at SF 0.001 that both value sets strand
  // it at zero survivors.
  std::string diverged;
  std::set<int> must_diverge = {6, 18};
  for (const auto& query : tpch::Queries()) {
    Capture a = RunTraced(dbs_[0], query.sql, Plain());
    Capture b = RunTraced(dbs_[1], query.sql, Plain());
    if (a.access != b.access) {
      diverged += "q" + std::to_string(query.number) + " ";
      must_diverge.erase(query.number);
    }
  }
  EXPECT_TRUE(must_diverge.empty())
      << "measure-predicated queries failed to diverge; saw: " << diverged;
}

TEST_F(ObliviousTpch, WorkerCountInvariance) {
  auto q3 = tpch::GetQuery(3);
  ASSERT_TRUE(q3.ok());
  common::ThreadPool::set_max_workers(1);
  Capture w1 = RunTraced(dbs_[0], (*q3)->sql, Oblivious());
  common::ThreadPool::set_max_workers(4);
  Capture w4 = RunTraced(dbs_[0], (*q3)->sql, Oblivious());
  common::ThreadPool::set_max_workers(16);
  Capture w16 = RunTraced(dbs_[0], (*q3)->sql, Oblivious());
  common::ThreadPool::set_max_workers(0);
  EXPECT_EQ(w1.access, w4.access);
  EXPECT_EQ(w1.access, w16.access);
  EXPECT_EQ(w1.spans, w4.spans);
  EXPECT_EQ(w1.spans, w16.spans);
  EXPECT_EQ(w1.cost_ns, w16.cost_ns);
}

// ---------------------------------------------------------------------------
// Kernel unit tests (the branch-free primitives themselves).
// ---------------------------------------------------------------------------

TEST(ObliviousKernels, BitonicSortSortsAndCountsExchanges) {
  uint64_t state = 99;
  for (size_t n : {1u, 2u, 4u, 8u, 32u, 256u}) {
    std::vector<int64_t> v(n);
    for (auto& x : v) x = static_cast<int64_t>(Mix(&state) % 1000);
    std::vector<int64_t> expect = v;
    std::sort(expect.begin(), expect.end());
    uint64_t exchanges = exec::BitonicSort(
        &v, [](int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); });
    EXPECT_EQ(v, expect) << n;
    EXPECT_EQ(exchanges, exec::BitonicExchangeCount(n)) << n;
  }
}

TEST(ObliviousKernels, NextPow2) {
  EXPECT_EQ(exec::NextPow2(0), 1u);
  EXPECT_EQ(exec::NextPow2(1), 1u);
  EXPECT_EQ(exec::NextPow2(2), 2u);
  EXPECT_EQ(exec::NextPow2(3), 4u);
  EXPECT_EQ(exec::NextPow2(1000), 1024u);
  EXPECT_EQ(exec::NextPow2(1024), 1024u);
}

TEST(ObliviousKernels, MaskedHelpers) {
  std::vector<uint8_t> valid = {1, 0, 1, 1, 0, 1};
  EXPECT_EQ(exec::MaskedCount(valid), 4u);
  exec::MaskedFilterUpdate(&valid, {1, 1, 0, 1, 1, 1});
  EXPECT_EQ(exec::MaskedCount(valid), 3u);  // {1,0,0,1,0,1}
  exec::MaskedLimit(&valid, 2);
  std::vector<uint8_t> expect = {1, 0, 0, 1, 0, 0};
  EXPECT_EQ(valid, expect);
  exec::MaskedLimit(&valid, 0);
  EXPECT_EQ(exec::MaskedCount(valid), 0u);
}

}  // namespace
}  // namespace ironsafe::sql
