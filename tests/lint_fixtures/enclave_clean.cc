// Linted as src/tee/enclave_clean.cc: secure-world code that stays
// inside the enclave boundary. A member named like a printf-family
// function is not host I/O.
#include <string>

#include "common/bytes.h"

namespace ironsafe::tee {
struct Sink {
  void printf(const char*) {}
};
void Ok(Sink& s) { s.printf("inside"); }
}  // namespace ironsafe::tee
