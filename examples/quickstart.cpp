// Quickstart: stand up a full IronSafe deployment, attest it, create a
// policy-protected table, and run a query that returns results together
// with a verifiable proof of compliance.
//
//   build/examples/quickstart

#include <cstdio>

#include "engine/ironsafe.h"
#include "sql/value.h"

using ironsafe::Status;
using ironsafe::engine::IronSafeSystem;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(ironsafe::Result<T> result) {
  Check(result.status());
  return std::move(*result);
}

}  // namespace

int main() {
  // 1. Create the simulated CSA deployment: an SGX host, a TrustZone
  //    storage server with an encrypted+freshness-protected page store,
  //    and a trusted monitor in its own enclave.
  IronSafeSystem::Options options;
  options.csa.scale_factor = 0.001;
  auto system = Check(IronSafeSystem::Create(options));

  // 2. Bootstrap = remote attestation of both engines (Figure 4 of the
  //    paper). After this the monitor knows the deployment is genuine.
  Check(system->Bootstrap());
  std::printf("deployment attested: host=%s storage=%s\n",
              system->monitor()->host_attested() ? "yes" : "no",
              system->monitor()->storage_attested() ? "yes" : "no");

  system->set_current_date(*ironsafe::sql::ParseDate("1997-06-01"));

  // 3. Register parties. The airline (producer) owns the data; the hotel
  //    chain (consumer) may only read unexpired records.
  system->RegisterClient("airline");
  system->RegisterClient("hotel");

  Check(system->CreateProtectedTable(
      "airline",
      "CREATE TABLE arrivals (passenger VARCHAR, flight VARCHAR, "
      "arrival DATE)",
      "read ::= sessionKeyIs(airline) | sessionKeyIs(hotel) & "
      "le(T, TIMESTAMP)\n"
      "write ::= sessionKeyIs(airline)\n",
      /*with_expiry=*/true, /*with_reuse=*/false));

  // 4. The airline inserts records with per-record retention deadlines.
  Check(system
            ->Execute("airline",
                      "INSERT INTO arrivals (passenger, flight, arrival) "
                      "VALUES ('c. doe', 'IS-042', '1997-06-02'), "
                      "('e. roe', 'IS-100', '1997-06-03')",
                      "", /*expiry=*/*ironsafe::sql::ParseDate("1999-01-01"))
            .status());
  Check(system
            ->Execute("airline",
                      "INSERT INTO arrivals (passenger, flight, arrival) "
                      "VALUES ('old record', 'IS-001', '1995-01-01')",
                      "", /*expiry=*/*ironsafe::sql::ParseDate("1996-01-01"))
            .status());

  // 5. The hotel queries arrivals; the monitor rewrites the query so
  //    expired records are invisible, offloads the filter to the storage
  //    engine, and signs a proof of compliance.
  auto result = Check(system->Execute(
      "hotel", "SELECT passenger, flight FROM arrivals ORDER BY passenger",
      "exec ::= storageLocIs(eu-west-1)"));

  std::printf("\nhotel sees %zu arrival(s):\n", result.result.rows.size());
  std::printf("%s", result.result.ToString().c_str());
  std::printf("\nrewritten query: %s\n", result.rewritten_sql.c_str());
  std::printf("offloaded to storage: %s\n", result.offloaded ? "yes" : "no");
  std::printf("simulated latency: %.3f ms (monitor %.3f + execution %.3f)\n",
              static_cast<double>(result.total_ns()) / 1e6,
              static_cast<double>(result.monitor_ns) / 1e6,
              static_cast<double>(result.execution_ns) / 1e6);

  // 6. Anyone holding the monitor's public key can verify the proof.
  bool proof_ok = ironsafe::monitor::TrustedMonitor::VerifyProof(
      result.proof, system->monitor()->public_key());
  std::printf("proof of compliance verifies: %s\n", proof_ok ? "yes" : "no");
  return proof_ok ? 0 : 1;
}
