#ifndef IRONSAFE_SIM_FAULT_H_
#define IRONSAFE_SIM_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/random.h"

namespace ironsafe::sim {

/// Deterministic, process-wide fault injection.
///
/// Components thread named *injection sites* through their failure-prone
/// paths (`FaultAt("net.send.drop")`, ...); tests arm *triggers* against
/// those sites and the component simulates the fault — a dropped frame, a
/// flipped bit, a stale RPMB counter — exactly where the real failure
/// would bite. Two trigger kinds cover the reproducibility spectrum:
///
///   ArmNth(site, n [, count])   fire on the n-th occurrence of the site
///                               after arming (then `count-1` more) —
///                               bit-reproducible, for regression tests.
///   ArmProbability(site, p, s)  fire with probability `p` from a PRNG
///                               seeded with `s` — seed-sweepable chaos,
///                               for the CI fault-seed matrix.
///
/// Determinism contract (docs/FAULT_INJECTION.md): with the registry
/// disabled the instrumented code paths are byte-for-byte the code paths
/// of a build without injection — no charges, no counters, no state.
/// With triggers armed, the fire decisions depend only on (arming, seed,
/// occurrence order); sites reached concurrently by morsel workers may
/// see a schedule-dependent *interleaving*, but the number of fires and
/// the recovery work are schedule-independent, so merged cost totals and
/// query results stay bit-identical across worker counts.
///
/// The site catalog lives in docs/FAULT_INJECTION.md; the canonical site
/// names are the `fault_site::` constants below.
struct FaultHit {
  /// Deterministic payload for the injected fault (which byte to flip,
  /// how many extra EPC faults to charge, ...). Derived from the trigger:
  /// ArmNth's explicit `param`, or the probability trigger's PRNG.
  uint64_t param = 0;
};

class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Master switch. Off (the default) is the zero-overhead state: every
  /// site check is a single relaxed atomic load.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fires on the `nth` occurrence of `site` counted from this call
  /// (1-based), and on the following `count - 1` occurrences. `param`
  /// seeds FaultHit::param (the i-th fire of the trigger gets param + i).
  void ArmNth(std::string_view site, uint64_t nth, uint64_t count = 1,
              uint64_t param = 0);

  /// Fires each occurrence of `site` with probability `p`, decided by a
  /// dedicated PRNG seeded with `seed` (also the source of the params).
  void ArmProbability(std::string_view site, double p, uint64_t seed);

  /// Clears every trigger and all occurrence/fire statistics. Does not
  /// change the enabled flag.
  void Reset();

  /// The injection-site entry point: counts the occurrence and evaluates
  /// the site's triggers. Only call when enabled() — use FaultAt().
  std::optional<FaultHit> Fire(std::string_view site);

  // ---- Statistics (for tests and reports) ----

  /// Occurrences of `site` observed while enabled (fired or not).
  uint64_t occurrences(std::string_view site) const;
  /// How many of those occurrences fired a fault.
  uint64_t fired(std::string_view site) const;
  /// Name-sorted (site, fired) pairs for every site that ever fired.
  std::vector<std::pair<std::string, uint64_t>> FiredSnapshot() const;

 private:
  struct Trigger {
    uint64_t fire_at = 0;    ///< occurrence index of the first fire; 0 = probability mode
    uint64_t remaining = 0;  ///< fires left (nth mode)
    uint64_t param = 0;
    double probability = 0;  ///< probability mode
    Random rng{0};
  };
  struct SiteState {
    uint64_t occurrences = 0;
    uint64_t fired = 0;
    std::vector<Trigger> triggers;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// The one-liner components use at their injection sites. Disabled
/// registry -> one relaxed load, no allocation, no lock.
inline std::optional<FaultHit> FaultAt(std::string_view site) {
  FaultRegistry& registry = FaultRegistry::Global();
  if (!registry.enabled()) return std::nullopt;
  return registry.Fire(site);
}

/// Test-scope guard: enables injection for the scope and leaves the
/// registry disabled and empty on exit, so tests cannot leak triggers
/// into each other.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() {
    FaultRegistry::Global().Reset();
    FaultRegistry::Global().set_enabled(true);
  }
  ~ScopedFaultInjection() {
    FaultRegistry::Global().Reset();
    FaultRegistry::Global().set_enabled(false);
  }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// Canonical injection-site names. One constant per site keeps arming
/// code and injection points in sync; the behavioural contract of each
/// site is catalogued in docs/FAULT_INJECTION.md.
namespace fault_site {
/// SecureChannel::Send — the sealed frame is lost before transmission
/// commits; send state does not advance (retryable with a plain re-send).
inline constexpr std::string_view kNetSendDrop = "net.send.drop";
/// SecureChannel::Send — one frame byte flips in transit after the send
/// committed; the receiver rejects and the channel needs a re-handshake.
inline constexpr std::string_view kNetSendCorrupt = "net.send.corrupt";
/// SecureChannel::Receive — the adversary substitutes the previously
/// accepted frame for the incoming one (replay).
inline constexpr std::string_view kNetRecvReplay = "net.recv.replay";
/// RpmbClient write path — the client presents a stale write counter
/// (device reboot / lost ack), which the device must reject as replay.
inline constexpr std::string_view kRpmbCounterRollback =
    "tee.rpmb.counter_rollback";
/// RpmbClient write path — one byte of the write MAC flips in the frame.
inline constexpr std::string_view kRpmbMacCorrupt = "tee.rpmb.mac_corrupt";
/// SgxEnclave::EnterExit — the ecall aborts (AEX storm / EPC pressure).
inline constexpr std::string_view kSgxEcallFail = "tee.sgx.ecall_fail";
/// SgxEnclave::TouchMemory — a transient EPC-pressure spike charges
/// extra page faults (param % 64 + 1 of them).
inline constexpr std::string_view kSgxEpcSpike = "tee.sgx.epc_spike";
/// SecureStore::ReadPage — one byte of the on-disk frame flips between
/// the device and the verifier (transient media/DMA error).
inline constexpr std::string_view kStoreReadBitflip =
    "securestore.read.bitflip";
/// CsaSystem::RunSplit — the storage node goes down before a fragment
/// executes; the engine must degrade to host-side execution.
inline constexpr std::string_view kEngineStorageDown = "engine.storage.down";
/// QueryService dispatch — the client's session drops while its statement
/// waits in the scheduler; queued work completes with kUnavailable and
/// the session is closed (keys zeroized).
inline constexpr std::string_view kServerSessionDrop = "server.session.drop";
/// QueryService::Submit — the admission controller rejects as if the
/// bounded queue were full; clients see retryable kResourceExhausted.
inline constexpr std::string_view kServerAdmissionOverflow =
    "server.admission.overflow";
/// Pipelined QueryService, response streaming — the session drops while
/// its sealed response is being delivered chunk by chunk (param picks
/// the chunk). The statement *executed* but its result never arrived, so
/// the completion is kUnavailable and the session closes (keys
/// zeroized); read-only statements recover by reopen + resubmit.
inline constexpr std::string_view kServerMidstreamDrop =
    "server.session.midstream_drop";
/// Pipelined QueryService, response streaming — the client stalls its
/// credit grants (param scales the extra stall), so delivery blocks on
/// flow control. A latency fault only: the statement still completes OK
/// and the stall time is accounted in the completion and counters.
inline constexpr std::string_view kServerStreamStall = "server.stream.stall";
/// ShardedCsaFleet — the shard group's currently selected storage node
/// goes down before it executes a fragment (heartbeat timeout). The
/// fleet fails over to the group's next live replica and re-routes every
/// remaining fragment of the group there; rows are bit-identical because
/// replicas hold identical partitions. With every replica of a group
/// down, the query fails kUnavailable.
inline constexpr std::string_view kDistShardDown = "dist.shard.down";
/// ShardedCsaFleet fragment shipping — one byte of the sealed result
/// frame flips in transit (param picks the byte). The host end rejects
/// the frame, the per-shard channel is re-keyed (monitor-style session
/// key distribution) and the fragment is re-sent.
inline constexpr std::string_view kDistFragmentCorrupt =
    "dist.fragment.corrupt";
}  // namespace fault_site

}  // namespace ironsafe::sim

#endif  // IRONSAFE_SIM_FAULT_H_
