#include "net/wire.h"

namespace ironsafe::net {

Bytes SerializeResult(const sql::QueryResult& result) {
  Bytes out;
  PutU32(&out, static_cast<uint32_t>(result.schema.size()));
  for (const sql::Column& c : result.schema.columns()) {
    PutLengthPrefixed(&out, c.name);
    out.push_back(static_cast<uint8_t>(c.type));
  }
  PutU64(&out, result.rows.size());
  for (const sql::Row& row : result.rows) {
    sql::SerializeRow(row, &out);
  }
  return out;
}

Result<sql::QueryResult> DeserializeResult(const Bytes& wire) {
  ByteReader r(wire);
  sql::QueryResult result;
  ASSIGN_OR_RETURN(uint32_t ncols, r.ReadU32());
  if (ncols > 4096) return Status::Corruption("implausible column count");
  for (uint32_t i = 0; i < ncols; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.ReadLengthPrefixedString());
    ASSIGN_OR_RETURN(Bytes type_tag, r.ReadBytes(1));
    result.schema.AddColumn(
        sql::Column{std::move(name), static_cast<sql::Type>(type_tag[0])});
  }
  ASSIGN_OR_RETURN(uint64_t nrows, r.ReadU64());
  // Each serialized row needs at least its 2-byte arity header; a count
  // beyond that is corrupt and must not drive an allocation.
  if (nrows > r.remaining() / 2) {
    return Status::Corruption("row count exceeds record batch size");
  }
  result.rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    ASSIGN_OR_RETURN(sql::Row row, sql::DeserializeRow(&r));
    if (row.size() != ncols) {
      return Status::Corruption("row arity mismatch in record batch");
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace ironsafe::net
