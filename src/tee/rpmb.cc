#include "tee/rpmb.h"

#include "crypto/hmac.h"
#include "obs/metrics.h"

namespace ironsafe::tee {

namespace {
Bytes WriteFrame(uint32_t slot, uint32_t counter, const Bytes& data) {
  Bytes m;
  PutU32(&m, slot);
  PutU32(&m, counter);
  Append(&m, data);
  return m;
}

Bytes ReadFrame(uint32_t slot, uint32_t counter, const Bytes& data,
                const Bytes& nonce) {
  Bytes m = WriteFrame(slot, counter, data);
  Append(&m, nonce);
  return m;
}
}  // namespace

Status RpmbDevice::ProgramKey(const Bytes& key) {
  if (!key_.empty()) {
    return Status::FailedPrecondition("RPMB key already programmed");
  }
  if (key.empty()) return Status::InvalidArgument("empty RPMB key");
  key_ = key;
  return Status::OK();
}

Bytes RpmbDevice::MakeWriteMac(const Bytes& key, uint32_t slot,
                               uint32_t counter, const Bytes& data) {
  return crypto::HmacSha256(key, WriteFrame(slot, counter, data));
}

Bytes RpmbDevice::MakeReadMac(const Bytes& key, uint32_t slot,
                              uint32_t counter, const Bytes& data,
                              const Bytes& nonce) {
  return crypto::HmacSha256(key, ReadFrame(slot, counter, data, nonce));
}

Status RpmbDevice::AuthenticatedWrite(uint32_t slot, const Bytes& data,
                                      uint32_t counter, const Bytes& mac) {
  if (key_.empty()) {
    return Status::FailedPrecondition("RPMB key not programmed");
  }
  if (slot >= kNumSlots) return Status::InvalidArgument("RPMB slot OOB");
  if (data.size() > kSlotSize) {
    return Status::InvalidArgument("RPMB data exceeds slot size");
  }
  if (counter != write_counter_) {
    return Status::Unauthenticated("RPMB write counter mismatch (replay?)");
  }
  Bytes expected = MakeWriteMac(key_, slot, counter, data);
  if (!ConstantTimeEqual(expected, mac)) {
    return Status::Unauthenticated("RPMB write MAC invalid");
  }
  slots_[slot] = data;
  ++write_counter_;
  IRONSAFE_COUNTER_ADD("tee.rpmb.writes", 1);
  return Status::OK();
}

Result<RpmbDevice::ReadResponse> RpmbDevice::Read(uint32_t slot,
                                                  const Bytes& nonce) const {
  if (key_.empty()) {
    return Status::FailedPrecondition("RPMB key not programmed");
  }
  if (slot >= kNumSlots) return Status::InvalidArgument("RPMB slot OOB");
  ReadResponse resp;
  auto it = slots_.find(slot);
  if (it != slots_.end()) resp.data = it->second;
  resp.counter = write_counter_;
  resp.mac = MakeReadMac(key_, slot, resp.counter, resp.data, nonce);
  IRONSAFE_COUNTER_ADD("tee.rpmb.reads", 1);
  return resp;
}

Status RpmbClient::Provision() {
  if (device_->key_programmed()) return Status::OK();
  return device_->ProgramKey(key_);
}

Status RpmbClient::Write(uint32_t slot, const Bytes& data) {
  uint32_t counter = device_->write_counter();
  Bytes mac = RpmbDevice::MakeWriteMac(key_, slot, counter, data);
  return device_->AuthenticatedWrite(slot, data, counter, mac);
}

Result<Bytes> RpmbClient::Read(uint32_t slot, const Bytes& nonce) {
  ASSIGN_OR_RETURN(RpmbDevice::ReadResponse resp, device_->Read(slot, nonce));
  Bytes expected =
      RpmbDevice::MakeReadMac(key_, slot, resp.counter, resp.data, nonce);
  if (!ConstantTimeEqual(expected, resp.mac)) {
    return Status::Unauthenticated("RPMB read response MAC invalid");
  }
  return resp.data;
}

}  // namespace ironsafe::tee
