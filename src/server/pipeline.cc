#include "server/pipeline.h"

#include <algorithm>

namespace ironsafe::server {

void PipelineStage::Enter(uint64_t token) {
  ++entered_;
  if (busy_ < slots_) {
    Start(token);
  } else {
    waiting_.push_back(token);
  }
}

void PipelineStage::Start(uint64_t token) {
  ++busy_;
  sim::SimNanos start = events_->now();
  sim::SimNanos duration = runner_(token, start);
  events_->Post(start + duration, [this, token](sim::SimNanos now) {
    // Free the slot and start the successor before routing this job
    // onward, so a stage stays saturated even when `done` re-enters it.
    --busy_;
    if (!waiting_.empty()) {
      uint64_t next = waiting_.front();
      waiting_.pop_front();
      Start(next);
    }
    done_(token, now);
  });
}

StreamPlan PlanStream(size_t frame_bytes, const StreamOptions& options,
                      const sim::HardwareProfile& profile,
                      sim::SimNanos extra_stall_ns) {
  StreamPlan plan;
  size_t chunk = std::max<size_t>(1, options.chunk_bytes);
  size_t chunks = frame_bytes == 0 ? 1 : (frame_bytes + chunk - 1) / chunk;
  plan.chunks = chunks;
  plan.delivery_ns.reserve(chunks);

  sim::CostModel link(profile);
  std::vector<sim::SimNanos> credit_back;  // return time of chunk i's credit
  credit_back.reserve(chunks);
  sim::SimNanos link_free = 0;
  for (size_t i = 0; i < chunks; ++i) {
    size_t bytes = i + 1 == chunks ? frame_bytes - i * chunk : chunk;
    if (frame_bytes == 0) bytes = 0;
    sim::SimNanos before = link.elapsed_ns();
    link.ChargeNetwork(bytes);
    sim::SimNanos transfer = link.elapsed_ns() - before;

    sim::SimNanos start = link_free;
    if (options.credits > 0 && i >= options.credits) {
      sim::SimNanos credit = credit_back[i - options.credits];
      if (credit > start) {
        plan.stall_ns += credit - start;
        start = credit;
      }
    }
    sim::SimNanos delivered = start + transfer;
    link_free = delivered;
    credit_back.push_back(delivered + options.credit_rtt_ns + extra_stall_ns);
    plan.delivery_ns.push_back(delivered);
  }
  return plan;
}

}  // namespace ironsafe::server
