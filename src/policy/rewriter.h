#ifndef IRONSAFE_POLICY_REWRITER_H_
#define IRONSAFE_POLICY_REWRITER_H_

#include <optional>

#include "common/result.h"
#include "policy/interpreter.h"
#include "sql/ast.h"

namespace ironsafe::policy {

/// Query rewriting performed by the trusted monitor (§4.2 "The trusted
/// monitor rewrites the client query to be policy compliant" and the
/// §4.3 anti-pattern mechanics).

/// ANDs `filter` into the statement's WHERE clause. For SELECTs the
/// filter's hidden columns (_expiry / _reuse) resolve against the
/// policy-protected table in FROM; DELETE/UPDATE get the same treatment.
Status InjectRowFilter(sql::SelectStmt* stmt, const sql::Expr& filter);
Status InjectRowFilter(sql::DeleteStmt* stmt, const sql::Expr& filter);
Status InjectRowFilter(sql::UpdateStmt* stmt, const sql::Expr& filter);

/// Appends the hidden policy columns to a CREATE TABLE (expiry as DATE,
/// reuse map as INTEGER bitmap).
void AddPolicyColumns(sql::CreateTableStmt* stmt, bool with_expiry,
                      bool with_reuse);

/// Extends every INSERT row with values for the hidden columns. The
/// expiry/reuse values come from the data producer's request; when the
/// table has a hidden column the value must be provided.
Status ExtendInsert(sql::InsertStmt* stmt, bool with_expiry,
                    std::optional<int64_t> expiry_days, bool with_reuse,
                    std::optional<int64_t> reuse_map);

}  // namespace ironsafe::policy

#endif  // IRONSAFE_POLICY_REWRITER_H_
