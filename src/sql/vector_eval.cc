#include "sql/vector_eval.h"

#include <algorithm>

namespace ironsafe::sql {

namespace {

vec::CmpOp FlipCmp(vec::CmpOp op) {
  switch (op) {
    case vec::CmpOp::kLt:
      return vec::CmpOp::kGt;
    case vec::CmpOp::kLe:
      return vec::CmpOp::kGe;
    case vec::CmpOp::kGt:
      return vec::CmpOp::kLt;
    case vec::CmpOp::kGe:
      return vec::CmpOp::kLe;
    default:
      return op;
  }
}

bool CmpOpOf(BinOp op, vec::CmpOp* out) {
  switch (op) {
    case BinOp::kEq:
      *out = vec::CmpOp::kEq;
      return true;
    case BinOp::kNe:
      *out = vec::CmpOp::kNe;
      return true;
    case BinOp::kLt:
      *out = vec::CmpOp::kLt;
      return true;
    case BinOp::kLe:
      *out = vec::CmpOp::kLe;
      return true;
    case BinOp::kGt:
      *out = vec::CmpOp::kGt;
      return true;
    case BinOp::kGe:
      *out = vec::CmpOp::kGe;
      return true;
    default:
      return false;
  }
}

bool IsIntLike(Type t) { return t == Type::kInt64 || t == Type::kDate; }

}  // namespace

void AppendNormalizedKey(const VecCol& c, size_t i, Bytes* key) {
  switch (c.kind) {
    case VecCol::Kind::kI64:
      vec::AppendKeyI64(key, c.nums[i]);
      return;
    case VecCol::Kind::kF64:
      vec::AppendKeyF64(key, vec::F64FromBits(c.nums[i]));
      return;
    case VecCol::Kind::kDate:
      vec::AppendKeyDate(key, c.nums[i]);
      return;
    case VecCol::Kind::kGeneric: {
      const Value& v = c.vals[i];
      if (v.IsNumeric() && v.type() != Type::kDate) {
        vec::AppendKeyF64(key, v.AsDouble());
      } else {
        v.Serialize(key);
      }
      return;
    }
  }
}

int VectorEvaluator::FastColumn(const Expr& e) const {
  if (e.kind != ExprKind::kColumn) return -1;
  int idx = schema_->Find(e.column_name);
  return idx >= 0 ? idx : -1;
}

Status VectorEvaluator::Filter(const Expr& pred, const ColumnBatch& batch,
                               SelVec* sel) {
  if (sel->empty()) return Status::OK();
  ASSIGN_OR_RETURN(bool fast, TryFilterFast(pred, batch, sel));
  if (fast) return Status::OK();
  return FilterFallback(pred, batch, sel);
}

Result<bool> VectorEvaluator::TryFilterCmp(const Expr& col_e, vec::CmpOp op,
                                           const Value& lit,
                                           const ColumnBatch& batch,
                                           SelVec* sel) {
  int idx = FastColumn(col_e);
  if (idx < 0) return false;
  const ColumnBatch::Col& c = batch.col(idx);
  if (!c.uniform() || c.has_null) return false;
  if (lit.is_null()) {
    // Comparison with NULL is false for every row.
    sel->clear();
    return true;
  }
  auto tag = static_cast<Type>(c.first_tag());
  size_t n = sel->size();
  if (tag == Type::kString && lit.type() == Type::kString) {
    n = vec::FilterStr(c.strs.data(), op, lit.AsString(), sel->data(), n);
  } else if (IsIntLike(tag) && IsIntLike(lit.type())) {
    n = vec::FilterI64(c.nums.data(), op, lit.AsInt(), sel->data(), n);
  } else if (IsIntLike(tag) && lit.type() == Type::kDouble) {
    n = vec::FilterI64AsF64(c.nums.data(), op, lit.AsDouble(), sel->data(), n);
  } else if (tag == Type::kDouble && lit.IsNumeric() &&
             lit.type() != Type::kDate) {
    n = vec::FilterF64(c.nums.data(), op, lit.AsDouble(), sel->data(), n);
  } else {
    // Cross-type string/number/bool comparisons take the scalar path.
    return false;
  }
  sel->resize(n);
  return true;
}

Result<bool> VectorEvaluator::TryFilterFast(const Expr& pred,
                                            const ColumnBatch& batch,
                                            SelVec* sel) {
  switch (pred.kind) {
    case ExprKind::kBinary: {
      if (pred.bin_op == BinOp::kAnd) {
        RETURN_IF_ERROR(Filter(*pred.left, batch, sel));
        RETURN_IF_ERROR(Filter(*pred.right, batch, sel));
        return true;
      }
      vec::CmpOp op;
      if (!CmpOpOf(pred.bin_op, &op)) return false;
      if (pred.left->kind == ExprKind::kColumn &&
          pred.right->kind == ExprKind::kLiteral) {
        return TryFilterCmp(*pred.left, op, pred.right->literal, batch, sel);
      }
      if (pred.left->kind == ExprKind::kLiteral &&
          pred.right->kind == ExprKind::kColumn) {
        return TryFilterCmp(*pred.right, FlipCmp(op), pred.left->literal,
                            batch, sel);
      }
      return false;
    }
    case ExprKind::kBetween: {
      if (pred.args.size() != 2 ||
          pred.args[0]->kind != ExprKind::kLiteral ||
          pred.args[1]->kind != ExprKind::kLiteral) {
        return false;
      }
      int idx = FastColumn(*pred.left);
      if (idx < 0) return false;
      const ColumnBatch::Col& c = batch.col(idx);
      if (!c.uniform() || c.has_null) return false;
      const Value& lo = pred.args[0]->literal;
      const Value& hi = pred.args[1]->literal;
      if (lo.is_null() || hi.is_null()) {
        sel->clear();
        return true;
      }
      auto tag = static_cast<Type>(c.first_tag());
      size_t n = sel->size();
      if (IsIntLike(tag) && IsIntLike(lo.type()) && IsIntLike(hi.type())) {
        n = vec::FilterBetweenI64(c.nums.data(), lo.AsInt(), hi.AsInt(),
                                  sel->data(), n);
      } else if (tag == Type::kDouble && lo.IsNumeric() && hi.IsNumeric() &&
                 lo.type() != Type::kDate && hi.type() != Type::kDate) {
        n = vec::FilterBetweenF64(c.nums.data(), lo.AsDouble(), hi.AsDouble(),
                                  sel->data(), n);
      } else {
        // Mixed int/double bounds: run as two comparison kernels.
        ASSIGN_OR_RETURN(
            bool ok1, TryFilterCmp(*pred.left, vec::CmpOp::kGe, lo, batch, sel));
        if (!ok1) return false;
        ASSIGN_OR_RETURN(
            bool ok2, TryFilterCmp(*pred.left, vec::CmpOp::kLe, hi, batch, sel));
        return ok2;
      }
      sel->resize(n);
      return true;
    }
    case ExprKind::kLike: {
      if (pred.args.empty() || pred.args[0]->kind != ExprKind::kLiteral ||
          pred.args[0]->literal.type() != Type::kString) {
        return false;
      }
      int idx = FastColumn(*pred.left);
      if (idx < 0) return false;
      const ColumnBatch::Col& c = batch.col(idx);
      if (!c.UniformTag(static_cast<uint8_t>(Type::kString))) return false;
      const std::string& pat = pred.args[0]->literal.AsString();
      size_t out = 0;
      for (uint32_t i : *sel) {
        bool m = LikeMatch(c.strs[i], pat);
        if (pred.negated ? !m : m) (*sel)[out++] = i;
      }
      sel->resize(out);
      return true;
    }
    case ExprKind::kIsNull: {
      int idx = FastColumn(*pred.left);
      if (idx < 0) return false;
      const ColumnBatch::Col& c = batch.col(idx);
      if (!c.has_null) {
        // No row is NULL: IS NULL drops everything, IS NOT NULL keeps all.
        if (!pred.negated) sel->clear();
        return true;
      }
      size_t out = 0;
      for (uint32_t i : *sel) {
        bool is_null = c.tags[i] == static_cast<uint8_t>(Type::kNull);
        if (pred.negated ? !is_null : is_null) (*sel)[out++] = i;
      }
      sel->resize(out);
      return true;
    }
    default:
      return false;
  }
}

Status VectorEvaluator::FilterFallback(const Expr& pred,
                                       const ColumnBatch& batch,
                                       SelVec* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    batch.MaterializeRow(i, &scratch_);
    EvalScope scope{schema_, &scratch_, outer_};
    ASSIGN_OR_RETURN(bool keep, eval_->EvalBool(pred, scope));
    if (keep) (*sel)[out++] = i;
  }
  sel->resize(out);
  return Status::OK();
}

Status VectorEvaluator::Eval(const Expr& e, const ColumnBatch& batch,
                             const SelVec& sel, VecCol* out) {
  out->kind = VecCol::Kind::kGeneric;
  out->nums.clear();
  out->vals.clear();
  ASSIGN_OR_RETURN(bool fast, TryEvalFast(e, batch, sel, out));
  if (fast) return Status::OK();
  return EvalFallback(e, batch, sel, out);
}

Result<bool> VectorEvaluator::TryEvalFast(const Expr& e,
                                          const ColumnBatch& batch,
                                          const SelVec& sel, VecCol* out) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      const Value& v = e.literal;
      size_t n = sel.size();
      if (v.type() == Type::kInt64) {
        out->kind = VecCol::Kind::kI64;
        out->nums.assign(n, v.AsInt());
      } else if (v.type() == Type::kDouble) {
        out->kind = VecCol::Kind::kF64;
        out->nums.assign(n, vec::BitsFromF64(v.AsDouble()));
      } else if (v.type() == Type::kDate) {
        out->kind = VecCol::Kind::kDate;
        out->nums.assign(n, v.AsInt());
      } else {
        out->kind = VecCol::Kind::kGeneric;
        out->vals.assign(n, v);
      }
      return true;
    }
    case ExprKind::kColumn: {
      int idx = FastColumn(e);
      if (idx < 0) return false;
      const ColumnBatch::Col& c = batch.col(idx);
      if (c.uniform() && !c.has_null) {
        auto tag = static_cast<Type>(c.first_tag());
        if (tag == Type::kInt64 || tag == Type::kDouble ||
            tag == Type::kDate) {
          out->kind = tag == Type::kInt64   ? VecCol::Kind::kI64
                      : tag == Type::kDouble ? VecCol::Kind::kF64
                                             : VecCol::Kind::kDate;
          out->nums.reserve(sel.size());
          for (uint32_t i : sel) out->nums.push_back(c.nums[i]);
          return true;
        }
      }
      out->kind = VecCol::Kind::kGeneric;
      out->vals.reserve(sel.size());
      for (uint32_t i : sel) out->vals.push_back(batch.GetValue(idx, i));
      return true;
    }
    case ExprKind::kBinary: {
      vec::ArithOp op;
      switch (e.bin_op) {
        case BinOp::kAdd:
          op = vec::ArithOp::kAdd;
          break;
        case BinOp::kSub:
          op = vec::ArithOp::kSub;
          break;
        case BinOp::kMul:
          op = vec::ArithOp::kMul;
          break;
        default:
          return false;  // div/mod/compare/bool ops: scalar path
      }
      VecCol l, r;
      RETURN_IF_ERROR(Eval(*e.left, batch, sel, &l));
      if (l.kind == VecCol::Kind::kGeneric || l.kind == VecCol::Kind::kDate) {
        return false;
      }
      RETURN_IF_ERROR(Eval(*e.right, batch, sel, &r));
      if (r.kind == VecCol::Kind::kGeneric || r.kind == VecCol::Kind::kDate) {
        return false;
      }
      size_t n = sel.size();
      // Positional combine (children are already selection-compacted).
      if (iota_.size() < n) {
        size_t old = iota_.size();
        iota_.resize(n);
        for (size_t i = old; i < n; ++i) iota_[i] = static_cast<uint32_t>(i);
      }
      out->nums.resize(n);
      if (l.kind == VecCol::Kind::kI64 && r.kind == VecCol::Kind::kI64) {
        out->kind = VecCol::Kind::kI64;
        vec::ArithI64Cols(l.nums.data(), op, r.nums.data(), iota_.data(), n,
                          out->nums.data());
        return true;
      }
      // Promote any int side to doubles, then combine as f64.
      auto promote = [](VecCol* c) {
        if (c->kind == VecCol::Kind::kI64) {
          for (int64_t& v : c->nums) {
            v = vec::BitsFromF64(static_cast<double>(v));
          }
          c->kind = VecCol::Kind::kF64;
        }
      };
      promote(&l);
      promote(&r);
      out->kind = VecCol::Kind::kF64;
      vec::ArithF64Cols(l.nums.data(), op, r.nums.data(), iota_.data(), n,
                        out->nums.data());
      return true;
    }
    case ExprKind::kFunction: {
      if (e.func_name != "year" && e.func_name != "month" &&
          e.func_name != "day") {
        return false;
      }
      if (e.args.size() != 1) return false;
      int idx = FastColumn(*e.args[0]);
      if (idx < 0) return false;
      const ColumnBatch::Col& c = batch.col(idx);
      if (!c.UniformTag(static_cast<uint8_t>(Type::kDate))) return false;
      out->kind = VecCol::Kind::kI64;
      out->nums.reserve(sel.size());
      if (e.func_name == "year") {
        for (uint32_t i : sel) out->nums.push_back(DateYear(c.nums[i]));
      } else if (e.func_name == "month") {
        for (uint32_t i : sel) out->nums.push_back(DateMonth(c.nums[i]));
      } else {
        for (uint32_t i : sel) out->nums.push_back(DateDay(c.nums[i]));
      }
      return true;
    }
    default:
      return false;
  }
}

Status VectorEvaluator::EvalFallback(const Expr& e, const ColumnBatch& batch,
                                     const SelVec& sel, VecCol* out) {
  out->kind = VecCol::Kind::kGeneric;
  out->vals.clear();
  out->vals.reserve(sel.size());
  for (uint32_t i : sel) {
    batch.MaterializeRow(i, &scratch_);
    EvalScope scope{schema_, &scratch_, outer_};
    ASSIGN_OR_RETURN(Value v, eval_->Eval(e, scope));
    out->vals.push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace ironsafe::sql
