// Acceptance suite for the sharded multi-node CSA fleet (src/dist,
// docs/SHARDING.md). The tentpole invariants:
//   - result rows are bit-identical across shard counts (1/2/4/8) AND
//     real worker counts (1/4/16) for every evaluated TPC-H query;
//   - cost totals, stats and default traces are bit-identical across
//     worker counts and reruns for a fixed shard count;
//   - killing any storage node mid-query fails over to its replica and
//     returns bit-identical rows;
//   - scan/aggregate-heavy queries get faster (simulated elapsed) as the
//     shard count grows.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dist/fleet.h"
#include "dist/planner.h"
#include "engine/csa_system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/table_spec.h"

namespace ironsafe::dist {
namespace {

namespace site = sim::fault_site;
using sim::FaultRegistry;
using sim::ScopedFaultInjection;

constexpr double kScaleFactor = 0.001;

/// Exact serialization, order included: sharding must not even reorder
/// rows relative to the single-shard fleet.
std::string ExactRows(const sql::QueryResult& result) {
  std::string out;
  for (const auto& row : result.rows) {
    for (const auto& v : row) {
      out += v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

/// Order-free, 3-decimal canonical form for comparisons where float
/// summation order legitimately differs (partial aggregation).
std::string Canonical(const sql::QueryResult& result) {
  std::vector<std::string> lines;
  for (const auto& row : result.rows) {
    std::string line;
    for (const auto& v : row) {
      if (v.type() == sql::Type::kDouble) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", v.AsDouble());
        line += buf;
      } else {
        line += v.ToString();
      }
      line += "|";
    }
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (auto& l : lines) out += l + "\n";
  return out;
}

Status LoadTpch(sql::Database* db) {
  tpch::TpchGenerator gen(tpch::TpchConfig{kScaleFactor, 42});
  return gen.LoadInto(db);
}

/// One fleet per shard count, shared across the suite (building 30
/// secure stores is the expensive part of this file). The registry is
/// heap-allocated and never freed so the fleets stay reachable at exit
/// (LeakSanitizer treats reachable-from-global as intentional, matching
/// the other static fixtures in tests/).
class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleets_ = new std::map<int, ShardedCsaFleet*>();
    for (int shards : {1, 2, 4, 8}) {
      FleetOptions options;
      options.shard_count = shards;
      options.replicas_per_shard = 2;
      options.partitions = tpch::TpchPartitionScheme();
      auto fleet = ShardedCsaFleet::Create(options);
      ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
      ASSERT_TRUE((*fleet)->Load(LoadTpch).ok());
      (*fleets_)[shards] = fleet->release();
    }
  }

  static ShardedCsaFleet* fleet(int shards) { return (*fleets_)[shards]; }

  static FleetOutcome MustRun(int shards, const std::string& sql) {
    auto out = fleet(shards)->Run(sql);
    EXPECT_TRUE(out.ok()) << "shards=" << shards << ": "
                          << out.status().ToString();
    return std::move(*out);
  }

  static std::map<int, ShardedCsaFleet*>* fleets_;
};

std::map<int, ShardedCsaFleet*>* FleetTest::fleets_ = nullptr;

// ---------------- shard-count invariance (the tentpole) ----------------

class ShardInvariance : public FleetTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(ShardInvariance, RowsBitIdenticalAcrossShardCounts) {
  auto q = tpch::GetQuery(GetParam());
  ASSERT_TRUE(q.ok());
  FleetOutcome base = MustRun(1, (*q)->sql);
  for (int shards : {2, 4, 8}) {
    FleetOutcome out = MustRun(shards, (*q)->sql);
    EXPECT_EQ(ExactRows(out.result), ExactRows(base.result))
        << "Q" << GetParam() << " diverged at " << shards << " shards";
    // The work totals are shard-count invariant even though their
    // placement is not: every partition slice is scanned exactly once.
    EXPECT_EQ(out.stats.rows_scanned, base.stats.rows_scanned);
    EXPECT_EQ(out.stats.rows_output, base.stats.rows_output);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEvaluatedQueries, ShardInvariance,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 12,
                                           13, 14, 16, 18, 19, 21),
                         [](const auto& param_info) {
                           return "Q" + std::to_string(param_info.param);
                         });

// The single-shard fleet must agree with the single-node testbed: the
// fleet generalizes scs, it does not redefine it.
TEST_F(FleetTest, SingleShardFleetMatchesCsaSystem) {
  engine::CsaOptions options;
  options.scale_factor = kScaleFactor;
  auto system = engine::CsaSystem::Create(options);
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->Load(LoadTpch).ok());
  for (int number : {3, 6, 12}) {
    auto q = tpch::GetQuery(number);
    ASSERT_TRUE(q.ok());
    auto scs = (*system)->Run(engine::SystemConfig::kScs, (*q)->sql);
    ASSERT_TRUE(scs.ok()) << scs.status().ToString();
    FleetOutcome out = MustRun(1, (*q)->sql);
    EXPECT_EQ(ExactRows(out.result), ExactRows(scs->result)) << "Q" << number;
  }
}

// ---------------- worker-count invariance ----------------

class WorkerInvariance : public FleetTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(WorkerInvariance, WorkerCountChangesNothingObservable) {
  auto q = tpch::GetQuery(GetParam());
  ASSERT_TRUE(q.ok());
  for (int shards : {1, 4}) {
    std::optional<FleetOutcome> base;
    std::string base_trace;
    for (int workers : {1, 4, 16}) {
      common::ThreadPool::set_max_workers(workers);
      obs::Tracer tracer;
      std::string trace;
      {
        obs::ScopedTracer scope(&tracer);
        auto out = fleet(shards)->Run((*q)->sql);
        if (!out.ok()) common::ThreadPool::set_max_workers(0);
        ASSERT_TRUE(out.ok()) << out.status().ToString();
        std::ostringstream os;
        tracer.ExportChromeTrace(os, obs::ExportOptions{});
        trace = os.str();
        if (!base.has_value()) {
          base = std::move(*out);
          base_trace = trace;
          continue;
        }
        EXPECT_EQ(ExactRows(out->result), ExactRows(base->result))
            << "shards=" << shards << " workers=" << workers;
        EXPECT_EQ(out->stats, base->stats) << "workers=" << workers;
        EXPECT_EQ(out->cost, base->cost)
            << "shards=" << shards << " workers=" << workers;
        EXPECT_EQ(out->shipped_bytes, base->shipped_bytes);
        EXPECT_EQ(out->storage_pages_read, base->storage_pages_read);
      }
      EXPECT_EQ(trace, base_trace)
          << "default trace diverged: shards=" << shards
          << " workers=" << workers;
    }
    common::ThreadPool::set_max_workers(0);
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, WorkerInvariance, ::testing::Values(3, 6),
                         [](const auto& param_info) {
                           return "Q" + std::to_string(param_info.param);
                         });

TEST_F(FleetTest, RerunsAreBitIdentical) {
  auto q = tpch::GetQuery(12);
  ASSERT_TRUE(q.ok());
  FleetOutcome first = MustRun(4, (*q)->sql);
  FleetOutcome second = MustRun(4, (*q)->sql);
  EXPECT_EQ(ExactRows(first.result), ExactRows(second.result));
  EXPECT_EQ(first.cost, second.cost);
  EXPECT_EQ(first.stats, second.stats);
  EXPECT_EQ(first.shipped_bytes, second.shipped_bytes);
}

// ---------------- scale-out (the Figure 12 claim) ----------------

TEST_F(FleetTest, ScanHeavyQueryGetsFasterWithMoreShards) {
  auto q = tpch::GetQuery(6);
  ASSERT_TRUE(q.ok());
  FleetOutcome one = MustRun(1, (*q)->sql);
  FleetOutcome eight = MustRun(8, (*q)->sql);
  EXPECT_LT(eight.cost.elapsed_ns(), one.cost.elapsed_ns())
      << "8-shard q6 should beat 1-shard in simulated elapsed time";
  EXPECT_LT(eight.storage_phase_ns, one.storage_phase_ns);
}

// ---------------- replica failover ----------------

TEST_F(FleetTest, ShardDownFailsOverWithIdenticalRows) {
  auto q = tpch::GetQuery(6);
  ASSERT_TRUE(q.ok());
  FleetOutcome clean = MustRun(4, (*q)->sql);

  ScopedFaultInjection guard;
  FaultRegistry::Global().ArmNth(site::kDistShardDown, 1);
  FleetOutcome faulted = MustRun(4, (*q)->sql);

  EXPECT_EQ(FaultRegistry::Global().fired(site::kDistShardDown), 1u);
  EXPECT_EQ(faulted.failovers, 1);
  EXPECT_EQ(ExactRows(faulted.result), ExactRows(clean.result));
  // Failover detection shows up in the cost account.
  EXPECT_GT(faulted.cost.elapsed_ns(), clean.cost.elapsed_ns());
}

TEST_F(FleetTest, EveryGroupCanLoseItsPrimary) {
  // Kill the selected node right before each group's fragment dispatch
  // in turn: whatever single node dies, rows never change.
  auto q = tpch::GetQuery(3);
  ASSERT_TRUE(q.ok());
  FleetOutcome clean = MustRun(4, (*q)->sql);
  uint64_t checks_per_run;
  {
    ScopedFaultInjection guard;
    MustRun(4, (*q)->sql);
    checks_per_run = FaultRegistry::Global().occurrences(site::kDistShardDown);
  }
  ASSERT_GT(checks_per_run, 0u);
  for (uint64_t nth = 1; nth <= checks_per_run; ++nth) {
    ScopedFaultInjection guard;
    FaultRegistry::Global().ArmNth(site::kDistShardDown, nth);
    FleetOutcome faulted = MustRun(4, (*q)->sql);
    EXPECT_EQ(faulted.failovers, 1) << "nth=" << nth;
    EXPECT_EQ(ExactRows(faulted.result), ExactRows(clean.result))
        << "rows diverged when heartbeat check " << nth << " failed over";
  }
}

TEST_F(FleetTest, AllReplicasDownIsUnavailable) {
  auto q = tpch::GetQuery(6);
  ASSERT_TRUE(q.ok());
  ScopedFaultInjection guard;
  // Two consecutive heartbeat failures on the first dispatch exhaust
  // both replicas of that group.
  FaultRegistry::Global().ArmNth(site::kDistShardDown, 1, /*count=*/2);
  auto out = fleet(4)->Run((*q)->sql);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status().ToString();
}

TEST_F(FleetTest, CorruptShippedFragmentRekeysAndRecovers) {
  auto q = tpch::GetQuery(6);
  ASSERT_TRUE(q.ok());
  FleetOutcome clean = MustRun(2, (*q)->sql);

  ScopedFaultInjection guard;
  int64_t rekeys = obs::GetCounter("dist.channel.rehandshakes").value();
  FaultRegistry::Global().ArmNth(site::kDistFragmentCorrupt, 1, /*count=*/1,
                                 /*param=*/5);
  FleetOutcome faulted = MustRun(2, (*q)->sql);

  EXPECT_EQ(ExactRows(faulted.result), ExactRows(clean.result));
  EXPECT_GE(obs::GetCounter("dist.channel.rehandshakes").value(), rekeys + 1);
}

// ---------------- distributed planner ----------------

class DistPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = sql::Database::CreateInMemory();
    ASSERT_TRUE(db_->Execute("CREATE TABLE lineitem (l_orderkey INTEGER, "
                             "l_quantity DOUBLE, l_price DOUBLE, "
                             "l_flag VARCHAR)")
                    .ok());
    ASSERT_TRUE(db_->Execute("CREATE TABLE orders (o_orderkey INTEGER, "
                             "o_custkey INTEGER)")
                    .ok());
    ASSERT_TRUE(
        db_->Execute("CREATE TABLE region (r_regionkey INTEGER)").ok());
    scheme_ = {{"lineitem", sql::PartitionKind::kRange, "l_orderkey"},
               {"orders", sql::PartitionKind::kRange, "o_orderkey"}};
    options_.shard_count = 4;
    options_.co_located = [](const std::string&, const std::string&) {
      return true;
    };
  }

  Result<DistPlan> Plan(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    if (!stmt.ok()) return stmt.status();
    return PlanQuery(**stmt, *db_, scheme_, options_);
  }

  std::unique_ptr<sql::Database> db_;
  std::vector<sql::TablePartition> scheme_;
  PlannerOptions options_;
};

TEST_F(DistPlannerTest, PartitionedFragmentsFanOutWithMergeKey) {
  auto plan = Plan(
      "SELECT * FROM lineitem, region WHERE l_orderkey > 5 AND "
      "l_orderkey = r_regionkey");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->partial_aggregation);
  ASSERT_EQ(plan->fragments.size(), 2u);
  const FragmentPlacement* li = nullptr;
  const FragmentPlacement* re = nullptr;
  for (const auto& f : plan->fragments) {
    if (f.fragment.source_table == "lineitem") li = &f;
    if (f.fragment.source_table == "region") re = &f;
  }
  ASSERT_NE(li, nullptr);
  ASSERT_NE(re, nullptr);
  EXPECT_TRUE(li->partitioned);
  EXPECT_EQ(li->merge_key, "l_orderkey");
  EXPECT_FALSE(re->partitioned);
  EXPECT_LT(re->home_group, options_.shard_count);
}

TEST_F(DistPlannerTest, PartialAggregationPlansSingleTableGroupBy) {
  options_.partial_aggregation = true;
  auto plan = Plan(
      "SELECT l_flag, count(*) AS cnt, sum(l_quantity) AS qty FROM "
      "lineitem WHERE l_price < 100 GROUP BY l_flag ORDER BY l_flag");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->partial_aggregation);
  ASSERT_EQ(plan->fragments.size(), 1u);
  EXPECT_TRUE(plan->fragments[0].partitioned);
  // The fragment is the whole query (minus ORDER BY) with canonical
  // output names; the host query re-aggregates the shipped partials.
  EXPECT_NE(plan->fragments[0].fragment.sql.find("GROUP BY"),
            std::string::npos);
  EXPECT_EQ(plan->fragments[0].fragment.sql.find("ORDER BY"),
            std::string::npos);
  std::string host = plan->host_query->ToString();
  EXPECT_NE(host.find("SUM(f1)"), std::string::npos) << host;
  EXPECT_NE(host.find("SUM(f2)"), std::string::npos) << host;
  EXPECT_NE(host.find("ORDER BY"), std::string::npos) << host;
}

TEST_F(DistPlannerTest, PartialAggregationAllowsCoPartitionedJoin) {
  options_.partial_aggregation = true;
  auto plan = Plan(
      "SELECT count(*) AS cnt FROM lineitem, orders WHERE "
      "l_orderkey = o_orderkey");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->partial_aggregation);
}

TEST_F(DistPlannerTest, PartialAggregationRejectsNonKeyJoin) {
  options_.partial_aggregation = true;
  // The join is not on the partition keys: matching pairs straddle
  // shards, so per-shard partials would miss them.
  auto plan = Plan(
      "SELECT count(*) AS cnt FROM lineitem, orders WHERE "
      "l_orderkey = o_custkey");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->partial_aggregation);
}

TEST_F(DistPlannerTest, PartialAggregationRejectsNonCoLocatedTables) {
  options_.partial_aggregation = true;
  options_.co_located = [](const std::string&, const std::string&) {
    return false;
  };
  auto plan = Plan(
      "SELECT count(*) AS cnt FROM lineitem, orders WHERE "
      "l_orderkey = o_orderkey");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->partial_aggregation);
}

TEST_F(DistPlannerTest, PartialAggregationRejectsIneligibleShapes) {
  options_.partial_aggregation = true;
  for (const char* sql : {
           // AVG partials don't merge by summation.
           "SELECT avg(l_price) AS a FROM lineitem",
           // DISTINCT, LIMIT and subqueries stay on the default plan.
           "SELECT DISTINCT l_flag FROM lineitem",
           "SELECT l_flag, count(*) AS c FROM lineitem GROUP BY l_flag "
           "ORDER BY l_flag LIMIT 3",
           "SELECT count(*) AS c FROM lineitem WHERE l_orderkey IN "
           "(SELECT o_orderkey FROM orders)",
           // Replicated-only: every shard would return the same rows.
           "SELECT count(*) AS c FROM region",
           // A bare column that is not grouped cannot be merged.
           "SELECT l_flag, count(*) AS c FROM lineitem GROUP BY l_price",
       }) {
    auto plan = Plan(sql);
    ASSERT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
    EXPECT_FALSE(plan->partial_aggregation) << sql;
  }
}

// ---------------- partial aggregation end-to-end ----------------

TEST_F(FleetTest, PartialAggregationMatchesDefaultPlanOnIntegers) {
  // COUNT partials merge exactly, so the opt-in mode must reproduce the
  // default plan's rows bit-for-bit on an integer aggregate.
  std::string sql =
      "SELECT l_returnflag, count(*) AS cnt FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag";
  FleetOutcome plain = MustRun(4, sql);
  EXPECT_FALSE(plain.partial_aggregation);

  fleet(4)->set_partial_aggregation(true);
  auto partial = fleet(4)->Run(sql);
  fleet(4)->set_partial_aggregation(false);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();

  EXPECT_TRUE(partial->partial_aggregation);
  EXPECT_EQ(ExactRows(partial->result), ExactRows(plain.result));
  // The point of the mode: partials are tiny next to filtered rows.
  EXPECT_LT(partial->shipped_bytes, plain.shipped_bytes);
}

TEST_F(FleetTest, PartialAggregationAgreesOnQ6UpToRounding) {
  auto q = tpch::GetQuery(6);
  ASSERT_TRUE(q.ok());
  FleetOutcome plain = MustRun(4, (*q)->sql);

  fleet(4)->set_partial_aggregation(true);
  auto partial = fleet(4)->Run((*q)->sql);
  fleet(4)->set_partial_aggregation(false);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();

  EXPECT_TRUE(partial->partial_aggregation);
  EXPECT_EQ(Canonical(partial->result), Canonical(plain.result));
}

// ---------------- fleet plumbing ----------------

TEST_F(FleetTest, AttestationRunsOncePerNode) {
  int64_t before = obs::GetCounter("dist.attestations").value();
  FleetOptions options;
  options.shard_count = 2;
  options.replicas_per_shard = 2;
  auto small = ShardedCsaFleet::Create(options);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(obs::GetCounter("dist.attestations").value(), before + 4);
}

TEST_F(FleetTest, InvalidShapesAreRejected) {
  FleetOptions options;
  options.shard_count = 0;
  EXPECT_TRUE(ShardedCsaFleet::Create(options).status().IsInvalidArgument());
  options.shard_count = 2;
  options.replicas_per_shard = 0;
  EXPECT_TRUE(ShardedCsaFleet::Create(options).status().IsInvalidArgument());
}

TEST_F(FleetTest, CoPartitionedTablesCoLocate) {
  ShardedCsaFleet* f = fleet(4);
  // orders/lineitem share the orderkey range geometry; part/partsupp
  // hash the same key values; hash and range never co-locate.
  EXPECT_TRUE(f->CoLocated("orders", "lineitem"));
  EXPECT_TRUE(f->CoLocated("part", "partsupp"));
  EXPECT_TRUE(f->CoLocated("customer", "part"));
  EXPECT_FALSE(f->CoLocated("lineitem", "part"));
  EXPECT_FALSE(f->CoLocated("region", "nation"));
  EXPECT_FALSE(f->CoLocated("lineitem", "no_such_table"));
}

TEST_F(FleetTest, ReplicasOfAGroupHoldIdenticalSlices) {
  ShardedCsaFleet* f = fleet(2);
  for (int g = 0; g < 2; ++g) {
    for (const char* table : {"lineitem", "customer", "nation"}) {
      auto a = f->node_db(g, 0)->Execute(std::string("SELECT * FROM ") +
                                         table);
      auto b = f->node_db(g, 1)->Execute(std::string("SELECT * FROM ") +
                                         table);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(ExactRows(*a), ExactRows(*b))
          << "group " << g << " table " << table;
    }
  }
}

TEST_F(FleetTest, PartitionedTablesAreActuallySplit) {
  // At 4 shards no single node holds all of lineitem, and the union of
  // the slices is the whole table.
  uint64_t total = 0;
  auto whole = fleet(1)->node_db(0, 0)->Execute(
      "SELECT count(*) AS c FROM lineitem");
  ASSERT_TRUE(whole.ok());
  int64_t expected = (*whole).rows[0][0].AsInt();
  for (int g = 0; g < 4; ++g) {
    auto slice = fleet(4)->node_db(g, 0)->Execute(
        "SELECT count(*) AS c FROM lineitem");
    ASSERT_TRUE(slice.ok());
    int64_t rows = (*slice).rows[0][0].AsInt();
    EXPECT_LT(rows, expected);
    total += static_cast<uint64_t>(rows);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(expected));
}

}  // namespace
}  // namespace ironsafe::dist
