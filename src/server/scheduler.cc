#include "server/scheduler.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "sim/fault.h"

namespace ironsafe::server {

Status FairScheduler::Admit(QueuedStatement item) {
  // Injected admission overflow: the queue behaves as if full, so the
  // client exercises its backpressure-retry path.
  if (sim::FaultAt(sim::fault_site::kServerAdmissionOverflow)) {
    IRONSAFE_COUNTER_ADD("server.admission.injected_overflows", 1);
    return Status::ResourceExhausted("injected: admission queue full");
  }
  if (depth_ >= limits_.max_total) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(limits_.max_total) +
        " statements)");
  }
  SessionQueue& q = queues_[item.session_id];
  if (q.items.size() >= limits_.max_per_session) {
    return Status::ResourceExhausted(
        "session quota full (" + std::to_string(limits_.max_per_session) +
        " statements for session " + std::to_string(item.session_id) + ")");
  }
  uint64_t tag = std::max(virtual_time_, q.last_tag) + kTagScale / q.weight;
  q.last_tag = tag;
  if (q.items.empty()) ready_.insert({tag, item.session_id});
  q.items.emplace_back(tag, std::move(item));
  ++depth_;
  peak_depth_ = std::max(peak_depth_, depth_);
  return Status::OK();
}

std::optional<QueuedStatement> FairScheduler::Next() {
  if (depth_ == 0) return std::nullopt;
  // Minimum head tag; among ties, the first session strictly after the
  // last served (wrapping), which reduces WFQ to the classic round robin
  // when every weight is equal.
  uint64_t min_tag = ready_.begin()->first;
  auto it = ready_.lower_bound({min_tag, last_served_ + 1});
  if (it == ready_.end() || it->first != min_tag) it = ready_.begin();
  uint64_t session_id = it->second;
  ready_.erase(it);

  SessionQueue& q = queues_.find(session_id)->second;
  uint64_t tag = q.items.front().first;
  QueuedStatement item = std::move(q.items.front().second);
  q.items.pop_front();
  virtual_time_ = std::max(virtual_time_, tag);
  last_served_ = session_id;
  if (!q.items.empty()) ready_.insert({q.items.front().first, session_id});
  --depth_;
  return item;
}

Status FairScheduler::SetSessionWeight(uint64_t session_id, uint32_t weight) {
  if (weight == 0) {
    return Status::InvalidArgument(
        "scheduler weight 0 would starve session " +
        std::to_string(session_id) + "; weights must be >= 1");
  }
  if (weight > kTagScale) weight = kTagScale;
  queues_[session_id].weight = weight;
  return Status::OK();
}

uint32_t FairScheduler::session_weight(uint64_t session_id) const {
  auto it = queues_.find(session_id);
  return it == queues_.end() ? 1 : it->second.weight;
}

std::vector<QueuedStatement> FairScheduler::EvictSession(uint64_t session_id) {
  std::vector<QueuedStatement> evicted;
  auto it = queues_.find(session_id);
  if (it == queues_.end()) return evicted;
  if (!it->second.items.empty()) {
    ready_.erase({it->second.items.front().first, session_id});
  }
  evicted.reserve(it->second.items.size());
  for (auto& [tag, item] : it->second.items) {
    evicted.push_back(std::move(item));
  }
  depth_ -= evicted.size();
  queues_.erase(it);
  return evicted;
}

size_t FairScheduler::session_depth(uint64_t session_id) const {
  auto it = queues_.find(session_id);
  return it == queues_.end() ? 0 : it->second.items.size();
}

}  // namespace ironsafe::server
