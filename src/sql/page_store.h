#ifndef IRONSAFE_SQL_PAGE_STORE_H_
#define IRONSAFE_SQL_PAGE_STORE_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "securestore/secure_store.h"
#include "sim/cost_model.h"
#include "storage/block_device.h"

namespace ironsafe::sql {

class ColumnBatch;

/// Fixed-size page storage abstraction under the relational engine.
/// Implementations differ in where pages live and what security work the
/// read path performs — this is exactly the seam the paper's five system
/// configurations (Table 2) vary.
class PageStore {
 public:
  static constexpr size_t kPageSize = 4096;

  virtual ~PageStore() = default;

  virtual Result<Bytes> ReadPage(uint64_t id, sim::CostModel* cost) = 0;
  virtual Status WritePage(uint64_t id, const Bytes& page,
                           sim::CostModel* cost) = 0;

  /// Allocates a fresh page id.
  virtual uint64_t Allocate() = 0;
  virtual uint64_t num_pages() const = 0;

  /// Bulk-load bracket (secure stores defer their root commit).
  virtual void BeginBatch() {}
  virtual Status EndBatch() { return Status::OK(); }

  /// Morsel-scan bracket. Between BeginParallelRead and EndParallelRead
  /// the executor may call ReadPage concurrently from up to `slots`
  /// tasks (one disjoint page range each; WritePage is not allowed).
  /// Stores with mutable read-path state (caches, counters) override
  /// this to defer those updates and replay them in task order at
  /// EndParallelRead, so cache contents and counters end up independent
  /// of the real thread schedule. Stateless stores need nothing: their
  /// read paths are const-safe under concurrency.
  virtual void BeginParallelRead(int slots) { (void)slots; }
  virtual void EndParallelRead() {}

  /// Decoded-batch side cache for the vectorized engine: a columnar
  /// decode of page `id`, attached to the page-cache entry so it lives
  /// and dies with the encoded bytes (same capacity, same eviction).
  /// Callers must ReadPage(id) first — the batch never substitutes for
  /// the page read, so I/O, crypto and cache-counter charges are
  /// unchanged. Stores without a page cache keep the default no-op.
  virtual std::shared_ptr<const ColumnBatch> CachedBatch(uint64_t id) {
    (void)id;
    return nullptr;
  }
  virtual void CacheBatch(uint64_t id,
                          std::shared_ptr<const ColumnBatch> batch) {
    (void)id;
    (void)batch;
  }
};

/// Plaintext pages on an untrusted block device (the non-secure baselines
/// hons / vcs).
class PlainPageStore : public PageStore {
 public:
  explicit PlainPageStore(storage::BlockDevice* device) : device_(device) {}

  Result<Bytes> ReadPage(uint64_t id, sim::CostModel* cost) override;
  Status WritePage(uint64_t id, const Bytes& page,
                   sim::CostModel* cost) override;
  uint64_t Allocate() override { return next_page_++; }
  uint64_t num_pages() const override { return next_page_; }

 private:
  storage::BlockDevice* device_;
  uint64_t next_page_ = 0;
};

/// Encrypted/integrity/freshness-protected pages (hos / scs / sos).
class SecurePageStore : public PageStore {
 public:
  explicit SecurePageStore(securestore::SecureStore* store) : store_(store) {}

  /// Which CPU pays the verification cost (host in hos, storage in scs/sos).
  void set_site(sim::Site site) { store_->set_site(site); }

  Result<Bytes> ReadPage(uint64_t id, sim::CostModel* cost) override;
  Status WritePage(uint64_t id, const Bytes& page,
                   sim::CostModel* cost) override;
  uint64_t Allocate() override;
  uint64_t num_pages() const override { return next_page_; }
  void BeginBatch() override { store_->BeginBatch(); }
  Status EndBatch() override { return store_->EndBatch(); }

 private:
  securestore::SecureStore* store_;
  uint64_t next_page_ = 0;
};

/// Decorator that additionally ships every page over the network — the
/// host-only configurations access the storage server's pages via NFS
/// (paper §6.1), paying network transfer on top of the remote disk read.
class RemotePageStore : public PageStore {
 public:
  explicit RemotePageStore(PageStore* inner) : inner_(inner) {}

  Result<Bytes> ReadPage(uint64_t id, sim::CostModel* cost) override {
    ASSIGN_OR_RETURN(Bytes page, inner_->ReadPage(id, cost));
    if (cost != nullptr) cost->ChargeNetwork(page.size());
    return page;
  }
  Status WritePage(uint64_t id, const Bytes& page,
                   sim::CostModel* cost) override {
    if (cost != nullptr) cost->ChargeNetwork(page.size());
    return inner_->WritePage(id, page, cost);
  }
  uint64_t Allocate() override { return inner_->Allocate(); }
  uint64_t num_pages() const override { return inner_->num_pages(); }
  void BeginBatch() override { inner_->BeginBatch(); }
  Status EndBatch() override { return inner_->EndBatch(); }
  void BeginParallelRead(int slots) override {
    inner_->BeginParallelRead(slots);
  }
  void EndParallelRead() override { inner_->EndParallelRead(); }
  std::shared_ptr<const ColumnBatch> CachedBatch(uint64_t id) override {
    return inner_->CachedBatch(id);
  }
  void CacheBatch(uint64_t id,
                  std::shared_ptr<const ColumnBatch> batch) override {
    inner_->CacheBatch(id, std::move(batch));
  }

 private:
  PageStore* inner_;
};

/// Pure in-memory page store (host-side intermediate tables).
class MemoryPageStore : public PageStore {
 public:
  Result<Bytes> ReadPage(uint64_t id, sim::CostModel* cost) override;
  Status WritePage(uint64_t id, const Bytes& page,
                   sim::CostModel* cost) override;
  uint64_t Allocate() override {
    pages_.emplace_back();
    return pages_.size() - 1;
  }
  uint64_t num_pages() const override { return pages_.size(); }

 private:
  std::vector<Bytes> pages_;
};

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_PAGE_STORE_H_
