#ifndef IRONSAFE_CRYPTO_SHA512_H_
#define IRONSAFE_CRYPTO_SHA512_H_

#include <cstdint>
#include <cstddef>

#include "common/bytes.h"

namespace ironsafe::crypto {

/// Incremental SHA-512 (FIPS 180-4). Used for page MACs (the paper uses
/// HMAC-SHA512 per 4 KiB page) and inside Ed25519.
class Sha512 {
 public:
  static constexpr size_t kDigestSize = 64;
  static constexpr size_t kBlockSize = 128;

  Sha512();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  Bytes Final();
  void Reset();

  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint64_t state_[8];
  uint64_t total_len_ = 0;  // bytes; enough for simulation-scale inputs
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace ironsafe::crypto

#endif  // IRONSAFE_CRYPTO_SHA512_H_
