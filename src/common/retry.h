#ifndef IRONSAFE_COMMON_RETRY_H_
#define IRONSAFE_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "common/status.h"

namespace ironsafe {

/// Bounded exponential backoff for transient faults (dropped channel
/// frames, failed ecalls, stale RPMB counters, bit-flipped reads).
///
/// Backoff is *simulated* time: the helper never sleeps. Before each
/// re-attempt it reports the backoff through `on_backoff`, and call sites
/// wire that to the deterministic cost account (`sim::CostModel::
/// ChargeFixed`) plus observability — see obs::ObservedRetryPolicy for
/// the canonical wiring. The first attempt is hook-free, so a successful
/// operation through RetryWithBackoff is bit-identical in cost and trace
/// to the bare call.
struct RetryPolicy {
  int max_attempts = 3;
  uint64_t initial_backoff_ns = 200'000;  ///< simulated ns before attempt 2
  uint64_t max_backoff_ns = 10'000'000;   ///< backoff growth cap
  uint32_t backoff_multiplier = 2;

  /// Called before re-attempt `next_attempt` (2-based) with the simulated
  /// backoff and the failure that caused the retry. Null = pure logic.
  std::function<void(int next_attempt, uint64_t backoff_ns,
                     const Status& failure)>
      on_backoff;

  /// Which failures are worth retrying. Null retries every non-OK status;
  /// a non-retryable failure is returned to the caller immediately.
  std::function<bool(const Status&)> retryable;
};

/// The simulated backoff charged before `attempt` (2-based):
/// initial * multiplier^(attempt-2), capped at max_backoff_ns.
uint64_t BackoffForAttempt(const RetryPolicy& policy, int attempt);

/// Canonical taxonomy of transient failures for RetryPolicy::retryable
/// call sites. Both kinds are worth a backoff retry, but they are
/// distinct conditions with distinct remedies: a node-down failure may
/// need a different path (re-handshake, host fallback), while
/// backpressure resolves by waiting for the same path to free capacity.
enum class TransientKind {
  kNone,          ///< not transient — return the failure to the caller
  kNodeDown,      ///< kUnavailable: peer, link, or storage node lost
  kBackpressure,  ///< kResourceExhausted: admission queue / quota full
};

TransientKind ClassifyTransient(const Status& status);

/// True for any status worth a backoff retry (node-down or backpressure).
bool IsRetryableTransient(const Status& status);

/// True only for admission/quota rejections (kResourceExhausted).
bool IsBackpressure(const Status& status);

namespace retry_internal {
/// Shared retry-decision core: returns true when attempt `failed_attempt`
/// (1-based) should be followed by another attempt, after invoking the
/// policy hooks. False means the caller returns `failure` as-is.
bool PrepareRetry(const RetryPolicy& policy, int failed_attempt,
                  const Status& failure);
}  // namespace retry_internal

/// Runs `op` up to policy.max_attempts times.
Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& op);

/// Variant for hot paths that made (and failed) the first attempt before
/// constructing any retry machinery: `first_failure` counts as attempt 1,
/// and `op` runs for attempts 2..max_attempts.
Status ResumeRetryWithBackoff(const RetryPolicy& policy, Status first_failure,
                              const std::function<Status()>& op);

template <typename T>
Result<T> RetryWithBackoff(const RetryPolicy& policy,
                           const std::function<Result<T>()>& op) {
  for (int attempt = 1;; ++attempt) {
    Result<T> result = op();
    if (result.ok()) return result;
    if (!retry_internal::PrepareRetry(policy, attempt, result.status())) {
      return result;
    }
  }
}

}  // namespace ironsafe

#endif  // IRONSAFE_COMMON_RETRY_H_
