file(REMOVE_RECURSE
  "libironsafe_monitor.a"
)
