# Empty compiler generated dependencies file for ironsafe_tpch.
# This may be replaced when dependencies are built.
