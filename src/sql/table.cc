#include "sql/table.h"

namespace ironsafe::sql {

// ------------------------------------------------------ MemoryTable ----

namespace {
class MemoryTableCursor : public TableCursor {
 public:
  explicit MemoryTableCursor(const std::vector<Row>* rows) : rows_(rows) {}

  Result<bool> Next(Row* row) override {
    if (pos_ >= rows_->size()) return false;
    *row = (*rows_)[pos_++];
    return true;
  }

 private:
  const std::vector<Row>* rows_;
  size_t pos_ = 0;
};
}  // namespace

Status MemoryTable::Append(const Row& row, sim::CostModel* cost) {
  (void)cost;
  if (row.size() != schema().size()) {
    return Status::InvalidArgument("row arity mismatch for " + name());
  }
  rows_.push_back(row);
  return Status::OK();
}

std::unique_ptr<TableCursor> MemoryTable::NewCursor(
    sim::CostModel* cost) const {
  (void)cost;
  return std::make_unique<MemoryTableCursor>(&rows_);
}

uint64_t MemoryTable::page_count() const {
  size_t bytes = 0;
  for (const Row& r : rows_) bytes += RowBytes(r);
  return (bytes + PageStore::kPageSize - 1) / PageStore::kPageSize;
}

Status MemoryTable::Rewrite(const std::function<Result<bool>(Row*, bool*)>& fn,
                            sim::CostModel* cost, uint64_t* affected) {
  (void)cost;
  std::vector<Row> kept;
  uint64_t count = 0;
  for (Row& row : rows_) {
    bool modified = false;
    ASSIGN_OR_RETURN(bool keep, fn(&row, &modified));
    if (keep) {
      kept.push_back(std::move(row));
      if (modified) ++count;
    } else {
      ++count;
    }
  }
  rows_ = std::move(kept);
  if (affected != nullptr) *affected = count;
  return Status::OK();
}

// ------------------------------------------------------- PagedTable ----

namespace {
constexpr size_t kPageHeader = 2;  // u16 row count

Bytes BuildPage(const std::vector<Bytes>& rows) {
  Bytes page;
  page.reserve(PageStore::kPageSize);
  PutU16(&page, static_cast<uint16_t>(rows.size()));
  for (const Bytes& r : rows) Append(&page, r);
  page.resize(PageStore::kPageSize, 0);
  return page;
}
}  // namespace

Status PagedTable::FlushBuffer(sim::CostModel* cost) {
  if (buffer_.empty()) return Status::OK();
  uint64_t id = store_->Allocate();
  RETURN_IF_ERROR(store_->WritePage(id, BuildPage(buffer_), cost));
  page_ids_.push_back(id);
  buffer_.clear();
  buffer_bytes_ = 0;
  return Status::OK();
}

Status PagedTable::Append(const Row& row, sim::CostModel* cost) {
  if (row.size() != schema().size()) {
    return Status::InvalidArgument("row arity mismatch for " + name());
  }
  Bytes serialized;
  SerializeRow(row, &serialized);
  if (serialized.size() + kPageHeader > PageStore::kPageSize) {
    return Status::InvalidArgument("row larger than a page");
  }
  if (kPageHeader + buffer_bytes_ + serialized.size() >
      PageStore::kPageSize) {
    RETURN_IF_ERROR(FlushBuffer(cost));
  }
  buffer_bytes_ += serialized.size();
  buffer_.push_back(std::move(serialized));
  ++row_count_;
  return Status::OK();
}

namespace {
class PagedTableCursor : public TableCursor {
 public:
  PagedTableCursor(PageStore* store, const std::vector<uint64_t>* pages,
                   const std::vector<Bytes>* buffer, sim::CostModel* cost)
      : store_(store), pages_(pages), buffer_(buffer), cost_(cost) {}

  Result<bool> Next(Row* row) override {
    while (true) {
      if (rows_left_ > 0) {
        ASSIGN_OR_RETURN(Row r, DeserializeRow(&*reader_));
        *row = std::move(r);
        --rows_left_;
        return true;
      }
      if (page_index_ < pages_->size()) {
        ASSIGN_OR_RETURN(current_page_,
                         store_->ReadPage((*pages_)[page_index_++], cost_));
        reader_.emplace(current_page_);
        ASSIGN_OR_RETURN(uint16_t n, reader_->ReadU16());
        rows_left_ = n;
        continue;
      }
      // Unflushed buffered rows.
      if (buffer_pos_ < buffer_->size()) {
        ByteReader r((*buffer_)[buffer_pos_++]);
        ASSIGN_OR_RETURN(Row rr, DeserializeRow(&r));
        *row = std::move(rr);
        return true;
      }
      return false;
    }
  }

 private:
  PageStore* store_;
  const std::vector<uint64_t>* pages_;
  const std::vector<Bytes>* buffer_;
  sim::CostModel* cost_;
  size_t page_index_ = 0;
  Bytes current_page_;
  std::optional<ByteReader> reader_;
  uint16_t rows_left_ = 0;
  size_t buffer_pos_ = 0;
};
}  // namespace

std::unique_ptr<TableCursor> PagedTable::NewCursor(
    sim::CostModel* cost) const {
  return std::make_unique<PagedTableCursor>(store_, &page_ids_, &buffer_,
                                            cost);
}

Status PagedTable::Rewrite(const std::function<Result<bool>(Row*, bool*)>& fn,
                           sim::CostModel* cost, uint64_t* affected) {
  // Read everything, apply, rewrite pages in place (reusing page ids).
  std::vector<Row> kept;
  uint64_t count = 0;
  {
    auto cursor = NewCursor(cost);
    Row row;
    while (true) {
      ASSIGN_OR_RETURN(bool more, cursor->Next(&row));
      if (!more) break;
      bool modified = false;
      ASSIGN_OR_RETURN(bool keep, fn(&row, &modified));
      if (keep) {
        kept.push_back(row);
        if (modified) ++count;
      } else {
        ++count;
      }
    }
  }
  // Re-pack into the existing page list (allocate more if needed).
  std::vector<uint64_t> old_pages = std::move(page_ids_);
  page_ids_.clear();
  buffer_.clear();
  buffer_bytes_ = 0;
  row_count_ = 0;
  size_t reuse_index = 0;
  store_->BeginBatch();
  for (const Row& row : kept) {
    Bytes serialized;
    SerializeRow(row, &serialized);
    if (kPageHeader + buffer_bytes_ + serialized.size() >
        PageStore::kPageSize) {
      uint64_t id = reuse_index < old_pages.size() ? old_pages[reuse_index++]
                                                   : store_->Allocate();
      RETURN_IF_ERROR(store_->WritePage(id, BuildPage(buffer_), cost));
      page_ids_.push_back(id);
      buffer_.clear();
      buffer_bytes_ = 0;
    }
    buffer_bytes_ += serialized.size();
    buffer_.push_back(std::move(serialized));
    ++row_count_;
  }
  if (!buffer_.empty()) {
    uint64_t id = reuse_index < old_pages.size() ? old_pages[reuse_index++]
                                                 : store_->Allocate();
    RETURN_IF_ERROR(store_->WritePage(id, BuildPage(buffer_), cost));
    page_ids_.push_back(id);
    buffer_.clear();
    buffer_bytes_ = 0;
  }
  RETURN_IF_ERROR(store_->EndBatch());
  if (affected != nullptr) *affected = count;
  return Status::OK();
}

}  // namespace ironsafe::sql
