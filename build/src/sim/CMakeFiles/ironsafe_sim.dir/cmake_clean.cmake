file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_sim.dir/cost_model.cc.o"
  "CMakeFiles/ironsafe_sim.dir/cost_model.cc.o.d"
  "libironsafe_sim.a"
  "libironsafe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
