#include "sql/database.h"

#include <algorithm>

#include "sql/parser.h"

namespace ironsafe::sql {

namespace {
std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

QueryResult AffectedResult(uint64_t n) {
  QueryResult r;
  r.schema.AddColumn(Column{"affected", Type::kInt64});
  r.rows.push_back(Row{Value::Int(static_cast<int64_t>(n))});
  return r;
}
}  // namespace

std::unique_ptr<Database> Database::CreateInMemory() {
  return std::unique_ptr<Database>(new Database(nullptr));
}

std::unique_ptr<Database> Database::CreatePaged(PageStore* store) {
  return std::unique_ptr<Database>(new Database(store));
}

std::unique_ptr<Table> Database::NewTable(const std::string& name,
                                          Schema schema) {
  if (store_ == nullptr) {
    return std::make_unique<MemoryTable>(name, std::move(schema));
  }
  return std::make_unique<PagedTable>(name, std::move(schema), store_);
}

Status Database::CreateTable(const std::string& name, Schema schema) {
  std::string key = Lower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  tables_[key] = NewTable(key, std::move(schema));
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(Lower(name)) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(Lower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Database::BulkLoad(const std::string& table,
                          const std::vector<Row>& rows, sim::CostModel* cost) {
  ASSIGN_OR_RETURN(Table * t, GetTable(table));
  t->BeginBulkLoad();
  for (const Row& row : rows) {
    RETURN_IF_ERROR(t->Append(row, cost));
  }
  return t->FinishBulkLoad(cost);
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      sim::CostModel* cost,
                                      const ExecOptions& opts) {
  ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  return ExecuteStatement(stmt, cost, opts);
}

Result<QueryResult> Database::ExecuteStatement(const Statement& stmt,
                                               sim::CostModel* cost,
                                               const ExecOptions& opts) {
  Evaluator eval;  // literal evaluation for DML (no subqueries)
  EvalScope empty_scope;

  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(this, *stmt.select, nullptr, cost, opts);

    case Statement::Kind::kCreateTable: {
      RETURN_IF_ERROR(CreateTable(stmt.create_table->table_name,
                                  Schema(stmt.create_table->columns)));
      return AffectedResult(0);
    }

    case Statement::Kind::kInsert: {
      const InsertStmt& ins = *stmt.insert;
      ASSIGN_OR_RETURN(Table * table, GetTable(ins.table_name));
      const Schema& schema = table->schema();

      // Map the provided column list (or the full schema) to positions.
      std::vector<int> positions;
      if (ins.columns.empty()) {
        for (size_t i = 0; i < schema.size(); ++i) {
          positions.push_back(static_cast<int>(i));
        }
      } else {
        for (const std::string& c : ins.columns) {
          int idx = schema.Find(Lower(c));
          if (idx < 0) {
            return Status::InvalidArgument("unknown column in INSERT: " + c);
          }
          positions.push_back(idx);
        }
      }

      uint64_t inserted = 0;
      for (const auto& value_exprs : ins.values) {
        if (value_exprs.size() != positions.size()) {
          return Status::InvalidArgument("INSERT arity mismatch");
        }
        Row row(schema.size(), Value::Null());
        for (size_t i = 0; i < positions.size(); ++i) {
          ASSIGN_OR_RETURN(Value v, eval.Eval(*value_exprs[i], empty_scope));
          // Coerce plain string/int literals into DATE columns.
          Type want = schema.column(positions[i]).type;
          if (want == Type::kDate && v.type() == Type::kString) {
            ASSIGN_OR_RETURN(int64_t days, ParseDate(v.AsString()));
            v = Value::Date(days);
          } else if (want == Type::kDate && v.type() == Type::kInt64) {
            v = Value::Date(v.AsInt());
          } else if (want == Type::kDouble && v.type() == Type::kInt64) {
            v = Value::Double(v.AsDouble());
          }
          row[positions[i]] = std::move(v);
        }
        RETURN_IF_ERROR(table->Append(row, cost));
        ++inserted;
      }
      RETURN_IF_ERROR(table->FinishBulkLoad(cost));
      return AffectedResult(inserted);
    }

    case Statement::Kind::kDelete: {
      const DeleteStmt& del = *stmt.del;
      ASSIGN_OR_RETURN(Table * table, GetTable(del.table_name));
      Schema schema = table->schema();
      uint64_t affected = 0;
      RETURN_IF_ERROR(table->Rewrite(
          [&](Row* row, bool* modified) -> Result<bool> {
            (void)modified;
            if (!del.where) return false;  // delete all
            EvalScope scope{&schema, row, nullptr};
            ASSIGN_OR_RETURN(bool match, eval.EvalBool(*del.where, scope));
            return !match;
          },
          cost, &affected));
      return AffectedResult(affected);
    }

    case Statement::Kind::kUpdate: {
      const UpdateStmt& upd = *stmt.update;
      ASSIGN_OR_RETURN(Table * table, GetTable(upd.table_name));
      Schema schema = table->schema();
      std::vector<std::pair<int, const Expr*>> sets;
      for (const auto& [col, expr] : upd.assignments) {
        int idx = schema.Find(Lower(col));
        if (idx < 0) {
          return Status::InvalidArgument("unknown column in UPDATE: " + col);
        }
        sets.emplace_back(idx, expr.get());
      }
      uint64_t affected = 0;
      RETURN_IF_ERROR(table->Rewrite(
          [&](Row* row, bool* modified) -> Result<bool> {
            EvalScope scope{&schema, row, nullptr};
            if (upd.where) {
              ASSIGN_OR_RETURN(bool match, eval.EvalBool(*upd.where, scope));
              if (!match) return true;
            }
            for (const auto& [idx, expr] : sets) {
              ASSIGN_OR_RETURN(Value v, eval.Eval(*expr, scope));
              (*row)[idx] = std::move(v);
            }
            *modified = true;
            return true;
          },
          cost, &affected));
      return AffectedResult(affected);
    }
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace ironsafe::sql
