// Figure 10: TPC-H speedup (hos vs scs) while hotplugging CPUs on the
// storage server (1, 2, 4, 8, 16). The paper observes that relative
// performance generally improves with more storage CPUs, and that
// lightly-loaded offloads (#2,#3,#4,#5,#7,#10) already win at 1 CPU.

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::CsaOptions;
using engine::SystemConfig;

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  const int kCores[] = {1, 2, 4, 8, 16};

  PrintHeader("Figure 10: secure speedup (hos/scs) vs storage CPUs (SF=" +
              std::to_string(sf) + ")");
  std::printf("%5s", "query");
  for (int cores : kCores) std::printf("  %5d-cpu", cores);
  std::printf("\n");

  // hos does not depend on storage cores; compute it once per query. The
  // storage-cores knob only affects the cost model, so one loaded system
  // serves every sweep point.
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));

  WallClock wall;
  for (const auto& query : tpch::Queries()) {
    system->set_storage_cores(16);
    BENCH_ASSIGN(auto hos, system->Run(SystemConfig::kHos, query.sql));
    std::printf("%5d", query.number);
    for (int cores : kCores) {
      system->set_storage_cores(cores);
      BENCH_ASSIGN(auto scs, system->Run(SystemConfig::kScs, query.sql));
      std::printf("  %8.2fx", hos.cost.elapsed_ms() / scs.cost.elapsed_ms());
    }
    std::printf("\n");
  }
  system->set_storage_cores(16);
  std::printf("\n");
  PrintWallClock(wall);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
