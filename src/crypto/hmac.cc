#include "crypto/hmac.h"

#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace ironsafe::crypto {

namespace {

template <typename Hash>
Bytes HmacImpl(const Bytes& key, const Bytes& message) {
  constexpr size_t kBlock = Hash::kBlockSize;
  Bytes k = key;
  if (k.size() > kBlock) k = Hash::Hash(k);
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Hash inner;
  inner.Update(ipad);
  inner.Update(message);
  Bytes inner_digest = inner.Final();

  Hash outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Final();
}

}  // namespace

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  return HmacImpl<Sha256>(key, message);
}

Bytes HmacSha512(const Bytes& key, const Bytes& message) {
  return HmacImpl<Sha512>(key, message);
}

bool VerifyHmacSha256(const Bytes& key, const Bytes& message,
                      const Bytes& mac) {
  return ConstantTimeEqual(HmacSha256(key, message), mac);
}

bool VerifyHmacSha512(const Bytes& key, const Bytes& message,
                      const Bytes& mac) {
  return ConstantTimeEqual(HmacSha512(key, message), mac);
}

Bytes HkdfSha256(const Bytes& salt, const Bytes& ikm, const Bytes& info,
                 size_t length) {
  // Extract.
  Bytes prk = HmacSha256(salt.empty() ? Bytes(Sha256::kDigestSize, 0) : salt,
                         ikm);
  // Expand.
  Bytes okm;
  Bytes t;
  uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block = t;
    Append(&block, info);
    block.push_back(counter++);
    t = HmacSha256(prk, block);
    Append(&okm, t);
  }
  okm.resize(length);
  return okm;
}

}  // namespace ironsafe::crypto
