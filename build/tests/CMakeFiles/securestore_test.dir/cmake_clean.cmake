file(REMOVE_RECURSE
  "CMakeFiles/securestore_test.dir/securestore_test.cc.o"
  "CMakeFiles/securestore_test.dir/securestore_test.cc.o.d"
  "securestore_test"
  "securestore_test.pdb"
  "securestore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
