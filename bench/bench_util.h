#ifndef IRONSAFE_BENCH_BENCH_UTIL_H_
#define IRONSAFE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "engine/csa_system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace ironsafe::bench {

/// Default bench scale factor: small enough that the full suite runs in
/// CI time, large enough that per-query behaviour differentiates. All
/// harnesses accept an SF override as argv[1].
inline constexpr double kDefaultScaleFactor = 0.002;
inline constexpr uint64_t kSeed = 19940101;

inline double ArgScaleFactor(int argc, char** argv) {
  if (argc > 1) {
    double sf = std::atof(argv[1]);
    if (sf > 0) return sf;
  }
  return kDefaultScaleFactor;
}

/// Flags shared by every bench harness. The first positional argument is
/// still the scale factor, so `fig6_tpch_speedup 0.01` keeps working.
///
///   --trace-json=<path>   write a Chrome trace_event file on exit
///   --trace-wall          include wall-clock fields in the trace (makes
///                         the file machine-dependent)
///   --trace-detail        include per-worker detail spans (makes the
///                         file dependent on the worker count)
///   --workers=N           cap the morsel thread pool at N workers
///   --clients=N           concurrent client sessions (serving benches)
///   --sessions=N          session count for the serving stress bench
///                         (serve_scale; 0 = the bench's default sweep)
///   --json=<path>         write the machine-readable perf baseline
///                         (BENCH_*.json schema, see BaselineWriter)
///   --quick               truncate sweeps to a smoke-sized subset (the
///                         bench_smoke ctest runs fig6 this way)
struct BenchArgs {
  double scale_factor = kDefaultScaleFactor;
  std::string trace_json;  // empty = tracing off
  bool trace_wall = false;
  bool trace_detail = false;
  int workers = 0;  // 0 = hardware default
  int clients = 8;
  int sessions = 0;  // 0 = bench default
  std::string json;  // empty = no baseline file
  bool quick = false;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  bool saw_sf = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-json=", 13) == 0) {
      args.trace_json = arg + 13;
    } else if (std::strcmp(arg, "--trace-wall") == 0) {
      args.trace_wall = true;
    } else if (std::strcmp(arg, "--trace-detail") == 0) {
      args.trace_detail = true;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      args.workers = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      args.clients = std::atoi(arg + 10);
      if (args.clients < 1) args.clients = 1;
    } else if (std::strncmp(arg, "--sessions=", 11) == 0) {
      args.sessions = std::atoi(arg + 11);
      if (args.sessions < 0) args.sessions = 0;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json = arg + 7;
    } else if (std::strcmp(arg, "--quick") == 0) {
      args.quick = true;
    } else if (!saw_sf) {
      double sf = std::atof(arg);
      if (sf > 0) {
        args.scale_factor = sf;
        saw_sf = true;
      } else {
        std::fprintf(stderr, "unknown bench argument: %s\n", arg);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown bench argument: %s\n", arg);
      std::exit(2);
    }
  }
  if (args.workers > 0) common::ThreadPool::set_max_workers(args.workers);
  return args;
}

/// Installs a session tracer for the lifetime of the bench when
/// `--trace-json` was given, and writes the Chrome trace (plus a snapshot
/// of the global counter registry) when the harness returns. With no
/// trace path this is inert: no tracer is installed and the hot path
/// takes its untraced branch.
class BenchTracer {
 public:
  explicit BenchTracer(const BenchArgs& args) : args_(args) {
    if (!args_.trace_json.empty()) {
      tracer_ = std::make_unique<obs::Tracer>();
      scope_ = std::make_unique<obs::ScopedTracer>(tracer_.get());
    }
  }

  ~BenchTracer() {
    if (tracer_ == nullptr) return;
    scope_.reset();  // uninstall before exporting
    obs::ExportOptions opts;
    opts.include_wall = args_.trace_wall;
    opts.include_detail = args_.trace_detail;
    opts.metrics = &obs::MetricsRegistry::Global();
    Status st = tracer_->WriteChromeTrace(args_.trace_json, opts);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return;
    }
    std::printf("trace written: %s (%zu spans)\n", args_.trace_json.c_str(),
                tracer_->span_count());
  }

  BenchTracer(const BenchTracer&) = delete;
  BenchTracer& operator=(const BenchTracer&) = delete;

 private:
  BenchArgs args_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::ScopedTracer> scope_;
};

/// Builds a CSA testbed loaded with TPC-H data at `sf`.
inline Result<std::unique_ptr<engine::CsaSystem>> MakeLoadedSystem(
    double sf, engine::CsaOptions options = {}) {
  options.scale_factor = sf;
  auto system = engine::CsaSystem::Create(options);
  if (!system.ok()) return system.status();
  Status st = (*system)->Load([&](sql::Database* db) {
    tpch::TpchGenerator gen(tpch::TpchConfig{sf, kSeed});
    return gen.LoadInto(db);
  });
  if (!st.ok()) return st;
  return std::move(*system);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Real (wall-clock) elapsed time, reported alongside the simulated
/// nanoseconds in every figure bench. Simulated results are machine- and
/// thread-count-independent; the wall clock is what morsel parallelism
/// actually improves.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  double ms() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Uniform closing line for every harness: simulated totals appear in the
/// per-query tables above in ms (sim); this reports the real elapsed time
/// in ms (real) with one shared format.
inline void PrintWallClock(const WallClock& wall,
                           const char* scope = "the full sweep") {
  std::printf("wall clock: %.1f ms real for %s\n", wall.ms(), scope);
}

/// FNV-1a constants of the serving benches' response digest. The digest
/// folds every decrypted response byte, so "bit-identical across modes /
/// worker counts" is checkable from one printed value. The offset basis
/// is the historical one these benches shipped with; changing it would
/// invalidate committed transcripts.
inline constexpr uint64_t kDigestOffset = 1469598103934665603ull;
inline constexpr uint64_t kDigestPrime = 1099511628211ull;

/// Folds a byte container (e.g. a decrypted response frame) into an
/// FNV-1a digest. Start from kDigestOffset.
template <typename Bytes>
inline uint64_t DigestBytes(uint64_t digest, const Bytes& bytes) {
  for (unsigned char b : bytes) digest = (digest ^ b) * kDigestPrime;
  return digest;
}

/// p-th percentile by the serving benches' convention: nearest-rank on
/// the sorted sample (sorts `v` in place), 0 for an empty sample.
inline sim::SimNanos Percentile(std::vector<sim::SimNanos>& v, int p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = std::min(v.size() - 1, (v.size() * p) / 100);
  return v[idx];
}

/// Collects per-query measurements and writes the machine-readable perf
/// baseline committed as `BENCH_fig6.json` / `BENCH_fig9.json` and
/// validated by the `bench_smoke` ctest. Schema (docs/EXPERIMENTS.md):
///
///   {"version": 1,
///    "benchmark": "<harness name>",
///    "scale_factor": <sf>,
///    "queries": {
///      "<query>": {"sim_cycles": N, "wall_ms": X, "workers": N,
///                  "row_sim_cycles": N, "row_wall_ms": X}, ...}}
///
/// `sim_cycles` is the cost model's simulated elapsed time converted to
/// host cycles at the paper profile's 3.7 GHz — integral and identical on
/// every machine. `wall_ms` is real elapsed time for the same run: it is
/// machine-dependent and committed for trend reading, never CI-gated.
/// The `row_*` pair, when present, is the same query re-run on the legacy
/// row-at-a-time engine, so the committed file carries the before/after
/// evidence for the vectorized engine in one place.
class BaselineWriter {
 public:
  BaselineWriter(const BenchArgs& args, std::string benchmark)
      : path_(args.json),
        benchmark_(std::move(benchmark)),
        scale_factor_(args.scale_factor),
        workers_(common::ThreadPool::EffectiveWorkers(
            std::numeric_limits<int>::max())) {}

  ~BaselineWriter() { Write(); }

  BaselineWriter(const BaselineWriter&) = delete;
  BaselineWriter& operator=(const BaselineWriter&) = delete;

  /// Simulated nanoseconds -> host cycles at the paper profile's clock.
  static uint64_t SimCycles(sim::SimNanos sim_ns) {
    double ghz = sim::HardwareProfile::Paper().host_cpu.ghz;
    return static_cast<uint64_t>(
        std::llround(static_cast<double>(sim_ns) * ghz));
  }

  /// Records the default-engine (vectorized) measurement for `query`.
  void Add(const std::string& query, sim::SimNanos sim_ns, double wall_ms) {
    Entry& e = Find(query);
    e.sim_cycles = SimCycles(sim_ns);
    e.wall_ms = wall_ms;
  }

  /// Records the row-engine re-run of `query` (the "before" column).
  void AddRow(const std::string& query, sim::SimNanos sim_ns,
              double wall_ms) {
    Entry& e = Find(query);
    e.has_row = true;
    e.row_sim_cycles = SimCycles(sim_ns);
    e.row_wall_ms = wall_ms;
  }

 private:
  struct Entry {
    std::string query;
    uint64_t sim_cycles = 0;
    double wall_ms = 0;
    bool has_row = false;
    uint64_t row_sim_cycles = 0;
    double row_wall_ms = 0;
  };

  Entry& Find(const std::string& query) {
    for (Entry& e : entries_) {
      if (e.query == query) return e;
    }
    entries_.push_back(Entry{});
    entries_.back().query = query;
    return entries_.back();
  }

  static void AppendEscaped(std::string* out, const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') out->push_back('\\');
      out->push_back(c);
    }
  }

  void Write() {
    if (path_.empty() || entries_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "baseline export failed: cannot open %s\n",
                   path_.c_str());
      return;
    }
    std::string name;
    AppendEscaped(&name, benchmark_);
    std::fprintf(f, "{\n  \"version\": 1,\n  \"benchmark\": \"%s\",\n",
                 name.c_str());
    std::fprintf(f, "  \"scale_factor\": %g,\n  \"queries\": {\n",
                 scale_factor_);
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::string key;
      AppendEscaped(&key, e.query);
      std::fprintf(f,
                   "    \"%s\": {\"sim_cycles\": %llu, \"wall_ms\": %.3f, "
                   "\"workers\": %d",
                   key.c_str(), static_cast<unsigned long long>(e.sim_cycles),
                   e.wall_ms, workers_);
      if (e.has_row) {
        std::fprintf(f, ", \"row_sim_cycles\": %llu, \"row_wall_ms\": %.3f",
                     static_cast<unsigned long long>(e.row_sim_cycles),
                     e.row_wall_ms);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("baseline written: %s (%zu queries)\n", path_.c_str(),
                entries_.size());
  }

  std::string path_;
  std::string benchmark_;
  double scale_factor_;
  int workers_;
  std::vector<Entry> entries_;
};

inline void Die(const Status& status) {
  std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
  std::exit(1);
}

#define BENCH_CONCAT_INNER(a, b) a##b
#define BENCH_CONCAT(a, b) BENCH_CONCAT_INNER(a, b)

#define BENCH_ASSIGN(decl, expr)                                       \
  auto BENCH_CONCAT(_bench_r_, __LINE__) = (expr);                     \
  if (!BENCH_CONCAT(_bench_r_, __LINE__).ok())                         \
    ::ironsafe::bench::Die(BENCH_CONCAT(_bench_r_, __LINE__).status()); \
  decl = std::move(*BENCH_CONCAT(_bench_r_, __LINE__))

}  // namespace ironsafe::bench

#endif  // IRONSAFE_BENCH_BENCH_UTIL_H_
