file(REMOVE_RECURSE
  "libironsafe_sql.a"
)
