#ifndef IRONSAFE_CRYPTO_AEAD_H_
#define IRONSAFE_CRYPTO_AEAD_H_

#include "common/bytes.h"
#include "common/result.h"

namespace ironsafe::crypto {

/// Authenticated encryption with associated data built as
/// AES-256-CTR + HMAC-SHA-256 in encrypt-then-MAC composition.
///
/// Wire format of Seal(): nonce(16) || ciphertext || tag(32).
/// The MAC covers nonce || aad_len(u64 LE) || aad || ciphertext, which
/// makes the (aad, ciphertext) pairing unambiguous.
class Aead {
 public:
  static constexpr size_t kKeySize = 64;  // 32B cipher key + 32B MAC key
  static constexpr size_t kNonceSize = 16;
  static constexpr size_t kTagSize = 32;
  static constexpr size_t kOverhead = kNonceSize + kTagSize;

  /// `key` must be kKeySize bytes (use crypto::HkdfSha256 to derive).
  static Result<Aead> Create(const Bytes& key);

  /// Encrypts and authenticates. `nonce` must be unique per key.
  Result<Bytes> Seal(const Bytes& nonce, const Bytes& aad,
                     const Bytes& plaintext) const;

  /// Verifies and decrypts; fails with Corruption on any tampering.
  Result<Bytes> Open(const Bytes& aad, const Bytes& sealed) const;

  /// Overwrites both keys with zeros. Seal/Open afterwards would operate
  /// under the all-zero key, so callers must gate them out (see
  /// net::SecureChannel::Close).
  void Zeroize();

 private:
  Aead(Bytes enc_key, Bytes mac_key)
      : enc_key_(std::move(enc_key)), mac_key_(std::move(mac_key)) {}

  Bytes enc_key_;
  Bytes mac_key_;
};

}  // namespace ironsafe::crypto

#endif  // IRONSAFE_CRYPTO_AEAD_H_
