// Figure 8: relative cost breakdown of running each TPC-H query with
// IronSafe (scs). "ndp" is the vanilla near-data-processing work
// (compute + disk); the security overheads split into freshness
// verification (the dominant cost in the paper), decryption, and
// channel/other. The paper notes most overhead comes from guaranteeing
// freshness of pages read from untrusted storage.

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::SystemConfig;

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));

  PrintHeader("Figure 8: IronSafe (scs) per-query cost breakdown (SF=" +
              std::to_string(sf) + ")");
  std::printf("%5s %10s %8s %11s %9s %9s %7s\n", "query", "total(ms)",
              "ndp%", "freshness%", "decrypt%", "network%", "other%");

  WallClock wall;
  for (const auto& query : tpch::Queries()) {
    BENCH_ASSIGN(auto scs, system->Run(SystemConfig::kScs, query.sql));
    const sim::CostModel& c = scs.cost;
    double total = static_cast<double>(c.elapsed_ns());
    double ndp = 100.0 * static_cast<double>(c.compute_ns() + c.disk_ns()) / total;
    double fresh = 100.0 * static_cast<double>(c.freshness_ns()) / total;
    double decrypt = 100.0 * static_cast<double>(c.decrypt_ns()) / total;
    double network = 100.0 * static_cast<double>(c.network_ns()) / total;
    double other = 100.0 - ndp - fresh - decrypt - network;
    std::printf("%5d %10.3f %7.1f%% %10.1f%% %8.1f%% %8.1f%% %6.1f%%\n",
                query.number, c.elapsed_ms(), ndp, fresh, decrypt, network,
                other);
  }
  std::printf("\n(paper: most overhead comes from freshness verification;\n"
              " data transfer of filtered records is comparatively small)\n");
  PrintWallClock(wall);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
