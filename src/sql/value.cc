#include "sql/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace ironsafe::sql {

std::string_view TypeName(Type t) {
  switch (t) {
    case Type::kNull:
      return "NULL";
    case Type::kBool:
      return "BOOL";
    case Type::kInt64:
      return "INT64";
    case Type::kDouble:
      return "DOUBLE";
    case Type::kString:
      return "STRING";
    case Type::kDate:
      return "DATE";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type_) {
    case Type::kNull:
      return "NULL";
    case Type::kBool:
      return int_ ? "TRUE" : "FALSE";
    case Type::kInt64:
      return std::to_string(int_);
    case Type::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4f", double_);
      return buf;
    }
    case Type::kString:
      return "'" + str_ + "'";
    case Type::kDate:
      return "DATE '" + FormatDate(int_) + "'";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (IsNumeric() && other.IsNumeric()) {
    if (type_ == Type::kDouble || other.type_ == Type::kDouble) {
      double a = AsDouble(), b = other.AsDouble();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    if (int_ < other.int_) return -1;
    if (int_ > other.int_) return 1;
    return 0;
  }
  if (type_ == Type::kString && other.type_ == Type::kString) {
    return str_.compare(other.str_);
  }
  if (type_ == Type::kBool && other.type_ == Type::kBool) {
    return static_cast<int>(int_) - static_cast<int>(other.int_);
  }
  // Type mismatch: deterministic order by type id.
  return static_cast<int>(type_) - static_cast<int>(other.type_);
}

size_t Value::Hash() const {
  switch (type_) {
    case Type::kNull:
      return 0x9e3779b9;
    case Type::kBool:
      return std::hash<int64_t>()(int_ ? 1 : 0) ^ 0x1234;
    case Type::kInt64:
    case Type::kDate:
      // Hash integers through double when the value is integral so that
      // Int(3) and Double(3.0) hash identically (they compare equal).
      return std::hash<double>()(static_cast<double>(int_));
    case Type::kDouble:
      return std::hash<double>()(double_);
    case Type::kString:
      return std::hash<std::string>()(str_);
  }
  return 0;
}

void Value::Serialize(Bytes* out) const {
  out->push_back(static_cast<uint8_t>(type_));
  switch (type_) {
    case Type::kNull:
      break;
    case Type::kBool:
      out->push_back(int_ ? 1 : 0);
      break;
    case Type::kInt64:
    case Type::kDate:
      PutU64(out, static_cast<uint64_t>(int_));
      break;
    case Type::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double_));
      std::memcpy(&bits, &double_, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case Type::kString:
      PutLengthPrefixed(out, str_);
      break;
  }
}

Result<Value> Value::Deserialize(ByteReader* reader) {
  ASSIGN_OR_RETURN(Bytes tag, reader->ReadBytes(1));
  Type t = static_cast<Type>(tag[0]);
  switch (t) {
    case Type::kNull:
      return Value::Null();
    case Type::kBool: {
      ASSIGN_OR_RETURN(Bytes b, reader->ReadBytes(1));
      return Value::Bool(b[0] != 0);
    }
    case Type::kInt64: {
      ASSIGN_OR_RETURN(uint64_t v, reader->ReadU64());
      return Value::Int(static_cast<int64_t>(v));
    }
    case Type::kDate: {
      ASSIGN_OR_RETURN(uint64_t v, reader->ReadU64());
      return Value::Date(static_cast<int64_t>(v));
    }
    case Type::kDouble: {
      ASSIGN_OR_RETURN(uint64_t bits, reader->ReadU64());
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case Type::kString: {
      ASSIGN_OR_RETURN(std::string s, reader->ReadLengthPrefixedString());
      return Value::String(std::move(s));
    }
  }
  return Status::Corruption("unknown value type tag");
}

// ---- Date helpers (proleptic Gregorian, civil-days algorithms) ----

namespace {
// Days from civil date; Howard Hinnant's algorithm.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}
}  // namespace

Result<int64_t> ParseDate(std::string_view iso) {
  int y = 0;
  unsigned m = 0, d = 0;
  if (iso.size() != 10 || iso[4] != '-' || iso[7] != '-') {
    return Status::InvalidArgument("date must be YYYY-MM-DD: " +
                                   std::string(iso));
  }
  for (size_t i = 0; i < iso.size(); ++i) {
    if (i == 4 || i == 7) continue;
    if (iso[i] < '0' || iso[i] > '9') {
      return Status::InvalidArgument("bad date: " + std::string(iso));
    }
  }
  y = (iso[0] - '0') * 1000 + (iso[1] - '0') * 100 + (iso[2] - '0') * 10 +
      (iso[3] - '0');
  m = (iso[5] - '0') * 10 + (iso[6] - '0');
  d = (iso[8] - '0') * 10 + (iso[9] - '0');
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("date out of range: " + std::string(iso));
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
  return buf;
}

int32_t DateYear(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}

int32_t DateMonth(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return static_cast<int32_t>(m);
}

int32_t DateDay(int64_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return static_cast<int32_t>(d);
}

int64_t AddMonths(int64_t days, int months) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  int total = y * 12 + static_cast<int>(m) - 1 + months;
  int ny = total / 12;
  unsigned nm = static_cast<unsigned>(total % 12) + 1;
  // Clamp day to the target month's length.
  static const unsigned kDays[] = {31, 28, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};
  unsigned max_d = kDays[nm - 1];
  if (nm == 2 && ((ny % 4 == 0 && ny % 100 != 0) || ny % 400 == 0)) max_d = 29;
  if (d > max_d) d = max_d;
  return DaysFromCivil(ny, nm, d);
}

}  // namespace ironsafe::sql
