// Fixture: a vector kernel that boxes rows. Every mention of the boxed
// Value type inside a vector_kernels file must fire vector-kernel-boxing.
#include <vector>

#include "sql/value.h"

namespace ironsafe::sql {

int CountPositive(const std::vector<Value>& column) {
  int n = 0;
  for (const Value& v : column) {
    if (v.AsDouble() > 0) ++n;
  }
  return n;
}

}  // namespace ironsafe::sql
