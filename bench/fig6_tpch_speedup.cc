// Figure 6: TPC-H query execution-time speedup due to computational
// storage, non-secure (hons vs vcs) and secure (hos vs scs).
// Prints one row per evaluated query plus the secure-case average the
// abstract headlines (paper: 2.3x on average).

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::SystemConfig;

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));

  PrintHeader("Figure 6: TPC-H speedup from computational storage (SF=" +
              std::to_string(sf) + ")");
  std::printf("%5s %14s %14s %14s %14s %10s %10s %10s\n", "query", "hons(ms)",
              "vcs(ms)", "hos(ms)", "scs(ms)", "ns-speedup", "s-speedup",
              "wall(ms)");

  WallClock total;
  double sum_secure_speedup = 0;
  int n = 0;
  for (const auto& query : tpch::Queries()) {
    WallClock wall;
    BENCH_ASSIGN(auto hons, system->Run(SystemConfig::kHons, query.sql));
    BENCH_ASSIGN(auto vcs, system->Run(SystemConfig::kVcs, query.sql));
    BENCH_ASSIGN(auto hos, system->Run(SystemConfig::kHos, query.sql));
    BENCH_ASSIGN(auto scs, system->Run(SystemConfig::kScs, query.sql));

    double nonsecure = hons.cost.elapsed_ms() / vcs.cost.elapsed_ms();
    double secure = hos.cost.elapsed_ms() / scs.cost.elapsed_ms();
    sum_secure_speedup += secure;
    ++n;
    std::printf("%5d %14.3f %14.3f %14.3f %14.3f %9.2fx %9.2fx %10.1f\n",
                query.number, hons.cost.elapsed_ms(), vcs.cost.elapsed_ms(),
                hos.cost.elapsed_ms(), scs.cost.elapsed_ms(), nonsecure,
                secure, wall.ms());
  }
  std::printf("\naverage secure speedup (hos/scs): %.2fx (paper: 2.3x)\n",
              sum_secure_speedup / n);
  PrintWallClock(total);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
