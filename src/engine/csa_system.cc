#include "engine/csa_system.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "net/wire.h"
#include "obs/retry.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sql/parser.h"

namespace ironsafe::engine {

std::string_view SystemConfigName(SystemConfig config) {
  switch (config) {
    case SystemConfig::kHons:
      return "hons";
    case SystemConfig::kHos:
      return "hos";
    case SystemConfig::kVcs:
      return "vcs";
    case SystemConfig::kScs:
      return "scs";
    case SystemConfig::kSos:
      return "sos";
  }
  return "?";
}

void ConfigurablePageStore::ClearCache() {
  lru_.clear();
  cached_.clear();
  cache_hits_ = 0;
  cache_evictions_ = 0;
}

Result<Bytes> ConfigurablePageStore::ChargedRead(uint64_t id,
                                                 sim::CostModel* cost) {
  ASSIGN_OR_RETURN(Bytes page, inner_->ReadPage(id, cost));
  if (remote_ && cost != nullptr) cost->ChargeNetworkBytes(page.size());
  if (enclave_ != nullptr) {
    // The enclave exits to fetch the page (SCONE-style ocall, §6.2). An
    // aborted ecall is re-entered with backoff (the SDK's standard
    // recovery); the retry machinery stays off this hot path until a
    // first plain attempt actually fails.
    Status ecall = enclave_->EnterExit(cost);
    if (!ecall.ok()) {
      RetryPolicy policy = obs::ObservedRetryPolicy("tee.ecall", cost);
      policy.retryable = [](const Status& s) { return s.IsUnavailable(); };
      RETURN_IF_ERROR(ResumeRetryWithBackoff(
          policy, std::move(ecall),
          [&]() -> Status { return enclave_->EnterExit(cost); }));
    }
    // Verifying a page inside the enclave touches the data page plus one
    // Merkle node per tree level. With a working set beyond the EPC, a
    // fraction ≈ 1 - EPC/working_set of those touches fault — the
    // paging behaviour §6.3 attributes to host-only secure execution
    // ("the space is taken up by the Merkle tree ... causes EPC paging").
    if (cost != nullptr && working_set_bytes_ > 0) {
      uint64_t epc = cost->profile().sgx.epc_bytes;
      double fault_fraction =
          1.0 - std::min(1.0, static_cast<double>(epc) /
                                  static_cast<double>(working_set_bytes_));
      uint64_t touches = 1 + merkle_depth_;
      auto faults = static_cast<uint64_t>(
          fault_fraction * static_cast<double>(touches) + 0.5);
      if (faults > 0) IRONSAFE_COUNTER_ADD("tee.sgx.epc_faults", faults);
      for (uint64_t i = 0; i < faults; ++i) cost->ChargeEpcFault();
    } else {
      enclave_->TouchMemory(id, page.size(), cost);
    }
  }
  return page;
}

void ConfigurablePageStore::EvictExcess() {
  while (cache_capacity_ > 0 && cached_.size() > cache_capacity_ &&
         !lru_.empty()) {
    ++cache_evictions_;
    cached_.erase(lru_.back());
    lru_.pop_back();
  }
}

Result<Bytes> ConfigurablePageStore::ReadPage(uint64_t id,
                                              sim::CostModel* cost) {
  if (parallel_slots_ > 0) return ReadPageParallel(id, cost);

  // Page-cache hit: the decrypted page already sits in engine memory, so
  // no device, network, enclave, or crypto work is charged.
  if (cache_capacity_ > 0) {
    auto it = cached_.find(id);
    if (it != cached_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++cache_hits_;
      return it->second.data;
    }
  }

  ASSIGN_OR_RETURN(Bytes page, ChargedRead(id, cost));
  ++pages_read_;
  if (cache_capacity_ > 0) {
    auto [it, inserted] = cached_.try_emplace(id);
    if (inserted) {
      lru_.push_front(id);
      it->second.lru_it = lru_.begin();
      it->second.data = page;
    }
    EvictExcess();
  }
  return page;
}

Result<Bytes> ConfigurablePageStore::ReadPageParallel(uint64_t id,
                                                      sim::CostModel* cost) {
  // Accesses are filed under the calling task's slot; the bracket owner
  // (slot -1, e.g. a scan running on the coordinating thread outside
  // RunTasks) files under slot 0.
  int slot = common::ThreadPool::current_slot();
  if (slot < 0 || slot >= static_cast<int>(access_log_.size())) slot = 0;

  if (cache_capacity_ > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = cached_.find(id);
    if (it != cached_.end()) {
      Bytes page = it->second.data;
      lock.unlock();
      access_log_[slot].push_back(PageAccess{id, /*hit=*/true});
      return page;
    }
  }

  ASSIGN_OR_RETURN(Bytes page, ChargedRead(id, cost));
  if (cache_capacity_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = cached_.try_emplace(id);
    if (inserted) {
      lru_.push_front(id);
      it->second.lru_it = lru_.begin();
      it->second.data = page;
    }
  }
  access_log_[slot].push_back(PageAccess{id, /*hit=*/false});
  return page;
}

void ConfigurablePageStore::BeginParallelRead(int slots) {
  parallel_slots_ = std::max(1, slots);
  access_log_.assign(parallel_slots_, {});
}

void ConfigurablePageStore::EndParallelRead() {
  // Replay the recorded accesses in task order — the order the
  // equivalent serial scan produces — so LRU recency, the hit/read
  // counters and evictions are independent of the real thread schedule.
  // Eviction is deferred to the end of the bracket: during the scan
  // every fetched page stays resident (morsel ranges are disjoint, each
  // page is touched once), so the frozen cache is also a correct
  // working set.
  for (const auto& log : access_log_) {
    for (const PageAccess& a : log) {
      if (a.hit) {
        ++cache_hits_;
      } else {
        ++pages_read_;
      }
      auto it = cached_.find(a.id);
      if (it != cached_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      }
    }
  }
  EvictExcess();
  access_log_.clear();
  parallel_slots_ = 0;
}

std::shared_ptr<const sql::ColumnBatch> ConfigurablePageStore::CachedBatch(
    uint64_t id) {
  // No LRU touch and no counter: the caller already went through
  // ReadPage for this id, which did both. Locked unconditionally — the
  // vectorized scan calls this inside parallel brackets.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cached_.find(id);
  return it != cached_.end() ? it->second.batch : nullptr;
}

void ConfigurablePageStore::CacheBatch(
    uint64_t id, std::shared_ptr<const sql::ColumnBatch> batch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cached_.find(id);
  if (it != cached_.end()) it->second.batch = std::move(batch);
}

Status ConfigurablePageStore::WritePage(uint64_t id, const Bytes& page,
                                        sim::CostModel* cost) {
  auto it = cached_.find(id);
  if (it != cached_.end()) {
    lru_.erase(it->second.lru_it);
    cached_.erase(it);
  }
  if (remote_ && cost != nullptr) cost->ChargeNetworkBytes(page.size());
  return inner_->WritePage(id, page, cost);
}

CsaSystem::CsaSystem(const CsaOptions& options)
    : options_(options),
      host_machine_(ToBytes("ironsafe-host-platform")),
      manufacturer_(ToBytes("ironsafe-device-manufacturer")),
      storage_device_(ToBytes("ironsafe-storage-lx2160a"), manufacturer_,
                      tee::StorageNodeConfig{"storage-1", "eu-west-1", 3}),
      storage_ta_(&storage_device_),
      plain_store_(&plain_disk_),
      channel_drbg_(ToBytes("csa-channel-drbg")) {
  host_enclave_ =
      host_machine_.LoadEnclave("host-engine", ToBytes("ironsafe host engine v3"));
  storage_device_.Boot(
      {{"BL2", ToBytes("bl2 v3")},
       {"TrustedOS", ToBytes("op-tee 3.4")},
       {"NormalWorld", ToBytes("linux 5.4.3 + ironsafe storage engine v3")}});
}

Result<std::unique_ptr<CsaSystem>> CsaSystem::Create(
    const CsaOptions& options) {
  auto system = std::unique_ptr<CsaSystem>(new CsaSystem(options));
  ASSIGN_OR_RETURN(system->secure_store_,
                   securestore::SecureStore::Create(&system->secure_disk_,
                                                    &system->storage_ta_));
  system->secure_page_store_ =
      std::make_unique<sql::SecurePageStore>(system->secure_store_.get());
  system->plain_access_ =
      std::make_unique<ConfigurablePageStore>(&system->plain_store_);
  system->secure_access_ =
      std::make_unique<ConfigurablePageStore>(system->secure_page_store_.get());
  system->plain_db_ = sql::Database::CreatePaged(system->plain_access_.get());
  system->secure_db_ = sql::Database::CreatePaged(system->secure_access_.get());
  return system;
}

Status CsaSystem::Load(const std::function<Status(sql::Database*)>& loader) {
  RETURN_IF_ERROR(loader(plain_db_.get()));
  RETURN_IF_ERROR(loader(secure_db_.get()));

  // Preserve the paper's database:EPC pressure ratio (§6.1: ~3 GB of
  // TPC-H against a 96 MiB EPC, i.e. ~32:1) at this scale factor.
  if (options_.scale_epc_to_data) {
    uint64_t data_bytes = secure_store_->num_pages() * 4096;
    options_.hardware.sgx.epc_bytes =
        std::max<uint64_t>(16 * 4096, data_bytes * 96 / 3072);
  }
  uint64_t data_bytes = secure_store_->num_pages() * 4096;
  uint64_t tree_bytes = secure_store_->num_pages() * 96;  // leaf + inner MACs
  secure_access_->set_secure_profile(secure_store_->merkle_depth(),
                                     data_bytes + tree_bytes);
  return Status::OK();
}

sql::ExecOptions CsaSystem::StorageExecOptions() const {
  sql::ExecOptions opts;
  opts.site = sim::Site::kStorage;
  opts.parallelism = options_.storage_cores;
  opts.memory_cap_bytes = options_.storage_memory_bytes;
  opts.engine = options_.engine;
  opts.oblivious = options_.oblivious;
  return opts;
}

Result<QueryOutcome> CsaSystem::Run(SystemConfig config,
                                    const std::string& sql) {
  switch (config) {
    case SystemConfig::kHons:
      return RunHostOnly(sql, /*secure=*/false);
    case SystemConfig::kHos:
      return RunHostOnly(sql, /*secure=*/true);
    case SystemConfig::kVcs:
      return RunSplit(sql, /*secure=*/false);
    case SystemConfig::kScs:
      return RunSplit(sql, /*secure=*/true);
    case SystemConfig::kSos:
      return RunStorageOnly(sql);
  }
  return Status::InvalidArgument("unknown system configuration");
}

Status CsaSystem::ExecuteHostOnly(const std::string& sql, bool secure,
                                  QueryOutcome* outcome) {
  sql::Database* db = secure ? secure_db_.get() : plain_db_.get();
  ConfigurablePageStore* access =
      secure ? secure_access_.get() : plain_access_.get();

  access->ResetCounters();
  access->ClearCache();
  access->set_cache_bytes(64ull << 30);  // host RAM holds the page cache
  access->set_remote(true);  // pages cross the network (NFS, §6.1)
  if (secure) {
    // Secure-store verification happens on the host CPU; the host engine
    // runs inside the enclave.
    secure_store_->set_site(sim::Site::kHost);
    access->set_enclave(host_enclave_.get());
    host_enclave_->ClearMemory();
  }

  sql::ExecOptions opts;  // host site
  opts.parallelism = options_.host_parallelism;
  opts.engine = options_.engine;
  opts.oblivious = options_.oblivious;
  obs::SpanGuard exec_span("host-execute", "engine", &outcome->cost);
  auto result = db->Execute(sql, &outcome->cost, opts);
  exec_span.Tag("pages_read", static_cast<int64_t>(access->pages_read()));
  exec_span.Tag("cache_hits", static_cast<int64_t>(access->cache_hits()));
  exec_span.Close();

  access->set_remote(false);
  access->set_enclave(nullptr);
  if (secure) secure_store_->set_site(sim::Site::kStorage);
  RETURN_IF_ERROR(result.status());

  outcome->result = std::move(*result);
  outcome->host_pages_read = access->pages_read();
  return Status::OK();
}

Result<QueryOutcome> CsaSystem::RunHostOnly(const std::string& sql,
                                            bool secure) {
  QueryOutcome outcome;
  outcome.cost = sim::CostModel(options_.hardware);
  obs::SpanGuard query_span("query", "engine", &outcome.cost);
  query_span.Tag("config", SystemConfigName(secure ? SystemConfig::kHos
                                                   : SystemConfig::kHons));
  RETURN_IF_ERROR(ExecuteHostOnly(sql, secure, &outcome));
  outcome.host_phase_ns = outcome.cost.elapsed_ns();
  return outcome;
}

Result<QueryOutcome> CsaSystem::RunStorageOnly(const std::string& sql) {
  QueryOutcome outcome;
  outcome.cost = sim::CostModel(options_.hardware);
  obs::SpanGuard query_span("query", "engine", &outcome.cost);
  query_span.Tag("config", SystemConfigName(SystemConfig::kSos));
  secure_store_->set_site(sim::Site::kStorage);
  secure_access_->ResetCounters();
  secure_access_->ClearCache();
  secure_access_->set_cache_bytes(options_.storage_memory_bytes);
  secure_access_->set_remote(false);
  secure_access_->set_enclave(nullptr);

  obs::SpanGuard exec_span("storage-execute", "engine", &outcome.cost);
  auto result =
      secure_db_->Execute(sql, &outcome.cost, StorageExecOptions());
  exec_span.Tag("pages_read",
                static_cast<int64_t>(secure_access_->pages_read()));
  exec_span.Tag("cache_hits",
                static_cast<int64_t>(secure_access_->cache_hits()));
  exec_span.Close();
  RETURN_IF_ERROR(result.status());
  outcome.result = std::move(*result);
  outcome.storage_pages_read = secure_access_->pages_read();
  outcome.storage_phase_ns = outcome.cost.elapsed_ns();
  return outcome;
}

Result<QueryOutcome> CsaSystem::RunSplit(const std::string& sql, bool secure) {
  QueryOutcome outcome;
  outcome.cost = sim::CostModel(options_.hardware);
  sql::Database* storage_db = secure ? secure_db_.get() : plain_db_.get();
  ConfigurablePageStore* access =
      secure ? secure_access_.get() : plain_access_.get();

  obs::SpanGuard query_span("query", "engine", &outcome.cost);
  query_span.Tag("config", SystemConfigName(secure ? SystemConfig::kScs
                                                   : SystemConfig::kVcs));

  obs::SpanGuard part_span("partition", "engine", &outcome.cost);
  ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                   sql::ParseSelect(sql));
  PartitionOptions part_options;
  part_options.aggregation_pushdown = options_.aggregation_pushdown;
  ASSIGN_OR_RETURN(PartitionedQuery plan,
                   PartitionQuery(*stmt, *storage_db, part_options));
  part_span.Tag("fragments", static_cast<int64_t>(plan.fragments.size()));
  part_span.Tag("whole_query_offloaded",
                static_cast<int64_t>(plan.whole_query_offloaded ? 1 : 0));
  part_span.Close();

  access->ResetCounters();
  access->ClearCache();
  access->set_cache_bytes(options_.storage_memory_bytes);
  access->set_remote(false);
  access->set_enclave(nullptr);
  if (secure) secure_store_->set_site(sim::Site::kStorage);

  // Secure configurations ship fragments through an authenticated
  // encrypted channel whose key the monitor distributed (§4.2/§5).
  std::unique_ptr<net::SecureChannel> storage_end;
  std::unique_ptr<net::SecureChannel> host_end;
  if (secure) {
    Bytes session_key = channel_drbg_.Generate(32);
    ASSIGN_OR_RETURN(auto pair, net::Handshake::FromSessionKey(session_key));
    host_end = std::move(pair.first);
    storage_end = std::move(pair.second);
  }

  // Phase 1: near-data fragments on the storage engine.
  obs::SpanGuard storage_span("storage-phase", "engine", &outcome.cost);
  auto host_db = sql::Database::CreateInMemory();
  Status storage_status = Status::OK();
  for (const auto& frag : plan.fragments) {
    // Injected storage-node outage mid-query: abandon the split plan and
    // degrade to host-side execution below.
    if (sim::FaultAt(sim::fault_site::kEngineStorageDown)) {
      storage_status =
          Status::Unavailable("injected: storage node down before fragment " +
                              frag.dest_table);
      break;
    }
    obs::SpanGuard frag_span("fragment", "engine", &outcome.cost);
    frag_span.Tag("source", frag.source_table);
    frag_span.Tag("dest", frag.dest_table);
    ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> frag_stmt,
                     sql::ParseSelect(frag.sql));
    auto frag_result =
        sql::ExecuteSelect(storage_db, *frag_stmt, nullptr, &outcome.cost,
                           StorageExecOptions(), &outcome.stats);
    RETURN_IF_ERROR(frag_result.status());

    // Ship the record batch to the host.
    obs::SpanGuard ship_span("ship", "engine", &outcome.cost);
    Bytes wire = net::SerializeResult(*frag_result);
    outcome.shipped_bytes += wire.size();
    sql::QueryResult shipped;
    if (secure) {
      // One ship round trip, with recovery. A dropped frame leaves both
      // endpoints' state untouched, so a plain re-send heals it; a frame
      // the host *rejects* means the endpoints may have desynced, so the
      // channel pair is re-keyed (monitor-style session-key distribution)
      // before the retry re-sends.
      RetryPolicy ship_policy =
          obs::ObservedRetryPolicy("net.ship", &outcome.cost);
      auto opened = RetryWithBackoff<Bytes>(
          ship_policy, [&]() -> Result<Bytes> {
            ASSIGN_OR_RETURN(Bytes frame,
                             storage_end->Send(wire, &outcome.cost));
            // Receiving on the host enters the enclave once per batch.
            RETURN_IF_ERROR(host_enclave_->EnterExit(&outcome.cost));
            auto result = host_end->Receive(frame, &outcome.cost);
            if (!result.ok()) {
              IRONSAFE_COUNTER_ADD("net.channel.rehandshakes", 1);
              Bytes session_key = channel_drbg_.Generate(32);
              ASSIGN_OR_RETURN(auto pair,
                               net::Handshake::FromSessionKey(session_key));
              host_end = std::move(pair.first);
              storage_end = std::move(pair.second);
            }
            return result;
          });
      RETURN_IF_ERROR(opened.status());
      ASSIGN_OR_RETURN(shipped, net::DeserializeResult(*opened));
    } else {
      outcome.cost.ChargeNetwork(wire.size());
      ASSIGN_OR_RETURN(shipped, net::DeserializeResult(wire));
    }

    // Materialize as an in-memory host table; inside the enclave the
    // rows occupy EPC.
    if (secure) {
      host_enclave_->TouchMemory(
          0x10000 + outcome.shipped_bytes / 4096, wire.size(), &outcome.cost);
    }
    sql::Schema schema = shipped.schema;
    RETURN_IF_ERROR(host_db->CreateTable(frag.dest_table, schema));
    ASSIGN_OR_RETURN(sql::Table * table, host_db->GetTable(frag.dest_table));
    for (auto& row : shipped.rows) {
      RETURN_IF_ERROR(table->Append(row, nullptr));
    }
    ship_span.Tag("bytes", static_cast<int64_t>(wire.size()));
    ship_span.Tag("rows", static_cast<int64_t>(shipped.rows.size()));
    ship_span.Close();
  }
  outcome.storage_pages_read = access->pages_read();
  outcome.storage_phase_ns = outcome.cost.elapsed_ns();
  storage_span.Tag("pages_read", static_cast<int64_t>(access->pages_read()));
  storage_span.Tag("cache_hits", static_cast<int64_t>(access->cache_hits()));
  storage_span.Tag("shipped_bytes",
                   static_cast<int64_t>(outcome.shipped_bytes));
  storage_span.Close();

  // Graceful degradation: with the storage node down, discard the partial
  // split state and run the whole query host-side (the host-only path of
  // Table 2) against the same stores, so the caller still gets the exact
  // result rows — at host-only cost.
  if (!storage_status.ok()) {
    IRONSAFE_COUNTER_ADD("engine.host_fallbacks", 1);
    obs::SpanGuard fallback_span("host-fallback", "engine", &outcome.cost);
    fallback_span.Tag("reason", storage_status.message());
    RETURN_IF_ERROR(ExecuteHostOnly(sql, secure, &outcome));
    fallback_span.Close();
    outcome.host_phase_ns =
        outcome.cost.elapsed_ns() - outcome.storage_phase_ns;
    return outcome;
  }

  // Phase 2: the host engine runs the remainder over the shipped tables.
  obs::SpanGuard host_span("host-phase", "engine", &outcome.cost);
  sql::ExecOptions host_opts;  // host site
  host_opts.engine = options_.engine;
  host_opts.oblivious = options_.oblivious;
  auto host_result =
      sql::ExecuteSelect(host_db.get(), *plan.host_query, nullptr,
                         &outcome.cost, host_opts, &outcome.stats);
  RETURN_IF_ERROR(host_result.status());
  if (secure) host_enclave_->ClearMemory();
  host_span.Close();

  outcome.result = std::move(*host_result);
  outcome.host_phase_ns = outcome.cost.elapsed_ns() - outcome.storage_phase_ns;
  return outcome;
}

}  // namespace ironsafe::engine
