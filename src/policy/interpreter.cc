#include "policy/interpreter.h"

namespace ironsafe::policy {

namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprPtr;
using sql::Value;

enum class Tri { kTrue, kFalse, kResidual };

struct EvalOut {
  Tri tri = Tri::kFalse;
  ExprPtr filter;  // set when tri == kResidual
  std::vector<Obligation> obligations;
  std::string why;  // denial detail
};

EvalOut True() {
  EvalOut out;
  out.tri = Tri::kTrue;
  return out;
}

EvalOut False(std::string why) {
  EvalOut out;
  out.tri = Tri::kFalse;
  out.why = std::move(why);
  return out;
}

/// Bitmap membership test for the reuse map. SQL '/' yields DOUBLE in
/// this dialect, so the test uses modulo arithmetic on integers:
///   (_reuse % 2^(bit+1)) >= 2^bit
ExprPtr ReuseFilter(int bit) {
  int64_t lo = int64_t{1} << bit;
  int64_t hi = int64_t{1} << (bit + 1);
  return Expr::MakeBinary(
      BinOp::kGe,
      Expr::MakeBinary(BinOp::kMod, Expr::MakeColumn(kReuseColumn),
                       Expr::MakeLiteral(Value::Int(hi))),
      Expr::MakeLiteral(Value::Int(lo)));
}

/// access_time <= _expiry.
ExprPtr ExpiryFilter(int64_t access_time) {
  return Expr::MakeBinary(BinOp::kLe,
                          Expr::MakeLiteral(Value::Date(access_time)),
                          Expr::MakeColumn(kExpiryColumn));
}

bool FwSatisfied(const std::string& want, uint32_t actual, uint32_t latest) {
  if (want == "latest") return actual >= latest;
  return actual >= static_cast<uint32_t>(std::stoul(want));
}

/// `force_storage_true` replaces storage-node predicates by TRUE, which
/// implements the host-only fallback probe of EvaluateExec.
Result<EvalOut> Eval(const PolicyExpr& e, const NodeFacts& nodes,
                     const RequestFacts& request, bool force_storage_true) {
  switch (e.kind) {
    case PolicyExpr::Kind::kPredicate:
      switch (e.pred) {
        case PredKind::kSessionKeyIs: {
          if (e.args.size() != 1) {
            return Status::InvalidArgument("sessionKeyIs expects one key");
          }
          return e.args[0] == request.session_key_id
                     ? True()
                     : False("client key does not match " + e.args[0]);
        }
        case PredKind::kStorageLocIs: {
          if (force_storage_true) return True();
          if (!nodes.storage_attested) {
            return False("storage node is not attested");
          }
          for (const std::string& loc : e.args) {
            if (loc == nodes.storage_location) return True();
          }
          return False("storage location " + nodes.storage_location +
                       " not permitted");
        }
        case PredKind::kHostLocIs: {
          if (!nodes.host_attested) return False("host is not attested");
          for (const std::string& loc : e.args) {
            if (loc == nodes.host_location) return True();
          }
          return False("host location " + nodes.host_location +
                       " not permitted");
        }
        case PredKind::kFwVersionStorage: {
          if (force_storage_true) return True();
          if (e.args.size() != 1) {
            return Status::InvalidArgument("fwVersionStorage expects one arg");
          }
          if (!nodes.storage_attested) {
            return False("storage node is not attested");
          }
          return FwSatisfied(e.args[0], nodes.storage_fw,
                             nodes.latest_storage_fw)
                     ? True()
                     : False("storage firmware too old");
        }
        case PredKind::kFwVersionHost: {
          if (e.args.size() != 1) {
            return Status::InvalidArgument("fwVersionHost expects one arg");
          }
          if (!nodes.host_attested) return False("host is not attested");
          return FwSatisfied(e.args[0], nodes.host_fw, nodes.latest_host_fw)
                     ? True()
                     : False("host firmware too old");
        }
        case PredKind::kLe: {
          // le(T, TIMESTAMP): symbolic row-level expiry check.
          EvalOut out;
          out.tri = Tri::kResidual;
          out.filter = ExpiryFilter(request.access_time);
          return out;
        }
        case PredKind::kReuseMap: {
          if (request.reuse_bit < 0) {
            return False("client has no position in the reuse map");
          }
          EvalOut out;
          out.tri = Tri::kResidual;
          out.filter = ReuseFilter(request.reuse_bit);
          return out;
        }
        case PredKind::kLogUpdate: {
          if (e.args.empty()) {
            return Status::InvalidArgument("logUpdate expects a log name");
          }
          EvalOut out;
          out.tri = Tri::kTrue;
          Obligation ob;
          ob.log_name = e.args[0];
          for (size_t i = 1; i < e.args.size(); ++i) {
            if (e.args[i] == "K") ob.log_key = true;
            if (e.args[i] == "Q") ob.log_query = true;
          }
          out.obligations.push_back(std::move(ob));
          return out;
        }
      }
      return Status::Internal("unhandled predicate");

    case PolicyExpr::Kind::kAnd: {
      ASSIGN_OR_RETURN(EvalOut l, Eval(*e.left, nodes, request,
                                       force_storage_true));
      if (l.tri == Tri::kFalse) return l;
      ASSIGN_OR_RETURN(EvalOut r, Eval(*e.right, nodes, request,
                                       force_storage_true));
      if (r.tri == Tri::kFalse) return r;
      EvalOut out;
      for (auto& ob : l.obligations) out.obligations.push_back(std::move(ob));
      for (auto& ob : r.obligations) out.obligations.push_back(std::move(ob));
      if (l.tri == Tri::kTrue && r.tri == Tri::kTrue) {
        out.tri = Tri::kTrue;
        return out;
      }
      out.tri = Tri::kResidual;
      if (l.filter && r.filter) {
        out.filter = Expr::MakeBinary(BinOp::kAnd, std::move(l.filter),
                                      std::move(r.filter));
      } else {
        out.filter = l.filter ? std::move(l.filter) : std::move(r.filter);
      }
      return out;
    }

    case PolicyExpr::Kind::kOr: {
      ASSIGN_OR_RETURN(EvalOut l, Eval(*e.left, nodes, request,
                                       force_storage_true));
      if (l.tri == Tri::kTrue) return l;
      ASSIGN_OR_RETURN(EvalOut r, Eval(*e.right, nodes, request,
                                       force_storage_true));
      if (r.tri == Tri::kTrue) return r;
      if (l.tri == Tri::kFalse && r.tri == Tri::kFalse) {
        return False(l.why + "; " + r.why);
      }
      if (l.tri == Tri::kFalse) return r;
      if (r.tri == Tri::kFalse) return l;
      // Both residual: either filter admits the row.
      EvalOut out;
      out.tri = Tri::kResidual;
      for (auto& ob : l.obligations) out.obligations.push_back(std::move(ob));
      for (auto& ob : r.obligations) out.obligations.push_back(std::move(ob));
      out.filter = Expr::MakeBinary(BinOp::kOr, std::move(l.filter),
                                    std::move(r.filter));
      return out;
    }
  }
  return Status::Internal("unhandled policy expression");
}

}  // namespace

Result<AccessDecision> EvaluateAccess(const PolicyExpr& expr,
                                      const NodeFacts& nodes,
                                      const RequestFacts& request) {
  ASSIGN_OR_RETURN(EvalOut out, Eval(expr, nodes, request,
                                     /*force_storage_true=*/false));
  AccessDecision decision;
  if (out.tri == Tri::kFalse) {
    decision.allowed = false;
    decision.denial_reason = out.why;
    return decision;
  }
  decision.allowed = true;
  decision.row_filter = std::move(out.filter);
  decision.obligations = std::move(out.obligations);
  return decision;
}

Result<ExecDecision> EvaluateExec(const PolicyExpr& expr,
                                  const NodeFacts& nodes,
                                  const RequestFacts& request) {
  ExecDecision decision;
  ASSIGN_OR_RETURN(EvalOut strict, Eval(expr, nodes, request,
                                        /*force_storage_true=*/false));
  if (strict.tri != Tri::kFalse) {
    decision.host_eligible = true;
    decision.storage_eligible = true;
    return decision;
  }
  // Probe: was the storage side the only blocker? Then fall back to
  // host-only execution (paper §4.2: "If none of the storage nodes comply
  // ... the entire query may be processed on the host node itself").
  ASSIGN_OR_RETURN(EvalOut relaxed, Eval(expr, nodes, request,
                                         /*force_storage_true=*/true));
  if (relaxed.tri != Tri::kFalse) {
    decision.host_eligible = true;
    decision.storage_eligible = false;
    decision.detail = "storage node non-compliant: " + strict.why;
    return decision;
  }
  decision.host_eligible = false;
  decision.storage_eligible = false;
  decision.detail = relaxed.why;
  return decision;
}

}  // namespace ironsafe::policy
