#ifndef IRONSAFE_SQL_EXEC_INTERNAL_H_
#define IRONSAFE_SQL_EXEC_INTERNAL_H_

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "obs/access_trace.h"
#include "obs/trace.h"
#include "sql/executor.h"
#include "sql/schema.h"

/// Internals shared by the two execution engines (row-at-a-time volcano
/// in executor.cc, batch-at-a-time columnar in vector_executor.cc).
/// Everything here is engine-neutral: conjunct analysis, expression
/// rewriting, key normalization, cost-charging context and stage spans.
/// Not part of the public sql API.
namespace ironsafe::sql::exec {

// Per-row work constants (cycles) of the row engine; relative magnitudes
// matter, not the absolute values — they seed the simulated CPU cost of
// operators.
constexpr uint64_t kScanRowCycles = 180;
constexpr uint64_t kFilterCycles = 80;
constexpr uint64_t kJoinBuildCycles = 180;
constexpr uint64_t kJoinProbeCycles = 220;
constexpr uint64_t kAggUpdateCycles = 200;
constexpr uint64_t kSortCmpCycles = 90;
constexpr uint64_t kProjectCycles = 120;

// Fan-out floors: below these per-worker shares, morsel overhead beats
// the parallel win, so the planner shrinks the worker count. Partition
// boundaries depend only on (work size, worker count), never on thread
// scheduling.
constexpr uint64_t kMinScanUnitsPerWorker = 2;
constexpr uint64_t kMinJoinRowsPerWorker = 512;

// Per-row / per-exchange constants of the oblivious mode
// (oblivious_executor.cc, docs/OBLIVIOUS.md). They sit above the row
// engine's constants because every oblivious step also maintains
// validity flags and staging copies; the real overhead, though, comes
// from the shape-only bounds: full scans with no pushdown, padded
// filters/aggregates and O(n log^2 n) sort networks.
constexpr uint64_t kOblScanRowCycles = 200;
constexpr uint64_t kOblFilterRowCycles = 90;
constexpr uint64_t kOblSortCmpCycles = 120;
constexpr uint64_t kOblMergeRowCycles = 150;
constexpr uint64_t kOblAggRowCycles = 220;
constexpr uint64_t kOblProjectRowCycles = 130;

class ExecSubqueryRunner : public SubqueryRunner {
 public:
  ExecSubqueryRunner(Database* db, sim::CostModel* cost,
                     const ExecOptions& opts)
      : db_(db), cost_(cost), opts_(opts) {
    // Correlated subqueries re-execute per outer row; their stage spans
    // would dwarf the trace without adding structure.
    opts_.trace = false;
  }

  /// Uncorrelated subqueries execute once and are cached (keyed by AST
  /// node); a subquery that fails without the outer scope is correlated
  /// and re-executes per outer row.
  Result<QueryResult> RunSubquery(const SelectStmt& stmt,
                                  const EvalScope* outer) override {
    auto it = cache_.find(&stmt);
    if (it != cache_.end()) return it->second;
    if (!correlated_.count(&stmt)) {
      auto r = ExecuteSelect(db_, stmt, nullptr, cost_, opts_);
      if (r.ok()) {
        cache_.emplace(&stmt, *r);
        return *r;
      }
      correlated_.insert(&stmt);
    }
    return ExecuteSelect(db_, stmt, outer, cost_, opts_);
  }

  bool IsCached(const SelectStmt& stmt) const override {
    return cache_.count(&stmt) > 0;
  }

 private:
  Database* db_;
  sim::CostModel* cost_;
  ExecOptions opts_;
  std::map<const SelectStmt*, QueryResult> cache_;
  std::set<const SelectStmt*> correlated_;
};

/// Shared execution state for one SELECT.
struct Ctx {
  Database* db = nullptr;
  sim::CostModel* cost = nullptr;
  ExecOptions opts;
  ExecStats* stats = nullptr;
  const EvalScope* outer = nullptr;
  std::unique_ptr<ExecSubqueryRunner> runner;
  std::unique_ptr<Evaluator> eval;
  uint64_t pending_cycles = 0;
  /// True when stage spans go to the current thread's tracer. Untraced
  /// runs keep the seed behavior exactly: charges stay batched until the
  /// single flush at query end.
  bool traced = false;
  /// Non-null when access events are recorded (opts.trace on and an
  /// obs::AccessLog installed on the session thread). Subquery
  /// executions inherit trace=false from ExecSubqueryRunner and so are
  /// excluded, matching the span stream.
  obs::AccessLog* access = nullptr;

  void RecordAccess(obs::AccessKind kind, uint64_t a = 0, uint64_t b = 0) {
    if (access != nullptr) access->Record(kind, a, b);
  }

  void Charge(uint64_t cycles) { pending_cycles += cycles; }

  void FlushCharges() {
    if (cost != nullptr && pending_cycles > 0) {
      cost->ChargeParallelCycles(opts.site, pending_cycles, opts.parallelism);
    }
    pending_cycles = 0;
  }

  void TrackMemory(uint64_t bytes) {
    if (stats != nullptr) {
      stats->peak_memory_bytes = std::max(stats->peak_memory_bytes, bytes);
    }
    if (bytes > opts.memory_cap_bytes) {
      uint64_t overflow = bytes - opts.memory_cap_bytes;
      if (stats != nullptr) stats->spill_bytes += overflow;
      if (cost != nullptr) {
        // Spill: write the overflow out and read it back.
        cost->ChargeDiskWrite(overflow);
        cost->ChargeDiskRead(overflow);
      }
    }
  }
};

/// Pipeline-stage span. Batched CPU cycles are flushed to the cost model
/// on both edges so the span's simulated interval covers the stage's CPU
/// work. Flush points are stage boundaries — the same sequence for every
/// worker count — so traced runs stay deterministic; untraced runs skip
/// the flushes and match the seed's charging bit for bit.
class StageSpan {
 public:
  StageSpan(Ctx* ctx, std::string_view name) : ctx_(ctx) {
    if (ctx_->traced) {
      ctx_->FlushCharges();
      id_ = obs::CurrentTracer()->OpenSpan(name, "sql", ctx_->cost);
      open_ = true;
    }
  }
  ~StageSpan() { Close(); }

  void Close() {
    if (open_) {
      ctx_->FlushCharges();
      obs::CurrentTracer()->CloseSpan(id_, ctx_->cost);
      open_ = false;
    }
  }
  void Tag(std::string_view key, int64_t value) {
    if (open_) obs::CurrentTracer()->AddTag(id_, key, value);
  }
  void Tag(std::string_view key, std::string_view value) {
    if (open_) obs::CurrentTracer()->AddTag(id_, key, value);
  }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  Ctx* ctx_;
  int64_t id_ = -1;
  bool open_ = false;
};

// ---- Expression analysis helpers (exec_internal.cc) ----

struct ConjunctInfo {
  const Expr* expr = nullptr;
  std::set<std::string> columns;
  bool has_subquery = false;
  bool consumed = false;
};

void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out);
void CollectColumns(const Expr& e, std::set<std::string>* cols,
                    bool* has_subquery);
bool ResolvableBy(const std::set<std::string>& cols, const Schema& schema);
std::vector<ConjunctInfo> AnalyzeConjuncts(const Expr* where);
bool HasAggregate(const Expr& e);
void CollectAggregates(const Expr& e,
                       std::map<std::string, const Expr*>* aggs);

/// Clones `e`, replacing any subtree whose printed form is in `names`
/// with a column reference of that name (the post-aggregation schema
/// names its columns by printed expression).
ExprPtr RewriteToColumns(const Expr& e, const std::set<std::string>& names);

/// Best-effort static type inference for output schemas.
Type InferType(const Expr& e, const Schema& schema);

/// Normalized grouping/join key: numerics (except dates) collapse to the
/// double bit pattern so INT 3 and DOUBLE 3.0 group/join together;
/// everything else uses Value::Serialize.
Bytes KeyOf(const std::vector<Value>& values);

/// Number of workers for a parallelizable stage of `work` units. The
/// result depends only on the requested fan-out, the pool's worker cap
/// and the work size — never on thread scheduling — so the partition
/// (and therefore row order and merged cost) is reproducible.
int PlanWorkers(const Ctx& ctx, uint64_t work, uint64_t min_per_worker);

// ---- Engine entry points ----

/// The legacy row-at-a-time volcano engine (executor.cc).
Result<QueryResult> ExecuteSelectRow(Database* db, const SelectStmt& stmt,
                                     const EvalScope* outer,
                                     sim::CostModel* cost,
                                     const ExecOptions& opts,
                                     ExecStats* stats);

/// The batch-at-a-time columnar engine (vector_executor.cc).
Result<QueryResult> ExecuteSelectVectorized(Database* db,
                                            const SelectStmt& stmt,
                                            const EvalScope* outer,
                                            sim::CostModel* cost,
                                            const ExecOptions& opts,
                                            ExecStats* stats);

/// The oblivious mode (oblivious_executor.cc): one dummy-padded pipeline
/// entered for either value of opts.engine — the engine only selects the
/// scan decode path (row cursor vs batch decode), which reads the same
/// pages and charges the same constants, so the two variants are
/// bit-identical in rows, stats, cost and access trace.
Result<QueryResult> ExecuteSelectOblivious(Database* db,
                                           const SelectStmt& stmt,
                                           const EvalScope* outer,
                                           sim::CostModel* cost,
                                           const ExecOptions& opts,
                                           ExecStats* stats);

}  // namespace ironsafe::sql::exec

#endif  // IRONSAFE_SQL_EXEC_INTERNAL_H_
