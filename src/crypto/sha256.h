#ifndef IRONSAFE_CRYPTO_SHA256_H_
#define IRONSAFE_CRYPTO_SHA256_H_

#include <cstdint>
#include <cstddef>

#include "common/bytes.h"

namespace ironsafe::crypto {

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// reused after Final() without Reset().
  Bytes Final();

  void Reset();

  /// One-shot convenience.
  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace ironsafe::crypto

#endif  // IRONSAFE_CRYPTO_SHA256_H_
