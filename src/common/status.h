#ifndef IRONSAFE_COMMON_STATUS_H_
#define IRONSAFE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ironsafe {

/// Canonical error codes used across every IronSafe module.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,         ///< stored data failed an integrity check
  kStaleData,          ///< freshness (rollback) verification failed
  kPermissionDenied,   ///< a policy check rejected the operation
  kUnauthenticated,    ///< attestation or key verification failed
  kFailedPrecondition,
  kResourceExhausted,  ///< e.g. simulated EPC or memory cap hit
  kUnimplemented,
  kInternal,
  kUnavailable,        ///< transiently unreachable (dropped frame, node down)
};

/// Returns a stable human-readable name, e.g. "Corruption".
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus a contextual message.
///
/// IronSafe library code never throws; fallible functions return `Status`
/// (or `Result<T>`, see result.h). This mirrors the Arrow/RocksDB idiom.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status StaleData(std::string msg) {
    return Status(StatusCode::kStaleData, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsStaleData() const { return code_ == StatusCode::kStaleData; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsUnauthenticated() const {
    return code_ == StatusCode::kUnauthenticated;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace ironsafe

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::ironsafe::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // IRONSAFE_COMMON_STATUS_H_
