// Linted as src/obs/unordered_clean.cc (an ordered-output file): keyed
// lookups into an unordered_map are fine, and so is iterating through a
// sorting adapter — only bare hash-order walks serialize hash order.
#include <map>
#include <string>
#include <unordered_map>

namespace ironsafe::obs {

std::map<std::string, int> Sorted(
    const std::unordered_map<std::string, int>& m) {
  return {m.begin(), m.end()};  // ironsafe-lint: allow(determinism)
}

std::string Export(const std::unordered_map<std::string, int>& counters) {
  std::string out;
  for (const auto& [k, v] : Sorted(counters)) {
    out += k;
    out += static_cast<char>('0' + v % 10);
  }
  auto it = counters.find("queries");
  if (it != counters.end()) out += it->first;
  return out;
}

}  // namespace ironsafe::obs
