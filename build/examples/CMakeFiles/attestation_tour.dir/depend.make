# Empty dependencies file for attestation_tour.
# This may be replaced when dependencies are built.
