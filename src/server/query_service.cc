#include "server/query_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"

namespace ironsafe::server {

namespace {

Bytes SeedBytes(uint64_t seed) {
  Bytes b = ToBytes("ironsafe query service handshake drbg");
  PutU64(&b, seed);
  return b;
}

}  // namespace

Bytes EncodeStatementRequest(const StatementRequest& request) {
  Bytes out;
  out.push_back(request.insert_expiry.has_value() ? 1 : 0);
  PutU64(&out, static_cast<uint64_t>(request.insert_expiry.value_or(0)));
  out.push_back(request.insert_reuse.has_value() ? 1 : 0);
  PutU64(&out, static_cast<uint64_t>(request.insert_reuse.value_or(0)));
  PutLengthPrefixed(&out, request.sql);
  PutLengthPrefixed(&out, request.execution_policy);
  return out;
}

Result<StatementRequest> DecodeStatementRequest(const Bytes& plain) {
  ByteReader reader(plain);
  StatementRequest request;
  ASSIGN_OR_RETURN(Bytes has_expiry, reader.ReadBytes(1));
  ASSIGN_OR_RETURN(uint64_t expiry, reader.ReadU64());
  if (has_expiry[0] != 0) request.insert_expiry = static_cast<int64_t>(expiry);
  ASSIGN_OR_RETURN(Bytes has_reuse, reader.ReadBytes(1));
  ASSIGN_OR_RETURN(uint64_t reuse, reader.ReadU64());
  if (has_reuse[0] != 0) request.insert_reuse = static_cast<int64_t>(reuse);
  ASSIGN_OR_RETURN(request.sql, reader.ReadLengthPrefixedString());
  ASSIGN_OR_RETURN(request.execution_policy,
                   reader.ReadLengthPrefixedString());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after statement request");
  }
  return request;
}

Bytes EncodeStatementResponse(const StatementResponse& response) {
  Bytes out;
  out.push_back(response.status.ok() ? 1 : 0);
  if (!response.status.ok()) {
    PutU32(&out, static_cast<uint32_t>(response.status.code()));
    PutLengthPrefixed(&out, response.status.message());
    return out;
  }
  PutLengthPrefixed(&out, net::SerializeResult(response.result));
  PutU64(&out, response.monitor_ns);
  PutU64(&out, response.execution_ns);
  out.push_back(response.offloaded ? 1 : 0);
  out.push_back(response.plan_cache_hit ? 1 : 0);
  return out;
}

Result<StatementResponse> DecodeStatementResponse(const Bytes& plain) {
  ByteReader reader(plain);
  StatementResponse response;
  ASSIGN_OR_RETURN(Bytes ok, reader.ReadBytes(1));
  if (ok[0] == 0) {
    ASSIGN_OR_RETURN(uint32_t code, reader.ReadU32());
    ASSIGN_OR_RETURN(std::string message, reader.ReadLengthPrefixedString());
    response.status = Status(static_cast<StatusCode>(code), std::move(message));
    return response;
  }
  ASSIGN_OR_RETURN(Bytes wire, reader.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(response.result, net::DeserializeResult(wire));
  ASSIGN_OR_RETURN(response.monitor_ns, reader.ReadU64());
  ASSIGN_OR_RETURN(response.execution_ns, reader.ReadU64());
  ASSIGN_OR_RETURN(Bytes offloaded, reader.ReadBytes(1));
  response.offloaded = offloaded[0] != 0;
  ASSIGN_OR_RETURN(Bytes hit, reader.ReadBytes(1));
  response.plan_cache_hit = hit[0] != 0;
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after statement response");
  }
  return response;
}

QueryService::QueryService(engine::IronSafeSystem* system,
                           ServiceOptions options)
    : system_(system),
      options_(options),
      handshake_drbg_(SeedBytes(options.handshake_seed)),
      scheduler_(options.limits),
      plan_cache_(options.plan_cache_capacity),
      decode_("decode", 1, &events_),
      authorize_("authorize", 1, &events_),
      execute_("execute", options.execute_slots, &events_),
      encode_("encode", 1, &events_),
      pipeline_window_(std::max<size_t>(2, 2 * options.execute_slots)) {
  decode_.set_runner(
      [this](uint64_t token, sim::SimNanos start) {
        return RunDecode(token, start);
      });
  decode_.set_done(
      [this](uint64_t token, sim::SimNanos end) { DecodeDone(token, end); });
  authorize_.set_runner(
      [this](uint64_t token, sim::SimNanos start) {
        return RunAuthorize(token, start);
      });
  authorize_.set_done(
      [this](uint64_t token, sim::SimNanos end) { AuthorizeDone(token, end); });
  execute_.set_runner(
      [this](uint64_t token, sim::SimNanos start) {
        return RunExecute(token, start);
      });
  execute_.set_done(
      [this](uint64_t token, sim::SimNanos end) { ExecuteDone(token, end); });
  encode_.set_runner(
      [this](uint64_t token, sim::SimNanos start) {
        return RunEncode(token, start);
      });
  encode_.set_done(
      [this](uint64_t token, sim::SimNanos end) { EncodeDone(token, end); });
}

Result<QueryService::ClientSession> QueryService::OpenSession(
    const std::string& client_key_id, uint32_t weight) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return Status::Unavailable("service is draining; no new sessions");
  }
  if (weight == 0) {
    return Status::InvalidArgument(
        "session weight 0 would starve the tenant; weights must be >= 1");
  }
  // Session identity maps onto the monitor's client registry: a key the
  // data producer never registered cannot even open a channel. The
  // registry check and key mint enter the monitor enclave — one
  // transition per session on this path (see OpenSessionBatch).
  if (!system_->monitor()->ClientRegistered(client_key_id)) {
    return Status::Unauthenticated("unknown client key: " + client_key_id);
  }
  serve_cost_.ChargeEnclaveTransition();
  net::Handshake client_side(&handshake_drbg_);
  net::Handshake service_side(&handshake_drbg_);
  ASSIGN_OR_RETURN(net::Handshake::Hello client_hello, client_side.Start());
  ASSIGN_OR_RETURN(net::Handshake::Hello service_hello, service_side.Start());
  ASSIGN_OR_RETURN(std::unique_ptr<net::SecureChannel> client_channel,
                   client_side.Finish(service_hello, /*is_initiator=*/true));
  ASSIGN_OR_RETURN(std::unique_ptr<net::SecureChannel> service_channel,
                   service_side.Finish(client_hello, /*is_initiator=*/false));

  uint64_t id = next_session_id_++;
  Session session;
  session.client_key = client_key_id;
  session.channel = std::move(service_channel);
  session.lane = next_lane_++;
  sessions_.emplace(id, std::move(session));
  if (weight != 1) (void)scheduler_.SetSessionWeight(id, weight);
  ++stats_.sessions_opened;
  IRONSAFE_COUNTER_ADD("server.sessions.opened", 1);
  obs::GetGauge("server.sessions.active")
      .Set(static_cast<int64_t>(stats_.sessions_opened -
                                stats_.sessions_closed));
  return ClientSession{id, std::move(client_channel)};
}

std::vector<Result<QueryService::ClientSession>> QueryService::OpenSessionBatch(
    const std::vector<SessionSpec>& specs) {
  std::vector<Result<ClientSession>> out;
  out.reserve(specs.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    for (size_t i = 0; i < specs.size(); ++i) {
      out.push_back(
          Status::Unavailable("service is draining; no new sessions"));
    }
    return out;
  }
  // One enclave round trip authenticates the whole cohort: the monitor
  // checks the registry and mints a session key for every spec inside a
  // single transition, and the channel pair derives from the minted key
  // (net::Handshake::FromSessionKey) instead of a public-key handshake.
  // This amortizes the per-session costs that dominate open at 10k+
  // sessions.
  serve_cost_.ChargeEnclaveTransition();
  ++stats_.batch_opens;
  IRONSAFE_COUNTER_ADD("server.sessions.batch_opens", 1);
  for (const SessionSpec& spec : specs) {
    if (spec.weight == 0) {
      out.push_back(Status::InvalidArgument(
          "session weight 0 would starve the tenant; weights must be >= 1"));
      continue;
    }
    if (!system_->monitor()->ClientRegistered(spec.client_key_id)) {
      out.push_back(
          Status::Unauthenticated("unknown client key: " + spec.client_key_id));
      continue;
    }
    Bytes session_key = handshake_drbg_.Generate(32);
    auto channels = net::Handshake::FromSessionKey(session_key);
    if (!channels.ok()) {
      out.push_back(channels.status());
      continue;
    }
    uint64_t id = next_session_id_++;
    Session session;
    session.client_key = spec.client_key_id;
    session.channel = std::move(channels->second);
    session.lane = next_lane_++;
    sessions_.emplace(id, std::move(session));
    if (spec.weight != 1) (void)scheduler_.SetSessionWeight(id, spec.weight);
    ++stats_.sessions_opened;
    IRONSAFE_COUNTER_ADD("server.sessions.opened", 1);
    out.push_back(ClientSession{id, std::move(channels->first)});
  }
  obs::GetGauge("server.sessions.active")
      .Set(static_cast<int64_t>(stats_.sessions_opened -
                                stats_.sessions_closed));
  return out;
}

void QueryService::CloseSessionLocked(Session& session, uint64_t session_id,
                                      std::string_view reason) {
  session.closed = true;
  session.channel->Close();
  for (QueuedStatement& evicted : scheduler_.EvictSession(session_id)) {
    sim::SimNanos waited =
        sim_now_ >= evicted.arrival_ns ? sim_now_ - evicted.arrival_ns : 0;
    session.encode_skipped.insert(evicted.seq);
    StageCompletionLocked(
        session, Completion{evicted.seq,
                            Status::Unavailable(std::string(reason)),
                            {},
                            waited,
                            waited,
                            0,
                            0});
    ++stats_.statements_aborted;
    IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
  }
  ++stats_.sessions_closed;
  IRONSAFE_COUNTER_ADD("server.sessions.closed", 1);
  obs::GetGauge("server.sessions.active")
      .Set(static_cast<int64_t>(stats_.sessions_opened -
                                stats_.sessions_closed));
}

Status QueryService::CloseSession(uint64_t session_id) {
  // dispatch_mu_ first: a close never interleaves with an in-flight
  // statement, so every executed statement gets a sealed response and
  // every aborted one provably never ran.
  std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.closed) {
    return Status::NotFound("unknown session: " + std::to_string(session_id));
  }
  CloseSessionLocked(it->second, session_id, "session closed before dispatch");
  return Status::OK();
}

Status QueryService::SetSessionWeight(uint64_t session_id, uint32_t weight) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.closed) {
    return Status::NotFound("unknown session: " + std::to_string(session_id));
  }
  return scheduler_.SetSessionWeight(session_id, weight);
}

Result<uint64_t> QueryService::Submit(uint64_t session_id,
                                      const Bytes& request_frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return Status::Unavailable("service is draining; statement refused");
  }
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.closed) {
    return Status::NotFound("unknown session: " + std::to_string(session_id));
  }
  QueuedStatement item;
  item.session_id = session_id;
  item.seq = it->second.next_seq;
  item.request_frame = request_frame;
  item.arrival_ns = sim_now_;
  Status admitted = scheduler_.Admit(std::move(item));
  if (!admitted.ok()) {
    ++stats_.statements_rejected;
    IRONSAFE_COUNTER_ADD("server.admission.rejected", 1);
    return admitted;
  }
  uint64_t seq = it->second.next_seq++;
  ++stats_.statements_admitted;
  stats_.peak_queue_depth = scheduler_.peak_depth();
  IRONSAFE_COUNTER_ADD("server.admission.accepted", 1);
  obs::GetGauge("server.queue.peak_depth")
      .Set(static_cast<int64_t>(scheduler_.peak_depth()));
  return seq;
}

size_t QueryService::RunUntilIdle() {
  std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
  return options_.mode == ExecutionMode::kPipelined ? RunPipelined()
                                                    : RunSynchronous();
}

// ---------------------------------------------------------------------------
// Pipelined mode
// ---------------------------------------------------------------------------

size_t QueryService::RunPipelined() {
  size_t popped = 0;
  for (;;) {
    // Lazy intake: pop the weighted-fair scheduler only when the decode
    // stage can accept work and the in-flight window has room, so the
    // schedule — not the pipeline — decides order beyond a small
    // pipelining horizon (and the session-drop fault still sees exactly
    // the statements that reached intake).
    std::optional<QueuedStatement> item;
    if (decode_.idle() && inflight_.size() < pipeline_window_) {
      std::lock_guard<std::mutex> lock(mu_);
      item = scheduler_.Next();
    }
    if (item.has_value()) {
      ++popped;
      IntakeStatement(std::move(*item));
      continue;
    }
    if (!events_.pending()) break;
    events_.RunNext();
    std::lock_guard<std::mutex> lock(mu_);
    sim_now_ = events_.now();
  }
  return popped;
}

void QueryService::IntakeStatement(QueuedStatement item) {
  std::optional<uint64_t> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sim::SimNanos now = events_.now();
    sim::SimNanos sched_delay =
        now >= item.arrival_ns ? now - item.arrival_ns : 0;
    stats_.total_sched_delay_ns += sched_delay;
    auto it = sessions_.find(item.session_id);
    if (it == sessions_.end() || it->second.closed) {
      // Session vanished between admission and dispatch.
      if (it != sessions_.end()) {
        it->second.encode_skipped.insert(item.seq);
        StageCompletionLocked(
            it->second,
            Completion{item.seq,
                       Status::Unavailable("session closed before dispatch"),
                       {},
                       sched_delay,
                       sched_delay,
                       0,
                       0});
      }
      ++stats_.statements_aborted;
      IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
      return;
    }
    Session& session = it->second;
    // Injected session drop at dispatch: the tenant disappears while its
    // statement is queued. The victim statement and everything else the
    // session had queued complete with kUnavailable (nothing executed),
    // the channel keys are zeroized, and the client recovers by opening
    // a fresh session and resubmitting.
    if (sim::FaultAt(sim::fault_site::kServerSessionDrop)) {
      IRONSAFE_COUNTER_ADD("server.sessions.injected_drops", 1);
      session.encode_skipped.insert(item.seq);
      StageCompletionLocked(
          session, Completion{item.seq,
                              Status::Unavailable("injected: session dropped"),
                              {},
                              sched_delay,
                              sched_delay,
                              0,
                              0});
      ++stats_.statements_aborted;
      IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
      CloseSessionLocked(session, item.session_id,
                         "injected: session dropped");
      return;
    }
    uint64_t tok = next_token_++;
    Inflight state;
    state.session_id = item.session_id;
    state.seq = item.seq;
    state.request_frame = std::move(item.request_frame);
    state.arrival_ns = item.arrival_ns;
    state.sched_delay_ns = sched_delay;
    inflight_.emplace(tok, std::move(state));
    token = tok;
  }
  if (token.has_value()) decode_.Enter(*token);
}

sim::SimNanos QueryService::RunDecode(uint64_t token, sim::SimNanos start) {
  Inflight& state = inflight_.find(token)->second;
  sim::CostModel recv_cost;
  obs::SpanGuard span("stage-decode", "server", &recv_cost);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(state.session_id);
    if (it == sessions_.end() || it->second.closed) {
      state.failed = true;
      state.transport = Status::Unavailable("session closed before dispatch");
    } else {
      auto plain = it->second.channel->Receive(state.request_frame, &recv_cost);
      if (!plain.ok()) {
        state.failed = true;
        state.transport = plain.status();
      } else {
        auto decoded = DecodeStatementRequest(*plain);
        if (!decoded.ok()) {
          state.failed = true;
          state.transport = decoded.status();
        } else {
          state.request = std::move(*decoded);
          state.client_key = it->second.client_key;
        }
      }
    }
    serve_cost_.MergeChild(recv_cost);
  }
  span.Close();
  sim::SimNanos duration = recv_cost.elapsed_ns();
  EmitStageSpan("decode", start, start + duration, 0);
  IRONSAFE_COUNTER_ADD("server.pipeline.decoded", 1);
  return duration;
}

void QueryService::DecodeDone(uint64_t token, sim::SimNanos end) {
  Inflight& state = inflight_.find(token)->second;
  if (state.failed) {
    ResolveAborted(token, end);
    return;
  }
  authorize_.Enter(token);
}

sim::SimNanos QueryService::RunAuthorize(uint64_t token, sim::SimNanos start) {
  Inflight& state = inflight_.find(token)->second;
  obs::SpanGuard span("stage-authorize", "server", nullptr);
  uint64_t epoch = system_->monitor()->policy_epoch();
  auto plan = plan_cache_.Lookup(state.client_key,
                                 state.request.execution_policy,
                                 state.request.sql, epoch);
  sim::SimNanos monitor_ns = 0;
  if (plan != nullptr) {
    state.response.plan_cache_hit = true;
    auto key = system_->AuthorizeCached(state.client_key, state.request.sql,
                                        plan->auth.obligations, &monitor_ns);
    if (!key.ok()) {
      state.response.status = key.status();
    } else {
      state.session_key = std::move(*key);
      state.plan = std::move(plan);
    }
  } else {
    auto authorized = system_->Authorize(state.client_key, state.request.sql,
                                         state.request.execution_policy,
                                         state.request.insert_expiry,
                                         state.request.insert_reuse);
    if (!authorized.ok()) {
      state.response.status = authorized.status();
    } else {
      state.fresh = std::move(*authorized);
      state.session_key = state.fresh.auth.session_key;
      monitor_ns = state.fresh.monitor_ns;
      if (state.fresh.auth.rewritten.kind == sql::Statement::Kind::kSelect &&
          plan_cache_.capacity() > 0) {
        state.plan = plan_cache_.Insert(
            state.client_key, state.request.execution_policy,
            state.request.sql, epoch,
            CachedPlan{std::move(state.fresh.auth), state.fresh.monitor_ns});
      }
    }
  }
  state.monitor_ns = monitor_ns;
  span.Close();
  EmitStageSpan("authorize", start, start + monitor_ns, 1);
  IRONSAFE_COUNTER_ADD("server.pipeline.authorized", 1);
  return monitor_ns;
}

void QueryService::AuthorizeDone(uint64_t token, sim::SimNanos) {
  Inflight& state = inflight_.find(token)->second;
  if (!state.response.status.ok()) {
    // Policy rejection: no data path, but the rejection still travels to
    // the client inside the channel as a sealed error response.
    RouteToEncode(token);
    return;
  }
  execute_.Enter(token);
}

sim::SimNanos QueryService::RunExecute(uint64_t token, sim::SimNanos start) {
  Inflight& state = inflight_.find(token)->second;
  obs::SpanGuard span("stage-execute", "server", nullptr);
  const monitor::Authorization& auth =
      state.plan != nullptr ? state.plan->auth : state.fresh.auth;
  auto result = system_->ExecuteAuthorized(auth, state.session_key,
                                           state.request.execution_policy,
                                           state.request.sql,
                                           state.monitor_ns);
  sim::SimNanos duration = 0;
  if (!result.ok()) {
    state.response.status = result.status();
  } else {
    state.response.result = std::move(result->result);
    state.response.monitor_ns = result->monitor_ns;
    state.response.execution_ns = result->execution_ns;
    state.response.offloaded = result->offloaded;
    // The stage occupies the timeline for the data path + proof only;
    // the control-path half already ran in the authorize stage.
    sim::SimNanos total = result->total_ns();
    duration = total >= state.monitor_ns ? total - state.monitor_ns : total;
  }
  span.Close();
  EmitStageSpan("execute", start, start + duration, 2);
  IRONSAFE_COUNTER_ADD("server.pipeline.executed", 1);
  return duration;
}

void QueryService::ExecuteDone(uint64_t token, sim::SimNanos) {
  RouteToEncode(token);
}

void QueryService::RouteToEncode(uint64_t token) {
  Inflight& state = inflight_.find(token)->second;
  bool start_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Session& session = sessions_.find(state.session_id)->second;
    // Channel frames carry per-session send sequence numbers, so Send
    // must happen in submission order even when a later statement clears
    // the execute stage first.
    if (state.seq == session.next_encode_seq) {
      start_now = true;
    } else {
      session.parked_encode.emplace(state.seq, token);
    }
  }
  if (start_now) encode_.Enter(token);
}

sim::SimNanos QueryService::RunEncode(uint64_t token, sim::SimNanos start) {
  Inflight& state = inflight_.find(token)->second;
  sim::CostModel send_cost;
  obs::SpanGuard span("stage-encode", "server", &send_cost);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Session& session = sessions_.find(state.session_id)->second;
    auto frame = session.channel->Send(EncodeStatementResponse(state.response),
                                       &send_cost);
    if (!frame.ok()) {
      state.failed = true;
      state.transport = frame.status();
    } else {
      state.frame = std::move(*frame);
    }
    serve_cost_.MergeChild(send_cost);
  }
  span.Close();
  sim::SimNanos duration = send_cost.elapsed_ns();
  EmitStageSpan("encode", start, start + duration, 3);
  IRONSAFE_COUNTER_ADD("server.pipeline.encoded", 1);
  return duration;
}

void QueryService::EncodeDone(uint64_t token, sim::SimNanos end) {
  auto node = inflight_.extract(token);
  Inflight state = std::move(node.mapped());
  std::optional<uint64_t> next_token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Session& session = sessions_.find(state.session_id)->second;
    ++session.next_encode_seq;
    next_token = AdvanceEncodeLocked(session);
    if (state.failed) {
      StageCompletionLocked(
          session, Completion{state.seq, state.transport, {},
                              state.sched_delay_ns,
                              end - state.arrival_ns, 0, 0});
      ++stats_.statements_aborted;
      IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
    }
  }
  if (!state.failed) ScheduleDelivery(std::move(state), end);
  if (next_token.has_value()) encode_.Enter(*next_token);
}

void QueryService::ScheduleDelivery(Inflight state, sim::SimNanos encode_end) {
  StreamPlan plan = PlanStream(state.frame.size(), options_.stream,
                               serve_cost_.profile());
  if (plan.chunks <= 1) {
    // Small response: the sealed frame ships whole; delivery coincides
    // with the encode stage's end.
    std::lock_guard<std::mutex> lock(mu_);
    Session& session = sessions_.find(state.session_id)->second;
    StageCompletionLocked(
        session, Completion{state.seq, Status::OK(), std::move(state.frame),
                            state.sched_delay_ns,
                            encode_end - state.arrival_ns, 0, 0});
    FinishExecutedLocked(state.response.plan_cache_hit,
                         state.response.monitor_ns,
                         state.response.execution_ns);
    return;
  }

  // Chunked delivery under credit-based flow control. The schedule is
  // computed analytically — chunk transfer times from the network link,
  // chunk i gated on the credit of chunk i-W — and only the terminal
  // event is posted.
  sim::SimNanos extra_stall = 0;
  if (auto stall = sim::FaultAt(sim::fault_site::kServerStreamStall)) {
    // A slow client delays every credit grant; latency-only fault.
    extra_stall = options_.stream.credit_rtt_ns * (1 + stall->param % 8);
    IRONSAFE_COUNTER_ADD("server.stream.injected_stalls", 1);
    plan = PlanStream(state.frame.size(), options_.stream,
                      serve_cost_.profile(), extra_stall);
  }
  std::optional<sim::FaultHit> drop =
      sim::FaultAt(sim::fault_site::kServerMidstreamDrop);

  sim::SimNanos start = encode_end;
  uint32_t chunks = static_cast<uint32_t>(plan.chunks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Session& session = sessions_.find(state.session_id)->second;
    // One downlink per session: streams serialize on it.
    if (session.stream_busy_until > start) start = session.stream_busy_until;
    session.stream_busy_until = start + plan.duration_ns();
    stats_.stream_chunks += plan.chunks;
    stats_.stream_stall_ns += plan.stall_ns;
  }
  IRONSAFE_COUNTER_ADD("server.pipeline.stream.chunks",
                       static_cast<int64_t>(plan.chunks));
  IRONSAFE_COUNTER_ADD("server.pipeline.stream.stall_ns",
                       static_cast<int64_t>(plan.stall_ns));
  EmitStageSpan("stream", start, start + plan.duration_ns(), 4);

  if (drop.has_value()) {
    // The session drops mid-delivery: the statement executed but its
    // result never fully arrived. The completion is kUnavailable and the
    // session closes at the failing chunk's delivery instant.
    IRONSAFE_COUNTER_ADD("server.sessions.injected_midstream_drops", 1);
    size_t drop_chunk = static_cast<size_t>(drop->param % plan.chunks);
    sim::SimNanos drop_at = start + plan.delivery_ns[drop_chunk];
    events_.Post(
        drop_at,
        [this, session_id = state.session_id, seq = state.seq,
         arrival = state.arrival_ns, sched_delay = state.sched_delay_ns,
         delivered = static_cast<uint32_t>(drop_chunk)](sim::SimNanos now) {
          std::lock_guard<std::mutex> lock(mu_);
          Session& session = sessions_.find(session_id)->second;
          if (!session.closed) {
            CloseSessionLocked(session, session_id,
                               "injected: session dropped midstream");
          }
          StageCompletionLocked(
              session,
              Completion{seq,
                         Status::Unavailable(
                             "injected: session dropped midstream"),
                         {},
                         sched_delay,
                         now >= arrival ? now - arrival : 0,
                         delivered,
                         0});
          ++stats_.statements_aborted;
          IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
        });
    return;
  }

  events_.Post(
      start + plan.duration_ns(),
      [this, session_id = state.session_id, seq = state.seq,
       arrival = state.arrival_ns, sched_delay = state.sched_delay_ns,
       stall = plan.stall_ns, chunks, frame = std::move(state.frame),
       cache_hit = state.response.plan_cache_hit,
       monitor_ns = state.response.monitor_ns,
       execution_ns = state.response.execution_ns](sim::SimNanos now) mutable {
        std::lock_guard<std::mutex> lock(mu_);
        Session& session = sessions_.find(session_id)->second;
        StageCompletionLocked(
            session, Completion{seq, Status::OK(), std::move(frame),
                                sched_delay, now >= arrival ? now - arrival : 0,
                                chunks, stall});
        FinishExecutedLocked(cache_hit, monitor_ns, execution_ns);
      });
}

void QueryService::ResolveAborted(uint64_t token, sim::SimNanos end) {
  auto node = inflight_.extract(token);
  Inflight state = std::move(node.mapped());
  std::optional<uint64_t> next_token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Session& session = sessions_.find(state.session_id)->second;
    session.encode_skipped.insert(state.seq);
    next_token = AdvanceEncodeLocked(session);
    StageCompletionLocked(
        session, Completion{state.seq, state.transport, {},
                            state.sched_delay_ns, end - state.arrival_ns, 0,
                            0});
    ++stats_.statements_aborted;
    IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
  }
  if (next_token.has_value()) encode_.Enter(*next_token);
}

std::optional<uint64_t> QueryService::AdvanceEncodeLocked(Session& session) {
  for (;;) {
    auto skipped = session.encode_skipped.find(session.next_encode_seq);
    if (skipped != session.encode_skipped.end()) {
      session.encode_skipped.erase(skipped);
      ++session.next_encode_seq;
      continue;
    }
    auto parked = session.parked_encode.find(session.next_encode_seq);
    if (parked != session.parked_encode.end()) {
      uint64_t token = parked->second;
      session.parked_encode.erase(parked);
      return token;
    }
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Synchronous mode (the pre-pipeline serving path, kept as the bench
// baseline)
// ---------------------------------------------------------------------------

size_t QueryService::RunSynchronous() {
  size_t completed = 0;
  for (;;) {
    std::optional<QueuedStatement> item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      item = scheduler_.Next();
    }
    if (!item.has_value()) break;
    DispatchStatement(*item);
    ++completed;
  }
  return completed;
}

void QueryService::DispatchStatement(const QueuedStatement& item) {
  StatementRequest request;
  std::string client_key;
  sim::SimNanos sched_delay = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sched_delay =
        sim_now_ >= item.arrival_ns ? sim_now_ - item.arrival_ns : 0;
    stats_.total_sched_delay_ns += sched_delay;
    auto it = sessions_.find(item.session_id);
    if (it == sessions_.end() || it->second.closed) {
      // Session vanished between admission and dispatch.
      if (it != sessions_.end()) {
        StageCompletionLocked(
            it->second,
            Completion{item.seq,
                       Status::Unavailable("session closed before dispatch"),
                       {},
                       sched_delay,
                       sched_delay,
                       0,
                       0});
      }
      ++stats_.statements_aborted;
      IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
      return;
    }
    Session& session = it->second;
    if (sim::FaultAt(sim::fault_site::kServerSessionDrop)) {
      IRONSAFE_COUNTER_ADD("server.sessions.injected_drops", 1);
      StageCompletionLocked(
          session, Completion{item.seq,
                              Status::Unavailable("injected: session dropped"),
                              {},
                              sched_delay,
                              sched_delay,
                              0,
                              0});
      ++stats_.statements_aborted;
      IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
      CloseSessionLocked(session, item.session_id,
                         "injected: session dropped");
      return;
    }
    auto plain = session.channel->Receive(item.request_frame, nullptr);
    if (!plain.ok()) {
      StageCompletionLocked(session, Completion{item.seq, plain.status(), {},
                                                sched_delay, sched_delay, 0,
                                                0});
      ++stats_.statements_aborted;
      IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
      return;
    }
    auto decoded = DecodeStatementRequest(*plain);
    if (!decoded.ok()) {
      StageCompletionLocked(session, Completion{item.seq, decoded.status(), {},
                                                sched_delay, sched_delay, 0,
                                                0});
      ++stats_.statements_aborted;
      IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
      return;
    }
    request = std::move(*decoded);
    client_key = session.client_key;
  }

  // Heavy work runs without mu_: concurrent Submit calls stay admitted
  // while the engine executes (dispatch_mu_ already serializes us).
  StatementResponse response = ExecuteRequest(client_key, request);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(item.session_id);
  if (it == sessions_.end()) return;  // cannot happen; sessions are retained
  Session& session = it->second;
  sim::CostModel send_cost;
  auto frame = session.channel->Send(EncodeStatementResponse(response),
                                     &send_cost);
  if (!frame.ok()) {
    StageCompletionLocked(session,
                          Completion{item.seq, frame.status(), {}, sched_delay,
                                     sched_delay + response.total_ns(), 0, 0});
    ++stats_.statements_aborted;
    IRONSAFE_COUNTER_ADD("server.statements.aborted", 1);
    return;
  }
  serve_cost_.MergeChild(send_cost);
  // The pseudo-timeline of the synchronous path: each statement occupies
  // the server for its full serial service time, which is what the
  // pipelined mode's scheduling delays are measured against.
  sim::SimNanos service_ns = response.total_ns() + send_cost.elapsed_ns();
  sim_now_ += service_ns;
  StageCompletionLocked(
      session, Completion{item.seq, Status::OK(), std::move(*frame),
                          sched_delay, sched_delay + service_ns, 0, 0});
  FinishExecutedLocked(response.plan_cache_hit, response.monitor_ns,
                       response.execution_ns);
  // Per-session trace lane: one detail span per statement, excluded from
  // the default (deterministic) export like every other detail span.
  obs::Tracer* tracer = obs::CurrentTracer();
  if (tracer != nullptr) {
    int64_t now_us = tracer->WallNowUs();
    tracer->AddDetailSpan("session-" + std::to_string(item.session_id),
                          "server",
                          response.total_ns() + send_cost.elapsed_ns(),
                          session.lane, now_us, now_us);
  }
}

StatementResponse QueryService::ExecuteRequest(const std::string& client_key,
                                               const StatementRequest& request) {
  StatementResponse response;
  // Null model: the serve-statement span derives its duration from the
  // authorize/query/proof children, exactly like engine "execute".
  obs::SpanGuard serve_span("serve-statement", "server", nullptr);

  uint64_t epoch = system_->monitor()->policy_epoch();
  std::shared_ptr<const CachedPlan> plan = plan_cache_.Lookup(
      client_key, request.execution_policy, request.sql, epoch);
  engine::IronSafeSystem::Authorized fresh;
  Bytes session_key;
  sim::SimNanos monitor_ns = 0;

  if (plan != nullptr) {
    response.plan_cache_hit = true;
    auto key = system_->AuthorizeCached(client_key, request.sql,
                                        plan->auth.obligations, &monitor_ns);
    if (!key.ok()) {
      response.status = key.status();
      return response;
    }
    session_key = std::move(*key);
  } else {
    auto authorized = system_->Authorize(client_key, request.sql,
                                         request.execution_policy,
                                         request.insert_expiry,
                                         request.insert_reuse);
    if (!authorized.ok()) {
      response.status = authorized.status();
      return response;
    }
    fresh = std::move(*authorized);
    session_key = fresh.auth.session_key;
    monitor_ns = fresh.monitor_ns;
    if (fresh.auth.rewritten.kind == sql::Statement::Kind::kSelect &&
        plan_cache_.capacity() > 0) {
      plan = plan_cache_.Insert(client_key, request.execution_policy,
                                request.sql, epoch,
                                CachedPlan{std::move(fresh.auth),
                                           fresh.monitor_ns});
    }
  }

  const monitor::Authorization& auth =
      plan != nullptr ? plan->auth : fresh.auth;
  auto result = system_->ExecuteAuthorized(auth, session_key,
                                           request.execution_policy,
                                           request.sql, monitor_ns);
  if (!result.ok()) {
    response.status = result.status();
    return response;
  }
  response.result = std::move(result->result);
  response.monitor_ns = result->monitor_ns;
  response.execution_ns = result->execution_ns;
  response.offloaded = result->offloaded;
  return response;
}

// ---------------------------------------------------------------------------
// Shared helpers and lifecycle
// ---------------------------------------------------------------------------

void QueryService::StageCompletionLocked(Session& session,
                                         Completion completion) {
  // Ordered emitter: completions become visible in submission order no
  // matter which pipeline stage (or fault path) resolved them first.
  session.staged.emplace(completion.seq, std::move(completion));
  for (auto it = session.staged.begin();
       it != session.staged.end() && it->first == session.next_emit_seq;
       it = session.staged.begin()) {
    session.completions.push_back(std::move(it->second));
    session.staged.erase(it);
    ++session.next_emit_seq;
  }
}

void QueryService::FinishExecutedLocked(bool plan_cache_hit,
                                        sim::SimNanos monitor_ns,
                                        sim::SimNanos execution_ns) {
  ++stats_.statements_executed;
  if (plan_cache_hit) {
    ++stats_.plan_cache_hits;
  } else {
    ++stats_.plan_cache_misses;
  }
  stats_.total_monitor_ns += monitor_ns;
  stats_.total_execution_ns += execution_ns;
  stats_.total_serve_ns = serve_cost_.elapsed_ns();
  IRONSAFE_COUNTER_ADD("server.statements.executed", 1);
}

void QueryService::EmitStageSpan(std::string_view name, sim::SimNanos start,
                                 sim::SimNanos end, int lane) {
  obs::Tracer* tracer = obs::CurrentTracer();
  if (tracer == nullptr) return;
  tracer->AddTimelineSpan(name, "server.pipeline", start, end, lane);
}

std::vector<Completion> QueryService::TakeCompletions(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Completion> out;
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return out;
  out.assign(std::make_move_iterator(it->second.completions.begin()),
             std::make_move_iterator(it->second.completions.end()));
  it->second.completions.clear();
  return out;
}

size_t QueryService::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  size_t flushed = RunUntilIdle();
  IRONSAFE_COUNTER_ADD("server.drain.flushed", flushed);
  return flushed;
}

void QueryService::Shutdown() {
  Drain();
  std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, session] : sessions_) {
    if (session.closed) continue;
    session.closed = true;
    session.channel->Close();
    ++stats_.sessions_closed;
    IRONSAFE_COUNTER_ADD("server.sessions.closed", 1);
  }
  obs::GetGauge("server.sessions.active").Set(0);
}

bool QueryService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

QueryService::Stats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ironsafe::server
