#ifndef IRONSAFE_SERVER_QUERY_SERVICE_H_
#define IRONSAFE_SERVER_QUERY_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/chacha20.h"
#include "engine/ironsafe.h"
#include "net/secure_channel.h"
#include "server/pipeline.h"
#include "server/plan_cache.h"
#include "server/scheduler.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace ironsafe::server {

/// One statement as a client submits it (sealed on its session channel).
struct StatementRequest {
  std::string sql;
  std::string execution_policy;
  std::optional<int64_t> insert_expiry;
  std::optional<int64_t> insert_reuse;
};

Bytes EncodeStatementRequest(const StatementRequest& request);
Result<StatementRequest> DecodeStatementRequest(const Bytes& plain);

/// What the service seals back for one executed statement. `status` is
/// the engine/monitor outcome (a policy rejection travels here, inside
/// the channel); the remaining fields are meaningful only when it is OK.
struct StatementResponse {
  Status status = Status::OK();
  sql::QueryResult result;
  sim::SimNanos monitor_ns = 0;
  sim::SimNanos execution_ns = 0;
  bool offloaded = false;
  bool plan_cache_hit = false;

  sim::SimNanos total_ns() const { return monitor_ns + execution_ns; }
};

Bytes EncodeStatementResponse(const StatementResponse& response);
Result<StatementResponse> DecodeStatementResponse(const Bytes& plain);

/// Terminal record for one submitted statement. `transport` is OK when
/// `response_frame` holds a sealed StatementResponse; it is kUnavailable
/// when the session dropped or closed before the statement ran (the
/// statement did NOT execute — safe to resubmit on a new session), or
/// when the session dropped midstream (the statement DID execute but the
/// response was lost; read-only statements are still safe to resubmit).
/// The latency fields are simulated-timeline measurements: scheduling
/// delay runs from admission to the scheduler pop, end-to-end from
/// admission to response delivery (or to the aborting event).
struct Completion {
  uint64_t seq = 0;
  Status transport = Status::OK();
  Bytes response_frame;
  sim::SimNanos sched_delay_ns = 0;
  sim::SimNanos e2e_ns = 0;
  /// Number of delivery chunks when the response streamed under
  /// credit-based flow control; 0 for single-frame delivery.
  uint32_t stream_chunks = 0;
  /// Time the delivery spent blocked on exhausted credits.
  sim::SimNanos stream_stall_ns = 0;
};

/// How RunUntilIdle processes admitted statements.
enum class ExecutionMode {
  /// Event-driven pipeline on the simulated timeline: decode ->
  /// authorize -> execute -> encode stages interleave across sessions,
  /// responses above the chunk threshold stream with credit-based flow
  /// control. The default.
  kPipelined,
  /// One statement end to end at a time (the pre-pipeline serving path);
  /// kept as the bench comparison baseline.
  kSynchronous,
};

struct ServiceOptions {
  SchedulerLimits limits;
  size_t plan_cache_capacity = 128;
  /// Seeds the DRBG behind every per-session handshake, so a fixed
  /// session-open order yields identical channel keys (and thus
  /// byte-identical frames) run over run.
  uint64_t handshake_seed = 0x5e55104e;
  ExecutionMode mode = ExecutionMode::kPipelined;
  /// Statements that may occupy the execute stage concurrently (on the
  /// simulated timeline; native work still runs one event at a time).
  size_t execute_slots = 4;
  StreamOptions stream;
};

/// Multi-tenant serving front end over one IronSafeSystem (the "many
/// clients" deployment of paper Figure 2): per-session attested secure
/// channels, bounded weighted-fair admission with per-tenant SLO
/// weights, a policy-epoch-keyed plan cache, result streaming with
/// credit-based flow control, and graceful drain.
///
/// Threading model: Submit / TakeCompletions / CloseSession are
/// thread-safe and may be called from concurrent client threads.
/// RunUntilIdle (concurrent callers serialize) drives the event-driven
/// pipeline: stages of *different* statements interleave on the
/// simulated timeline, but their native work runs one event at a time in
/// the deterministic event order, which is what keeps aggregate cost
/// totals and the default trace bit-identical across worker counts: the
/// simulated account depends on the submission schedule, never on
/// thread timing.
class QueryService {
 public:
  QueryService(engine::IronSafeSystem* system, ServiceOptions options);

  /// The client's half of an open session: the service keeps the mirror
  /// channel, so frames sealed on `channel` authenticate at the service
  /// and vice versa.
  struct ClientSession {
    uint64_t id = 0;
    std::unique_ptr<net::SecureChannel> channel;
  };

  /// Authenticates `client_key_id` against the monitor's client registry
  /// (RegisterClient keys) and runs a fresh net::Handshake for the
  /// session; `weight` is the tenant's SLO weight in the weighted-fair
  /// scheduler (gold > silver > bronze). kUnauthenticated for unknown
  /// clients; kInvalidArgument for weight 0; kUnavailable while
  /// draining.
  Result<ClientSession> OpenSession(const std::string& client_key_id,
                                    uint32_t weight = 1);

  /// One session to open as part of a batch.
  struct SessionSpec {
    std::string client_key_id;
    uint32_t weight = 1;
  };

  /// Opens a cohort of sessions in one enclave entry: the monitor
  /// authenticates every key and mints every session key inside a single
  /// transition (net::Handshake::FromSessionKey derives the channel
  /// pair), amortizing the dominant per-session attestation cost at
  /// 10k+ sessions. Result i corresponds to spec i; failures are
  /// per-spec (an unknown key does not fail its cohort).
  std::vector<Result<ClientSession>> OpenSessionBatch(
      const std::vector<SessionSpec>& specs);

  /// Closes a session: zeroizes the service-side channel keys and
  /// completes any still-queued statements with kUnavailable.
  Status CloseSession(uint64_t session_id);

  /// Changes the session's SLO weight for statements admitted from now
  /// on. kInvalidArgument for weight 0 (it would starve the tenant).
  Status SetSessionWeight(uint64_t session_id, uint32_t weight);

  /// Admits one sealed request frame; returns the statement's seq.
  /// kResourceExhausted (retryable backpressure, see common/retry) when
  /// the session quota or global queue bound is hit; kUnavailable while
  /// draining; kNotFound for unknown/closed sessions.
  Result<uint64_t> Submit(uint64_t session_id, const Bytes& request_frame);

  /// Dispatches queued statements in weighted-fair order until the queue
  /// and the pipeline are empty; returns how many statements it popped
  /// from the scheduler. Safe to call from any thread (concurrent
  /// callers serialize); determinism holds whenever the submission
  /// schedule itself is deterministic.
  size_t RunUntilIdle();

  /// Pops every finished completion for the session, submission order.
  std::vector<Completion> TakeCompletions(uint64_t session_id);

  /// Stops admission (new Submit/OpenSession fail kUnavailable), then
  /// executes everything already admitted. Every admitted statement ends
  /// in exactly one completion: nothing is lost, nothing runs twice.
  /// Returns how many queued statements the drain flushed.
  size_t Drain();

  /// Drain + close every session (keys zeroized).
  void Shutdown();

  bool draining() const;

  struct Stats {
    uint64_t sessions_opened = 0;
    uint64_t sessions_closed = 0;
    uint64_t batch_opens = 0;          ///< OpenSessionBatch calls
    uint64_t statements_admitted = 0;
    uint64_t statements_rejected = 0;  ///< admission backpressure
    uint64_t statements_executed = 0;
    uint64_t statements_aborted = 0;   ///< completed kUnavailable
    uint64_t plan_cache_hits = 0;
    uint64_t plan_cache_misses = 0;
    size_t peak_queue_depth = 0;
    sim::SimNanos total_monitor_ns = 0;
    sim::SimNanos total_execution_ns = 0;
    sim::SimNanos total_serve_ns = 0;  ///< response sealing/shipping
    sim::SimNanos total_sched_delay_ns = 0;
    uint64_t stream_chunks = 0;        ///< chunks across streamed responses
    sim::SimNanos stream_stall_ns = 0; ///< flow-control stall, summed
  };
  Stats stats() const;

 private:
  struct Session {
    std::string client_key;
    std::unique_ptr<net::SecureChannel> channel;  // service end
    int lane = 0;          ///< detail-span display lane
    uint64_t next_seq = 0;
    bool closed = false;
    std::deque<Completion> completions;
    // ---- ordered completion emitter ----
    /// Completions whose seq is ahead of next_emit_seq wait here so the
    /// visible completion order is always submission order.
    std::map<uint64_t, Completion> staged;
    uint64_t next_emit_seq = 0;
    // ---- per-session encode barrier (channel frames carry send seqs,
    // so Send must happen in submission order per session) ----
    uint64_t next_encode_seq = 0;
    std::map<uint64_t, uint64_t> parked_encode;  ///< seq -> token
    std::set<uint64_t> encode_skipped;  ///< seqs resolved without a Send
    /// Streams of one session serialize on its downlink.
    sim::SimNanos stream_busy_until = 0;
  };

  /// One statement in flight between the scheduler pop and the encode
  /// stage (pipelined mode).
  struct Inflight {
    uint64_t session_id = 0;
    uint64_t seq = 0;
    Bytes request_frame;
    sim::SimNanos arrival_ns = 0;
    sim::SimNanos sched_delay_ns = 0;
    std::string client_key;
    StatementRequest request;
    StatementResponse response;
    bool failed = false;  ///< terminal before a sealed response
    Status transport = Status::OK();
    std::shared_ptr<const CachedPlan> plan;
    engine::IronSafeSystem::Authorized fresh;
    Bytes session_key;
    sim::SimNanos monitor_ns = 0;
    Bytes frame;  ///< sealed response, produced by the encode stage
  };

  // ---- pipelined mode ----
  size_t RunPipelined();
  /// Pops one statement's worth of intake: session checks, the session
  /// drop fault, then entry into the decode stage.
  void IntakeStatement(QueuedStatement item);
  sim::SimNanos RunDecode(uint64_t token, sim::SimNanos start);
  void DecodeDone(uint64_t token, sim::SimNanos end);
  sim::SimNanos RunAuthorize(uint64_t token, sim::SimNanos start);
  void AuthorizeDone(uint64_t token, sim::SimNanos end);
  sim::SimNanos RunExecute(uint64_t token, sim::SimNanos start);
  void ExecuteDone(uint64_t token, sim::SimNanos end);
  sim::SimNanos RunEncode(uint64_t token, sim::SimNanos start);
  void EncodeDone(uint64_t token, sim::SimNanos end);
  /// Routes a token to the encode stage, honoring the per-session seq
  /// barrier (parks it when an earlier seq has not encoded yet).
  void RouteToEncode(uint64_t token);
  /// Completes a token that never produced a sealed response.
  void ResolveAborted(uint64_t token, sim::SimNanos end);
  /// Schedules delivery of a sealed response: immediate completion for
  /// single-frame responses, a chunked credit-window schedule (plus the
  /// midstream-drop / stream-stall fault sites) for larger ones.
  void ScheduleDelivery(Inflight state, sim::SimNanos encode_end);

  // ---- synchronous mode (the PR5 serving path, bench baseline) ----
  size_t RunSynchronous();
  void DispatchStatement(const QueuedStatement& item);
  StatementResponse ExecuteRequest(const std::string& client_key,
                                   const StatementRequest& request);

  // ---- shared helpers ----
  /// Stages `completion` and flushes the contiguous prefix to the
  /// session's visible completion queue. Requires mu_.
  void StageCompletionLocked(Session& session, Completion completion);
  /// Success bookkeeping for one executed statement. Requires mu_.
  void FinishExecutedLocked(bool plan_cache_hit, sim::SimNanos monitor_ns,
                            sim::SimNanos execution_ns);
  /// Advances the encode barrier past skipped seqs; returns the parked
  /// token that may now encode, if any. Requires mu_.
  std::optional<uint64_t> AdvanceEncodeLocked(Session& session);
  /// Closes a session in place: zeroizes keys, aborts queued statements.
  /// Requires mu_.
  void CloseSessionLocked(Session& session, uint64_t session_id,
                          std::string_view reason);
  void EmitStageSpan(std::string_view name, sim::SimNanos start,
                     sim::SimNanos end, int lane);

  engine::IronSafeSystem* system_;
  ServiceOptions options_;
  crypto::Drbg handshake_drbg_;

  /// Guards sessions_, scheduler_, draining_, counters, serve_cost_ and
  /// sim_now_.
  mutable std::mutex mu_;
  /// Serializes statement dispatch (the event queue, the stages, the
  /// in-flight table, the plan cache); always acquired before mu_.
  std::mutex dispatch_mu_;

  std::map<uint64_t, Session> sessions_;
  FairScheduler scheduler_;
  PlanCache plan_cache_;
  uint64_t next_session_id_ = 1;
  int next_lane_ = 0;
  bool draining_ = false;

  // Pipeline state (all under dispatch_mu_).
  sim::EventQueue events_;
  PipelineStage decode_;
  PipelineStage authorize_;
  PipelineStage execute_;
  PipelineStage encode_;
  std::map<uint64_t, Inflight> inflight_;
  uint64_t next_token_ = 0;
  /// Intake window: the scheduler is popped only while fewer than this
  /// many statements are in flight, so the weighted-fair order governs
  /// everything beyond a small pipelining horizon.
  size_t pipeline_window_;

  /// The serving clock, mirrored from events_.now() under mu_ so Submit
  /// can stamp arrivals without touching the event queue. In synchronous
  /// mode it advances by each statement's full serial service time,
  /// which keeps scheduling-delay measurements comparable across modes.
  sim::SimNanos sim_now_ = 0;

  sim::CostModel serve_cost_;
  Stats stats_;
};

}  // namespace ironsafe::server

#endif  // IRONSAFE_SERVER_QUERY_SERVICE_H_
