#ifndef IRONSAFE_SQL_COLUMN_BATCH_H_
#define IRONSAFE_SQL_COLUMN_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sql/schema.h"

namespace ironsafe::sql {

/// Selection vector: indices of the active rows of a ColumnBatch, in
/// ascending order. Operators narrow the selection instead of copying
/// rows; rows materialize only at pipeline breakers (join emit, final
/// projection).
using SelVec = std::vector<uint32_t>;

/// Column-major decode of up to ~2K rows — the unit of batch-at-a-time
/// execution. A batch is decoded once from a (decrypted) page or row
/// block; each column stores a per-row type tag plus a dense numeric
/// payload array (int64/bool/date payloads verbatim, doubles bit-cast to
/// their IEEE-754 pattern) so tight kernels can scan raw arrays without
/// touching Value. Strings live in a parallel array allocated only for
/// columns that contain at least one string.
///
/// Batches are immutable after the decode fills them (shared_ptr<const>
/// across operators and the page store's decoded-batch cache).
class ColumnBatch {
 public:
  /// Upper bound chosen so one batch covers any 4 KiB heap-file page
  /// (u16 row count) and one MemoryTable morsel block.
  static constexpr size_t kBatchRows = 2048;

  struct Col {
    /// static_cast<uint8_t>(Type) per row.
    std::vector<uint8_t> tags;
    /// Numeric payload per row: int64/date/bool verbatim, double as its
    /// bit pattern, 0 for null/string.
    std::vector<int64_t> nums;
    /// Sized rows() only when has_string (empty strings elsewhere).
    std::vector<std::string> strs;
    bool has_null = false;
    bool has_string = false;

    /// True when every row carries `tag` (vacuously false when empty) —
    /// the precondition for typed kernels, which assume one payload
    /// interpretation for the whole array.
    bool UniformTag(uint8_t tag) const {
      return !tags.empty() && uniform_ && tags[0] == tag;
    }
    bool uniform() const { return !tags.empty() && uniform_; }
    uint8_t first_tag() const { return tags.empty() ? 0 : tags[0]; }

   private:
    friend class ColumnBatch;
    bool uniform_ = true;
  };

  explicit ColumnBatch(size_t num_cols) : cols_(num_cols) {}

  size_t rows() const { return rows_; }
  size_t num_cols() const { return cols_.size(); }
  const Col& col(size_t c) const { return cols_[c]; }

  void AppendRow(const Row& row);
  /// Appends one serialized row (u16 value count + tagged values) —
  /// the heap-file page layout — decoding straight into the columns.
  Status AppendSerialized(ByteReader* reader);

  /// Rebuilds the Value at (col, row).
  Value GetValue(size_t c, size_t r) const;
  /// Rebuilds the full row at `r` (resizes `out` to num_cols()).
  void MaterializeRow(size_t r, Row* out) const;

  /// In-memory footprint of row `r` under the row engine's accounting
  /// (RowBytes), so both engines see the same working-set sizes.
  size_t row_bytes(size_t r) const { return row_bytes_[r]; }
  uint64_t total_row_bytes() const { return total_row_bytes_; }

  /// Decodes a heap-file page (u16 row count || serialized rows) into a
  /// fresh batch.
  static Result<std::shared_ptr<const ColumnBatch>> FromPage(
      const Bytes& page, size_t num_cols);

 private:
  void PushValue(size_t c, const Value& v);

  std::vector<Col> cols_;
  std::vector<uint32_t> row_bytes_;
  uint64_t total_row_bytes_ = 0;
  size_t rows_ = 0;
};

/// One batch plus its active-row selection; the unit flowing between
/// vectorized operators.
struct VecBatch {
  std::shared_ptr<const ColumnBatch> batch;
  SelVec sel;

  size_t active() const { return sel.size(); }
};

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_COLUMN_BATCH_H_
