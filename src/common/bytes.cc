#include "common/bytes.h"

namespace ironsafe {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t len) {
  uint8_t diff = 0;
  for (size_t i = 0; i < len; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  return ConstantTimeEqual(a.data(), b.data(), a.size());
}

void PutU16(Bytes* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(Bytes* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(Bytes* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void Append(Bytes* out, const Bytes& src) {
  out->insert(out->end(), src.begin(), src.end());
}

void Append(Bytes* out, const uint8_t* data, size_t len) {
  out->insert(out->end(), data, data + len);
}

void Append(Bytes* out, std::string_view s) {
  out->insert(out->end(), s.begin(), s.end());
}

void PutLengthPrefixed(Bytes* out, const Bytes& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  Append(out, v);
}

void PutLengthPrefixed(Bytes* out, std::string_view v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  Append(out, v);
}

Result<uint16_t> ByteReader::ReadU16() {
  if (remaining() < 2) return Status::InvalidArgument("truncated u16");
  uint16_t v = GetU16(data_ + pos_);
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) return Status::InvalidArgument("truncated u32");
  uint32_t v = GetU32(data_ + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) return Status::InvalidArgument("truncated u64");
  uint64_t v = GetU64(data_ + pos_);
  pos_ += 8;
  return v;
}

Result<Bytes> ByteReader::ReadBytes(size_t n) {
  if (remaining() < n) return Status::InvalidArgument("truncated bytes");
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Result<Bytes> ByteReader::ReadLengthPrefixed() {
  ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  return ReadBytes(n);
}

Result<std::string> ByteReader::ReadLengthPrefixedString() {
  ASSIGN_OR_RETURN(Bytes b, ReadLengthPrefixed());
  return ToString(b);
}

}  // namespace ironsafe
