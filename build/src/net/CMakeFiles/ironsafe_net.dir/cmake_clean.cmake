file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_net.dir/secure_channel.cc.o"
  "CMakeFiles/ironsafe_net.dir/secure_channel.cc.o.d"
  "CMakeFiles/ironsafe_net.dir/wire.cc.o"
  "CMakeFiles/ironsafe_net.dir/wire.cc.o.d"
  "libironsafe_net.a"
  "libironsafe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
