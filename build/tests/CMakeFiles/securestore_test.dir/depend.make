# Empty dependencies file for securestore_test.
# This may be replaced when dependencies are built.
