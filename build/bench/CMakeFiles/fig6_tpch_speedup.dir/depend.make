# Empty dependencies file for fig6_tpch_speedup.
# This may be replaced when dependencies are built.
