#!/usr/bin/env bash
# Full verification matrix, runnable locally and in CI:
#
#   scripts/check.sh              # default build + ctest (incl. lint_tree),
#                                 # then ASan and UBSan builds + ctest
#   scripts/check.sh --fast      # default build + ctest only
#   scripts/check.sh --tsan      # also run the ThreadSanitizer leg
#
# TSan is the opt-in third leg: it only exercises real interleavings on a
# multi-core host (see docs/STATIC_ANALYSIS.md and docs/OBSERVABILITY.md's
# single-CPU CI caveat), so CI runs it on demand rather than per-push.
# clang-tidy runs when the binary is available (the configure step always
# exports compile_commands.json).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FAST=0
TSAN=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --tsan) TSAN=1 ;;
    *) echo "usage: scripts/check.sh [--fast] [--tsan]" >&2; exit 2 ;;
  esac
done

build_and_test() {
  local dir="$1" sanitize="$2"
  echo "==> configure ${dir} (sanitize='${sanitize}')"
  cmake -B "$dir" -S . -DIRONSAFE_SANITIZE="$sanitize" >/dev/null
  echo "==> build ${dir}"
  cmake --build "$dir" -j "$JOBS"
  echo "==> ctest ${dir}"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

build_and_test build ""

echo "==> fault-seed sweep (ctest -L fault under 10 seeds)"
for seed in $(seq 1 10); do
  IRONSAFE_FAULT_SEED="$seed" ctest --test-dir build -L fault \
    --output-on-failure -j "$JOBS" >/dev/null \
    || { echo "fault sweep FAILED at seed $seed" >&2
         IRONSAFE_FAULT_SEED="$seed" ctest --test-dir build -L fault \
           --output-on-failure -j "$JOBS"; exit 1; }
done

echo "==> serving-layer leg (ctest -L server)"
ctest --test-dir build -L server --output-on-failure -j "$JOBS"

echo "==> oblivious-mode leg (ctest -L oblivious)"
ctest --test-dir build -L oblivious --output-on-failure -j "$JOBS"

echo "==> sharded-fleet leg (ctest -L dist)"
ctest --test-dir build -L dist --output-on-failure -j "$JOBS"

echo "==> ironsafe_lint (also gated by ctest -R lint_tree)"
./build/tools/ironsafe_lint/ironsafe_lint --root . \
  --json build/lint_report.json

echo "==> doc_link_check (also gated by ctest -R docs_links)"
./build/tools/doc_link_check/doc_link_check --root .

if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> clang-tidy (baseline .clang-tidy, compile_commands from build/)"
  clang-tidy -p build --quiet src/*/*.cc
else
  echo "==> clang-tidy not installed; skipping (config: .clang-tidy)"
fi

if [ "$FAST" -eq 1 ]; then
  echo "OK (fast: default build only)"
  exit 0
fi

build_and_test build-asan address
build_and_test build-ubsan undefined
if [ "$TSAN" -eq 1 ]; then
  build_and_test build-tsan thread
fi

echo "OK"
