file(REMOVE_RECURSE
  "libironsafe_sim.a"
)
