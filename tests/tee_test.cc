#include <gtest/gtest.h>

#include "tee/rpmb.h"
#include "tee/sgx.h"
#include "tee/trustzone.h"

namespace ironsafe::tee {
namespace {

// ---------------- RPMB ----------------

class RpmbTest : public ::testing::Test {
 protected:
  RpmbDevice device_;
  Bytes key_ = Bytes(32, 0x77);
};

TEST_F(RpmbTest, KeyProgrammedOnce) {
  EXPECT_TRUE(device_.ProgramKey(key_).ok());
  EXPECT_TRUE(device_.ProgramKey(key_).code() ==
              StatusCode::kFailedPrecondition);
}

TEST_F(RpmbTest, RejectsEmptyKey) {
  EXPECT_TRUE(device_.ProgramKey({}).IsInvalidArgument());
}

TEST_F(RpmbTest, WriteRequiresValidMac) {
  ASSERT_TRUE(device_.ProgramKey(key_).ok());
  Bytes data = ToBytes("root-mac-v1");
  Bytes good = RpmbDevice::MakeWriteMac(key_, 3, 0, data);
  Bytes bad = good;
  bad[0] ^= 1;
  EXPECT_TRUE(device_.AuthenticatedWrite(3, data, 0, bad).IsUnauthenticated());
  EXPECT_TRUE(device_.AuthenticatedWrite(3, data, 0, good).ok());
  EXPECT_EQ(device_.write_counter(), 1u);
}

TEST_F(RpmbTest, ReplayedWriteFrameRejected) {
  ASSERT_TRUE(device_.ProgramKey(key_).ok());
  Bytes data = ToBytes("v1");
  Bytes mac = RpmbDevice::MakeWriteMac(key_, 0, 0, data);
  ASSERT_TRUE(device_.AuthenticatedWrite(0, data, 0, mac).ok());
  // Replaying the same (counter=0) frame must fail: counter advanced.
  EXPECT_TRUE(
      device_.AuthenticatedWrite(0, data, 0, mac).IsUnauthenticated());
}

TEST_F(RpmbTest, WriteWithWrongKeyRejected) {
  ASSERT_TRUE(device_.ProgramKey(key_).ok());
  Bytes attacker_key(32, 0xEE);
  Bytes data = ToBytes("evil");
  Bytes mac = RpmbDevice::MakeWriteMac(attacker_key, 0, 0, data);
  EXPECT_TRUE(device_.AuthenticatedWrite(0, data, 0, mac).IsUnauthenticated());
}

TEST_F(RpmbTest, ReadResponseAuthenticatedByNonce) {
  ASSERT_TRUE(device_.ProgramKey(key_).ok());
  RpmbClient client(&device_, key_);
  ASSERT_TRUE(client.Write(5, ToBytes("hello")).ok());
  auto data = client.Read(5, Bytes(16, 1));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, ToBytes("hello"));
}

TEST_F(RpmbTest, SubstituteDeviceDetectedOnRead) {
  ASSERT_TRUE(device_.ProgramKey(key_).ok());
  // Attacker swaps in a device programmed with a different key.
  RpmbDevice fake;
  ASSERT_TRUE(fake.ProgramKey(Bytes(32, 0xAB)).ok());
  RpmbClient client(&fake, key_);  // client still holds the real key
  EXPECT_TRUE(client.Read(0, Bytes(16, 2)).status().IsUnauthenticated());
}

TEST_F(RpmbTest, SlotBoundsChecked) {
  ASSERT_TRUE(device_.ProgramKey(key_).ok());
  RpmbClient client(&device_, key_);
  EXPECT_TRUE(client.Write(RpmbDevice::kNumSlots, {}).IsInvalidArgument());
}

TEST_F(RpmbTest, OversizeDataRejected) {
  ASSERT_TRUE(device_.ProgramKey(key_).ok());
  RpmbClient client(&device_, key_);
  EXPECT_TRUE(
      client.Write(0, Bytes(RpmbDevice::kSlotSize + 1, 0)).IsInvalidArgument());
}

// ---------------- SGX ----------------

class SgxTest : public ::testing::Test {
 protected:
  SgxMachine machine_{ToBytes("host-platform-1")};
};

TEST_F(SgxTest, MeasurementIsImageDigest) {
  auto e1 = machine_.LoadEnclave("host-engine", ToBytes("code v1"));
  auto e2 = machine_.LoadEnclave("host-engine", ToBytes("code v1"));
  auto e3 = machine_.LoadEnclave("host-engine", ToBytes("code v2"));
  EXPECT_EQ(e1->measurement(), e2->measurement());
  EXPECT_NE(e1->measurement(), e3->measurement());
}

TEST_F(SgxTest, QuoteVerifiesAgainstRegisteredPlatform) {
  auto enclave = machine_.LoadEnclave("host-engine", ToBytes("code"));
  SgxQuote quote = enclave->GetQuote(Bytes(64, 0x01));

  SgxAttestationService ias;
  ias.RegisterPlatform(machine_.platform_id(),
                       machine_.attestation_public_key());
  EXPECT_TRUE(ias.VerifyQuote(quote).ok());
}

TEST_F(SgxTest, QuoteFromUnknownPlatformRejected) {
  auto enclave = machine_.LoadEnclave("host-engine", ToBytes("code"));
  SgxQuote quote = enclave->GetQuote({});
  SgxAttestationService ias;  // nothing registered
  EXPECT_TRUE(ias.VerifyQuote(quote).IsUnauthenticated());
}

TEST_F(SgxTest, TamperedQuoteRejected) {
  auto enclave = machine_.LoadEnclave("host-engine", ToBytes("code"));
  SgxQuote quote = enclave->GetQuote(Bytes(64, 0));
  SgxAttestationService ias;
  ias.RegisterPlatform(machine_.platform_id(),
                       machine_.attestation_public_key());

  SgxQuote forged = quote;
  forged.measurement = Bytes(32, 0xFF);  // pretend to be different code
  EXPECT_TRUE(ias.VerifyQuote(forged).IsUnauthenticated());

  SgxQuote forged2 = quote;
  forged2.report_data = Bytes(64, 0xEE);
  EXPECT_TRUE(ias.VerifyQuote(forged2).IsUnauthenticated());
}

TEST_F(SgxTest, QuoteSerializationRoundTrip) {
  auto enclave = machine_.LoadEnclave("e", ToBytes("img"));
  SgxQuote quote = enclave->GetQuote(ToBytes("report-data"));
  auto back = SgxQuote::Deserialize(quote.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->measurement, quote.measurement);
  EXPECT_EQ(back->report_data, quote.report_data);
  EXPECT_EQ(back->signature, quote.signature);
}

TEST_F(SgxTest, SealUnsealRoundTrip) {
  auto enclave = machine_.LoadEnclave("e", ToBytes("img"));
  auto sealed = enclave->Seal(ToBytes("database key material"));
  ASSERT_TRUE(sealed.ok());
  auto opened = enclave->Unseal(*sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, ToBytes("database key material"));
}

TEST_F(SgxTest, DifferentEnclaveCannotUnseal) {
  auto e1 = machine_.LoadEnclave("e1", ToBytes("img-a"));
  auto e2 = machine_.LoadEnclave("e2", ToBytes("img-b"));
  auto sealed = e1->Seal(ToBytes("secret"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(e2->Unseal(*sealed).ok());
}

TEST_F(SgxTest, DifferentPlatformCannotUnseal) {
  SgxMachine other(ToBytes("host-platform-2"));
  auto e1 = machine_.LoadEnclave("e", ToBytes("img"));
  auto e2 = other.LoadEnclave("e", ToBytes("img"));  // same measurement
  auto sealed = e1->Seal(ToBytes("secret"));
  EXPECT_FALSE(e2->Unseal(*sealed).ok());
}

TEST_F(SgxTest, EpcWithinLimitCausesNoFaults) {
  auto enclave = machine_.LoadEnclave("e", ToBytes("img"));
  sim::CostModel cm;
  enclave->TouchMemory(0, 50ull << 20, &cm);  // 50 MiB < 96 MiB EPC
  EXPECT_EQ(cm.epc_faults(), 0u);
}

TEST_F(SgxTest, EpcOverflowCausesFaults) {
  auto enclave = machine_.LoadEnclave("e", ToBytes("img"));
  sim::CostModel cm;
  enclave->TouchMemory(0, 120ull << 20, &cm);  // 120 MiB > 96 MiB EPC
  EXPECT_GT(cm.epc_faults(), 0u);
  // Overflow is 24 MiB = 6144 pages.
  EXPECT_EQ(cm.epc_faults(), (24ull << 20) / 4096);
}

TEST_F(SgxTest, RetouchingResidentPagesIsFree) {
  auto enclave = machine_.LoadEnclave("e", ToBytes("img"));
  sim::CostModel cm;
  enclave->TouchMemory(0, 10 << 20, &cm);
  uint64_t faults = cm.epc_faults();
  enclave->TouchMemory(0, 10 << 20, &cm);
  EXPECT_EQ(cm.epc_faults(), faults);
}

TEST_F(SgxTest, TransitionsAreCharged) {
  auto enclave = machine_.LoadEnclave("e", ToBytes("img"));
  sim::CostModel cm;
  ASSERT_TRUE(enclave->EnterExit(&cm).ok());
  ASSERT_TRUE(enclave->EnterExit(&cm).ok());
  EXPECT_EQ(cm.enclave_transitions(), 2u);
  EXPECT_GT(cm.enclave_transition_ns(), 0u);
}

// ---------------- TrustZone ----------------

class TrustZoneTest : public ::testing::Test {
 protected:
  TrustZoneTest()
      : manufacturer_(ToBytes("nxp")),
        device_(ToBytes("lx2160a-serial-42"), manufacturer_,
                StorageNodeConfig{"storage-1", "eu-west-1", 3}) {}

  std::vector<std::pair<std::string, Bytes>> GoodImages() {
    return {{"BL2", ToBytes("bl2 firmware")},
            {"TrustedOS", ToBytes("op-tee 3.4")},
            {"NormalWorld", ToBytes("linux 5.4.3 + storage engine v3")}};
  }

  DeviceManufacturer manufacturer_;
  TrustZoneDevice device_;
};

TEST_F(TrustZoneTest, AttestationBeforeBootFails) {
  EXPECT_EQ(device_.RespondToChallenge(Bytes(32, 0)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TrustZoneTest, AttestationSucceedsAfterBoot) {
  device_.Boot(GoodImages());
  Bytes challenge(32, 0x5A);
  auto resp = device_.RespondToChallenge(challenge);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(VerifyTzAttestation(manufacturer_.root_public_key(), "storage-1",
                                  challenge, *resp)
                  .ok());
  EXPECT_EQ(resp->config.location, "eu-west-1");
  EXPECT_EQ(resp->config.firmware_version, 3u);
}

TEST_F(TrustZoneTest, WrongChallengeRejected) {
  device_.Boot(GoodImages());
  auto resp = device_.RespondToChallenge(Bytes(32, 1));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(VerifyTzAttestation(manufacturer_.root_public_key(), "storage-1",
                                  Bytes(32, 2), *resp)
                  .IsUnauthenticated());
}

TEST_F(TrustZoneTest, UncertifiedDeviceRejected) {
  // A device provisioned by a different (attacker) manufacturer.
  DeviceManufacturer attacker(ToBytes("evil-corp"));
  TrustZoneDevice rogue(ToBytes("rogue"), attacker,
                        StorageNodeConfig{"storage-1", "eu-west-1", 3});
  rogue.Boot(GoodImages());
  Bytes challenge(32, 7);
  auto resp = rogue.RespondToChallenge(challenge);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(VerifyTzAttestation(manufacturer_.root_public_key(), "storage-1",
                                  challenge, *resp)
                  .IsUnauthenticated());
}

TEST_F(TrustZoneTest, TamperedNormalWorldChangesMeasurement) {
  device_.Boot(GoodImages());
  Bytes good_hash = device_.normal_world_hash();

  auto bad = GoodImages();
  bad[2].second = ToBytes("linux 5.4.3 + TROJANED storage engine");
  device_.Boot(bad);
  EXPECT_NE(device_.normal_world_hash(), good_hash);

  // The attestation still *verifies* (it is honest about what booted) —
  // it is the monitor's measurement policy that must reject the hash.
  Bytes challenge(32, 9);
  auto resp = device_.RespondToChallenge(challenge);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(VerifyTzAttestation(manufacturer_.root_public_key(), "storage-1",
                                  challenge, *resp)
                  .ok());
  EXPECT_NE(resp->normal_world_hash, good_hash);
}

TEST_F(TrustZoneTest, ForgedCertChainRejected) {
  device_.Boot(GoodImages());
  Bytes challenge(32, 3);
  auto resp = device_.RespondToChallenge(challenge);
  ASSERT_TRUE(resp.ok());
  // Attacker rewrites a measurement in the chain without re-signing.
  resp->cert_chain[1].measurement = Bytes(32, 0xCC);
  EXPECT_TRUE(VerifyTzAttestation(manufacturer_.root_public_key(), "storage-1",
                                  challenge, *resp)
                  .IsUnauthenticated());
}

TEST_F(TrustZoneTest, NodeIdMismatchRejected) {
  device_.Boot(GoodImages());
  Bytes challenge(32, 4);
  auto resp = device_.RespondToChallenge(challenge);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(VerifyTzAttestation(manufacturer_.root_public_key(),
                                  "storage-OTHER", challenge, *resp)
                  .IsUnauthenticated());
}

TEST_F(TrustZoneTest, HardwareKeysAreDeviceBoundAndStable) {
  Bytes k1 = device_.DeriveHardwareKey("label", 32);
  Bytes k2 = device_.DeriveHardwareKey("label", 32);
  Bytes k3 = device_.DeriveHardwareKey("other", 32);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);

  TrustZoneDevice other(ToBytes("different-serial"), manufacturer_,
                        StorageNodeConfig{"storage-2", "us-east-1", 3});
  EXPECT_NE(other.DeriveHardwareKey("label", 32), k1);
}

}  // namespace
}  // namespace ironsafe::tee
