#ifndef IRONSAFE_SQL_PARSER_H_
#define IRONSAFE_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace ironsafe::sql {

/// Parses one SQL statement (SELECT / CREATE TABLE / INSERT / DELETE /
/// UPDATE). The dialect covers the subset needed for the TPC-H-style
/// workloads and policy-rewritten queries: joins (comma and JOIN..ON),
/// GROUP BY / HAVING / ORDER BY / LIMIT, scalar & IN & EXISTS subqueries
/// (correlated allowed), CASE, LIKE, BETWEEN, IN lists, date literals,
/// INTERVAL arithmetic, EXTRACT, and the usual aggregates.
Result<Statement> Parse(std::string_view sql);

/// Convenience: parses a statement that must be a SELECT.
Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql);

/// Parses a standalone expression (used by tests and the policy layer).
Result<ExprPtr> ParseExpression(std::string_view sql);

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_PARSER_H_
