#include "securestore/secure_store.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "obs/metrics.h"
#include "obs/retry.h"
#include "sim/fault.h"

namespace ironsafe::securestore {

// ---------------------------------------------------------------- TA ----

SecureStorageTa::SecureStorageTa(tee::TrustZoneDevice* device)
    : device_(device),
      task_key_(device->DeriveHardwareKey("ta-storage-key", 16)),
      rpmb_(device->rpmb(), device->DeriveHardwareKey("rpmb-auth-key", 32)),
      drbg_(device->DeriveHardwareKey("ta-drbg-seed", 32)) {}

Status SecureStorageTa::Initialize() {
  RETURN_IF_ERROR(rpmb_.Provision());
  Bytes nonce = drbg_.Generate(16);
  ASSIGN_OR_RETURN(Bytes existing, rpmb_.Read(kDataKeySlot, nonce));
  if (existing.empty()) {
    Bytes key = drbg_.RandomKey();
    RETURN_IF_ERROR(rpmb_.Write(kDataKeySlot, key));
  }
  initialized_ = true;
  return Status::OK();
}

Result<Bytes> SecureStorageTa::GetDataKey() {
  if (!initialized_) return Status::FailedPrecondition("TA not initialized");
  Bytes nonce = drbg_.Generate(16);
  ASSIGN_OR_RETURN(Bytes key, rpmb_.Read(kDataKeySlot, nonce));
  if (key.empty()) return Status::NotFound("data key not provisioned");
  return key;
}

Bytes SecureStorageTa::RootMac(const Bytes& root, uint64_t epoch) const {
  Bytes m;
  PutU64(&m, epoch);
  Append(&m, root);
  return crypto::HmacSha256(task_key_, m);
}

Status SecureStorageTa::CommitRoot(const Bytes& root, uint64_t epoch) {
  if (!initialized_) return Status::FailedPrecondition("TA not initialized");
  Bytes record;
  PutU64(&record, epoch);
  Append(&record, RootMac(root, epoch));
  return rpmb_.Write(kRootSlot, record);
}

Result<uint64_t> SecureStorageTa::CurrentEpoch() {
  if (!initialized_) return Status::FailedPrecondition("TA not initialized");
  Bytes nonce = drbg_.Generate(16);
  ASSIGN_OR_RETURN(Bytes record, rpmb_.Read(kRootSlot, nonce));
  if (record.empty()) return static_cast<uint64_t>(0);
  ByteReader r(record);
  return r.ReadU64();
}

Status SecureStorageTa::VerifyRoot(const Bytes& root, uint64_t epoch) {
  if (!initialized_) return Status::FailedPrecondition("TA not initialized");
  Bytes nonce = drbg_.Generate(16);
  ASSIGN_OR_RETURN(Bytes record, rpmb_.Read(kRootSlot, nonce));
  if (record.empty()) {
    return Status::StaleData("no committed root in RPMB");
  }
  ByteReader r(record);
  ASSIGN_OR_RETURN(uint64_t committed_epoch, r.ReadU64());
  ASSIGN_OR_RETURN(Bytes committed_mac, r.ReadBytes(32));
  if (committed_epoch != epoch) {
    return Status::StaleData("store epoch " + std::to_string(epoch) +
                             " != RPMB epoch " +
                             std::to_string(committed_epoch));
  }
  if (!ConstantTimeEqual(committed_mac, RootMac(root, epoch))) {
    return Status::StaleData("merkle root does not match RPMB anchor");
  }
  return Status::OK();
}

// ------------------------------------------------------------- Store ----

namespace {

constexpr std::string_view kEncLabel = "page-encryption";
constexpr std::string_view kMacLabel = "page-mac";
constexpr std::string_view kTreeLabel = "merkle-internal";

Bytes DeriveKey(const Bytes& master, std::string_view label) {
  return crypto::HkdfSha256({}, master, ToBytes(label), 32);
}

Bytes PageMacInput(uint64_t index, const Bytes& iv, const Bytes& ciphertext) {
  Bytes m;
  PutU64(&m, index);
  Append(&m, iv);
  Append(&m, ciphertext);
  return m;
}

}  // namespace

SecureStore::SecureStore(storage::BlockDevice* device, SecureStorageTa* ta,
                         Bytes master_key, MerkleTree tree, uint64_t epoch)
    : device_(device),
      ta_(ta),
      enc_key_(DeriveKey(master_key, kEncLabel)),
      mac_key_(DeriveKey(master_key, kMacLabel)),
      tree_(std::move(tree)),
      epoch_(epoch),
      iv_drbg_(crypto::HkdfSha256({}, master_key, ToBytes("iv-drbg"), 32)) {}

Result<std::unique_ptr<SecureStore>> SecureStore::Create(
    storage::BlockDevice* device, SecureStorageTa* ta) {
  RETURN_IF_ERROR(ta->Initialize());
  ASSIGN_OR_RETURN(Bytes master, ta->GetDataKey());
  MerkleTree tree(DeriveKey(master, kTreeLabel), 0);
  auto store = std::unique_ptr<SecureStore>(
      new SecureStore(device, ta, std::move(master), std::move(tree), 1));
  RETURN_IF_ERROR(store->Persist());
  return store;
}

Result<std::unique_ptr<SecureStore>> SecureStore::Open(
    storage::BlockDevice* device, SecureStorageTa* ta) {
  RETURN_IF_ERROR(ta->Initialize());
  ASSIGN_OR_RETURN(Bytes master, ta->GetDataKey());

  const Bytes& metadata = device->ReadMetadata();
  ByteReader r(metadata);
  ASSIGN_OR_RETURN(uint64_t epoch, r.ReadU64());
  ASSIGN_OR_RETURN(Bytes tree_image, r.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(
      MerkleTree tree,
      MerkleTree::Deserialize(DeriveKey(master, kTreeLabel), tree_image));

  // Freshness gate: the untrusted metadata must match the RPMB anchor.
  RETURN_IF_ERROR(ta->VerifyRoot(tree.Root(), epoch));

  return std::unique_ptr<SecureStore>(
      new SecureStore(device, ta, std::move(master), std::move(tree), epoch));
}

Status SecureStore::Persist() {
  Bytes metadata;
  PutU64(&metadata, epoch_);
  PutLengthPrefixed(&metadata, tree_.SerializeLeaves());
  device_->WriteMetadata(std::move(metadata));
  return ta_->CommitRoot(tree_.Root(), epoch_);
}

Status SecureStore::EndBatch() {
  in_batch_ = false;
  ++epoch_;
  return Persist();
}

Status SecureStore::WritePage(uint64_t index, const Bytes& plaintext,
                              sim::CostModel* cost) {
  if (plaintext.size() != kPageSize) {
    return Status::InvalidArgument("page must be exactly 4096 bytes");
  }
  Bytes iv = iv_drbg_.RandomIv();
  ASSIGN_OR_RETURN(Bytes ciphertext,
                   crypto::AesCbcEncrypt(enc_key_, iv, plaintext));
  Bytes mac = crypto::HmacSha512(mac_key_, PageMacInput(index, iv, ciphertext));

  Bytes frame;
  Append(&frame, iv);
  PutLengthPrefixed(&frame, ciphertext);
  Append(&frame, mac);
  device_->WriteFrame(index, std::move(frame));

  uint64_t updated = tree_.UpdateLeaf(index, mac);
  if (cost != nullptr) {
    cost->ChargePageDecrypt(site_);  // symmetric cost for encrypt
    cost->ChargePageMacVerify(site_);
    cost->ChargeMerkleNodes(site_, updated);
  }

  if (!in_batch_) {
    ++epoch_;
    return Persist();
  }
  return Status::OK();
}

Result<Bytes> SecureStore::ReadPage(uint64_t index, sim::CostModel* cost) {
  auto page = ReadPageOnce(index, cost);
  if (page.ok() || !page.status().IsCorruption()) return page;
  // Re-fetch-and-reverify: re-read the frame from the device and run the
  // full MAC + Merkle + decrypt pipeline again. A transient flip between
  // the platters and the verifier heals; a persistently tampered frame
  // keeps failing verification and Corruption stands.
  IRONSAFE_COUNTER_ADD("securestore.reverifies", 1);
  RetryPolicy policy = obs::ObservedRetryPolicy("securestore.reverify", cost);
  policy.retryable = [](const Status& s) { return s.IsCorruption(); };
  Status recovered = ResumeRetryWithBackoff(
      policy, page.status(), [&]() -> Status {
        page = ReadPageOnce(index, cost);
        return page.status();
      });
  if (!recovered.ok()) return recovered;
  return page;
}

Result<Bytes> SecureStore::ReadPageOnce(uint64_t index, sim::CostModel* cost) {
  ASSIGN_OR_RETURN(Bytes frame, device_->ReadFrame(index, cost));
  // Injected transient media/DMA damage between the device and the
  // verifier: one byte in the frame's trailing MAC region flips (staying
  // clear of the length prefix keeps the failure a verification failure,
  // not a parse error), so the HMAC check below must reject the page.
  if (auto hit = sim::FaultAt(sim::fault_site::kStoreReadBitflip)) {
    if (frame.size() >= 64) frame[frame.size() - 1 - hit->param % 64] ^= 0x01;
  }

  ByteReader r(frame);
  ASSIGN_OR_RETURN(Bytes iv, r.ReadBytes(16));
  ASSIGN_OR_RETURN(Bytes ciphertext, r.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(Bytes mac, r.ReadBytes(64));

  // 1. Authenticity of the frame itself.
  if (cost != nullptr) cost->ChargePageMacVerify(site_);
  if (!crypto::VerifyHmacSha512(mac_key_, PageMacInput(index, iv, ciphertext),
                                mac)) {
    return Status::Corruption("page " + std::to_string(index) +
                              " MAC verification failed");
  }
  // 2. Freshness/placement: the MAC must be the one in the trusted tree.
  uint64_t nodes = 0;
  Status tree_status = tree_.VerifyLeaf(index, mac, &nodes);
  if (cost != nullptr) cost->ChargeMerkleNodes(site_, nodes ? nodes : tree_.Depth());
  if (!tree_status.ok()) {
    return Status::Corruption("page " + std::to_string(index) +
                              " failed freshness check: " +
                              tree_status.message());
  }
  // 3. Confidentiality.
  if (cost != nullptr) cost->ChargePageDecrypt(site_);
  ASSIGN_OR_RETURN(Bytes plaintext,
                   crypto::AesCbcDecrypt(enc_key_, iv, ciphertext));
  if (plaintext.size() != kPageSize) {
    return Status::Corruption("page plaintext has wrong size");
  }
  return plaintext;
}

}  // namespace ironsafe::securestore
