file(REMOVE_RECURSE
  "libironsafe_policy.a"
)
