#ifndef IRONSAFE_POLICY_POLICY_H_
#define IRONSAFE_POLICY_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace ironsafe::policy {

/// Permissions a rule can govern.
enum class Perm { kRead, kWrite, kExec };

std::string_view PermName(Perm p);

/// Predicate names of the policy language (paper Table 1 + the GDPR
/// anti-pattern extensions of §4.3).
enum class PredKind {
  kSessionKeyIs,      ///< sessionKeyIs(K): client identity check
  kStorageLocIs,      ///< storageLocIs(l): offload only to region l
  kHostLocIs,         ///< hostLocIs(l): run host part only in region l
  kFwVersionStorage,  ///< fwVersionStorage(v | latest)
  kFwVersionHost,     ///< fwVersionHost(v | latest)
  kLe,                ///< le(T, TIMESTAMP): row-level expiry gate
  kReuseMap,          ///< reuseMap(m): row-level purpose opt-in bitmap
  kLogUpdate,         ///< logUpdate(l, K, Q): audit-log side effect
};

/// A node of a parsed policy expression: predicate, AND, or OR.
struct PolicyExpr {
  enum class Kind { kPredicate, kAnd, kOr };
  Kind kind = Kind::kPredicate;

  // kPredicate:
  PredKind pred = PredKind::kSessionKeyIs;
  std::vector<std::string> args;

  // kAnd / kOr:
  std::unique_ptr<PolicyExpr> left;
  std::unique_ptr<PolicyExpr> right;

  std::unique_ptr<PolicyExpr> Clone() const;
  std::string ToString() const;
};

/// One rule: `perm ::= expr`.
struct PolicyRule {
  Perm perm;
  std::unique_ptr<PolicyExpr> expr;
};

/// A parsed policy document (one or more rules).
///
/// Grammar (the paper's Table 1, with `&` = AND and `|` = OR — see
/// DESIGN.md §7 on the paper's notation slip):
///
///   policy  := rule+
///   rule    := perm ("::=" | ":-" | ":--") expr
///   perm    := "read" | "write" | "exec"
///   expr    := term ("|" term)*
///   term    := factor ("&" factor)*
///   factor  := predicate | "(" expr ")"
///   predicate := name "(" arg ("," arg)* ")"
struct PolicySet {
  std::vector<PolicyRule> rules;

  /// The rule for `perm`, or null when the policy is silent about it.
  const PolicyExpr* Find(Perm perm) const;

  std::string ToString() const;
};

/// Parses a policy document. Unknown predicates or malformed syntax fail
/// with InvalidArgument naming the offending token.
Result<PolicySet> ParsePolicy(std::string_view text);

}  // namespace ironsafe::policy

#endif  // IRONSAFE_POLICY_POLICY_H_
