// Figure 12: storage-engine scalability. N instances (1,2,4,8,16) each
// run the offloaded portion against an independent copy of the secure
// database; the plot is cumulative execution time across instances,
// normalized to one instance. The paper sees linear scaling for all
// queries except the memory-intensive #13.

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::SystemConfig;

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));

  const int kInstances[] = {1, 2, 4, 8, 16};
  const int kTotalCores = 16;
  const uint64_t kTotalMemory = 64ull << 20;  // scaled storage app budget

  PrintHeader("Figure 12: cumulative offloaded-portion time vs instances "
              "(normalized to 1 instance)");
  std::printf("%5s", "query");
  for (int n : kInstances) std::printf(" %8d-inst", n);
  std::printf("\n");

  WallClock wall;
  for (const auto& query : tpch::Queries()) {
    std::printf("%5d", query.number);
    double single_ms = 0;
    for (int n : kInstances) {
      // Each instance gets a share of the cores and memory.
      system->set_storage_cores(std::max(1, kTotalCores / n));
      system->set_storage_memory_bytes(std::max<uint64_t>(4096, kTotalMemory / n));
      BENCH_ASSIGN(auto sos, system->Run(SystemConfig::kSos, query.sql));
      double cumulative = sos.cost.elapsed_ms() * n;
      if (n == 1) single_ms = sos.cost.elapsed_ms();
      std::printf(" %12.2f", cumulative / single_ms);
    }
    std::printf("\n");
  }
  system->set_storage_cores(16);
  system->set_storage_memory_bytes(32ull << 30);
  std::printf("(linear scaling = column value ~ instance count)\n");
  PrintWallClock(wall);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
