// Fixture: a branch-free oblivious kernel — comparisons feed arithmetic
// selects, both slots of a compare-exchange are always rewritten, and
// loop bounds are public shapes. Must stay silent.
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ironsafe::sql::exec {

void CompareExchange(std::vector<int64_t>* items, size_t a, size_t b) {
  const uint64_t gt = static_cast<uint64_t>((*items)[a] > (*items)[b]);
  int64_t staged[2] = {(*items)[a], (*items)[b]};
  (*items)[a] = staged[gt];
  (*items)[b] = staged[uint64_t{1} - gt];
}

int64_t SelectMax(int64_t x, int64_t y) {
  const int64_t gt = static_cast<int64_t>(x > y);
  return gt * x + (int64_t{1} - gt) * y;
}

size_t ObliviousFind(const std::vector<int64_t>& items, int64_t needle) {
  size_t at = items.size();
  for (size_t i = 0; i < items.size(); ++i) {
    const size_t hit = static_cast<size_t>(items[i] == needle);
    const size_t first = static_cast<size_t>(at == items.size());
    at = hit * first * i + (size_t{1} - hit * first) * at;
  }
  return at;
}

}  // namespace ironsafe::sql::exec
