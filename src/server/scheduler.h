#ifndef IRONSAFE_SERVER_SCHEDULER_H_
#define IRONSAFE_SERVER_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/cost_model.h"

namespace ironsafe::server {

/// One client statement waiting for dispatch: the sealed request frame as
/// it arrived on the session channel (it is only opened at dispatch time,
/// so a queued statement never exists in plaintext outside the channel
/// endpoints). `arrival_ns` stamps admission on the service's simulated
/// timeline; scheduling delay is measured from it.
struct QueuedStatement {
  uint64_t session_id = 0;
  uint64_t seq = 0;  ///< per-session submission number
  Bytes request_frame;
  sim::SimNanos arrival_ns = 0;
};

/// Admission bounds. Both caps reject with kResourceExhausted, which
/// common/retry classifies as backpressure (retryable without switching
/// paths) — distinct from kUnavailable, which signals a lost node.
struct SchedulerLimits {
  size_t max_per_session = 8;  ///< per-tenant quota
  size_t max_total = 64;       ///< bound on total queued statements
};

/// Deterministic weighted-fair scheduler (WFQ with virtual finish tags).
///
/// Every statement gets a virtual finish tag
///     tag = max(V, last_tag_of_its_session) + kTagScale / weight
/// where V is the scheduler's virtual time (the largest tag ever
/// served). Next() pops the statement with the smallest head tag;
/// tag ties resolve round-robin style (the first tied session after the
/// last one served, wrapping), so with all weights equal the order is
/// exactly the classic round-robin by ascending session id.
///
/// Weights encode per-tenant SLO classes (e.g. gold=8, silver=4,
/// bronze=1): a weight-w session receives w slots per kTagScale of
/// virtual time under backlog, and no backlogged session waits more than
/// about total_weight/weight pops between its own — the starvation
/// bound the server tests pin down.
///
/// Given the same sequence of Admit/SetSessionWeight/Next calls the
/// dispatch order is a pure function of the submission schedule — never
/// of thread timing — which is what keeps serving-layer traces and cost
/// totals bit-identical across worker counts.
///
/// Not thread-safe; QueryService guards it with its session mutex.
class FairScheduler {
 public:
  /// Tag increment for a weight-1 statement. The largest accepted weight
  /// divides this exactly, so equal-weight tag arithmetic has no
  /// truncation artifacts.
  static constexpr uint64_t kTagScale = 1'000'000;

  explicit FairScheduler(SchedulerLimits limits) : limits_(limits) {}

  /// Enqueues, or rejects with kResourceExhausted when the statement
  /// would exceed the per-session quota or the global bound.
  Status Admit(QueuedStatement item);

  /// Pops the minimum-tag statement (ties: first tied session after the
  /// last served, wrapping), or nullopt when idle.
  std::optional<QueuedStatement> Next();

  /// Sets the session's SLO weight for statements admitted from now on
  /// (already-queued tags keep their arrival-time weight). Weight zero
  /// is rejected with kInvalidArgument: a zero-weight tenant would never
  /// be served, which is starvation, not fairness.
  Status SetSessionWeight(uint64_t session_id, uint32_t weight);

  /// The session's current weight (1 unless SetSessionWeight changed it).
  uint32_t session_weight(uint64_t session_id) const;

  /// Removes every queued statement of `session_id` (session close or
  /// drop) along with its weight state; the caller completes them with
  /// kUnavailable.
  std::vector<QueuedStatement> EvictSession(uint64_t session_id);

  size_t depth() const { return depth_; }
  size_t session_depth(uint64_t session_id) const;
  /// High-water mark of depth(); never exceeds limits().max_total.
  size_t peak_depth() const { return peak_depth_; }
  const SchedulerLimits& limits() const { return limits_; }

 private:
  struct SessionQueue {
    std::deque<std::pair<uint64_t, QueuedStatement>> items;  ///< (tag, stmt)
    uint64_t last_tag = 0;  ///< finish tag of the session's newest item
    uint32_t weight = 1;
  };

  SchedulerLimits limits_;
  std::map<uint64_t, SessionQueue> queues_;
  /// Head tag of every non-empty session: (tag, session id). The set's
  /// order is the service order modulo the wrap tie-break.
  std::set<std::pair<uint64_t, uint64_t>> ready_;
  uint64_t virtual_time_ = 0;
  uint64_t last_served_ = 0;  ///< session id; 0 = nothing served yet
  size_t depth_ = 0;
  size_t peak_depth_ = 0;
};

}  // namespace ironsafe::server

#endif  // IRONSAFE_SERVER_SCHEDULER_H_
