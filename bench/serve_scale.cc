// Serving-scale stress bench: a large cohort of Zipf-skewed sessions in
// three SLO classes (gold/silver/bronze weights 8/4/1) bursts statements
// at one QueryService, once through the event-driven pipeline and once
// through the synchronous baseline path, over the SAME submission
// schedule. The comparison — p50/p99 scheduling delay, p99 end-to-end
// latency, makespan, per-class percentiles — is entirely simulated time,
// so the table (and the response digest) is byte-identical for any
// --workers value.
//
//   serve_scale [sf] [--sessions=N] [--quick] [--json=BENCH_serve.json]
//               [--workers=N] [--trace-json=...]
//
// Defaults to 10000 sessions (600 with --quick; --sessions=100000 is
// the paper-scale run). With --json, pipelined numbers land in
// sim_cycles and the synchronous re-run in row_sim_cycles, so
// `baseline_check --require-sim-improvement` gates exactly the claim
// "the pipeline beats the synchronous path in simulated cycles summed
// over the reported metrics" (the serve_smoke ctest).

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "engine/ironsafe.h"
#include "server/query_service.h"
#include "sql/value.h"

namespace ironsafe::bench {
namespace {

using engine::IronSafeSystem;
using server::QueryService;

constexpr int kClientKeys = 16;     // tenant identities, shared by sessions
constexpr int kTemplates = 64;      // distinct statement texts
constexpr double kZipfExponent = 1.1;
constexpr int kStatementsPerSession = 2;
constexpr uint64_t kScheduleSeed = 0x5e7ebabe;

// SLO classes: index into kClassNames/kClassWeights. Session i's class is
// i % 10: one gold, three silver, six bronze per ten sessions.
constexpr std::array<const char*, 3> kClassNames = {"gold", "silver",
                                                   "bronze"};
constexpr std::array<uint32_t, 3> kClassWeights = {8, 4, 1};

int ClassOf(int session_index) {
  int r = session_index % 10;
  return r == 0 ? 0 : (r <= 3 ? 1 : 2);
}

/// Inverse-CDF Zipf sampler over [0, n): P(k) ~ 1/(k+1)^s.
class Zipf {
 public:
  Zipf(int n, double s) : cdf_(n) {
    double total = 0;
    for (int k = 0; k < n; ++k) total += 1.0 / std::pow(k + 1, s);
    double acc = 0;
    for (int k = 0; k < n; ++k) {
      acc += 1.0 / std::pow(k + 1, s);
      cdf_[k] = acc / total;
    }
  }

  int Sample(Random* rng) const {
    double u = rng->NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? static_cast<int>(cdf_.size()) - 1
                            : static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Most templates are point lookups (small single-frame responses); every
/// eighth is a range scan whose response exceeds the stream chunk size,
/// so chunked delivery with credit-based flow control is on the hot path.
std::string TemplateSql(int t) {
  if (t % 8 == 0) {
    return "SELECT owner, balance FROM accounts WHERE balance > " +
           std::to_string(100 + t) + ".5";
  }
  return "SELECT owner, balance FROM accounts WHERE id = " +
         std::to_string((t * 7) % 200);
}

struct Sample {
  sim::SimNanos sched_delay = 0;
  sim::SimNanos e2e = 0;
  int slo_class = 2;
};

struct RunResult {
  std::vector<Sample> samples;
  uint64_t response_digest = kDigestOffset;  // FNV-1a, see bench_util.h
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t stream_chunks = 0;
  sim::SimNanos stream_stall_ns = 0;
  sim::SimNanos makespan = 0;
  double wall_ms = 0;
};

/// One full run of the schedule through a fresh system + service.
RunResult RunMode(server::ExecutionMode mode, double sf, int sessions,
                  const std::vector<std::pair<int, int>>& schedule) {
  WallClock wall;

  IronSafeSystem::Options options;
  options.csa.scale_factor = sf;
  BENCH_ASSIGN(auto system, IronSafeSystem::Create(options));
  if (Status st = system->Bootstrap(); !st.ok()) Die(st);
  system->set_current_date(*sql::ParseDate("1997-06-01"));

  system->RegisterClient("producer");
  std::string policy = "read ::= sessionKeyIs(producer)";
  for (int c = 0; c < kClientKeys; ++c) {
    std::string key = "c" + std::to_string(c);
    system->RegisterClient(key);
    policy += " | sessionKeyIs(" + key + ")";
  }
  policy += "\nwrite ::= sessionKeyIs(producer)\n";
  if (Status st = system->CreateProtectedTable(
          "producer",
          "CREATE TABLE accounts (id INTEGER, owner VARCHAR, balance DOUBLE)",
          policy, /*with_expiry=*/false, /*with_reuse=*/false);
      !st.ok()) {
    Die(st);
  }
  for (int batch = 0; batch < 8; ++batch) {
    std::string insert = "INSERT INTO accounts (id, owner, balance) VALUES ";
    for (int i = 0; i < 25; ++i) {
      int id = batch * 25 + i;
      if (i) insert += ", ";
      insert += "(" + std::to_string(id) + ", 'user" + std::to_string(id) +
                "', " + std::to_string(100.0 + id) + ")";
    }
    auto r = system->Execute("producer", insert);
    if (!r.ok()) Die(r.status());
  }

  server::ServiceOptions service_options;
  service_options.mode = mode;
  service_options.limits.max_per_session = kStatementsPerSession + 2;
  service_options.limits.max_total =
      static_cast<size_t>(sessions) * kStatementsPerSession;
  service_options.plan_cache_capacity = 1024;
  QueryService service(system.get(), service_options);

  // Batched session establishment: the whole cohort authenticates in one
  // enclave entry per batch instead of one X25519 handshake per session.
  struct Client {
    uint64_t session = 0;
    std::unique_ptr<net::SecureChannel> channel;
  };
  std::vector<Client> ends(sessions);
  constexpr int kOpenBatch = 4096;
  for (int base = 0; base < sessions; base += kOpenBatch) {
    int count = std::min(kOpenBatch, sessions - base);
    std::vector<QueryService::SessionSpec> specs(count);
    for (int i = 0; i < count; ++i) {
      specs[i].client_key_id =
          "c" + std::to_string((base + i) % kClientKeys);
      specs[i].weight = kClassWeights[ClassOf(base + i)];
    }
    auto opened = service.OpenSessionBatch(specs);
    for (int i = 0; i < count; ++i) {
      if (!opened[i].ok()) Die(opened[i].status());
      ends[base + i].session = (*opened[i]).id;
      ends[base + i].channel = std::move((*opened[i]).channel);
    }
  }

  // Burst the whole schedule, then run to idle: every statement arrives
  // at sim time 0, so a completion's e2e latency IS its finish time and
  // the largest e2e is the makespan.
  std::vector<std::string> templates(kTemplates);
  for (int t = 0; t < kTemplates; ++t) templates[t] = TemplateSql(t);
  for (const auto& [s, t] : schedule) {
    server::StatementRequest request;
    request.sql = templates[t];
    auto frame =
        ends[s].channel->Send(server::EncodeStatementRequest(request), nullptr);
    if (!frame.ok()) Die(frame.status());
    auto seq = service.Submit(ends[s].session, *frame);
    if (!seq.ok()) Die(seq.status());
  }
  service.RunUntilIdle();
  service.Drain();

  RunResult out;
  out.samples.reserve(schedule.size());
  for (int s = 0; s < sessions; ++s) {
    for (server::Completion& done : service.TakeCompletions(ends[s].session)) {
      if (!done.transport.ok()) Die(done.transport);
      auto plain = ends[s].channel->Receive(done.response_frame, nullptr);
      if (!plain.ok()) Die(plain.status());
      auto response = server::DecodeStatementResponse(*plain);
      if (!response.ok()) Die(response.status());
      if (!response->status.ok()) Die(response->status);
      out.response_digest = DigestBytes(out.response_digest, *plain);
      Sample sample;
      sample.sched_delay = done.sched_delay_ns;
      sample.e2e = done.e2e_ns;
      sample.slo_class = ClassOf(s);
      out.makespan = std::max(out.makespan, done.e2e_ns);
      out.samples.push_back(sample);
    }
  }
  service.Shutdown();

  QueryService::Stats stats = service.stats();
  if (out.samples.size() != schedule.size() ||
      stats.statements_executed != schedule.size()) {
    std::fprintf(stderr, "lost or duplicated completions: %zu of %zu\n",
                 out.samples.size(), schedule.size());
    std::exit(1);
  }
  out.cache_hits = stats.plan_cache_hits;
  out.cache_misses = stats.plan_cache_misses;
  out.stream_chunks = stats.stream_chunks;
  out.stream_stall_ns = stats.stream_stall_ns;
  out.wall_ms = wall.ms();
  return out;
}

struct Summary {
  sim::SimNanos p50_sched = 0;
  sim::SimNanos p99_sched = 0;
  sim::SimNanos p99_e2e = 0;
  std::array<sim::SimNanos, 3> class_p99_sched = {0, 0, 0};
};

Summary Summarize(const RunResult& run) {
  Summary s;
  std::vector<sim::SimNanos> sched, e2e;
  std::array<std::vector<sim::SimNanos>, 3> by_class;
  for (const Sample& sample : run.samples) {
    sched.push_back(sample.sched_delay);
    e2e.push_back(sample.e2e);
    by_class[sample.slo_class].push_back(sample.sched_delay);
  }
  s.p50_sched = Percentile(sched, 50);
  s.p99_sched = Percentile(sched, 99);
  s.p99_e2e = Percentile(e2e, 99);
  for (int c = 0; c < 3; ++c) {
    s.class_p99_sched[c] = Percentile(by_class[c], 99);
  }
  return s;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchTracer tracer(args);
  BaselineWriter writer(args, "serve_scale");
  const int sessions =
      args.sessions > 0 ? args.sessions : (args.quick ? 600 : 10000);

  // One schedule, replayed against both modes: session order interleaves
  // the classes round-major, the statement text is Zipf-skewed over the
  // template pool (hot templates dominate -> the plan cache carries most
  // of the control path).
  Random rng(kScheduleSeed);
  Zipf zipf(kTemplates, kZipfExponent);
  std::vector<std::pair<int, int>> schedule;
  schedule.reserve(static_cast<size_t>(sessions) * kStatementsPerSession);
  for (int round = 0; round < kStatementsPerSession; ++round) {
    for (int s = 0; s < sessions; ++s) {
      schedule.emplace_back(s, zipf.Sample(&rng));
    }
  }

  RunResult pipelined = RunMode(server::ExecutionMode::kPipelined,
                                args.scale_factor, sessions, schedule);
  RunResult synchronous = RunMode(server::ExecutionMode::kSynchronous,
                                  args.scale_factor, sessions, schedule);
  Summary p = Summarize(pipelined);
  Summary q = Summarize(synchronous);

  if (pipelined.response_digest != synchronous.response_digest) {
    std::fprintf(stderr,
                 "response digests diverge between modes: %016llx vs %016llx\n",
                 static_cast<unsigned long long>(pipelined.response_digest),
                 static_cast<unsigned long long>(synchronous.response_digest));
    return 1;
  }

  PrintHeader("serve_scale: " + std::to_string(sessions) + " sessions x " +
              std::to_string(kStatementsPerSession) +
              " statements, Zipf(" + std::to_string(kZipfExponent) + ") over " +
              std::to_string(kTemplates) + " templates");
  std::printf("%-22s %14s %14s %10s\n", "metric (sim ms)", "pipelined",
              "synchronous", "speedup");
  auto row = [](const char* name, sim::SimNanos a, sim::SimNanos b) {
    std::printf("%-22s %14.3f %14.3f %9.2fx\n", name,
                static_cast<double>(a) / 1e6, static_cast<double>(b) / 1e6,
                a > 0 ? static_cast<double>(b) / static_cast<double>(a) : 0.0);
  };
  row("sched delay p50", p.p50_sched, q.p50_sched);
  row("sched delay p99", p.p99_sched, q.p99_sched);
  row("e2e latency p99", p.p99_e2e, q.p99_e2e);
  row("makespan", pipelined.makespan, synchronous.makespan);
  for (int c = 0; c < 3; ++c) {
    std::string name = std::string(kClassNames[c]) + " sched p99";
    row(name.c_str(), p.class_p99_sched[c], q.class_p99_sched[c]);
  }

  double hit_rate =
      static_cast<double>(pipelined.cache_hits) /
      static_cast<double>(pipelined.cache_hits + pipelined.cache_misses);
  std::printf(
      "plan cache: %llu hits / %llu misses (%.1f%% hit rate); "
      "streamed %llu chunks, %.3f ms flow-control stall (sim)\n",
      static_cast<unsigned long long>(pipelined.cache_hits),
      static_cast<unsigned long long>(pipelined.cache_misses),
      100.0 * hit_rate,
      static_cast<unsigned long long>(pipelined.stream_chunks),
      static_cast<double>(pipelined.stream_stall_ns) / 1e6);
  std::printf("response digest: %016llx (bit-identical across --workers)\n",
              static_cast<unsigned long long>(pipelined.response_digest));
  std::printf("wall clock: pipelined %.1f ms, synchronous %.1f ms real\n",
              pipelined.wall_ms, synchronous.wall_ms);

  // BENCH_serve.json: pipelined in sim_cycles, the synchronous baseline
  // in row_sim_cycles, one row per reported metric.
  auto emit = [&](const std::string& name, sim::SimNanos pipe,
                  sim::SimNanos sync) {
    writer.Add(name, pipe, pipelined.wall_ms);
    writer.AddRow(name, sync, synchronous.wall_ms);
  };
  emit("p50_sched_delay", p.p50_sched, q.p50_sched);
  emit("p99_sched_delay", p.p99_sched, q.p99_sched);
  emit("p99_e2e", p.p99_e2e, q.p99_e2e);
  emit("makespan", pipelined.makespan, synchronous.makespan);
  for (int c = 0; c < 3; ++c) {
    emit(std::string(kClassNames[c]) + "_p99_sched_delay",
         p.class_p99_sched[c], q.class_p99_sched[c]);
  }
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
