#ifndef IRONSAFE_TEE_RPMB_H_
#define IRONSAFE_TEE_RPMB_H_

#include <cstdint>
#include <map>

#include "common/bytes.h"
#include "common/result.h"

namespace ironsafe::tee {

/// Replay Protected Memory Block — the eMMC partition IronSafe's secure
/// storage TA uses to persist the Merkle root MAC and the database
/// encryption key across reboots (paper §4.1).
///
/// Contract implemented exactly as in the eMMC spec's simplified form:
///  - A symmetric authentication key is programmed once and cannot be read.
///  - Writes must carry an HMAC-SHA-256 over (slot || data || counter)
///    using that key, where counter is the device's current write counter;
///    a correct MAC proves the writer knows the key and defeats replay of
///    old write frames.
///  - Reads take a caller nonce; the response is MACed over
///    (slot || data || counter || nonce) so the caller can detect a
///    substituted or replayed response.
class RpmbDevice {
 public:
  static constexpr size_t kSlotSize = 256;
  static constexpr size_t kNumSlots = 128;

  RpmbDevice() = default;

  /// One-time key programming. Fails if already programmed.
  Status ProgramKey(const Bytes& key);

  bool key_programmed() const { return !key_.empty(); }
  uint32_t write_counter() const { return write_counter_; }

  /// Authenticated write. `mac` must be HMAC-SHA256(key,
  /// slot(u32)||counter(u32)||data). On success the counter increments.
  Status AuthenticatedWrite(uint32_t slot, const Bytes& data, uint32_t counter,
                            const Bytes& mac);

  struct ReadResponse {
    Bytes data;
    uint32_t counter = 0;
    Bytes mac;  ///< HMAC-SHA256(key, slot||counter||data||nonce)
  };

  /// Authenticated read. Never fails authentication on the device side —
  /// the *caller* verifies the response MAC (see MakeReadMac).
  Result<ReadResponse> Read(uint32_t slot, const Bytes& nonce) const;

  /// Helpers for clients holding the key.
  static Bytes MakeWriteMac(const Bytes& key, uint32_t slot, uint32_t counter,
                            const Bytes& data);
  static Bytes MakeReadMac(const Bytes& key, uint32_t slot, uint32_t counter,
                           const Bytes& data, const Bytes& nonce);

 private:
  Bytes key_;
  uint32_t write_counter_ = 0;
  std::map<uint32_t, Bytes> slots_;
};

/// Convenience client wrapper that owns the key and talks the RPMB frame
/// protocol, verifying read responses. This is what the secure storage TA
/// uses internally.
class RpmbClient {
 public:
  RpmbClient(RpmbDevice* device, Bytes key)
      : device_(device), key_(std::move(key)) {}

  /// Programs the key if the device is fresh. Idempotent per device.
  Status Provision();

  /// Authenticated write with recovery: a write the device rejects as
  /// Unauthenticated (stale counter after a lost ack, damaged MAC) is
  /// re-prepared against the device's current counter and retried with
  /// bounded backoff.
  Status Write(uint32_t slot, const Bytes& data);

  /// Reads and authenticates; fails with Unauthenticated if the device
  /// response MAC is wrong (e.g. a swapped device).
  Result<Bytes> Read(uint32_t slot, const Bytes& nonce);

 private:
  /// One write frame: recomputes the counter and MAC, then submits.
  Status WriteOnce(uint32_t slot, const Bytes& data);

  RpmbDevice* device_;
  Bytes key_;
};

}  // namespace ironsafe::tee

#endif  // IRONSAFE_TEE_RPMB_H_
