#include "sim/event_queue.h"

#include <utility>

namespace ironsafe::sim {

void EventQueue::Post(SimNanos at, Handler fn) {
  if (at < now_) at = now_;
  events_.emplace(std::make_pair(at, next_seq_++), std::move(fn));
}

bool EventQueue::RunNext() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  now_ = it->first.first;
  Handler fn = std::move(it->second);
  events_.erase(it);
  fn(now_);
  return true;
}

size_t EventQueue::RunUntilIdle() {
  size_t ran = 0;
  while (RunNext()) ++ran;
  return ran;
}

}  // namespace ironsafe::sim
