#ifndef IRONSAFE_SERVER_PLAN_CACHE_H_
#define IRONSAFE_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "engine/ironsafe.h"
#include "monitor/monitor.h"

namespace ironsafe::server {

/// A reusable authorization: the monitor's rewritten statement plus the
/// control-path cost of producing it. On a hit the service skips the
/// parse / policy-eval / rewrite entirely and only pays the monitor's
/// per-execution half (monitor::TrustedMonitor::BeginCachedSession).
struct CachedPlan {
  monitor::Authorization auth;
  sim::SimNanos authorize_ns = 0;  ///< original full-authorization cost
};

/// Prepared-statement cache keyed on (client, execution policy, SQL)
/// within one monitor policy-rewrite epoch. The epoch is the soundness
/// anchor: TrustedMonitor::policy_epoch() bumps whenever any input to
/// the rewrite changes (table policies, client registry, access time,
/// attestation facts), and the first lookup under a newer epoch drops
/// every cached rewrite from older epochs.
///
/// Only SELECT authorizations are cached (QueryService enforces this):
/// DML rewrites embed per-statement hidden-column values.
///
/// Not thread-safe; QueryService serializes access via its dispatch lock.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached plan or null. Entries are shared: the returned
  /// handle stays usable even if an Insert eviction or an epoch roll
  /// removes the entry while a pipelined statement still holds it —
  /// essential now that a plan is looked up in the authorize stage and
  /// consumed events later in the execute stage. A call with a newer
  /// `epoch` than the cache has seen invalidates everything first.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& client_key,
                                           const std::string& execution_policy,
                                           const std::string& sql,
                                           uint64_t epoch);

  /// Stores a plan under the same key tuple; evicts the oldest entry
  /// beyond `capacity` (insertion order). Inserting under a newer epoch
  /// invalidates older entries first, like Lookup.
  std::shared_ptr<const CachedPlan> Insert(const std::string& client_key,
                                           const std::string& execution_policy,
                                           const std::string& sql,
                                           uint64_t epoch, CachedPlan plan);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }

 private:
  static std::string Key(const std::string& client_key,
                         const std::string& execution_policy,
                         const std::string& sql);
  void RollEpoch(uint64_t epoch);

  size_t capacity_;
  uint64_t epoch_ = 0;
  std::map<std::string, std::shared_ptr<const CachedPlan>> entries_;
  std::deque<std::string> insertion_order_;  // front = oldest
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace ironsafe::server

#endif  // IRONSAFE_SERVER_PLAN_CACHE_H_
