#include "monitor/monitor.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "obs/trace.h"

namespace ironsafe::monitor {

namespace {
std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// Control-path CPU model (§4.2): parsing, policy evaluation and rewriting
// are real enclave work that the cached-session path skips, so they carry
// simulated cost — parse scales with statement text, the rest is a flat
// per-statement charge. BeginCachedSession pays only the enclave
// transition plus obligation replay, which is what makes a plan-cache hit
// measurably cheaper on the monitor axis.
constexpr uint64_t kParseCyclesPerByte = 40;
constexpr uint64_t kPolicyEvalCycles = 2000;
constexpr uint64_t kRewriteCycles = 1000;
}  // namespace

Bytes ComplianceProof::SigningInput() const {
  Bytes m;
  PutLengthPrefixed(&m, query);
  PutLengthPrefixed(&m, execution_policy);
  PutLengthPrefixed(&m, host_measurement);
  PutLengthPrefixed(&m, storage_measurement);
  m.push_back(offloaded ? 1 : 0);
  return m;
}

TrustedMonitor::TrustedMonitor(tee::SgxEnclave* enclave,
                               tee::SgxAttestationService* ias,
                               Bytes manufacturer_root)
    : enclave_(enclave),
      ias_(ias),
      manufacturer_root_(std::move(manufacturer_root)),
      signing_key_(*crypto::Ed25519KeyPairFromSeed(
          crypto::HkdfSha256({}, enclave->measurement(),
                             ToBytes("monitor-signing-key"), 32))),
      drbg_(crypto::HkdfSha256({}, enclave->measurement(),
                               ToBytes("monitor-drbg"), 32)),
      audit_log_(signing_key_) {}

void TrustedMonitor::TrustHostMeasurement(const Bytes& measurement) {
  trusted_host_measurements_.insert(measurement);
}

void TrustedMonitor::TrustStorageMeasurement(const Bytes& measurement) {
  trusted_storage_measurements_.insert(measurement);
}

void TrustedMonitor::set_latest_firmware(uint32_t host_fw,
                                         uint32_t storage_fw) {
  facts_.latest_host_fw = host_fw;
  facts_.latest_storage_fw = storage_fw;
}

Result<Bytes> TrustedMonitor::AttestHost(const tee::SgxQuote& quote,
                                         const std::string& location,
                                         uint32_t fw_version,
                                         sim::CostModel* cost) {
  if (cost != nullptr) {
    // Paper Table 4: the host-side CAS (configuration & attestation
    // service) round trip dominates host attestation.
    cost->ChargeFixed(AttestationLatency::kHostCasNanos);
  }
  RETURN_IF_ERROR(ias_->VerifyQuote(quote));
  if (!trusted_host_measurements_.count(quote.measurement)) {
    return Status::Unauthenticated(
        "host enclave measurement is not in the trusted set");
  }
  facts_.host_attested = true;
  facts_.host_location = location;
  facts_.host_fw = fw_version;
  attested_host_measurement_ = quote.measurement;
  ++policy_epoch_;  // eligibility facts changed; cached rewrites are stale
  // Certify the host's public key (carried in report_data, Fig 4.a
  // step 4) so clients can verify the host was attested by this monitor.
  return crypto::Ed25519Sign(signing_key_.private_key, quote.report_data);
}

Bytes TrustedMonitor::IssueStorageChallenge() { return drbg_.Generate(32); }

Status TrustedMonitor::AttestStorage(
    const std::string& node_id, const Bytes& challenge,
    const tee::TzAttestationResponse& response, sim::CostModel* cost) {
  if (cost != nullptr) {
    cost->ChargeFixed(AttestationLatency::kStorageTeeNanos);
    cost->ChargeFixed(AttestationLatency::kStorageReeNanos);
    cost->ChargeFixed(AttestationLatency::kInterconnectNanos);
  }
  RETURN_IF_ERROR(tee::VerifyTzAttestation(manufacturer_root_, node_id,
                                           challenge, response));
  if (!trusted_storage_measurements_.count(response.normal_world_hash)) {
    return Status::Unauthenticated(
        "storage normal-world measurement is not in the trusted set; node "
        "is ineligible for query offloading");
  }
  facts_.storage_attested = true;
  facts_.storage_location = response.config.location;
  facts_.storage_fw = response.config.firmware_version;
  attested_storage_measurement_ = response.normal_world_hash;
  ++policy_epoch_;  // eligibility facts changed; cached rewrites are stale
  return Status::OK();
}

Status TrustedMonitor::RegisterTablePolicy(const std::string& table,
                                           TablePolicy policy) {
  table_policies_[Lower(table)] = std::move(policy);
  ++policy_epoch_;
  return Status::OK();
}

void TrustedMonitor::RegisterClient(const std::string& key_id, int reuse_bit) {
  clients_[key_id] = reuse_bit;
  ++policy_epoch_;
}

Result<const TablePolicy*> TrustedMonitor::PolicyForStatement(
    const sql::Statement& stmt, std::string* table_name) const {
  std::string table;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      // Single protected table per query is supported (DESIGN.md §7);
      // find the first FROM entry with a registered policy.
      for (const auto& ref : stmt.select->from) {
        if (table_policies_.count(Lower(ref.table_name))) {
          table = Lower(ref.table_name);
          break;
        }
      }
      break;
    case sql::Statement::Kind::kInsert:
      table = Lower(stmt.insert->table_name);
      break;
    case sql::Statement::Kind::kDelete:
      table = Lower(stmt.del->table_name);
      break;
    case sql::Statement::Kind::kUpdate:
      table = Lower(stmt.update->table_name);
      break;
    case sql::Statement::Kind::kCreateTable:
      table = Lower(stmt.create_table->table_name);
      break;
  }
  if (table_name != nullptr) *table_name = table;
  auto it = table_policies_.find(table);
  if (it == table_policies_.end()) return nullptr;
  return &it->second;
}

Result<Authorization> TrustedMonitor::AuthorizeStatement(
    const std::string& client_key_id, const std::string& sql,
    const std::string& execution_policy, std::optional<int64_t> insert_expiry,
    std::optional<int64_t> insert_reuse, sim::CostModel* cost) {
  // The monitor itself runs inside an enclave; entering it costs one
  // transition (§4.2 control path).
  RETURN_IF_ERROR(enclave_->EnterExit(cost));

  auto client = clients_.find(client_key_id);
  if (client == clients_.end()) {
    return Status::Unauthenticated("unknown client: " + client_key_id);
  }

  obs::SpanGuard parse_span("parse", "monitor", cost);
  if (cost != nullptr) {
    cost->ChargeCycles(sim::Site::kHost, kParseCyclesPerByte * sql.size());
  }
  ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  parse_span.Close();

  policy::RequestFacts request;
  request.session_key_id = client_key_id;
  request.access_time = access_time_;
  request.reuse_bit = client->second;

  Authorization auth;
  auth.storage_eligible = facts_.storage_attested;

  obs::SpanGuard policy_span("policy-check", "monitor", cost);
  if (cost != nullptr) {
    cost->ChargeCycles(sim::Site::kHost, kPolicyEvalCycles);
  }

  // 1. Execution policy: decides eligibility of host/storage nodes.
  if (!execution_policy.empty()) {
    ASSIGN_OR_RETURN(policy::PolicySet exec_set,
                     policy::ParsePolicy(execution_policy));
    const policy::PolicyExpr* exec_expr = exec_set.Find(policy::Perm::kExec);
    if (exec_expr != nullptr) {
      ASSIGN_OR_RETURN(policy::ExecDecision exec,
                       policy::EvaluateExec(*exec_expr, facts_, request));
      if (!exec.host_eligible) {
        return Status::PermissionDenied("execution policy unsatisfiable: " +
                                        exec.detail);
      }
      auth.storage_eligible = auth.storage_eligible && exec.storage_eligible;
    }
  }

  // 2. Access policy of the touched table.
  std::string table;
  ASSIGN_OR_RETURN(const TablePolicy* table_policy,
                   PolicyForStatement(stmt, &table));
  if (table_policy != nullptr) {
    policy::Perm needed = stmt.kind == sql::Statement::Kind::kSelect
                              ? policy::Perm::kRead
                              : policy::Perm::kWrite;
    const policy::PolicyExpr* rule = table_policy->access.Find(needed);
    if (rule == nullptr) {
      return Status::PermissionDenied(
          std::string("no ") + std::string(policy::PermName(needed)) +
          " rule for table " + table);
    }
    ASSIGN_OR_RETURN(policy::AccessDecision decision,
                     policy::EvaluateAccess(*rule, facts_, request));
    if (!decision.allowed) {
      // Denials are themselves audit-worthy events (§3.3: malicious
      // queries are recorded in the tamper-proof log).
      RETURN_IF_ERROR(audit_log_.Append("denials", client_key_id, sql,
                                        access_time_));
      return Status::PermissionDenied("access denied: " +
                                      decision.denial_reason);
    }

    // 3. Rewriting for row-level policies and hidden columns.
    policy_span.Close();
    obs::SpanGuard rewrite_span("rewrite", "monitor", cost);
    if (cost != nullptr) {
      cost->ChargeCycles(sim::Site::kHost, kRewriteCycles);
    }
    switch (stmt.kind) {
      case sql::Statement::Kind::kSelect:
        if (decision.row_filter) {
          RETURN_IF_ERROR(policy::InjectRowFilter(stmt.select.get(),
                                                  *decision.row_filter));
        }
        break;
      case sql::Statement::Kind::kInsert:
        RETURN_IF_ERROR(policy::ExtendInsert(
            stmt.insert.get(), table_policy->with_expiry, insert_expiry,
            table_policy->with_reuse, insert_reuse));
        break;
      case sql::Statement::Kind::kDelete:
        if (decision.row_filter) {
          RETURN_IF_ERROR(
              policy::InjectRowFilter(stmt.del.get(), *decision.row_filter));
        }
        break;
      case sql::Statement::Kind::kUpdate:
        if (decision.row_filter) {
          RETURN_IF_ERROR(policy::InjectRowFilter(stmt.update.get(),
                                                  *decision.row_filter));
        }
        break;
      case sql::Statement::Kind::kCreateTable:
        policy::AddPolicyColumns(stmt.create_table.get(),
                                 table_policy->with_expiry,
                                 table_policy->with_reuse);
        break;
    }
    rewrite_span.Close();

    // 4. Logging obligations (anti-pattern #3: transparent sharing).
    for (const policy::Obligation& ob : decision.obligations) {
      RETURN_IF_ERROR(audit_log_.Append(ob.log_name,
                                        ob.log_key ? client_key_id : "",
                                        ob.log_query ? sql : "",
                                        access_time_));
    }
    auth.obligations = decision.obligations;
  }
  policy_span.Close();  // no-op when the rewrite branch already closed it

  // 5. Session key for the host<->storage channel (§4.2 key management).
  auth.session_key = drbg_.Generate(32);
  active_sessions_.insert(auth.session_key);
  auth.rewritten = std::move(stmt);
  return auth;
}

Result<Bytes> TrustedMonitor::BeginCachedSession(
    const std::string& client_key_id, const std::string& sql,
    const std::vector<policy::Obligation>& obligations,
    sim::CostModel* cost) {
  // Same enclave entry as AuthorizeStatement — only the parse / policy /
  // rewrite work is skipped, never the boundary crossing.
  RETURN_IF_ERROR(enclave_->EnterExit(cost));
  if (clients_.find(client_key_id) == clients_.end()) {
    return Status::Unauthenticated("unknown client: " + client_key_id);
  }
  obs::SpanGuard span("cached-auth", "monitor", cost);
  // Logging obligations are per *execution*, not per rewrite: a consumer
  // re-running a cached statement must still appear in the audit log
  // (anti-pattern #3), so the recorded obligations replay on every hit.
  for (const policy::Obligation& ob : obligations) {
    RETURN_IF_ERROR(audit_log_.Append(ob.log_name,
                                      ob.log_key ? client_key_id : "",
                                      ob.log_query ? sql : "", access_time_));
  }
  Bytes session_key = drbg_.Generate(32);
  active_sessions_.insert(session_key);
  return session_key;
}

void TrustedMonitor::EndSession(const Bytes& session_key) {
  active_sessions_.erase(session_key);
}

bool TrustedMonitor::SessionActive(const Bytes& session_key) const {
  return active_sessions_.count(session_key) > 0;
}

Result<ComplianceProof> TrustedMonitor::IssueProof(
    const std::string& query, const std::string& execution_policy,
    bool offloaded) {
  if (!facts_.host_attested) {
    return Status::FailedPrecondition("host has not been attested");
  }
  ComplianceProof proof;
  proof.query = query;
  proof.execution_policy = execution_policy;
  proof.host_measurement = attested_host_measurement_;
  proof.storage_measurement = attested_storage_measurement_;
  proof.offloaded = offloaded;
  ASSIGN_OR_RETURN(proof.signature, crypto::Ed25519Sign(
                                        signing_key_.private_key,
                                        proof.SigningInput()));
  return proof;
}

bool TrustedMonitor::VerifyProof(const ComplianceProof& proof,
                                 const Bytes& monitor_public_key) {
  return crypto::Ed25519Verify(monitor_public_key, proof.SigningInput(),
                               proof.signature);
}

}  // namespace ironsafe::monitor
