// Fixture: every fallible call's result is consumed — propagated,
// assigned, returned, or explicitly cast away. None of these may fire
// unchecked-status.

struct FakeChannel {
  int Send(int x);
  int Receive(int x);
};

struct FakeClient {
  int Provision();
  int Write(int slot, int data);
  void WriteFrame(int slot, int data);  // void-returning: never flagged
};

#define RETURN_IF_ERROR(expr) \
  do {                        \
    if ((expr) != 0) return;  \
  } while (0)

void Clean(FakeChannel* ch, FakeClient client) {
  RETURN_IF_ERROR(ch->Send(1));
  int status = ch->Receive(2);
  if (client.Provision() != 0) return;
  (void)client.Write(0, status);
  client.WriteFrame(0, 3);
}

int Forwarding(FakeChannel* ch) { return ch->Send(4); }
