#include "obs/access_trace.h"

#include <sstream>

#include "obs/trace.h"

namespace ironsafe::obs {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

thread_local AccessLog* t_access_log = nullptr;

}  // namespace

std::string_view AccessKindName(AccessKind kind) {
  switch (kind) {
    case AccessKind::kQueryBegin: return "query_begin";
    case AccessKind::kScanBegin: return "scan_begin";
    case AccessKind::kUnitRead: return "unit_read";
    case AccessKind::kScanEnd: return "scan_end";
    case AccessKind::kFilter: return "filter";
    case AccessKind::kJoinBegin: return "join_begin";
    case AccessKind::kSortNetwork: return "sort_network";
    case AccessKind::kJoinMerge: return "join_merge";
    case AccessKind::kJoinEnd: return "join_end";
    case AccessKind::kAggregate: return "aggregate";
    case AccessKind::kSort: return "sort";
    case AccessKind::kProject: return "project";
    case AccessKind::kDistinct: return "distinct";
    case AccessKind::kResult: return "result";
  }
  return "unknown";
}

std::string AccessLog::ToString() const {
  std::ostringstream out;
  for (const AccessEvent& e : events_) {
    out << AccessKindName(e.kind) << '(' << e.a << ',' << e.b << ")\n";
  }
  return out.str();
}

uint64_t AccessLog::Fingerprint() const { return Fnv1a64(ToString()); }

AccessLog* CurrentAccessLog() { return t_access_log; }

void SetCurrentAccessLog(AccessLog* log) { t_access_log = log; }

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (char c : bytes) {
    h = (h ^ static_cast<uint8_t>(c)) * kFnvPrime;
  }
  return h;
}

std::string DeterministicSpanSignature(const Tracer& tracer) {
  std::ostringstream out;
  for (const Span& span : tracer.spans()) {
    if (span.detail) continue;
    out << span.name << '|' << span.category << '|' << span.id << '|'
        << span.parent << '|' << span.depth << '|' << span.sim_start_ns << '|'
        << span.sim_end_ns;
    for (const auto& [key, value] : span.tags) {
      out << '|' << key << '=' << value;
    }
    out << '\n';
  }
  return out.str();
}

uint64_t SpanFingerprint(const Tracer& tracer) {
  return Fnv1a64(DeterministicSpanSignature(tracer));
}

}  // namespace ironsafe::obs
