#include "net/secure_channel.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "sim/fault.h"

namespace ironsafe::net {

namespace {

// Key schedule: two direction-separated AEAD keys plus a session id.
struct KeySchedule {
  Bytes initiator_key;
  Bytes responder_key;
  Bytes session_id;
};

KeySchedule DeriveKeys(const Bytes& shared_secret, const Bytes& transcript) {
  KeySchedule ks;
  ks.initiator_key = crypto::HkdfSha256(transcript, shared_secret,
                                        ToBytes("i2r"), crypto::Aead::kKeySize);
  ks.responder_key = crypto::HkdfSha256(transcript, shared_secret,
                                        ToBytes("r2i"), crypto::Aead::kKeySize);
  ks.session_id =
      crypto::HkdfSha256(transcript, shared_secret, ToBytes("sid"), 16);
  return ks;
}

Result<std::unique_ptr<SecureChannel>> BuildChannel(const KeySchedule& ks,
                                                    bool is_initiator) {
  ASSIGN_OR_RETURN(crypto::Aead send,
                   crypto::Aead::Create(is_initiator ? ks.initiator_key
                                                     : ks.responder_key));
  ASSIGN_OR_RETURN(crypto::Aead recv,
                   crypto::Aead::Create(is_initiator ? ks.responder_key
                                                     : ks.initiator_key));
  return std::unique_ptr<SecureChannel>(new SecureChannel(
      std::move(send), std::move(recv), ks.session_id));
}

}  // namespace

Result<Bytes> SecureChannel::Send(const Bytes& plaintext,
                                  sim::CostModel* cost) {
  if (closed_) {
    return Status::FailedPrecondition("secure channel is closed");
  }
  // Injected link loss before the send commits: the sequence number does
  // not advance, so a plain re-send of the same plaintext recovers.
  if (sim::FaultAt(sim::fault_site::kNetSendDrop)) {
    IRONSAFE_COUNTER_ADD("net.channel.injected_drops", 1);
    return Status::Unavailable("injected: frame dropped before send at seq " +
                               std::to_string(send_seq_));
  }
  Bytes aad;
  PutU64(&aad, send_seq_);
  Append(&aad, session_id_);
  Bytes nonce(crypto::Aead::kNonceSize, 0);
  PutU64(&nonce, send_seq_);
  nonce.resize(crypto::Aead::kNonceSize);
  ASSIGN_OR_RETURN(Bytes frame, send_aead_.Seal(nonce, aad, plaintext));
  // Send state advances only after the frame is sealed, so a Seal failure
  // (or the injected drop above) leaves the channel usable as-is.
  ++send_seq_;
  // Injected in-transit damage after the send committed: the receiver will
  // reject the frame, and the endpoints need a re-handshake to resync.
  if (auto hit = sim::FaultAt(sim::fault_site::kNetSendCorrupt)) {
    IRONSAFE_COUNTER_ADD("net.channel.injected_corruptions", 1);
    frame[hit->param % frame.size()] ^= 0x01;
  }
  IRONSAFE_COUNTER_ADD("net.channel.frames_sent", 1);
  IRONSAFE_COUNTER_ADD("net.channel.send_bytes", frame.size());
  if (cost != nullptr) cost->ChargeNetwork(frame.size());
  return frame;
}

Result<Bytes> SecureChannel::Receive(const Bytes& frame,
                                     sim::CostModel* cost) {
  (void)cost;  // receive side piggybacks on the sender's network charge
  if (closed_) {
    return Status::FailedPrecondition("secure channel is closed");
  }
  // Injected replay: the adversary substitutes the previously accepted
  // frame for the incoming one. Its AAD binds an older sequence number,
  // so the AEAD open below must reject it.
  const Bytes* incoming = &frame;
  if (sim::FaultAt(sim::fault_site::kNetRecvReplay) &&
      !last_accepted_frame_.empty()) {
    IRONSAFE_COUNTER_ADD("net.channel.injected_replays", 1);
    incoming = &last_accepted_frame_;
  }
  Bytes aad;
  PutU64(&aad, recv_seq_);
  Append(&aad, session_id_);
  auto plaintext = recv_aead_.Open(aad, *incoming);
  if (!plaintext.ok()) {
    // Rejection is transactional: recv_seq_ is untouched, so the expected
    // legitimate frame still authenticates after the bad one is discarded.
    IRONSAFE_COUNTER_ADD("net.channel.rejects", 1);
    return Status::Corruption(
        "secure channel record rejected (tamper, replay or reorder) at seq " +
        std::to_string(recv_seq_));
  }
  ++recv_seq_;
  IRONSAFE_COUNTER_ADD("net.channel.frames_received", 1);
  IRONSAFE_COUNTER_ADD("net.channel.recv_bytes", incoming->size());
  if (sim::FaultRegistry::Global().enabled()) last_accepted_frame_ = *incoming;
  return plaintext;
}

void SecureChannel::Close() {
  if (closed_) return;
  closed_ = true;
  send_aead_.Zeroize();
  recv_aead_.Zeroize();
  std::fill(session_id_.begin(), session_id_.end(), uint8_t{0});
  std::fill(last_accepted_frame_.begin(), last_accepted_frame_.end(),
            uint8_t{0});
  last_accepted_frame_.clear();
  IRONSAFE_COUNTER_ADD("net.channel.closed", 1);
}

Result<Handshake::Hello> Handshake::Start() {
  ephemeral_private_ = drbg_->Generate(32);
  ASSIGN_OR_RETURN(ephemeral_public_, crypto::X25519Base(ephemeral_private_));
  return Hello{ephemeral_public_};
}

Result<std::unique_ptr<SecureChannel>> Handshake::Finish(const Hello& peer,
                                                         bool is_initiator) {
  if (ephemeral_private_.empty()) {
    return Status::FailedPrecondition("call Start() before Finish()");
  }
  ASSIGN_OR_RETURN(Bytes shared,
                   crypto::X25519(ephemeral_private_, peer.ephemeral_public));
  // Transcript binds both public keys in a canonical order.
  Bytes transcript;
  const Bytes& a = is_initiator ? ephemeral_public_ : peer.ephemeral_public;
  const Bytes& b = is_initiator ? peer.ephemeral_public : ephemeral_public_;
  Append(&transcript, a);
  Append(&transcript, b);
  transcript = crypto::Sha256::Hash(transcript);
  return BuildChannel(DeriveKeys(shared, transcript), is_initiator);
}

Result<std::pair<std::unique_ptr<SecureChannel>,
                 std::unique_ptr<SecureChannel>>>
Handshake::FromSessionKey(const Bytes& session_key) {
  Bytes transcript = crypto::Sha256::Hash(session_key);
  KeySchedule ks = DeriveKeys(session_key, transcript);
  ASSIGN_OR_RETURN(auto initiator, BuildChannel(ks, true));
  ASSIGN_OR_RETURN(auto responder, BuildChannel(ks, false));
  return std::make_pair(std::move(initiator), std::move(responder));
}

}  // namespace ironsafe::net
