file(REMOVE_RECURSE
  "libironsafe_tee.a"
)
