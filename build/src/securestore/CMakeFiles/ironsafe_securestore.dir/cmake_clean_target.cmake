file(REMOVE_RECURSE
  "libironsafe_securestore.a"
)
