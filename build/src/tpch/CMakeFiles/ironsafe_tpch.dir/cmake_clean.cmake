file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_tpch.dir/dbgen.cc.o"
  "CMakeFiles/ironsafe_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/ironsafe_tpch.dir/queries.cc.o"
  "CMakeFiles/ironsafe_tpch.dir/queries.cc.o.d"
  "libironsafe_tpch.a"
  "libironsafe_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
