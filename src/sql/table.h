#ifndef IRONSAFE_SQL_TABLE_H_
#define IRONSAFE_SQL_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sql/page_store.h"
#include "sql/schema.h"

namespace ironsafe::sql {

class ColumnBatch;

/// One morsel unit decoded to columnar form. `cached` reports whether
/// the batch came from the store's decoded-batch cache (the vectorized
/// engine charges a cheaper decode constant for hits).
struct DecodedMorsel {
  std::shared_ptr<const ColumnBatch> batch;
  bool cached = false;
};

/// Pull-based row cursor over a table.
class TableCursor {
 public:
  virtual ~TableCursor() = default;
  /// Fills `row` and returns true, or returns false at end of table.
  virtual Result<bool> Next(Row* row) = 0;
};

/// A named relation. Implementations: MemoryTable (host intermediates)
/// and PagedTable (on-device heap file over a PageStore).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  virtual ~Table() = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  virtual Status Append(const Row& row, sim::CostModel* cost) = 0;
  virtual std::unique_ptr<TableCursor> NewCursor(sim::CostModel* cost) const = 0;
  virtual uint64_t row_count() const = 0;
  virtual uint64_t page_count() const = 0;

  /// Morsel-driven scan support. A table is divided into `morsel_units`
  /// equally scannable units (pages for paged tables, row blocks for
  /// memory tables); NewMorselCursor yields the rows of units
  /// [begin, end) in table order, so concatenating the cursors of a
  /// contiguous partition reproduces NewCursor's row order exactly.
  /// A return of 0 units means the table does not support partitioned
  /// scans and callers must fall back to NewCursor.
  virtual uint64_t morsel_units() const { return 0; }
  virtual std::unique_ptr<TableCursor> NewMorselCursor(
      uint64_t begin, uint64_t end, sim::CostModel* cost) const {
    (void)begin;
    (void)end;
    (void)cost;
    return nullptr;
  }

  /// Decodes morsel unit `unit` into one column batch (the vectorized
  /// engine's scan granule). Page I/O and security charges are identical
  /// to cursoring the same unit; only the row-decode step changes shape.
  /// The default implementation wraps NewMorselCursor.
  virtual Result<DecodedMorsel> DecodeMorselBatch(uint64_t unit,
                                                  sim::CostModel* cost) const;

  /// Brackets a concurrent morsel scan (forwarded to the page store so
  /// caches can defer state updates; see PageStore::BeginParallelRead).
  virtual void BeginParallelScan(int slots) { (void)slots; }
  virtual void EndParallelScan() {}

  /// Rewrites the table in place: `fn` returns false to delete the row
  /// and may mutate it. Returns the number of affected (deleted or kept-
  /// modified) rows as counted by `modified`.
  virtual Status Rewrite(
      const std::function<Result<bool>(Row*, bool* modified)>& fn,
      sim::CostModel* cost, uint64_t* affected) = 0;

  /// Bulk-load bracket; flushes buffered pages / commits secure roots.
  virtual void BeginBulkLoad() {}
  virtual Status FinishBulkLoad(sim::CostModel* cost) {
    (void)cost;
    return Status::OK();
  }

 private:
  std::string name_;
  Schema schema_;
};

/// Rows in RAM; used for the host engine's shipped intermediates and for
/// small in-memory databases.
class MemoryTable : public Table {
 public:
  MemoryTable(std::string name, Schema schema)
      : Table(std::move(name), std::move(schema)) {}

  Status Append(const Row& row, sim::CostModel* cost) override;
  std::unique_ptr<TableCursor> NewCursor(sim::CostModel* cost) const override;
  uint64_t row_count() const override { return rows_.size(); }
  uint64_t page_count() const override;
  uint64_t morsel_units() const override;
  std::unique_ptr<TableCursor> NewMorselCursor(
      uint64_t begin, uint64_t end, sim::CostModel* cost) const override;
  Result<DecodedMorsel> DecodeMorselBatch(uint64_t unit,
                                          sim::CostModel* cost) const override;
  Status Rewrite(const std::function<Result<bool>(Row*, bool*)>& fn,
                 sim::CostModel* cost, uint64_t* affected) override;

  const std::vector<Row>& rows() const { return rows_; }

  /// Rows per morsel unit: small enough to load-balance skewed filters,
  /// large enough that per-unit overhead stays negligible.
  static constexpr uint64_t kRowsPerMorsel = 1024;

 private:
  std::vector<Row> rows_;
};

/// Heap file over 4 KiB pages: page = u16 row_count || serialized rows.
/// Rows never span pages; a row larger than a page is rejected.
class PagedTable : public Table {
 public:
  PagedTable(std::string name, Schema schema, PageStore* store)
      : Table(std::move(name), std::move(schema)), store_(store) {}

  Status Append(const Row& row, sim::CostModel* cost) override;
  std::unique_ptr<TableCursor> NewCursor(sim::CostModel* cost) const override;
  uint64_t row_count() const override { return row_count_; }
  uint64_t page_count() const override {
    return page_ids_.size() + (buffer_.empty() ? 0 : 1);
  }
  /// One unit per page, plus a trailing unit for unflushed buffered rows.
  uint64_t morsel_units() const override { return page_count(); }
  std::unique_ptr<TableCursor> NewMorselCursor(
      uint64_t begin, uint64_t end, sim::CostModel* cost) const override;
  Result<DecodedMorsel> DecodeMorselBatch(uint64_t unit,
                                          sim::CostModel* cost) const override;
  void BeginParallelScan(int slots) override {
    store_->BeginParallelRead(slots);
  }
  void EndParallelScan() override { store_->EndParallelRead(); }
  Status Rewrite(const std::function<Result<bool>(Row*, bool*)>& fn,
                 sim::CostModel* cost, uint64_t* affected) override;

  void BeginBulkLoad() override { store_->BeginBatch(); }
  Status FinishBulkLoad(sim::CostModel* cost) override {
    RETURN_IF_ERROR(FlushBuffer(cost));
    return store_->EndBatch();
  }

  const std::vector<uint64_t>& page_ids() const { return page_ids_; }

 private:
  friend class PagedTableCursor;

  Status FlushBuffer(sim::CostModel* cost);

  PageStore* store_;
  std::vector<uint64_t> page_ids_;
  uint64_t row_count_ = 0;
  // Rows waiting to fill the current page.
  std::vector<Bytes> buffer_;  // serialized rows
  size_t buffer_bytes_ = 0;
};

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_TABLE_H_
