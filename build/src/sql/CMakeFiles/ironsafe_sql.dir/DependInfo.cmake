
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/ast.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/ast.cc.o.d"
  "/root/repo/src/sql/database.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/database.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/database.cc.o.d"
  "/root/repo/src/sql/eval.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/eval.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/eval.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/page_store.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/page_store.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/page_store.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/schema.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/schema.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/schema.cc.o.d"
  "/root/repo/src/sql/table.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/table.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/table.cc.o.d"
  "/root/repo/src/sql/tokenizer.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/tokenizer.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/tokenizer.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/sql/CMakeFiles/ironsafe_sql.dir/value.cc.o" "gcc" "src/sql/CMakeFiles/ironsafe_sql.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ironsafe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ironsafe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ironsafe_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/securestore/CMakeFiles/ironsafe_securestore.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/ironsafe_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ironsafe_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
