#include "monitor/audit_log.h"

#include "crypto/sha256.h"

namespace ironsafe::monitor {

Bytes AuditLog::HashEntry(const AuditEntry& entry) {
  Bytes m;
  PutU64(&m, entry.seq);
  PutU64(&m, static_cast<uint64_t>(entry.timestamp));
  PutLengthPrefixed(&m, entry.log_name);
  PutLengthPrefixed(&m, entry.client_key_id);
  PutLengthPrefixed(&m, entry.query);
  PutLengthPrefixed(&m, entry.prev_hash);
  return crypto::Sha256::Hash(m);
}

Status AuditLog::Append(const std::string& log_name,
                        const std::string& client_key_id,
                        const std::string& query, int64_t timestamp) {
  AuditEntry entry;
  entry.seq = entries_.size();
  entry.timestamp = timestamp;
  entry.log_name = log_name;
  entry.client_key_id = client_key_id;
  entry.query = query;
  entry.prev_hash = entries_.empty() ? Bytes(32, 0) : entries_.back().entry_hash;
  entry.entry_hash = HashEntry(entry);
  ASSIGN_OR_RETURN(head_signature_,
                   crypto::Ed25519Sign(signer_.private_key, entry.entry_hash));
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status AuditLog::Verify(const std::vector<AuditEntry>& entries,
                        const Bytes& head_signature, const Bytes& public_key) {
  Bytes prev(32, 0);
  for (size_t i = 0; i < entries.size(); ++i) {
    const AuditEntry& e = entries[i];
    if (e.seq != i) {
      return Status::Corruption("audit entry " + std::to_string(i) +
                                " has wrong sequence number");
    }
    if (e.prev_hash != prev) {
      return Status::Corruption("audit chain broken before entry " +
                                std::to_string(i));
    }
    if (HashEntry(e) != e.entry_hash) {
      return Status::Corruption("audit entry " + std::to_string(i) +
                                " content hash mismatch");
    }
    prev = e.entry_hash;
  }
  if (entries.empty()) return Status::OK();
  if (!crypto::Ed25519Verify(public_key, entries.back().entry_hash,
                             head_signature)) {
    return Status::Corruption(
        "audit head signature invalid (truncation or forgery)");
  }
  return Status::OK();
}

}  // namespace ironsafe::monitor
