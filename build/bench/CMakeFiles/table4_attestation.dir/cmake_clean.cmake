file(REMOVE_RECURSE
  "CMakeFiles/table4_attestation.dir/table4_attestation.cc.o"
  "CMakeFiles/table4_attestation.dir/table4_attestation.cc.o.d"
  "table4_attestation"
  "table4_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
