#ifndef IRONSAFE_OBS_METRICS_H_
#define IRONSAFE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ironsafe::obs {

/// Monotonically increasing event count (bytes shipped, ecall round
/// trips, RPMB reads, ...). Updates are relaxed atomic adds, so hot
/// paths pay one uncontended RMW per event.
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written point-in-time value (resident bytes, active sessions).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Process-wide name -> metric registry. counter()/gauge() get-or-create
/// and return a reference that stays valid for the registry's lifetime
/// (node-based map), so call sites cache it in a function-local static
/// and the steady-state cost is a single relaxed atomic op.
///
/// Naming convention: dotted lowercase paths grouped by subsystem, e.g.
/// `tee.sgx.transitions`, `net.channel.send_bytes` (docs/OBSERVABILITY.md
/// lists the full registry).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Name-sorted snapshot of every registered metric's current value.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Zeroes every metric (names stay registered). For tests comparing
  /// cumulative process-wide values across repeated in-process runs.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
};

inline Counter& GetCounter(std::string_view name) {
  return MetricsRegistry::Global().counter(name);
}
inline Gauge& GetGauge(std::string_view name) {
  return MetricsRegistry::Global().gauge(name);
}

/// Hot-path counter bump. Resolves the registry lookup once per call
/// site; compiles to nothing under -DIRONSAFE_OBS_DISABLE.
#ifndef IRONSAFE_OBS_DISABLE
#define IRONSAFE_COUNTER_ADD(name, delta)                       \
  do {                                                          \
    static ::ironsafe::obs::Counter& _ironsafe_obs_counter =    \
        ::ironsafe::obs::GetCounter(name);                      \
    _ironsafe_obs_counter.Add(                                  \
        static_cast<int64_t>(delta));                           \
  } while (0)
#else
#define IRONSAFE_COUNTER_ADD(name, delta) \
  do {                                    \
  } while (0)
#endif

}  // namespace ironsafe::obs

#endif  // IRONSAFE_OBS_METRICS_H_
