// Linted as src/crypto/layering_clean.cc: common is crypto's only
// declared dependency, and same-directory includes are always fine.
#include "sha256.h"

#include "common/bytes.h"
#include "common/result.h"

namespace ironsafe::crypto {
int Unused() { return 0; }
}  // namespace ironsafe::crypto
