file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_sql.dir/ast.cc.o"
  "CMakeFiles/ironsafe_sql.dir/ast.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/database.cc.o"
  "CMakeFiles/ironsafe_sql.dir/database.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/eval.cc.o"
  "CMakeFiles/ironsafe_sql.dir/eval.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/executor.cc.o"
  "CMakeFiles/ironsafe_sql.dir/executor.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/page_store.cc.o"
  "CMakeFiles/ironsafe_sql.dir/page_store.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/parser.cc.o"
  "CMakeFiles/ironsafe_sql.dir/parser.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/schema.cc.o"
  "CMakeFiles/ironsafe_sql.dir/schema.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/table.cc.o"
  "CMakeFiles/ironsafe_sql.dir/table.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/tokenizer.cc.o"
  "CMakeFiles/ironsafe_sql.dir/tokenizer.cc.o.d"
  "CMakeFiles/ironsafe_sql.dir/value.cc.o"
  "CMakeFiles/ironsafe_sql.dir/value.cc.o.d"
  "libironsafe_sql.a"
  "libironsafe_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
