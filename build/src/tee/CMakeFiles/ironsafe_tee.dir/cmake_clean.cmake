file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_tee.dir/rpmb.cc.o"
  "CMakeFiles/ironsafe_tee.dir/rpmb.cc.o.d"
  "CMakeFiles/ironsafe_tee.dir/sgx.cc.o"
  "CMakeFiles/ironsafe_tee.dir/sgx.cc.o.d"
  "CMakeFiles/ironsafe_tee.dir/trustzone.cc.o"
  "CMakeFiles/ironsafe_tee.dir/trustzone.cc.o.d"
  "libironsafe_tee.a"
  "libironsafe_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
