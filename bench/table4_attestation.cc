// Table 4: host and storage-system attestation latency breakdown.
// Runs the two attestation protocols end-to-end and prints the same rows
// the paper reports (host CAS 140 ms; storage TEE 453 / REE 54 /
// interconnect 42; total 689 ms).

#include "bench/bench_util.h"
#include "engine/ironsafe.h"
#include "monitor/monitor.h"

namespace ironsafe::bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchTracer tracer(args);
  engine::IronSafeSystem::Options options;
  options.csa.scale_factor = 0.0005;  // attestation does not touch data
  auto system_or = engine::IronSafeSystem::Create(options);
  if (!system_or.ok()) Die(system_or.status());
  auto system = std::move(*system_or);

  WallClock wall;
  sim::CostModel cost;
  if (Status st = system->Bootstrap(&cost); !st.ok()) Die(st);

  using monitor::AttestationLatency;
  PrintHeader("Table 4: attestation latency breakdown");
  std::printf("%-16s %-24s %10s\n", "component", "stage", "time(ms)");
  std::printf("%-16s %-24s %10.0f\n", "Host", "CAS response",
              AttestationLatency::kHostCasNanos / 1e6);
  std::printf("%-16s %-24s %10.0f\n", "Storage server", "TEE",
              AttestationLatency::kStorageTeeNanos / 1e6);
  std::printf("%-16s %-24s %10.0f\n", "", "REE",
              AttestationLatency::kStorageReeNanos / 1e6);
  std::printf("%-16s %-24s %10.0f\n", "", "Interconnect",
              AttestationLatency::kInterconnectNanos / 1e6);
  std::printf("%-16s %-24s %10.2f\n", "Total", "(measured end-to-end)",
              cost.elapsed_ms());
  std::printf("(paper: 140 + 453 + 54 + 42 = 689 ms)\n");
  PrintWallClock(wall, "both attestation protocols");
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
