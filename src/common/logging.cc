#include "common/logging.h"

namespace ironsafe {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string s = stream_.str();
  std::fprintf(stderr, "%s\n", s.c_str());
}

}  // namespace internal_logging
}  // namespace ironsafe
