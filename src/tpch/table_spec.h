#ifndef IRONSAFE_TPCH_TABLE_SPEC_H_
#define IRONSAFE_TPCH_TABLE_SPEC_H_

#include <string>
#include <vector>

#include "sql/partition.h"
#include "sql/value.h"

namespace ironsafe::tpch {

/// Declarative description of one TPC-H table: the column list the
/// generator's CREATE TABLE statements are derived from, plus the
/// partition spec the sharded fleet routes rows by. This is the single
/// source of truth — the dbgen loaders and the distributed planner both
/// read it, so the column lists and partition keys can never drift
/// apart (docs/SHARDING.md).
struct TableSpec {
  struct ColumnSpec {
    std::string name;
    sql::Type type = sql::Type::kInt64;
  };

  std::string name;
  std::vector<ColumnSpec> columns;
  sql::TablePartition partition;

  /// "CREATE TABLE <name> (<col> <TYPE>, ...)" for this spec.
  std::string CreateTableSql() const;
};

/// The eight TPC-H tables in load order (region .. lineitem).
///
/// Partitioning scheme: orders and lineitem are range-partitioned on
/// orderkey (co-partitioned — an order's lines always share its shard);
/// part and partsupp are hash-partitioned on partkey (co-partitioned
/// likewise); customer is hash-partitioned on custkey; the small
/// dimension tables (region, nation, supplier) are replicated to every
/// node so shard-local join fragments never need them shipped.
const std::vector<TableSpec>& TpchTables();

/// Spec for `table`, or nullptr for an unknown name.
const TableSpec* FindTable(const std::string& table);

/// The per-table partition specs in table load order — the value a
/// fleet's FleetOptions::partitions takes for TPC-H workloads.
std::vector<sql::TablePartition> TpchPartitionScheme();

}  // namespace ironsafe::tpch

#endif  // IRONSAFE_TPCH_TABLE_SPEC_H_
