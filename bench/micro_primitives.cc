// google-benchmark microbenchmarks of the primitives every IronSafe
// query exercises: hashing, MACs, page encryption, signatures, the
// Merkle tree, the secure page store, and the secure channel.

#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "net/secure_channel.h"
#include "securestore/merkle_tree.h"
#include "securestore/secure_store.h"

namespace ironsafe {
namespace {

void BM_Sha256_4KiB(benchmark::State& state) {
  Bytes data(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Sha256_4KiB);

void BM_Sha512_4KiB(benchmark::State& state) {
  Bytes data(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha512::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Sha512_4KiB);

void BM_HmacSha512_4KiB(benchmark::State& state) {
  Bytes key(32, 1), data(4096, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha512(key, data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HmacSha512_4KiB);

void BM_AesCbcEncrypt_4KiB(benchmark::State& state) {
  Bytes key(32, 1), iv(16, 2), page(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::AesCbcEncrypt(key, iv, page));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AesCbcEncrypt_4KiB);

void BM_ChaCha20_4KiB(benchmark::State& state) {
  Bytes key(32, 1), nonce(12, 2), data(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ChaCha20(key, nonce, 0, data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ChaCha20_4KiB);

void BM_Ed25519_Sign(benchmark::State& state) {
  auto kp = *crypto::Ed25519KeyPairFromSeed(Bytes(32, 7));
  Bytes msg = ToBytes("attestation quote payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Ed25519Sign(kp.private_key, msg));
  }
}
BENCHMARK(BM_Ed25519_Sign);

void BM_Ed25519_Verify(benchmark::State& state) {
  auto kp = *crypto::Ed25519KeyPairFromSeed(Bytes(32, 7));
  Bytes msg = ToBytes("attestation quote payload");
  Bytes sig = *crypto::Ed25519Sign(kp.private_key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Ed25519Verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519_Verify);

void BM_X25519(benchmark::State& state) {
  Bytes scalar(32, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::X25519Base(scalar));
  }
}
BENCHMARK(BM_X25519);

void BM_MerkleVerify(benchmark::State& state) {
  const uint64_t leaves = state.range(0);
  securestore::MerkleTree tree(Bytes(32, 1), leaves);
  for (uint64_t i = 0; i < leaves; ++i) {
    tree.UpdateLeaf(i, crypto::Sha256::Hash(std::to_string(i)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes mac = crypto::Sha256::Hash(std::to_string(i % leaves));
    benchmark::DoNotOptimize(tree.VerifyLeaf(i % leaves, mac));
    ++i;
  }
}
BENCHMARK(BM_MerkleVerify)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SecureStoreReadPage(benchmark::State& state) {
  tee::DeviceManufacturer mfg(ToBytes("m"));
  tee::TrustZoneDevice device(ToBytes("d"), mfg, {"n", "eu", 1});
  securestore::SecureStorageTa ta(&device);
  storage::BlockDevice disk;
  auto store = *securestore::SecureStore::Create(&disk, &ta);
  store->BeginBatch();
  for (uint64_t i = 0; i < 64; ++i) {
    (void)store->WritePage(i, Bytes(4096, static_cast<uint8_t>(i)));
  }
  (void)store->EndBatch();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->ReadPage(i++ % 64));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SecureStoreReadPage);

void BM_SecureChannelRoundTrip(benchmark::State& state) {
  auto pair = *net::Handshake::FromSessionKey(Bytes(32, 9));
  Bytes payload(state.range(0), 0x5A);
  for (auto _ : state) {
    auto frame = pair.first->Send(payload, nullptr);
    benchmark::DoNotOptimize(pair.second->Receive(*frame, nullptr));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SecureChannelRoundTrip)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace ironsafe

BENCHMARK_MAIN();
