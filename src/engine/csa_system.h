#ifndef IRONSAFE_ENGINE_CSA_SYSTEM_H_
#define IRONSAFE_ENGINE_CSA_SYSTEM_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/partitioner.h"
#include "net/secure_channel.h"
#include "securestore/secure_store.h"
#include "sim/cost_model.h"
#include "sql/database.h"
#include "storage/block_device.h"
#include "tee/sgx.h"
#include "tee/trustzone.h"

namespace ironsafe::engine {

/// The five system configurations of the paper's Table 2.
enum class SystemConfig {
  kHons,  ///< host-only, non-secure (NFS-attached storage)
  kHos,   ///< host-only, secure (SGX enclave + secure storage over NFS)
  kVcs,   ///< vanilla computational storage (split execution, no security)
  kScs,   ///< IronSafe: secure computational storage
  kSos,   ///< storage-only, secure
};

std::string_view SystemConfigName(SystemConfig config);

/// Testbed knobs, mirroring §6.1 and the constrained-resource sweeps.
struct CsaOptions {
  double scale_factor = 0.002;
  uint64_t seed = 7;
  sim::HardwareProfile hardware = sim::HardwareProfile::Paper();
  int storage_cores = 16;                                  ///< Figure 10
  uint64_t storage_memory_bytes = 32ull * 1024 * 1024 * 1024;  ///< Figure 11
  /// Keeps the paper's database:EPC ratio (~3 GB : 96 MiB) at the bench
  /// scale factor, so host-only secure execution experiences the same
  /// EPC pressure the paper measured. Disable for sweeps that pin the
  /// EPC size themselves (Figure 9a).
  bool scale_epc_to_data = true;
  /// Enables whole-query (aggregation) pushdown in the partitioner —
  /// the paper's §8 future work, exercised by the ablation bench.
  bool aggregation_pushdown = false;
  /// Query fan-out of the host engine in the host-only configurations
  /// (simulated ways and real morsel workers alike); the storage engine's
  /// fan-out is `storage_cores`. The paper's host-only baselines run one
  /// query thread, so the default stays 1.
  int host_parallelism = 1;
  /// SQL execution engine for both sides (vectorized by default; the row
  /// engine remains for before/after benches and differential tests).
  sql::ExecEngine engine = sql::ExecEngine::kVectorized;
  /// Oblivious execution (docs/OBLIVIOUS.md) on both sides: scans read
  /// every page in order with no pushdown, filters/aggregates are
  /// dummy-padded and sorts/joins run on merge networks, so the
  /// page/batch access sequence depends only on data shape, never on
  /// values. Costs rise accordingly (bench/fig_oblivious.cc).
  bool oblivious = false;
};

/// Everything measured about one query execution.
struct QueryOutcome {
  sql::QueryResult result;
  sim::CostModel cost;           ///< simulated time + component breakdown
  uint64_t shipped_bytes = 0;    ///< storage -> host result shipping
  uint64_t storage_pages_read = 0;
  uint64_t host_pages_read = 0;  ///< pages pulled to the host (host-only)
  sim::SimNanos storage_phase_ns = 0;
  sim::SimNanos host_phase_ns = 0;
  sql::ExecStats stats;
};

/// Page-store decorator whose access mode is switched per configuration:
/// optionally ships each page over the network (NFS-style host access)
/// and optionally routes each access through the host enclave (charging
/// transitions and EPC residency).
class ConfigurablePageStore : public sql::PageStore {
 public:
  explicit ConfigurablePageStore(sql::PageStore* inner) : inner_(inner) {}

  void set_remote(bool remote) { remote_ = remote; }
  void set_enclave(tee::SgxEnclave* enclave) { enclave_ = enclave; }

  /// Page cache: the engine holds up to `bytes` of decrypted pages in
  /// its (enclave or storage-application) memory — re-reads of cached
  /// pages skip disk, network, and crypto. This is what the storage
  /// memory budget of Figure 11 buys. Cleared per query (cold cache).
  /// The cache stores the decrypted page bytes, so hits never touch the
  /// inner store.
  void set_cache_bytes(uint64_t bytes) { cache_capacity_ = bytes / 4096; }
  void ClearCache();
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_evictions() const { return cache_evictions_; }

  /// When reads run inside the enclave, each page verification walks the
  /// Merkle path: one node per level, plus the data page itself. With an
  /// enclave working set (data stream + tree + engine heap) larger than
  /// the EPC, a fraction ≈ 1 - EPC/working_set of those accesses fault
  /// (paper §6.3: "the space is taken up by the Merkle tree ... causes
  /// EPC paging"). `working_set_bytes` is data + tree.
  void set_secure_profile(uint64_t merkle_depth, uint64_t working_set_bytes) {
    merkle_depth_ = merkle_depth;
    working_set_bytes_ = working_set_bytes;
  }

  Result<Bytes> ReadPage(uint64_t id, sim::CostModel* cost) override;
  Status WritePage(uint64_t id, const Bytes& page,
                   sim::CostModel* cost) override;
  uint64_t Allocate() override { return inner_->Allocate(); }
  uint64_t num_pages() const override { return inner_->num_pages(); }
  void BeginBatch() override { inner_->BeginBatch(); }
  Status EndBatch() override { return inner_->EndBatch(); }

  /// Morsel-scan bracket (see sql::PageStore). Between the two calls
  /// ReadPage may run concurrently from disjoint-range tasks; cache
  /// lookups go against a mutex-guarded frozen-but-growing cache and the
  /// per-task accesses are logged, then replayed in task order at
  /// EndParallelRead so LRU recency, hit/read counters and evictions are
  /// bit-identical for every worker count (including 1: the executor
  /// brackets every base-table scan).
  void BeginParallelRead(int slots) override;
  void EndParallelRead() override;

  /// Decoded-batch cache (see sql::PageStore): columnar decodes ride on
  /// the page-cache entries, so capacity and eviction are shared with
  /// the encoded bytes and ClearCache drops both.
  std::shared_ptr<const sql::ColumnBatch> CachedBatch(uint64_t id) override;
  void CacheBatch(uint64_t id,
                  std::shared_ptr<const sql::ColumnBatch> batch) override;

  uint64_t pages_read() const { return pages_read_; }
  void ResetCounters() { pages_read_ = 0; }

 private:
  struct CacheEntry {
    std::list<uint64_t>::iterator lru_it;
    Bytes data;
    /// Columnar decode of `data`, filled lazily by the vectorized engine.
    std::shared_ptr<const sql::ColumnBatch> batch;
  };
  struct PageAccess {
    uint64_t id;
    bool hit;
  };

  /// One uncached page fetch: inner store plus the configured network /
  /// enclave access charges. Const-safe under concurrency (workers pass
  /// private cost slices; the secure read path mutates nothing).
  Result<Bytes> ChargedRead(uint64_t id, sim::CostModel* cost);
  Result<Bytes> ReadPageParallel(uint64_t id, sim::CostModel* cost);
  void EvictExcess();

  sql::PageStore* inner_;
  bool remote_ = false;
  tee::SgxEnclave* enclave_ = nullptr;
  uint64_t merkle_depth_ = 0;
  uint64_t working_set_bytes_ = 0;
  uint64_t pages_read_ = 0;

  uint64_t cache_capacity_ = 0;  // pages; 0 disables caching
  uint64_t cache_hits_ = 0;
  uint64_t cache_evictions_ = 0;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t, CacheEntry> cached_;

  // Parallel-read bracket state. `mu_` guards lru_/cached_ insertions
  // while a bracket is open; access_log_[slot] is written only by the
  // task holding that slot.
  std::mutex mu_;
  int parallel_slots_ = 0;
  std::vector<std::vector<PageAccess>> access_log_;
};

/// The simulated heterogeneous testbed: an SGX host plus a TrustZone
/// storage server with direct-attached NVMe, loaded with the same data
/// twice (plaintext and secure store) so all five configurations of
/// Table 2 run against identical content.
class CsaSystem {
 public:
  static Result<std::unique_ptr<CsaSystem>> Create(const CsaOptions& options);

  /// Loads a workload into both databases via `loader` (called twice).
  Status Load(const std::function<Status(sql::Database*)>& loader);

  /// Executes `sql` under `config`, returning results plus the simulated
  /// cost account. All configurations of the same query return identical
  /// rows — only the placement/security work differs.
  Result<QueryOutcome> Run(SystemConfig config, const std::string& sql);

  const CsaOptions& options() const { return options_; }

  /// Runtime knobs for the constrained-resource sweeps (Figures 10/11):
  /// affect only the cost model, not the stored data.
  void set_storage_cores(int cores) { options_.storage_cores = cores; }
  void set_storage_memory_bytes(uint64_t bytes) {
    options_.storage_memory_bytes = bytes;
  }
  void set_aggregation_pushdown(bool on) {
    options_.aggregation_pushdown = on;
  }
  void set_host_parallelism(int n) { options_.host_parallelism = n; }
  void set_engine(sql::ExecEngine engine) { options_.engine = engine; }
  void set_oblivious(bool on) { options_.oblivious = on; }
  sql::Database* plain_db() { return plain_db_.get(); }
  sql::Database* secure_db() { return secure_db_.get(); }
  tee::SgxEnclave* host_enclave() { return host_enclave_.get(); }
  tee::TrustZoneDevice* storage_device() { return &storage_device_; }
  securestore::SecureStore* secure_store() { return secure_store_.get(); }

  /// The host engine's enclave image measurement (for attestation).
  tee::SgxMachine* host_machine() { return &host_machine_; }

  /// Root of trust that certified the storage device (ROTPK anchor).
  const tee::DeviceManufacturer& manufacturer() const { return manufacturer_; }

 private:
  explicit CsaSystem(const CsaOptions& options);

  Result<QueryOutcome> RunHostOnly(const std::string& sql, bool secure);
  Result<QueryOutcome> RunSplit(const std::string& sql, bool secure);
  Result<QueryOutcome> RunStorageOnly(const std::string& sql);

  /// Host-side execution body shared by RunHostOnly and the graceful
  /// degradation path RunSplit takes when the storage node goes down:
  /// runs the whole query on the host against `outcome`'s cost model and
  /// fills in result and host page counts (not the phase timings).
  Status ExecuteHostOnly(const std::string& sql, bool secure,
                         QueryOutcome* outcome);

  sql::ExecOptions StorageExecOptions() const;

  CsaOptions options_;

  // Host side.
  tee::SgxMachine host_machine_;
  std::unique_ptr<tee::SgxEnclave> host_enclave_;

  // Storage side.
  tee::DeviceManufacturer manufacturer_;
  tee::TrustZoneDevice storage_device_;
  securestore::SecureStorageTa storage_ta_;
  storage::BlockDevice plain_disk_;
  storage::BlockDevice secure_disk_;
  sql::PlainPageStore plain_store_;
  std::unique_ptr<securestore::SecureStore> secure_store_;
  std::unique_ptr<sql::SecurePageStore> secure_page_store_;
  std::unique_ptr<ConfigurablePageStore> plain_access_;
  std::unique_ptr<ConfigurablePageStore> secure_access_;
  std::unique_ptr<sql::Database> plain_db_;
  std::unique_ptr<sql::Database> secure_db_;
  crypto::Drbg channel_drbg_;
};

}  // namespace ironsafe::engine

#endif  // IRONSAFE_ENGINE_CSA_SYSTEM_H_
