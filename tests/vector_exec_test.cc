// Differential tests for the vectorized engine: the row-at-a-time and
// batch-columnar engines must return identical schemas and rows for the
// same statement, across the selection-vector edge cases (empty batches,
// fully-filtered batches, batches straddling page boundaries, NULLs) and
// the whole TPC-H query set.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sql/column_batch.h"
#include "sql/database.h"
#include "sql/parser.h"
#include "storage/block_device.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace ironsafe::sql {
namespace {

ExecOptions EngineOpts(ExecEngine engine) {
  ExecOptions opts;
  opts.engine = engine;
  return opts;
}

/// Runs `sql` on both engines and asserts schema + row identity; returns
/// the vectorized result for additional assertions.
QueryResult RunBoth(Database* db, const std::string& sql) {
  auto vec = db->Execute(sql, nullptr, EngineOpts(ExecEngine::kVectorized));
  auto row = db->Execute(sql, nullptr, EngineOpts(ExecEngine::kRow));
  EXPECT_TRUE(vec.ok()) << sql << " -> " << vec.status().ToString();
  EXPECT_TRUE(row.ok()) << sql << " -> " << row.status().ToString();
  if (!vec.ok() || !row.ok()) return QueryResult{};

  EXPECT_EQ(vec->schema.size(), row->schema.size()) << sql;
  for (size_t c = 0; c < vec->schema.size() && c < row->schema.size(); ++c) {
    EXPECT_EQ(vec->schema.column(c).name, row->schema.column(c).name) << sql;
  }
  EXPECT_EQ(vec->rows.size(), row->rows.size()) << sql;
  if (vec->rows.size() != row->rows.size()) return *vec;
  for (size_t i = 0; i < vec->rows.size(); ++i) {
    EXPECT_EQ(vec->rows[i].size(), row->rows[i].size()) << sql;
    if (vec->rows[i].size() != row->rows[i].size()) return *vec;
    for (size_t c = 0; c < vec->rows[i].size(); ++c) {
      EXPECT_TRUE(vec->rows[i][c] == row->rows[i][c])
          << sql << " row " << i << " col " << c << ": vectorized="
          << vec->rows[i][c].ToString()
          << " row-engine=" << row->rows[i][c].ToString();
    }
  }
  return *vec;
}

TEST(VectorExecEdge, EmptyTableProducesEmptyBatches) {
  auto db = Database::CreateInMemory();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  EXPECT_EQ(RunBoth(db.get(), "SELECT * FROM t").rows.size(), 0u);
  EXPECT_EQ(RunBoth(db.get(), "SELECT a, b FROM t WHERE a > 3").rows.size(),
            0u);
  // Global aggregate over zero rows still yields exactly one row.
  auto agg = RunBoth(db.get(), "SELECT count(*), sum(a), min(b) FROM t");
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0][0].AsInt(), 0);
  // Grouped aggregate over zero rows yields zero groups.
  EXPECT_EQ(RunBoth(db.get(), "SELECT b, sum(a) FROM t GROUP BY b").rows.size(),
            0u);
}

TEST(VectorExecEdge, AllRowsFilteredOut) {
  auto db = Database::CreateInMemory();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), "
                          "(3, 'z')")
                  .ok());
  // The pushed filter empties every batch; downstream operators must
  // handle fully-dead selection vectors.
  EXPECT_EQ(RunBoth(db.get(), "SELECT * FROM t WHERE a > 100").rows.size(),
            0u);
  auto agg =
      RunBoth(db.get(), "SELECT count(*), sum(a) FROM t WHERE a > 100");
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0][0].AsInt(), 0);
  EXPECT_EQ(
      RunBoth(db.get(),
              "SELECT b, count(*) FROM t WHERE a > 100 GROUP BY b")
          .rows.size(),
      0u);
  // Join where one side filters to nothing.
  ASSERT_TRUE(db->Execute("CREATE TABLE u (a INTEGER, c VARCHAR)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO u VALUES (1, 'p'), (2, 'q')").ok());
  EXPECT_EQ(RunBoth(db.get(),
                    "SELECT t.b, u.c FROM t, u WHERE t.a = u.a AND t.a > 100")
                .rows.size(),
            0u);
}

TEST(VectorExecEdge, BatchStraddlingPageBoundary) {
  // Paged tables decode one page per morsel unit; with thousands of rows
  // the scan produces many partial batches whose boundaries fall inside
  // and across pages — totals and per-group counts must be unaffected.
  storage::BlockDevice disk;
  PlainPageStore store(&disk);
  auto db = Database::CreatePaged(&store);
  ASSERT_TRUE(
      db->Execute("CREATE TABLE big (k INTEGER, grp INTEGER, v DOUBLE)")
          .ok());
  std::vector<Row> rows;
  constexpr int kRows = 5000;  // > 2x ColumnBatch::kBatchRows, many pages
  static_assert(kRows > 2 * static_cast<int>(ColumnBatch::kBatchRows));
  int64_t expect_sum_k = 0;
  for (int i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i % 7),
                    Value::Double(static_cast<double>(i) * 0.5)});
    expect_sum_k += i;
  }
  ASSERT_TRUE(db->BulkLoad("big", rows).ok());

  auto all = RunBoth(db.get(), "SELECT count(*), sum(k) FROM big");
  ASSERT_EQ(all.rows.size(), 1u);
  EXPECT_EQ(all.rows[0][0].AsInt(), kRows);
  EXPECT_EQ(all.rows[0][1].AsInt(), expect_sum_k);

  auto filtered = RunBoth(
      db.get(), "SELECT count(*) FROM big WHERE k >= 2000 AND k < 2100");
  ASSERT_EQ(filtered.rows.size(), 1u);
  EXPECT_EQ(filtered.rows[0][0].AsInt(), 100);

  auto grouped = RunBoth(
      db.get(),
      "SELECT grp, count(*), sum(v) FROM big GROUP BY grp ORDER BY grp");
  EXPECT_EQ(grouped.rows.size(), 7u);
}

TEST(VectorExecEdge, NullHandlingParity) {
  auto db = Database::CreateInMemory();
  ASSERT_TRUE(
      db->Execute("CREATE TABLE n (a INTEGER, b VARCHAR, c DOUBLE)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO n VALUES "
                          "(1, 'x', 1.5), "
                          "(NULL, 'x', 2.5), "
                          "(3, NULL, NULL), "
                          "(NULL, NULL, 4.5), "
                          "(5, 'y', NULL)")
                  .ok());
  // NULLs never pass comparison filters, on either engine.
  EXPECT_EQ(RunBoth(db.get(), "SELECT * FROM n WHERE a > 0").rows.size(), 3u);
  RunBoth(db.get(), "SELECT * FROM n WHERE a IS NULL");
  RunBoth(db.get(), "SELECT * FROM n WHERE a IS NOT NULL AND c > 1.0");
  // Aggregates skip NULL inputs; count(*) does not.
  auto agg = RunBoth(
      db.get(), "SELECT count(*), count(a), sum(a), avg(c), min(a) FROM n");
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0][0].AsInt(), 5);
  EXPECT_EQ(agg.rows[0][1].AsInt(), 3);
  // NULL group keys form their own group identically on both engines.
  RunBoth(db.get(),
          "SELECT b, count(*), sum(a) FROM n GROUP BY b ORDER BY count(*)");
  // NULL join keys: the engine's three-way compare orders NULL as a
  // value (NULL = NULL matches), so n's two NULL rows each pair with
  // m's one NULL row — 2 value matches + 2 NULL matches. What this test
  // pins is that the vectorized hash join normalizes NULL keys exactly
  // like the row engine.
  ASSERT_TRUE(db->Execute("CREATE TABLE m (a INTEGER, d VARCHAR)").ok());
  ASSERT_TRUE(
      db->Execute("INSERT INTO m VALUES (1, 'p'), (NULL, 'q'), (5, 'r')")
          .ok());
  auto join = RunBoth(
      db.get(), "SELECT n.a, m.d FROM n, m WHERE n.a = m.a ORDER BY n.a");
  EXPECT_EQ(join.rows.size(), 4u);
}

class VectorTpchParity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = Database::CreateInMemory().release();
    tpch::TpchGenerator gen(tpch::TpchConfig{0.001, 42});
    auto st = gen.LoadInto(db_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  static Database* db_;
};

Database* VectorTpchParity::db_ = nullptr;

TEST_F(VectorTpchParity, EvaluatedQueriesMatchRowEngine) {
  for (const auto& query : tpch::Queries()) {
    SCOPED_TRACE("TPC-H Q" + std::to_string(query.number));
    auto result = RunBoth(db_, query.sql);
    EXPECT_GE(result.schema.size(), 1u);
  }
}

TEST_F(VectorTpchParity, ExtendedQueriesMatchRowEngine) {
  for (const auto& query : tpch::ExtendedQueries()) {
    SCOPED_TRACE("TPC-H Q" + std::to_string(query.number));
    RunBoth(db_, query.sql);
  }
}

TEST_F(VectorTpchParity, StatsMatchRowEngine) {
  // Row counts flowing through the pipeline are engine-independent.
  for (int qnum : {6, 12, 14}) {
    auto query = tpch::GetQuery(qnum);
    ASSERT_TRUE(query.ok());
    ExecStats vec_stats, row_stats;
    ExecOptions vec_opts = EngineOpts(ExecEngine::kVectorized);
    ExecOptions row_opts = EngineOpts(ExecEngine::kRow);
    auto stmt = ParseSelect((*query)->sql);
    ASSERT_TRUE(stmt.ok());
    sim::CostModel vec_cost, row_cost;
    auto vec = ExecuteSelect(db_, **stmt, nullptr, &vec_cost, vec_opts,
                             &vec_stats);
    auto row = ExecuteSelect(db_, **stmt, nullptr, &row_cost, row_opts,
                             &row_stats);
    ASSERT_TRUE(vec.ok() && row.ok());
    EXPECT_EQ(vec_stats.rows_scanned, row_stats.rows_scanned) << qnum;
    EXPECT_EQ(vec_stats.rows_output, row_stats.rows_output) << qnum;
  }
}

}  // namespace
}  // namespace ironsafe::sql
