
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/rpmb.cc" "src/tee/CMakeFiles/ironsafe_tee.dir/rpmb.cc.o" "gcc" "src/tee/CMakeFiles/ironsafe_tee.dir/rpmb.cc.o.d"
  "/root/repo/src/tee/sgx.cc" "src/tee/CMakeFiles/ironsafe_tee.dir/sgx.cc.o" "gcc" "src/tee/CMakeFiles/ironsafe_tee.dir/sgx.cc.o.d"
  "/root/repo/src/tee/trustzone.cc" "src/tee/CMakeFiles/ironsafe_tee.dir/trustzone.cc.o" "gcc" "src/tee/CMakeFiles/ironsafe_tee.dir/trustzone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ironsafe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ironsafe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ironsafe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
