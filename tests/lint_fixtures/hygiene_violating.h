// Linted as src/sql/hygiene_violating.h: no include guard, and a
// namespace-polluting using-directive.
#include <string>

using namespace std;

namespace ironsafe::sql {
inline string Greet() { return "hi"; }
}  // namespace ironsafe::sql
