#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "sql/database.h"
#include "sql/exec_internal.h"
#include "sql/vector_eval.h"

namespace ironsafe::sql::exec {

namespace {

// Per-active-row work constants (cycles) of the vectorized engine. They
// are deliberately cheaper than the row engine's: a batch kernel touches
// a dense payload array instead of boxing every cell, so the simulated
// CPU prices the same logical work lower. Per-batch overhead covers the
// kernel dispatch and selection-vector bookkeeping. The charges are flat
// per active row regardless of whether a kernel or the scalar fallback
// ran, keeping cost totals independent of fast-path coverage.
constexpr uint64_t kVecDecodeRowCycles = 60;        ///< fresh page decode
constexpr uint64_t kVecDecodeCachedRowCycles = 10;  ///< decoded-batch hit
constexpr uint64_t kVecFilterRowCycles = 24;
constexpr uint64_t kVecJoinBuildRowCycles = 60;
constexpr uint64_t kVecJoinProbeRowCycles = 80;
constexpr uint64_t kVecAggRowCycles = 70;
constexpr uint64_t kVecProjectRowCycles = 40;
constexpr uint64_t kVecGatherRowCycles = 12;  ///< per materialized row
constexpr uint64_t kVecBatchCycles = 256;     ///< per batch per operator pass

SelVec FullSel(size_t n) {
  SelVec sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  return sel;
}

/// A relation as a sequence of column batches with selection vectors —
/// the vectorized engine's intermediate representation.
struct VecRel {
  Schema schema;
  std::vector<VecBatch> batches;

  size_t ActiveRows() const {
    size_t n = 0;
    for (const VecBatch& b : batches) n += b.active();
    return n;
  }
  /// Working-set bytes of the active rows under the row engine's
  /// accounting (RowBytes), so spill/EPC behaviour matches it exactly.
  uint64_t ActiveBytes() const {
    uint64_t total = 0;
    for (const VecBatch& b : batches) {
      for (uint32_t i : b.sel) total += b.batch->row_bytes(i);
    }
    return total;
  }
};

/// Accumulates rows into fresh kBatchRows-sized batches (full selection).
class VecRelBuilder {
 public:
  explicit VecRelBuilder(VecRel* rel) : rel_(rel) {}
  ~VecRelBuilder() { Flush(); }

  void Append(const Row& row) {
    if (cur_ == nullptr) {
      cur_ = std::make_shared<ColumnBatch>(rel_->schema.size());
    }
    cur_->AppendRow(row);
    if (cur_->rows() >= ColumnBatch::kBatchRows) Flush();
  }

  void Flush() {
    if (cur_ == nullptr || cur_->rows() == 0) return;
    size_t n = cur_->rows();
    rel_->batches.push_back(VecBatch{std::move(cur_), FullSel(n)});
    cur_ = nullptr;
  }

 private:
  VecRel* rel_;
  std::shared_ptr<ColumnBatch> cur_;
};

// ---- Scan ----

struct VecScanSlice {
  std::vector<VecBatch> batches;
  uint64_t rows_scanned = 0;
  uint64_t cycles = 0;
  std::optional<sim::CostModel> cost;
  Status status = Status::OK();
  uint64_t unit_begin = 0;
  uint64_t unit_end = 0;
  int64_t wall_start_us = 0;
  int64_t wall_end_us = 0;
};

/// Morsel-parallel batch scan: each worker decodes the batches of its
/// contiguous unit range (decoded-batch cache hits charge the cheap
/// constant) and narrows their selections with the pushed filters, all
/// against a private cost slice; slices merge in range order. Batch
/// boundaries are unit boundaries, so batch contents, charges and the
/// merged batch order depend only on the table — never the worker count.
Status ScanTableBatches(Ctx* ctx, Table* table,
                        const std::vector<const Expr*>& filters,
                        VecRel* rel) {
  uint64_t units = table->morsel_units();
  int workers = PlanWorkers(*ctx, units, kMinScanUnitsPerWorker);
  std::vector<VecScanSlice> slices(workers);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  const Schema* schema = &rel->schema;
  const EvalScope* outer = ctx->outer;
  obs::Tracer* tracer = ctx->traced ? obs::CurrentTracer() : nullptr;
  for (int w = 0; w < workers; ++w) {
    uint64_t begin = units * w / workers;
    uint64_t end = units * (w + 1) / workers;
    VecScanSlice* slice = &slices[w];
    slice->unit_begin = begin;
    slice->unit_end = end;
    if (ctx->cost != nullptr) slice->cost.emplace(ctx->cost->profile());
    tasks.push_back([table, schema, outer, &filters, begin, end, slice,
                     tracer] {
      if (tracer != nullptr) slice->wall_start_us = tracer->WallNowUs();
      sim::CostModel* wcost = slice->cost ? &*slice->cost : nullptr;
      // Pushed-down filters are subquery-free, so a runner-less
      // evaluator backs the kernel fallback.
      [&] {
        Evaluator fallback(nullptr);
        VectorEvaluator veval(&fallback, schema, outer);
        for (uint64_t unit = begin; unit < end; ++unit) {
          Result<DecodedMorsel> decoded = table->DecodeMorselBatch(unit, wcost);
          if (!decoded.ok()) {
            slice->status = decoded.status();
            return;
          }
          const auto& batch = decoded->batch;
          if (batch == nullptr || batch->rows() == 0) continue;
          size_t n = batch->rows();
          slice->rows_scanned += n;
          slice->cycles +=
              kVecBatchCycles +
              n * (decoded->cached ? kVecDecodeCachedRowCycles
                                   : kVecDecodeRowCycles);
          SelVec sel = FullSel(n);
          for (const Expr* f : filters) {
            slice->cycles += kVecBatchCycles + sel.size() * kVecFilterRowCycles;
            Status s = veval.Filter(*f, *batch, &sel);
            if (!s.ok()) {
              slice->status = s;
              return;
            }
            if (sel.empty()) break;
          }
          if (!sel.empty()) {
            slice->batches.push_back(VecBatch{batch, std::move(sel)});
          }
        }
      }();
      if (tracer != nullptr) slice->wall_end_us = tracer->WallNowUs();
    });
  }

  table->BeginParallelScan(workers);
  common::ThreadPool::Shared().RunTasks(tasks);
  table->EndParallelScan();

  for (int w = 0; w < workers; ++w) {
    VecScanSlice& s = slices[w];
    RETURN_IF_ERROR(s.status);
    if (ctx->stats != nullptr) ctx->stats->rows_scanned += s.rows_scanned;
    ctx->Charge(s.cycles);
    if (ctx->cost != nullptr && s.cost.has_value()) {
      ctx->cost->MergeChild(*s.cost);
    }
    if (tracer != nullptr) {
      uint64_t kept = 0;
      for (const VecBatch& b : s.batches) kept += b.active();
      int64_t id = tracer->AddDetailSpan(
          "morsel", "sql", s.cost ? s.cost->elapsed_ns() : 0, w,
          s.wall_start_us, s.wall_end_us);
      tracer->AddTag(id, "worker", static_cast<int64_t>(w));
      tracer->AddTag(id, "unit_begin", static_cast<int64_t>(s.unit_begin));
      tracer->AddTag(id, "unit_end", static_cast<int64_t>(s.unit_end));
      tracer->AddTag(id, "rows_scanned", static_cast<int64_t>(s.rows_scanned));
      tracer->AddTag(id, "rows_kept", static_cast<int64_t>(kept));
      tracer->AddTag(id, "cycles", static_cast<int64_t>(s.cycles));
      if (s.cost.has_value()) {
        tracer->AddTag(id, "pages_decrypted",
                       static_cast<int64_t>(s.cost->pages_decrypted()));
      }
    }
    for (VecBatch& b : s.batches) rel->batches.push_back(std::move(b));
  }
  return Status::OK();
}

Result<VecRel> ScanRelationVec(Ctx* ctx, const TableRef& ref,
                               std::vector<ConjunctInfo>* conjuncts) {
  StageSpan span(ctx, "scan");
  span.Tag("table", ref.subquery ? "derived:" + ref.alias : ref.table_name);
  ctx->RecordAccess(obs::AccessKind::kScanBegin);
  VecRel rel;
  std::vector<Row> source_rows;
  Table* table = nullptr;
  if (ref.subquery) {
    ASSIGN_OR_RETURN(QueryResult sub,
                     ExecuteSelect(ctx->db, *ref.subquery, ctx->outer,
                                   ctx->cost, ctx->opts));
    rel.schema = sub.schema.Qualified(ref.alias);
    source_rows = std::move(sub.rows);
  } else {
    ASSIGN_OR_RETURN(Table * t, ctx->db->GetTable(ref.table_name));
    table = t;
    rel.schema = table->schema().Qualified(ref.alias);
  }

  std::vector<const Expr*> filters;
  if (conjuncts != nullptr) {
    for (ConjunctInfo& info : *conjuncts) {
      if (info.consumed || info.has_subquery) continue;
      if (!info.columns.empty() && ResolvableBy(info.columns, rel.schema)) {
        filters.push_back(info.expr);
        info.consumed = true;
      }
    }
  }

  if (table != nullptr && table->morsel_units() > 0) {
    RETURN_IF_ERROR(ScanTableBatches(ctx, table, filters, &rel));
  } else if (table != nullptr) {
    // Empty table: nothing to decode.
  } else {
    // Derived table: re-batch the subquery output, then filter.
    {
      VecRelBuilder builder(&rel);
      for (const Row& row : source_rows) builder.Append(row);
    }
    if (ctx->stats != nullptr) ctx->stats->rows_scanned += source_rows.size();
    Evaluator fallback(nullptr);
    VectorEvaluator veval(&fallback, &rel.schema, ctx->outer);
    std::vector<VecBatch> kept;
    for (VecBatch& b : rel.batches) {
      ctx->Charge(kVecBatchCycles + b.active() * kVecDecodeRowCycles);
      for (const Expr* f : filters) {
        ctx->Charge(kVecBatchCycles + b.active() * kVecFilterRowCycles);
        RETURN_IF_ERROR(veval.Filter(*f, *b.batch, &b.sel));
        if (b.sel.empty()) break;
      }
      if (!b.sel.empty()) kept.push_back(std::move(b));
    }
    rel.batches = std::move(kept);
  }
  span.Tag("rows_out", static_cast<int64_t>(rel.ActiveRows()));
  // Active rows after pushdown: the plain engine's first selectivity leak.
  ctx->RecordAccess(obs::AccessKind::kScanEnd, rel.ActiveRows());
  return rel;
}

// ---- Join ----

struct EquiKey {
  const Expr* left_expr;
  const Expr* right_expr;
};

/// Normalized join keys of every active row of `rel`, one string per
/// active row in batch order. Batches are partitioned contiguously
/// across workers; key expressions are subquery-free, so workers use
/// private runner-less evaluators and write disjoint output slots.
Result<std::vector<std::vector<std::string>>> ComputeBatchKeys(
    Ctx* ctx, const VecRel& rel, const std::vector<const Expr*>& exprs,
    uint64_t per_row_cycles) {
  struct KeySlice {
    uint64_t cycles = 0;
    Status status = Status::OK();
    size_t lo = 0;
    size_t hi = 0;
    int64_t wall_start_us = 0;
    int64_t wall_end_us = 0;
  };
  size_t nbatches = rel.batches.size();
  std::vector<std::vector<std::string>> out(nbatches);
  int workers = PlanWorkers(*ctx, rel.ActiveRows(), kMinJoinRowsPerWorker);
  std::vector<KeySlice> slices(workers);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  const Schema* schema = &rel.schema;
  const EvalScope* outer = ctx->outer;
  const std::vector<VecBatch>* batches = &rel.batches;
  obs::Tracer* tracer = ctx->traced ? obs::CurrentTracer() : nullptr;
  for (int w = 0; w < workers; ++w) {
    size_t lo = nbatches * w / workers;
    size_t hi = nbatches * (w + 1) / workers;
    KeySlice* slice = &slices[w];
    slice->lo = lo;
    slice->hi = hi;
    tasks.push_back([&out, &exprs, batches, schema, outer, lo, hi, slice,
                     per_row_cycles, tracer] {
      if (tracer != nullptr) slice->wall_start_us = tracer->WallNowUs();
      [&] {
        Evaluator fallback(nullptr);
        VectorEvaluator veval(&fallback, schema, outer);
        std::vector<VecCol> cols(exprs.size());
        Bytes key;
        for (size_t bi = lo; bi < hi; ++bi) {
          const VecBatch& b = (*batches)[bi];
          size_t n = b.active();
          slice->cycles += kVecBatchCycles + n * per_row_cycles;
          for (size_t e = 0; e < exprs.size(); ++e) {
            Status s = veval.Eval(*exprs[e], *b.batch, b.sel, &cols[e]);
            if (!s.ok()) {
              slice->status = s;
              return;
            }
          }
          std::vector<std::string>& keys = out[bi];
          keys.reserve(n);
          for (size_t i = 0; i < n; ++i) {
            key.clear();
            for (const VecCol& c : cols) AppendNormalizedKey(c, i, &key);
            keys.emplace_back(key.begin(), key.end());
          }
        }
      }();
      if (tracer != nullptr) slice->wall_end_us = tracer->WallNowUs();
    });
  }
  common::ThreadPool::Shared().RunTasks(tasks);
  for (int w = 0; w < workers; ++w) {
    const KeySlice& s = slices[w];
    RETURN_IF_ERROR(s.status);
    ctx->Charge(s.cycles);
    if (tracer != nullptr) {
      sim::SimNanos dur = 0;
      if (ctx->cost != nullptr) {
        sim::CostModel scratch(ctx->cost->profile());
        scratch.ChargeParallelCycles(ctx->opts.site, s.cycles,
                                     ctx->opts.parallelism);
        dur = scratch.elapsed_ns();
      }
      int64_t id = tracer->AddDetailSpan("join-keys", "sql", dur, w,
                                         s.wall_start_us, s.wall_end_us);
      tracer->AddTag(id, "worker", static_cast<int64_t>(w));
      tracer->AddTag(id, "batch_begin", static_cast<int64_t>(s.lo));
      tracer->AddTag(id, "batch_end", static_cast<int64_t>(s.hi));
      tracer->AddTag(id, "cycles", static_cast<int64_t>(s.cycles));
    }
  }
  return out;
}

Result<VecRel> JoinRelationsVec(Ctx* ctx, VecRel left, VecRel right,
                                std::vector<ConjunctInfo>* conjuncts,
                                const Expr* on) {
  StageSpan span(ctx, "join");
  span.Tag("left_rows", static_cast<int64_t>(left.ActiveRows()));
  span.Tag("right_rows", static_cast<int64_t>(right.ActiveRows()));
  ctx->RecordAccess(obs::AccessKind::kJoinBegin, left.ActiveRows(),
                    right.ActiveRows());
  Schema combined = Schema::Concat(left.schema, right.schema);

  std::vector<ConjunctInfo> on_infos = AnalyzeConjuncts(on);
  std::vector<ConjunctInfo*> applicable;
  for (ConjunctInfo& info : on_infos) applicable.push_back(&info);
  if (conjuncts != nullptr) {
    for (ConjunctInfo& info : *conjuncts) {
      if (info.consumed || info.has_subquery || info.columns.empty()) continue;
      if (ResolvableBy(info.columns, combined)) {
        applicable.push_back(&info);
        info.consumed = true;
      }
    }
  }

  std::vector<EquiKey> keys;
  std::vector<const Expr*> residual;
  for (ConjunctInfo* info : applicable) {
    const Expr* e = info->expr;
    bool is_equi = false;
    if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kEq) {
      std::set<std::string> lcols, rcols;
      bool lsub = false, rsub = false;
      CollectColumns(*e->left, &lcols, &lsub);
      CollectColumns(*e->right, &rcols, &rsub);
      if (!lsub && !rsub && !lcols.empty() && !rcols.empty()) {
        if (ResolvableBy(lcols, left.schema) &&
            ResolvableBy(rcols, right.schema)) {
          keys.push_back(EquiKey{e->left.get(), e->right.get()});
          is_equi = true;
        } else if (ResolvableBy(lcols, right.schema) &&
                   ResolvableBy(rcols, left.schema)) {
          keys.push_back(EquiKey{e->right.get(), e->left.get()});
          is_equi = true;
        }
      }
    }
    if (!is_equi) residual.push_back(e);
  }

  VecRel out;
  out.schema = combined;
  VecRelBuilder builder(&out);

  Row joined;
  auto emit = [&](const Row& l, const Row& r) -> Result<bool> {
    joined = l;
    joined.insert(joined.end(), r.begin(), r.end());
    EvalScope scope{&combined, &joined, ctx->outer};
    for (const Expr* e : residual) {
      ctx->Charge(kVecFilterRowCycles);
      ASSIGN_OR_RETURN(bool ok, ctx->eval->EvalBool(*e, scope));
      if (!ok) return false;
    }
    ctx->Charge(kVecGatherRowCycles);
    builder.Append(joined);
    return true;
  };

  span.Tag("kind", keys.empty() ? "nested-loop" : "hash");
  if (!keys.empty()) {
    bool build_right = right.ActiveBytes() <= left.ActiveBytes();
    const VecRel& build = build_right ? right : left;
    const VecRel& probe = build_right ? left : right;

    std::vector<const Expr*> build_exprs, probe_exprs;
    build_exprs.reserve(keys.size());
    probe_exprs.reserve(keys.size());
    for (const EquiKey& k : keys) {
      build_exprs.push_back(build_right ? k.right_expr : k.left_expr);
      probe_exprs.push_back(build_right ? k.left_expr : k.right_expr);
    }

    ASSIGN_OR_RETURN(
        auto build_keys,
        ComputeBatchKeys(ctx, build, build_exprs, kVecJoinBuildRowCycles));
    // Build rows materialize once; the hash table maps key -> indices.
    std::vector<Row> build_rows;
    build_rows.reserve(build.ActiveRows());
    std::unordered_map<std::string, std::vector<size_t>> table;
    table.reserve(build.ActiveRows());
    for (size_t bi = 0; bi < build.batches.size(); ++bi) {
      const VecBatch& b = build.batches[bi];
      for (size_t i = 0; i < b.active(); ++i) {
        Row r;
        b.batch->MaterializeRow(b.sel[i], &r);
        table[build_keys[bi][i]].push_back(build_rows.size());
        build_rows.push_back(std::move(r));
      }
    }
    ctx->TrackMemory(build.ActiveBytes());

    ASSIGN_OR_RETURN(
        auto probe_keys,
        ComputeBatchKeys(ctx, probe, probe_exprs, kVecJoinProbeRowCycles));
    Row prow;
    for (size_t pi = 0; pi < probe.batches.size(); ++pi) {
      const VecBatch& b = probe.batches[pi];
      for (size_t i = 0; i < b.active(); ++i) {
        auto it = table.find(probe_keys[pi][i]);
        if (it == table.end()) continue;
        b.batch->MaterializeRow(b.sel[i], &prow);
        ctx->Charge(kVecGatherRowCycles);
        for (size_t ri : it->second) {
          const Row& l = build_right ? prow : build_rows[ri];
          const Row& r = build_right ? build_rows[ri] : prow;
          RETURN_IF_ERROR(emit(l, r).status());
        }
      }
    }
  } else {
    // Nested loop: materialize the inner side once, stream the outer.
    ctx->TrackMemory(right.ActiveBytes());
    std::vector<Row> right_rows;
    right_rows.reserve(right.ActiveRows());
    Row tmp;
    for (const VecBatch& b : right.batches) {
      for (uint32_t i : b.sel) {
        b.batch->MaterializeRow(i, &tmp);
        right_rows.push_back(tmp);
      }
    }
    Row lrow;
    for (const VecBatch& b : left.batches) {
      for (uint32_t i : b.sel) {
        b.batch->MaterializeRow(i, &lrow);
        for (const Row& r : right_rows) {
          ctx->Charge(kVecJoinProbeRowCycles);
          RETURN_IF_ERROR(emit(lrow, r).status());
        }
      }
    }
  }
  builder.Flush();
  span.Tag("rows_out", static_cast<int64_t>(out.ActiveRows()));
  ctx->RecordAccess(obs::AccessKind::kJoinEnd, out.ActiveRows(),
                    keys.empty() ? 0 : 1);
  return out;
}

// ---- Aggregation ----

struct AggState {
  double sum = 0;
  int64_t isum = 0;
  bool all_int = true;
  uint64_t count = 0;
  Value min, max;
  std::set<std::string> distinct;
};

Result<VecRel> AggregateVec(Ctx* ctx, VecRel input, const SelectStmt& stmt,
                            std::map<std::string, const Expr*> agg_exprs) {
  VecRel out;
  std::vector<const Expr*> group_exprs;
  for (const auto& g : stmt.group_by) group_exprs.push_back(g.get());
  for (const Expr* g : group_exprs) {
    out.schema.AddColumn(Column{g->ToString(), InferType(*g, input.schema)});
  }
  std::vector<const Expr*> aggs;
  for (const auto& [name, e] : agg_exprs) {
    aggs.push_back(e);
    out.schema.AddColumn(Column{name, InferType(*e, input.schema)});
  }

  std::map<std::string, std::pair<std::vector<Value>, std::vector<AggState>>>
      groups;

  VectorEvaluator veval(ctx->eval.get(), &input.schema, ctx->outer);
  std::vector<VecCol> gcols(group_exprs.size());
  std::vector<VecCol> acols(aggs.size());
  Bytes key;
  for (const VecBatch& b : input.batches) {
    size_t n = b.active();
    ctx->Charge(kVecBatchCycles + n * kVecAggRowCycles);
    // Group keys and aggregate arguments evaluate batch-at-a-time; the
    // per-group accumulate below is the only remaining scalar loop.
    for (size_t g = 0; g < group_exprs.size(); ++g) {
      RETURN_IF_ERROR(veval.Eval(*group_exprs[g], *b.batch, b.sel, &gcols[g]));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a]->agg_func == AggFunc::kCountStar) continue;
      RETURN_IF_ERROR(
          veval.Eval(*aggs[a]->args[0], *b.batch, b.sel, &acols[a]));
    }
    for (size_t i = 0; i < n; ++i) {
      key.clear();
      for (const VecCol& c : gcols) AppendNormalizedKey(c, i, &key);
      auto it = groups.find(std::string(key.begin(), key.end()));
      if (it == groups.end()) {
        std::vector<Value> gvals;
        gvals.reserve(gcols.size());
        for (const VecCol& c : gcols) gvals.push_back(c.Get(i));
        it = groups
                 .try_emplace(std::string(key.begin(), key.end()),
                              std::make_pair(std::move(gvals),
                                             std::vector<AggState>(aggs.size())))
                 .first;
      }
      auto& states = it->second.second;
      for (size_t a = 0; a < aggs.size(); ++a) {
        const Expr* agg = aggs[a];
        AggState& st = states[a];
        if (agg->agg_func == AggFunc::kCountStar) {
          ++st.count;
          continue;
        }
        const VecCol& c = acols[a];
        // Typed accumulate for plain SUM/AVG/COUNT over dense columns.
        if (!agg->distinct && c.kind != VecCol::Kind::kGeneric) {
          switch (agg->agg_func) {
            case AggFunc::kCount:
              ++st.count;
              continue;
            case AggFunc::kSum:
            case AggFunc::kAvg:
              ++st.count;
              if (c.kind == VecCol::Kind::kI64) {
                st.isum += c.nums[i];
                st.sum += static_cast<double>(c.nums[i]);
              } else if (c.kind == VecCol::Kind::kF64) {
                st.sum += vec::F64FromBits(c.nums[i]);
                st.all_int = false;
              } else {  // kDate: dates sum as their int payload
                st.sum += static_cast<double>(c.nums[i]);
                st.all_int = false;
              }
              continue;
            default:
              break;  // min/max fall through to the boxed path
          }
        }
        Value v = c.Get(i);
        if (v.is_null()) continue;
        if (agg->distinct) {
          Bytes ser;
          v.Serialize(&ser);
          st.distinct.insert(std::string(ser.begin(), ser.end()));
          continue;
        }
        switch (agg->agg_func) {
          case AggFunc::kCount:
            ++st.count;
            break;
          case AggFunc::kSum:
          case AggFunc::kAvg:
            ++st.count;
            st.sum += v.AsDouble();
            if (v.type() == Type::kInt64) {
              st.isum += v.AsInt();
            } else {
              st.all_int = false;
            }
            break;
          case AggFunc::kMin:
            if (st.count == 0 || v.Compare(st.min) < 0) st.min = v;
            ++st.count;
            break;
          case AggFunc::kMax:
            if (st.count == 0 || v.Compare(st.max) > 0) st.max = v;
            ++st.count;
            break;
          default:
            break;
        }
      }
    }
  }

  if (groups.empty() && group_exprs.empty()) {
    groups.emplace("", std::make_pair(std::vector<Value>{},
                                      std::vector<AggState>(aggs.size())));
  }

  uint64_t mem = 0;
  VecRelBuilder builder(&out);
  for (auto& [gkey, group] : groups) {
    mem += gkey.size() + group.second.size() * sizeof(AggState);
    Row row = group.first;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const Expr* a = aggs[i];
      AggState& st = group.second[i];
      switch (a->agg_func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          row.push_back(Value::Int(
              a->distinct ? static_cast<int64_t>(st.distinct.size())
                          : static_cast<int64_t>(st.count)));
          break;
        case AggFunc::kSum:
          if (st.count == 0) {
            row.push_back(Value::Null());
          } else if (st.all_int) {
            row.push_back(Value::Int(st.isum));
          } else {
            row.push_back(Value::Double(st.sum));
          }
          break;
        case AggFunc::kAvg:
          row.push_back(st.count == 0
                            ? Value::Null()
                            : Value::Double(st.sum /
                                            static_cast<double>(st.count)));
          break;
        case AggFunc::kMin:
          row.push_back(st.count == 0 ? Value::Null() : st.min);
          break;
        case AggFunc::kMax:
          row.push_back(st.count == 0 ? Value::Null() : st.max);
          break;
      }
    }
    builder.Append(row);
  }
  builder.Flush();
  ctx->TrackMemory(mem);
  return out;
}

}  // namespace

Result<QueryResult> ExecuteSelectVectorized(Database* db,
                                            const SelectStmt& stmt,
                                            const EvalScope* outer,
                                            sim::CostModel* cost,
                                            const ExecOptions& opts,
                                            ExecStats* stats) {
  Ctx ctx;
  ctx.db = db;
  ctx.cost = cost;
  ctx.opts = opts;
  ctx.stats = stats;
  ctx.outer = outer;
  ctx.runner = std::make_unique<ExecSubqueryRunner>(db, cost, opts);
  ctx.eval = std::make_unique<Evaluator>(ctx.runner.get());
  ctx.traced =
      opts.trace && cost != nullptr && obs::CurrentTracer() != nullptr;
  ctx.access = opts.trace ? obs::CurrentAccessLog() : nullptr;

  if (stmt.from.empty()) {
    QueryResult result;
    EvalScope scope{nullptr, nullptr, outer};
    Row row;
    for (const SelectItem& item : stmt.items) {
      ASSIGN_OR_RETURN(Value v, ctx.eval->Eval(*item.expr, scope));
      result.schema.AddColumn(Column{
          item.alias.empty() ? item.expr->ToString() : item.alias, v.type()});
      row.push_back(std::move(v));
    }
    result.rows.push_back(std::move(row));
    return result;
  }

  StageSpan select_span(&ctx, "select");
  ctx.RecordAccess(obs::AccessKind::kQueryBegin, 0);

  std::vector<ConjunctInfo> conjuncts = AnalyzeConjuncts(stmt.where.get());

  // 1. Scan + joins, batch-at-a-time.
  ASSIGN_OR_RETURN(VecRel current,
                   ScanRelationVec(&ctx, stmt.from[0], &conjuncts));
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    ASSIGN_OR_RETURN(VecRel next,
                     ScanRelationVec(&ctx, stmt.from[i], &conjuncts));
    ASSIGN_OR_RETURN(current, JoinRelationsVec(&ctx, std::move(current),
                                               std::move(next), &conjuncts,
                                               nullptr));
  }
  for (const JoinClause& join : stmt.joins) {
    ASSIGN_OR_RETURN(VecRel next,
                     ScanRelationVec(&ctx, join.table, &conjuncts));
    ASSIGN_OR_RETURN(current, JoinRelationsVec(&ctx, std::move(current),
                                               std::move(next), &conjuncts,
                                               join.on.get()));
  }

  // 2. Residual predicates narrow the selections batch by batch; the
  //    scalar fallback handles (possibly correlated) subqueries.
  {
    std::vector<const Expr*> residual;
    for (ConjunctInfo& info : conjuncts) {
      if (!info.consumed) residual.push_back(info.expr);
    }
    if (!residual.empty()) {
      StageSpan filter_span(&ctx, "filter");
      filter_span.Tag("rows_in", static_cast<int64_t>(current.ActiveRows()));
      filter_span.Tag("predicates", static_cast<int64_t>(residual.size()));
      uint64_t filter_rows_in = current.ActiveRows();
      VectorEvaluator veval(ctx.eval.get(), &current.schema, ctx.outer);
      std::vector<VecBatch> kept;
      for (VecBatch& b : current.batches) {
        for (const Expr* e : residual) {
          ctx.Charge(kVecBatchCycles + b.active() * kVecFilterRowCycles);
          RETURN_IF_ERROR(veval.Filter(*e, *b.batch, &b.sel));
          if (b.sel.empty()) break;
        }
        if (!b.sel.empty()) kept.push_back(std::move(b));
      }
      current.batches = std::move(kept);
      filter_span.Tag("rows_out", static_cast<int64_t>(current.ActiveRows()));
      ctx.RecordAccess(obs::AccessKind::kFilter, filter_rows_in,
                       current.ActiveRows());
    }
  }

  // 3. Aggregation.
  std::map<std::string, const Expr*> agg_exprs;
  for (const SelectItem& item : stmt.items) {
    CollectAggregates(*item.expr, &agg_exprs);
  }
  if (stmt.having) CollectAggregates(*stmt.having, &agg_exprs);
  for (const OrderItem& o : stmt.order_by) CollectAggregates(*o.expr, &agg_exprs);

  bool aggregated = !agg_exprs.empty() || !stmt.group_by.empty();
  std::set<std::string> rewrite_names;
  std::vector<SelectItem> items;
  ExprPtr having;
  std::vector<OrderItem> order_by;

  if (aggregated) {
    for (const auto& g : stmt.group_by) rewrite_names.insert(g->ToString());
    for (const auto& [name, e] : agg_exprs) rewrite_names.insert(name);
    {
      StageSpan agg_span(&ctx, "aggregate");
      agg_span.Tag("rows_in", static_cast<int64_t>(current.ActiveRows()));
      uint64_t agg_rows_in = current.ActiveRows();
      ASSIGN_OR_RETURN(current, AggregateVec(&ctx, std::move(current), stmt,
                                             agg_exprs));
      agg_span.Tag("groups", static_cast<int64_t>(current.ActiveRows()));
      ctx.RecordAccess(obs::AccessKind::kAggregate, agg_rows_in,
                       current.ActiveRows());
    }
    for (const SelectItem& item : stmt.items) {
      items.push_back(SelectItem{RewriteToColumns(*item.expr, rewrite_names),
                                 item.alias});
    }
    if (stmt.having) having = RewriteToColumns(*stmt.having, rewrite_names);
    for (const OrderItem& o : stmt.order_by) {
      order_by.push_back(
          OrderItem{RewriteToColumns(*o.expr, rewrite_names), o.desc});
    }
  } else {
    for (const SelectItem& item : stmt.items) {
      items.push_back(SelectItem{item.expr->Clone(), item.alias});
    }
    if (stmt.having) {
      return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
    }
    for (const OrderItem& o : stmt.order_by) {
      order_by.push_back(OrderItem{o.expr->Clone(), o.desc});
    }
  }

  // 4. HAVING.
  if (having) {
    VectorEvaluator veval(ctx.eval.get(), &current.schema, ctx.outer);
    std::vector<VecBatch> kept;
    for (VecBatch& b : current.batches) {
      ctx.Charge(kVecBatchCycles + b.active() * kVecFilterRowCycles);
      RETURN_IF_ERROR(veval.Filter(*having, *b.batch, &b.sel));
      if (!b.sel.empty()) kept.push_back(std::move(b));
    }
    current.batches = std::move(kept);
  }

  // 5. Projection: items evaluate batch-at-a-time into typed columns,
  //    then materialize into the result rows (hidden ORDER BY keys
  //    alongside, as in the row engine).
  QueryResult result;
  std::vector<bool> order_from_input(order_by.size(), false);
  std::vector<std::vector<Value>> hidden_keys;
  {
    StageSpan project_span(&ctx, "project");
    project_span.Tag("rows", static_cast<int64_t>(current.ActiveRows()));
    bool star_only = items.size() == 1 && items[0].expr->kind == ExprKind::kStar;
    if (star_only) {
      result.schema = current.schema;
      result.rows.reserve(current.ActiveRows());
      Row tmp;
      for (const VecBatch& b : current.batches) {
        ctx.Charge(kVecBatchCycles + b.active() * kVecGatherRowCycles);
        for (uint32_t i : b.sel) {
          b.batch->MaterializeRow(i, &tmp);
          result.rows.push_back(tmp);
        }
      }
    } else {
      for (const SelectItem& item : items) {
        if (item.expr->kind == ExprKind::kStar) {
          return Status::InvalidArgument(
              "* must be the only item in a SELECT list");
        }
        std::string name = item.alias;
        if (name.empty()) {
          if (item.expr->kind == ExprKind::kColumn) {
            const std::string& cn = item.expr->column_name;
            size_t dot = cn.rfind('.');
            name = dot == std::string::npos ? cn : cn.substr(dot + 1);
          } else {
            name = item.expr->ToString();
          }
        }
        result.schema.AddColumn(
            Column{name, InferType(*item.expr, current.schema)});
      }
      for (size_t k = 0; k < order_by.size(); ++k) {
        std::set<std::string> cols;
        bool sub = false;
        CollectColumns(*order_by[k].expr, &cols, &sub);
        if (!ResolvableBy(cols, result.schema)) order_from_input[k] = true;
      }
      bool any_hidden = std::any_of(order_from_input.begin(),
                                    order_from_input.end(),
                                    [](bool b) { return b; });
      VectorEvaluator veval(ctx.eval.get(), &current.schema, ctx.outer);
      std::vector<VecCol> cols(items.size());
      std::vector<VecCol> hcols;
      for (const VecBatch& b : current.batches) {
        size_t n = b.active();
        ctx.Charge(kVecBatchCycles + n * kVecProjectRowCycles);
        for (size_t c = 0; c < items.size(); ++c) {
          RETURN_IF_ERROR(veval.Eval(*items[c].expr, *b.batch, b.sel, &cols[c]));
        }
        hcols.clear();
        if (any_hidden) {
          for (size_t k = 0; k < order_by.size(); ++k) {
            if (!order_from_input[k]) continue;
            hcols.emplace_back();
            RETURN_IF_ERROR(
                veval.Eval(*order_by[k].expr, *b.batch, b.sel, &hcols.back()));
          }
        }
        for (size_t i = 0; i < n; ++i) {
          Row out_row;
          out_row.reserve(items.size());
          for (const VecCol& c : cols) out_row.push_back(c.Get(i));
          if (any_hidden) {
            std::vector<Value> hk;
            hk.reserve(hcols.size());
            for (const VecCol& c : hcols) hk.push_back(c.Get(i));
            hidden_keys.push_back(std::move(hk));
          }
          result.rows.push_back(std::move(out_row));
        }
      }
    }
  }

  // 6. DISTINCT.
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<Row> kept;
    std::vector<std::vector<Value>> kept_hidden;
    for (size_t i = 0; i < result.rows.size(); ++i) {
      Bytes key = KeyOf(result.rows[i]);
      if (seen.insert(std::string(key.begin(), key.end())).second) {
        kept.push_back(std::move(result.rows[i]));
        if (!hidden_keys.empty()) {
          kept_hidden.push_back(std::move(hidden_keys[i]));
        }
      }
    }
    result.rows = std::move(kept);
    hidden_keys = std::move(kept_hidden);
  }

  // 7. ORDER BY (same scalar sort as the row engine — sorting is not a
  //    batch operation and its cost constant is shared).
  if (!order_by.empty()) {
    StageSpan sort_span(&ctx, "sort");
    sort_span.Tag("rows", static_cast<int64_t>(result.rows.size()));
    ctx.RecordAccess(obs::AccessKind::kSort, result.rows.size());
    struct SortKey {
      std::vector<Value> keys;
      size_t index;
    };
    std::vector<SortKey> sort_keys(result.rows.size());
    for (size_t i = 0; i < result.rows.size(); ++i) {
      EvalScope scope{&result.schema, &result.rows[i], ctx.outer};
      sort_keys[i].index = i;
      size_t hidden_pos = 0;
      for (size_t k = 0; k < order_by.size(); ++k) {
        if (order_from_input[k]) {
          sort_keys[i].keys.push_back(hidden_keys[i][hidden_pos++]);
          continue;
        }
        ASSIGN_OR_RETURN(Value v, ctx.eval->Eval(*order_by[k].expr, scope));
        sort_keys[i].keys.push_back(std::move(v));
      }
    }
    size_t n = result.rows.size();
    if (n > 1) {
      ctx.Charge(kSortCmpCycles * n *
                 static_cast<uint64_t>(std::max(1.0, std::log2(double(n)))));
    }
    std::stable_sort(sort_keys.begin(), sort_keys.end(),
                     [&](const SortKey& a, const SortKey& b) {
                       for (size_t k = 0; k < order_by.size(); ++k) {
                         int c = a.keys[k].Compare(b.keys[k]);
                         if (c != 0) return order_by[k].desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
    std::vector<Row> sorted;
    sorted.reserve(n);
    for (const SortKey& sk : sort_keys) {
      sorted.push_back(std::move(result.rows[sk.index]));
    }
    result.rows = std::move(sorted);
    uint64_t bytes = 0;
    for (const Row& r : result.rows) bytes += RowBytes(r);
    ctx.TrackMemory(bytes);
  }

  // 8. LIMIT.
  if (stmt.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(stmt.limit)) {
    result.rows.resize(stmt.limit);
  }

  if (stats != nullptr) stats->rows_output += result.rows.size();
  select_span.Tag("rows_out", static_cast<int64_t>(result.rows.size()));
  ctx.RecordAccess(obs::AccessKind::kResult, result.rows.size());
  ctx.FlushCharges();
  return result;
}

}  // namespace ironsafe::sql::exec
