// Figure 6: TPC-H query execution-time speedup due to computational
// storage, non-secure (hons vs vcs) and secure (hos vs scs).
// Prints one row per evaluated query plus the secure-case average the
// abstract headlines (paper: 2.3x on average).
//
// Each hons run is repeated on the legacy row-at-a-time engine; the
// vec-gain column and the committed BENCH_fig6.json baseline carry the
// before/after evidence for the vectorized engine (simulated cycles and
// wall clock both). The comparison rides on hons because its time is
// execution-dominated — the secure configurations spend most of their
// (real and simulated) time in page crypto, which is engine-independent
// and would bury the signal. `--quick` truncates to the first three
// queries for the bench_smoke ctest; `--json=<path>` writes the
// baseline.

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::SystemConfig;

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  BaselineWriter baseline(args, "fig6_tpch_speedup");
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));

  PrintHeader("Figure 6: TPC-H speedup from computational storage (SF=" +
              std::to_string(sf) + ")");
  std::printf("%5s %14s %14s %14s %14s %10s %10s %14s %10s %10s\n", "query",
              "hons(ms)", "vcs(ms)", "hos(ms)", "scs(ms)", "ns-speedup",
              "s-speedup", "hons-row(ms)", "vec-gain", "wall(ms)");

  WallClock total;
  double sum_secure_speedup = 0;
  int n = 0;
  int remaining = args.quick ? 3 : std::numeric_limits<int>::max();
  for (const auto& query : tpch::Queries()) {
    if (remaining-- <= 0) break;
    WallClock wall;
    BENCH_ASSIGN(auto hons, system->Run(SystemConfig::kHons, query.sql));
    double hons_wall_ms = wall.ms();
    BENCH_ASSIGN(auto vcs, system->Run(SystemConfig::kVcs, query.sql));
    BENCH_ASSIGN(auto hos, system->Run(SystemConfig::kHos, query.sql));
    BENCH_ASSIGN(auto scs, system->Run(SystemConfig::kScs, query.sql));

    // The same query on the pre-vectorization engine, same configuration.
    system->set_engine(sql::ExecEngine::kRow);
    WallClock row_wall;
    BENCH_ASSIGN(auto hons_row, system->Run(SystemConfig::kHons, query.sql));
    double row_wall_ms = row_wall.ms();
    system->set_engine(sql::ExecEngine::kVectorized);

    std::string key = "q" + std::to_string(query.number);
    baseline.Add(key, hons.cost.elapsed_ns(), hons_wall_ms);
    baseline.AddRow(key, hons_row.cost.elapsed_ns(), row_wall_ms);

    double nonsecure = hons.cost.elapsed_ms() / vcs.cost.elapsed_ms();
    double secure = hos.cost.elapsed_ms() / scs.cost.elapsed_ms();
    double vec_gain = hons_row.cost.elapsed_ms() / hons.cost.elapsed_ms();
    sum_secure_speedup += secure;
    ++n;
    std::printf(
        "%5d %14.3f %14.3f %14.3f %14.3f %9.2fx %9.2fx %14.3f %9.2fx %10.1f\n",
        query.number, hons.cost.elapsed_ms(), vcs.cost.elapsed_ms(),
        hos.cost.elapsed_ms(), scs.cost.elapsed_ms(), nonsecure, secure,
        hons_row.cost.elapsed_ms(), vec_gain, wall.ms());
  }
  std::printf("\naverage secure speedup (hos/scs): %.2fx (paper: 2.3x)\n",
              sum_secure_speedup / n);
  PrintWallClock(total);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
