#ifndef IRONSAFE_DIST_FLEET_H_
#define IRONSAFE_DIST_FLEET_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/chacha20.h"
#include "dist/planner.h"
#include "engine/csa_system.h"
#include "net/secure_channel.h"
#include "securestore/secure_store.h"
#include "sim/cost_model.h"
#include "sql/database.h"
#include "sql/partition.h"
#include "storage/block_device.h"
#include "tee/sgx.h"
#include "tee/trustzone.h"

namespace ironsafe::dist {

/// Fleet shape and testbed knobs. Per-node resources mirror CsaOptions;
/// the fleet-specific knobs are the shard/replica counts and the table
/// partition scheme (src/tpch's TpchPartitionScheme for the benchmarks).
struct FleetOptions {
  int shard_count = 4;
  int replicas_per_shard = 2;
  uint64_t seed = 7;
  sim::HardwareProfile hardware = sim::HardwareProfile::Paper();
  int storage_cores = 16;              ///< per storage node
  uint64_t storage_memory_bytes = 32ull * 1024 * 1024 * 1024;  ///< per node
  bool scale_epc_to_data = true;
  int host_parallelism = 1;
  sql::ExecEngine engine = sql::ExecEngine::kVectorized;
  /// Opt-in distributed partial aggregation (PlannerOptions).
  bool partial_aggregation = false;
  /// Tables absent from the scheme are replicated to every node.
  std::vector<sql::TablePartition> partitions;
};

/// Everything measured about one fleet query execution.
struct FleetOutcome {
  sql::QueryResult result;
  sim::CostModel cost;            ///< makespan-merged fleet account
  uint64_t shipped_bytes = 0;     ///< shard -> host result shipping, total
  uint64_t storage_pages_read = 0;  ///< summed over the nodes that executed
  sim::SimNanos storage_phase_ns = 0;  ///< parallel shard phase (makespan)
  sim::SimNanos host_phase_ns = 0;
  sql::ExecStats stats;
  int failovers = 0;              ///< replica failovers during this query
  bool partial_aggregation = false;  ///< the partial-aggregation plan fired
};

/// A sharded multi-node CSA fleet (docs/SHARDING.md): one SGX host engine
/// and `shard_count` replica groups of `replicas_per_shard` TrustZone
/// storage nodes each. Every node is attested against the manufacturer
/// root at creation and speaks to the host over its own SecureChannel;
/// every node holds its group's table slices in an independent secure
/// store (own Merkle root, own RPMB). Queries run the scs configuration
/// generalized to N shards: per-shard fragments near the data, sealed
/// result shipping, host-side merge and remainder.
///
/// Determinism contract: with a fixed seed and scheme, result rows are
/// bit-identical across shard counts AND worker counts (the key-ordered
/// shard merge reconstructs the single-node row streams exactly); cost
/// totals, stats and default traces are bit-identical across worker
/// counts and reruns for a FIXED shard count — across shard counts the
/// elapsed cost shrinks by design (that is the Figure 12 scale-out).
class ShardedCsaFleet {
 public:
  static Result<std::unique_ptr<ShardedCsaFleet>> Create(
      const FleetOptions& options);

  /// Loads a workload once into a staging database via `loader`, then
  /// routes every row to its shard group per the partition scheme and
  /// bulk-loads each group's slice into all of its replicas.
  Status Load(const std::function<Status(sql::Database*)>& loader);

  /// Executes `sql` across the fleet. A `dist.shard.down` fault fails the
  /// group over to its next live replica (bit-identical rows — replicas
  /// hold identical slices); with every replica of a group down the query
  /// returns kUnavailable. `dist.fragment.corrupt` re-keys the shipping
  /// channel and re-sends.
  Result<FleetOutcome> Run(const std::string& sql);

  const FleetOptions& options() const { return options_; }
  int shard_count() const { return options_.shard_count; }
  int replicas_per_shard() const { return options_.replicas_per_shard; }

  /// True when `a` and `b`'s loaded slices co-locate joining keys (same
  /// partition kind and routing parameters) — the planner's co_located
  /// predicate.
  bool CoLocated(const std::string& a, const std::string& b) const;

  /// Per-query sweep knobs (cost model only, like CsaSystem's).
  void set_storage_cores(int cores) { options_.storage_cores = cores; }
  void set_partial_aggregation(bool on) {
    options_.partial_aggregation = on;
  }
  void set_host_parallelism(int n) { options_.host_parallelism = n; }

  sql::Database* node_db(int group, int replica) {
    return node(group, replica).db.get();
  }

 private:
  /// One TrustZone storage node: its own device identity, disk, secure
  /// store, storage engine database and host channel endpoint pair.
  struct StorageNode {
    std::string node_id;
    std::unique_ptr<tee::TrustZoneDevice> device;
    std::unique_ptr<securestore::SecureStorageTa> ta;
    std::unique_ptr<storage::BlockDevice> disk;
    std::unique_ptr<securestore::SecureStore> store;
    std::unique_ptr<sql::SecurePageStore> page_store;
    std::unique_ptr<engine::ConfigurablePageStore> access;
    std::unique_ptr<sql::Database> db;
    std::unique_ptr<net::SecureChannel> host_end;
    std::unique_ptr<net::SecureChannel> node_end;
  };

  /// How one loaded table routes to shard groups (derived at Load).
  struct TableRoute {
    sql::PartitionKind kind = sql::PartitionKind::kReplicated;
    int key_index = -1;
    int64_t min_key = 0;
    int64_t chunk = 1;  ///< range mode: shard = (key - min_key) / chunk
  };

  explicit ShardedCsaFleet(const FleetOptions& options);

  StorageNode& node(int group, int replica) {
    return nodes_[group * options_.replicas_per_shard + replica];
  }
  const StorageNode& node(int group, int replica) const {
    return nodes_[group * options_.replicas_per_shard + replica];
  }

  /// Challenge-response attestation of one node against the manufacturer
  /// root, plus its channel-pair establishment.
  Status AttestAndConnect(StorageNode* n);

  /// Simulated heartbeat-timeout latency before a failover commits.
  static constexpr sim::SimNanos kFailoverDetectionNs = 5'000'000;

  sql::ExecOptions StorageExecOptions() const;

  FleetOptions options_;

  tee::SgxMachine host_machine_;
  std::unique_ptr<tee::SgxEnclave> host_enclave_;
  tee::DeviceManufacturer manufacturer_;
  crypto::Drbg channel_drbg_;
  crypto::Drbg attest_drbg_;

  std::vector<StorageNode> nodes_;  ///< group-major: g*R + r
  std::map<std::string, TableRoute> routes_;
};

}  // namespace ironsafe::dist

#endif  // IRONSAFE_DIST_FLEET_H_
