#ifndef IRONSAFE_SQL_OBLIVIOUS_KERNELS_H_
#define IRONSAFE_SQL_OBLIVIOUS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// Branch-free building blocks of the oblivious execution mode
/// (docs/OBLIVIOUS.md). Every function here touches memory in a
/// sequence that depends only on public shapes (element counts, network
/// size, limits), never on decrypted values: comparisons feed arithmetic
/// selects, both slots of a compare-exchange are always rewritten, and
/// loop bounds are shape-derived. ironsafe_lint's oblivious-branching
/// rule enforces the discipline mechanically: no if/else/switch/ternary/
/// break/continue/goto anywhere in an oblivious_kernels file (for/while
/// loops over public bounds are the only control flow).
namespace ironsafe::sql::exec {

/// Smallest power of two >= n (>= 1). Sort networks pad to this width.
constexpr uint64_t NextPow2(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Compare-exchanges the bitonic network performs on n elements (n a
/// power of two): n/2 per column, log(n)*(log(n)+1)/2 columns. This is
/// the count BitonicSort returns and the cost model charges.
constexpr uint64_t BitonicExchangeCount(uint64_t n) {
  uint64_t log = 0;
  while ((uint64_t{1} << log) < n) ++log;
  return (n / 2) * log * (log + 1) / 2;
}

/// Conditionally swaps items[a] and items[b] so the pair is ascending
/// under `cmp` when up == 1 and descending when up == 0. `cmp(x, y)`
/// returns <0/0/>0 like memcmp. Both slots are always rewritten through
/// a two-element staging buffer, so the access sequence is identical
/// whether or not the pair was already in order.
template <typename T, typename Cmp>
void ObliviousCompareExchange(std::vector<T>* items, size_t a, size_t b,
                              uint64_t up, const Cmp& cmp) {
  const uint64_t gt = static_cast<uint64_t>(cmp((*items)[a], (*items)[b]) > 0);
  const uint64_t swap = uint64_t{1} - (up ^ gt);
  T staged[2] = {std::move((*items)[a]), std::move((*items)[b])};
  (*items)[a] = std::move(staged[swap]);
  (*items)[b] = std::move(staged[uint64_t{1} - swap]);
}

/// Sorts `items` ascending under `cmp` with the bitonic merge network.
/// items->size() must be a power of two (callers pad with sentinel
/// elements that sort last). The sequence of (a, b, direction) triples —
/// and therefore every memory access — is a pure function of the size.
/// Returns the number of compare-exchanges (== BitonicExchangeCount).
template <typename T, typename Cmp>
uint64_t BitonicSort(std::vector<T>* items, const Cmp& cmp) {
  const size_t n = items->size();
  uint64_t exchanges = 0;
  for (size_t k = 2; k <= n; k <<= 1) {
    for (size_t j = k >> 1; j > 0; j >>= 1) {
      for (size_t p = 0; p < n / 2; ++p) {
        // Enumerate the column's pairs (i, i | j) directly — i ranges
        // over the indices whose j bit is clear — so no index test is
        // needed inside the loop.
        const size_t low = p & (j - 1);
        const size_t i = ((p & ~(j - 1)) << 1) | low;
        const uint64_t up = static_cast<uint64_t>((i & k) == 0);
        ObliviousCompareExchange(items, i, i | j, up, cmp);
        ++exchanges;
      }
    }
  }
  return exchanges;
}

/// Number of set validity flags (a pure reduction; used for stats and
/// for the declassified result width, never for control flow inside the
/// pipeline).
uint64_t MaskedCount(const std::vector<uint8_t>& valid);

/// valid[i] &= pass[i] over the whole vector: oblivious filters never
/// drop rows, they flip validity in place so every downstream pass keeps
/// its shape.
void MaskedFilterUpdate(std::vector<uint8_t>* valid,
                        const std::vector<uint8_t>& pass);

/// Keeps only the first `limit` set flags: flag i survives when fewer
/// than `limit` flags are set strictly before it. One fixed-length pass.
void MaskedLimit(std::vector<uint8_t>* valid, uint64_t limit);

}  // namespace ironsafe::sql::exec

#endif  // IRONSAFE_SQL_OBLIVIOUS_KERNELS_H_
