#ifndef IRONSAFE_MONITOR_MONITOR_H_
#define IRONSAFE_MONITOR_MONITOR_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "crypto/chacha20.h"
#include "crypto/ed25519.h"
#include "monitor/audit_log.h"
#include "policy/interpreter.h"
#include "policy/policy.h"
#include "policy/rewriter.h"
#include "sim/cost_model.h"
#include "sql/parser.h"
#include "tee/sgx.h"
#include "tee/trustzone.h"

namespace ironsafe::monitor {

/// Attestation latency constants. The paper measures these end-to-end in
/// Table 4; the simulation charges the same components so the breakdown
/// bench reproduces the table's rows.
struct AttestationLatency {
  static constexpr uint64_t kHostCasNanos = 140'000'000;        // 140 ms
  static constexpr uint64_t kStorageTeeNanos = 453'000'000;     // 453 ms
  static constexpr uint64_t kStorageReeNanos = 54'000'000;      //  54 ms
  static constexpr uint64_t kInterconnectNanos = 42'000'000;    //  42 ms
};

/// Signed statement the client receives with its results: hard evidence
/// that the named query executed in an environment satisfying the named
/// execution policy (§4.2 "Proofs of integrity and authenticity").
struct ComplianceProof {
  std::string query;
  std::string execution_policy;
  Bytes host_measurement;
  Bytes storage_measurement;
  bool offloaded = false;
  Bytes signature;  ///< monitor's Ed25519 over the fields above

  Bytes SigningInput() const;
};

/// The outcome of authorizing one client statement.
struct Authorization {
  sql::Statement rewritten;             ///< policy-compliant statement
  bool storage_eligible = true;         ///< offloading allowed?
  Bytes session_key;                    ///< host<->storage channel key
  std::vector<policy::Obligation> obligations;
};

/// Per-table policy registration (by the data producer at setup time).
struct TablePolicy {
  policy::PolicySet access;
  bool with_expiry = false;  ///< table carries the hidden _expiry column
  bool with_reuse = false;   ///< table carries the hidden _reuse column
};

/// The trusted monitor (§4.2): runs inside its own SGX enclave, acts as
/// root of trust for clients, attests both engines, enforces access and
/// execution policies, manages session keys, and keeps the audit log.
class TrustedMonitor {
 public:
  /// `enclave` is the monitor's own measured enclave; `ias` verifies
  /// host quotes; `manufacturer_root` verifies storage cert chains.
  TrustedMonitor(tee::SgxEnclave* enclave, tee::SgxAttestationService* ias,
                 Bytes manufacturer_root);

  const Bytes& public_key() const { return signing_key_.public_key; }

  // ---- Trust configuration ----
  void TrustHostMeasurement(const Bytes& measurement);
  void TrustStorageMeasurement(const Bytes& measurement);
  void set_latest_firmware(uint32_t host_fw, uint32_t storage_fw);

  // ---- Attestation (Figure 4) ----

  /// Verifies a host engine quote (Fig 4.a): IAS signature check plus the
  /// trusted-measurement check; on success issues a monitor-signed
  /// certificate over the host's public key (the quote's report data).
  Result<Bytes> AttestHost(const tee::SgxQuote& quote,
                           const std::string& location, uint32_t fw_version,
                           sim::CostModel* cost = nullptr);

  /// Challenge half of the storage protocol (Fig 4.b step 1).
  Bytes IssueStorageChallenge();

  /// Verification half (Fig 4.b steps 4-5): ROTPK cert chain, challenge
  /// signature, and normal-world measurement policy.
  Status AttestStorage(const std::string& node_id, const Bytes& challenge,
                       const tee::TzAttestationResponse& response,
                       sim::CostModel* cost = nullptr);

  bool host_attested() const { return facts_.host_attested; }
  bool storage_attested() const { return facts_.storage_attested; }
  const policy::NodeFacts& node_facts() const { return facts_; }

  // ---- Policy and client registry ----

  Status RegisterTablePolicy(const std::string& table, TablePolicy policy);
  void RegisterClient(const std::string& key_id, int reuse_bit = -1);
  bool ClientRegistered(const std::string& key_id) const {
    return clients_.count(key_id) > 0;
  }

  /// Current simulation date used by the le(T, TIMESTAMP) predicate.
  void set_access_time(int64_t days) {
    if (days != access_time_) {
      access_time_ = days;
      ++policy_epoch_;
    }
  }

  /// Monotone counter bumped whenever policy-relevant state changes:
  /// table policy (re-)registration, client registry updates, the access
  /// time, and attestation facts. Anything caching the *output* of
  /// AuthorizeStatement (rewritten statements, eligibility) must key on
  /// this epoch — a bump invalidates every older cached rewrite.
  uint64_t policy_epoch() const { return policy_epoch_; }

  // ---- Query authorization (§4.2 policy-compliant partitioning) ----

  /// Validates the client's permissions against the data producer's
  /// access policy, checks the client's execution policy against the
  /// attested nodes, rewrites the statement (row filters, hidden
  /// columns), performs logging obligations, and issues a session key.
  /// `insert_expiry`/`insert_reuse` supply hidden-column values for
  /// INSERTs into policy-protected tables.
  Result<Authorization> AuthorizeStatement(
      const std::string& client_key_id, const std::string& sql,
      const std::string& execution_policy,
      std::optional<int64_t> insert_expiry = std::nullopt,
      std::optional<int64_t> insert_reuse = std::nullopt,
      sim::CostModel* cost = nullptr);

  /// Per-execution half of a *cached* authorization (plan-cache hit):
  /// re-checks the client, re-performs the logging obligations recorded
  /// by the original AuthorizeStatement, and issues a fresh session key.
  /// Costs one enclave transition but no parse / policy-eval / rewrite —
  /// callers must have keyed their cache on policy_epoch() so the reused
  /// rewrite is still the one AuthorizeStatement would produce.
  Result<Bytes> BeginCachedSession(
      const std::string& client_key_id, const std::string& sql,
      const std::vector<policy::Obligation>& obligations,
      sim::CostModel* cost = nullptr);

  /// Ends a session: revokes its key (§4.2 session cleanup).
  void EndSession(const Bytes& session_key);
  bool SessionActive(const Bytes& session_key) const;

  /// Signs a per-query proof of compliance.
  Result<ComplianceProof> IssueProof(const std::string& query,
                                     const std::string& execution_policy,
                                     bool offloaded);
  static bool VerifyProof(const ComplianceProof& proof,
                          const Bytes& monitor_public_key);

  AuditLog* audit_log() { return &audit_log_; }

 private:
  Result<const TablePolicy*> PolicyForStatement(const sql::Statement& stmt,
                                                std::string* table_name) const;

  tee::SgxEnclave* enclave_;
  tee::SgxAttestationService* ias_;
  Bytes manufacturer_root_;
  crypto::Ed25519KeyPair signing_key_;
  crypto::Drbg drbg_;
  AuditLog audit_log_;

  std::set<Bytes> trusted_host_measurements_;
  std::set<Bytes> trusted_storage_measurements_;
  policy::NodeFacts facts_;
  Bytes attested_host_measurement_;
  Bytes attested_storage_measurement_;

  std::map<std::string, TablePolicy> table_policies_;
  std::map<std::string, int> clients_;  // key id -> reuse bit
  std::set<Bytes> active_sessions_;
  int64_t access_time_ = 0;
  uint64_t policy_epoch_ = 0;
};

}  // namespace ironsafe::monitor

#endif  // IRONSAFE_MONITOR_MONITOR_H_
