#ifndef IRONSAFE_SERVER_SCHEDULER_H_
#define IRONSAFE_SERVER_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace ironsafe::server {

/// One client statement waiting for dispatch: the sealed request frame as
/// it arrived on the session channel (it is only opened at dispatch time,
/// so a queued statement never exists in plaintext outside the channel
/// endpoints).
struct QueuedStatement {
  uint64_t session_id = 0;
  uint64_t seq = 0;  ///< per-session submission number
  Bytes request_frame;
};

/// Admission bounds. Both caps reject with kResourceExhausted, which
/// common/retry classifies as backpressure (retryable without switching
/// paths) — distinct from kUnavailable, which signals a lost node.
struct SchedulerLimits {
  size_t max_per_session = 8;  ///< per-tenant quota
  size_t max_total = 64;       ///< bound on total queued statements
};

/// Deterministic fair scheduler: one FIFO per session, served round-robin
/// by ascending session id. Given the same sequence of Admit/Next calls
/// the dispatch order is a pure function of the submission schedule —
/// never of thread timing — which is what keeps serving-layer traces and
/// cost totals bit-identical across worker counts.
///
/// Not thread-safe; QueryService guards it with its session mutex.
class FairScheduler {
 public:
  explicit FairScheduler(SchedulerLimits limits) : limits_(limits) {}

  /// Enqueues, or rejects with kResourceExhausted when the statement
  /// would exceed the per-session quota or the global bound.
  Status Admit(QueuedStatement item);

  /// Pops the next statement in round-robin order (the first non-empty
  /// session with id greater than the last one served, wrapping), or
  /// nullopt when idle.
  std::optional<QueuedStatement> Next();

  /// Removes every queued statement of `session_id` (session close or
  /// drop); the caller completes them with kUnavailable.
  std::vector<QueuedStatement> EvictSession(uint64_t session_id);

  size_t depth() const { return depth_; }
  size_t session_depth(uint64_t session_id) const;
  /// High-water mark of depth(); never exceeds limits().max_total.
  size_t peak_depth() const { return peak_depth_; }
  const SchedulerLimits& limits() const { return limits_; }

 private:
  SchedulerLimits limits_;
  std::map<uint64_t, std::deque<QueuedStatement>> queues_;
  uint64_t last_served_ = 0;  ///< session id; 0 = nothing served yet
  size_t depth_ = 0;
  size_t peak_depth_ = 0;
};

}  // namespace ironsafe::server

#endif  // IRONSAFE_SERVER_SCHEDULER_H_
