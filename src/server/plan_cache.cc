#include "server/plan_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace ironsafe::server {

std::string PlanCache::Key(const std::string& client_key,
                           const std::string& execution_policy,
                           const std::string& sql) {
  // Length-prefixed concatenation so no (client, policy, sql) tuple can
  // collide with another by sliding bytes across field boundaries.
  Bytes key;
  PutLengthPrefixed(&key, client_key);
  PutLengthPrefixed(&key, execution_policy);
  PutLengthPrefixed(&key, sql);
  return ToString(key);
}

void PlanCache::RollEpoch(uint64_t epoch) {
  if (epoch == epoch_) return;
  if (!entries_.empty()) {
    invalidations_ += entries_.size();
    IRONSAFE_COUNTER_ADD("server.plan_cache.invalidated", entries_.size());
    entries_.clear();
    insertion_order_.clear();
  }
  epoch_ = epoch;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    const std::string& client_key, const std::string& execution_policy,
    const std::string& sql, uint64_t epoch) {
  RollEpoch(epoch);
  auto it = entries_.find(Key(client_key, execution_policy, sql));
  if (it == entries_.end()) {
    ++misses_;
    IRONSAFE_COUNTER_ADD("server.plan_cache.miss", 1);
    return nullptr;
  }
  ++hits_;
  IRONSAFE_COUNTER_ADD("server.plan_cache.hit", 1);
  return it->second;
}

std::shared_ptr<const CachedPlan> PlanCache::Insert(
    const std::string& client_key, const std::string& execution_policy,
    const std::string& sql, uint64_t epoch, CachedPlan plan) {
  RollEpoch(epoch);
  if (capacity_ == 0) return nullptr;
  std::string key = Key(client_key, execution_policy, sql);
  auto entry = std::make_shared<const CachedPlan>(std::move(plan));
  auto [it, inserted] = entries_.insert_or_assign(key, entry);
  if (inserted) {
    insertion_order_.push_back(key);
    while (entries_.size() > capacity_) {
      entries_.erase(insertion_order_.front());
      insertion_order_.pop_front();
      IRONSAFE_COUNTER_ADD("server.plan_cache.evicted", 1);
    }
  }
  // The evictee above can never be `entry` itself (a fresh insert beyond
  // capacity evicts the front of the order queue, and `key` is at the
  // back), and a statement already holding the shared entry keeps it
  // alive across any eviction regardless.
  return entry;
}

}  // namespace ironsafe::server
