// Fixture: an unboxed vector kernel — raw payload arrays, a selection
// vector, no boxed types anywhere. Must stay silent.
#include <cstdint>
#include <vector>

namespace ironsafe::sql {

size_t FilterGreater(const int64_t* vals, std::vector<uint32_t>* sel,
                     int64_t cutoff) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    if (vals[i] > cutoff) (*sel)[out++] = i;
  }
  sel->resize(out);
  return out;
}

}  // namespace ironsafe::sql
