#ifndef IRONSAFE_SERVER_PIPELINE_H_
#define IRONSAFE_SERVER_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace ironsafe::server {

/// One slot-limited stage of the serving pipeline (decode, authorize,
/// execute, encode), driven by a shared sim::EventQueue.
///
/// A job entering a stage starts immediately if a slot is free, else
/// waits FIFO. Starting a job runs its `runner` natively *at that
/// moment* — native execution order therefore equals the deterministic
/// event order — and the returned simulated duration schedules a
/// completion event at start + duration, which frees the slot, starts
/// the next waiting job, and invokes `done` so the owner can route the
/// job to its next stage.
///
/// Not thread-safe; QueryService drives every stage under its dispatch
/// lock.
class PipelineStage {
 public:
  /// Does the job's native work; returns its simulated duration.
  using Runner = std::function<sim::SimNanos(uint64_t token,
                                             sim::SimNanos start)>;
  /// Invoked (via the event queue) when the job's simulated interval
  /// ends; routes the job onward.
  using Done = std::function<void(uint64_t token, sim::SimNanos end)>;

  PipelineStage(std::string name, size_t slots, sim::EventQueue* events)
      : name_(std::move(name)), slots_(slots == 0 ? 1 : slots),
        events_(events) {}

  void set_runner(Runner runner) { runner_ = std::move(runner); }
  void set_done(Done done) { done_ = std::move(done); }

  /// Starts the job now (slot free) or queues it FIFO.
  void Enter(uint64_t token);

  bool idle() const { return busy_ == 0 && waiting_.empty(); }
  size_t busy() const { return busy_; }
  size_t waiting() const { return waiting_.size(); }
  const std::string& name() const { return name_; }
  /// Jobs ever entered (for pipeline counters).
  uint64_t entered() const { return entered_; }

 private:
  void Start(uint64_t token);

  std::string name_;
  size_t slots_;
  sim::EventQueue* events_;
  Runner runner_;
  Done done_;
  size_t busy_ = 0;
  std::deque<uint64_t> waiting_;
  uint64_t entered_ = 0;
};

/// Credit-based flow control for chunked response delivery.
struct StreamOptions {
  /// Sealed response frames larger than this are delivered to the client
  /// in chunks of this size (on the simulated timeline only — the frame
  /// itself stays one AEAD unit, so result bytes are unchanged).
  size_t chunk_bytes = 1024;
  /// Credit window: at most this many chunks in flight before the sender
  /// blocks waiting for the client to return a credit.
  size_t credits = 4;
  /// Round trip for one credit grant to come back from the client.
  sim::SimNanos credit_rtt_ns = 100'000;
};

/// The computed delivery schedule of one chunked response.
struct StreamPlan {
  size_t chunks = 1;
  /// Time the sender spent blocked on exhausted credits.
  sim::SimNanos stall_ns = 0;
  /// Delivery instant of each chunk, as an offset from stream start;
  /// non-decreasing.
  std::vector<sim::SimNanos> delivery_ns;

  sim::SimNanos duration_ns() const {
    return delivery_ns.empty() ? 0 : delivery_ns.back();
  }
};

/// Computes the whole delivery schedule of a `frame_bytes` response
/// analytically (no per-chunk events): chunk transfer times come from
/// the profile's network link (per-message latency + bandwidth), the
/// sender serializes chunks on the link, and chunk i may only start once
/// the credit of chunk i - credits has returned (delivery +
/// credit_rtt_ns + extra_stall_ns). `extra_stall_ns` models a slow
/// client delaying every credit grant (the kServerStreamStall fault).
/// Pure function of its inputs — deterministic by construction.
StreamPlan PlanStream(size_t frame_bytes, const StreamOptions& options,
                      const sim::HardwareProfile& profile,
                      sim::SimNanos extra_stall_ns = 0);

}  // namespace ironsafe::server

#endif  // IRONSAFE_SERVER_PIPELINE_H_
