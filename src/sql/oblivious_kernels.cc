#include "sql/oblivious_kernels.h"

namespace ironsafe::sql::exec {

uint64_t MaskedCount(const std::vector<uint8_t>& valid) {
  uint64_t n = 0;
  for (uint8_t v : valid) n += v;
  return n;
}

void MaskedFilterUpdate(std::vector<uint8_t>* valid,
                        const std::vector<uint8_t>& pass) {
  const size_t n = valid->size();
  for (size_t i = 0; i < n; ++i) {
    (*valid)[i] = static_cast<uint8_t>((*valid)[i] & pass[i]);
  }
}

void MaskedLimit(std::vector<uint8_t>* valid, uint64_t limit) {
  uint64_t seen = 0;
  const size_t n = valid->size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t keep = static_cast<uint64_t>(seen < limit);
    seen += (*valid)[i];
    (*valid)[i] = static_cast<uint8_t>((*valid)[i] & keep);
  }
}

}  // namespace ironsafe::sql::exec
