#ifndef IRONSAFE_SECURESTORE_SECURE_STORE_H_
#define IRONSAFE_SECURESTORE_SECURE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/chacha20.h"
#include "securestore/merkle_tree.h"
#include "sim/cost_model.h"
#include "storage/block_device.h"
#include "tee/trustzone.h"

namespace ironsafe::securestore {

/// The secure storage trusted application (paper §4.1/§5): runs in the
/// TrustZone secure world, owns the RPMB and the keys derived from the
/// hardware unique key, and anchors the Merkle root for freshness.
class SecureStorageTa {
 public:
  static constexpr uint32_t kDataKeySlot = 0;
  static constexpr uint32_t kRootSlot = 1;

  explicit SecureStorageTa(tee::TrustZoneDevice* device);

  /// Provisions the RPMB key and, on first boot, generates and persists
  /// the database encryption key. Idempotent.
  Status Initialize();

  /// Returns the 32-byte data encryption master key (only a trusted
  /// normal-world storage engine ever receives this; the trusted monitor
  /// gates that via attestation).
  Result<Bytes> GetDataKey();

  /// Persists HMAC(task_key, root || epoch) and the epoch to RPMB.
  Status CommitRoot(const Bytes& root, uint64_t epoch);

  /// Verifies a (root, epoch) pair against RPMB; StaleData on mismatch —
  /// this is the rollback detector.
  Status VerifyRoot(const Bytes& root, uint64_t epoch);

  /// The latest committed epoch (0 if never committed).
  Result<uint64_t> CurrentEpoch();

 private:
  Bytes RootMac(const Bytes& root, uint64_t epoch) const;

  tee::TrustZoneDevice* device_;
  Bytes task_key_;  ///< TA storage key derived from the HUK (paper §5)
  tee::RpmbClient rpmb_;
  crypto::Drbg drbg_;
  bool initialized_ = false;
};

/// Encrypted, integrity- and freshness-protected page store over an
/// untrusted BlockDevice. Unit of protection is a 4 KiB page, encrypted
/// with AES-256-CBC under a random IV and authenticated with
/// HMAC-SHA-512, with a keyed Merkle tree over the page MACs whose root
/// is anchored in RPMB (paper §4.1, §5).
class SecureStore {
 public:
  static constexpr size_t kPageSize = 4096;

  /// Creates a fresh store (generates tree, commits the empty root).
  static Result<std::unique_ptr<SecureStore>> Create(
      storage::BlockDevice* device, SecureStorageTa* ta);

  /// Opens an existing store: reloads the Merkle image from untrusted
  /// metadata and verifies the root against RPMB. Detects rollback of the
  /// whole image (StaleData) and metadata corruption (Corruption).
  static Result<std::unique_ptr<SecureStore>> Open(
      storage::BlockDevice* device, SecureStorageTa* ta);

  /// Which CPU pays the crypto cost (storage engine vs host-only mode).
  void set_site(sim::Site site) { site_ = site; }

  /// Writes a page (plaintext must be exactly kPageSize bytes).
  Status WritePage(uint64_t index, const Bytes& plaintext,
                   sim::CostModel* cost = nullptr);

  /// Reads and verifies a page: HMAC check, Merkle path to the trusted
  /// root, then decrypt. Safe to call concurrently with other reads — the
  /// verify/decrypt path only reads store state, and each caller charges
  /// its own `cost` model (morsel workers pass private slices).
  /// Concurrent writes are not supported.
  ///
  /// Recovery: a Corruption verdict (MAC or Merkle mismatch) triggers a
  /// bounded re-fetch-and-reverify — a transient media/DMA flip heals on
  /// retry, while persistent tampering still surfaces as Corruption.
  Result<Bytes> ReadPage(uint64_t index, sim::CostModel* cost = nullptr);

  /// Batch mode defers metadata persistence and the RPMB root commit to
  /// EndBatch() — the unit of durability for bulk loads.
  void BeginBatch() { in_batch_ = true; }
  Status EndBatch();

  uint64_t num_pages() const { return tree_.num_leaves(); }
  const Bytes& root() const { return tree_.Root(); }
  uint64_t epoch() const { return epoch_; }

  /// Merkle geometry, used by the EPC model: verifying a page touches
  /// one tree node per level inside the verifier's address space.
  uint64_t merkle_depth() const { return tree_.Depth(); }

 private:
  SecureStore(storage::BlockDevice* device, SecureStorageTa* ta,
              Bytes master_key, MerkleTree tree, uint64_t epoch);

  /// One fetch + verify + decrypt pass (no recovery).
  Result<Bytes> ReadPageOnce(uint64_t index, sim::CostModel* cost);

  Status Persist();

  storage::BlockDevice* device_;
  SecureStorageTa* ta_;
  Bytes enc_key_;
  Bytes mac_key_;
  MerkleTree tree_;
  uint64_t epoch_;
  crypto::Drbg iv_drbg_;
  sim::Site site_ = sim::Site::kStorage;
  bool in_batch_ = false;
};

}  // namespace ironsafe::securestore

#endif  // IRONSAFE_SECURESTORE_SECURE_STORE_H_
