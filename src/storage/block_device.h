#ifndef IRONSAFE_STORAGE_BLOCK_DEVICE_H_
#define IRONSAFE_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <map>

#include "common/bytes.h"
#include "common/result.h"
#include "sim/cost_model.h"

namespace ironsafe::storage {

/// The untrusted storage medium (the paper's NVMe SSD). Stores opaque
/// frames by slot index, with a separate metadata area for the Merkle
/// tree image. Completely untrusted: tests use the adversary interface to
/// flip bits, displace frames, and roll the image back to stale versions.
class BlockDevice {
 public:
  BlockDevice() = default;

  // Movable, not copyable (slots can be large).
  BlockDevice(BlockDevice&&) = default;
  BlockDevice& operator=(BlockDevice&&) = default;

  void WriteFrame(uint64_t slot, Bytes frame);

  /// Reads a frame, charging NVMe cost to `cost` if provided.
  Result<Bytes> ReadFrame(uint64_t slot, sim::CostModel* cost) const;

  bool HasFrame(uint64_t slot) const { return frames_.count(slot) > 0; }
  size_t frame_count() const { return frames_.size(); }

  void WriteMetadata(Bytes metadata) { metadata_ = std::move(metadata); }
  const Bytes& ReadMetadata() const { return metadata_; }

  // ---- Adversary interface (tests only) ----

  /// Direct mutable access, bypassing any protocol.
  Bytes* MutableFrame(uint64_t slot);
  Bytes* MutableMetadata() { return &metadata_; }

  /// Swaps two frames (displacement attack).
  void SwapFrames(uint64_t a, uint64_t b);

  /// Whole-image snapshot/restore (rollback & forking attacks).
  struct Image {
    std::map<uint64_t, Bytes> frames;
    Bytes metadata;
  };
  Image Snapshot() const { return Image{frames_, metadata_}; }
  void Restore(const Image& image) {
    frames_ = image.frames;
    metadata_ = image.metadata;
  }

 private:
  std::map<uint64_t, Bytes> frames_;
  Bytes metadata_;
};

}  // namespace ironsafe::storage

#endif  // IRONSAFE_STORAGE_BLOCK_DEVICE_H_
