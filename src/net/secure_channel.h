#ifndef IRONSAFE_NET_SECURE_CHANNEL_H_
#define IRONSAFE_NET_SECURE_CHANNEL_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/ed25519.h"
#include "sim/cost_model.h"

namespace ironsafe::net {

/// One endpoint of an authenticated encrypted channel (the TLS-over-TCP
/// stand-in of paper §5 "Networking layer"). Build both ends with
/// Handshake(); each record carries a sequence-numbered AEAD frame, so
/// replayed, reordered, or tampered records are rejected.
class SecureChannel {
 public:
  /// Sends `plaintext`; returns the wire frame and charges network cost.
  Result<Bytes> Send(const Bytes& plaintext, sim::CostModel* cost);

  /// Authenticates and decrypts a frame produced by the peer's Send().
  Result<Bytes> Receive(const Bytes& frame, sim::CostModel* cost);

  /// Ends this endpoint's session: zeroizes both AEAD keys, the session
  /// id and the replay buffer. Subsequent Send/Receive fail cleanly with
  /// kFailedPrecondition (no frame is ever produced or accepted under
  /// the dead keys). Idempotent.
  void Close();
  bool closed() const { return closed_; }

  const Bytes& session_id() const { return session_id_; }

  /// Prefer Handshake to construct channels; exposed for key schedules
  /// derived by other trusted components (e.g. monitor-issued keys).
  SecureChannel(crypto::Aead send_aead, crypto::Aead recv_aead,
                Bytes session_id)
      : send_aead_(std::move(send_aead)),
        recv_aead_(std::move(recv_aead)),
        session_id_(std::move(session_id)) {}

 private:
  crypto::Aead send_aead_;
  crypto::Aead recv_aead_;
  Bytes session_id_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
  bool closed_ = false;
  /// Only maintained while fault injection is enabled: the replay site
  /// substitutes this for the incoming frame.
  Bytes last_accepted_frame_;
};

/// X25519 ephemeral-ephemeral handshake with transcript-bound key
/// derivation. The initiator/responder exchange hellos out of band (the
/// monitor's session-key distribution also reuses DeriveSessionKeys).
class Handshake {
 public:
  explicit Handshake(crypto::Drbg* drbg) : drbg_(drbg) {}

  struct Hello {
    Bytes ephemeral_public;
  };

  /// Produces this side's hello (generates an ephemeral key pair).
  Result<Hello> Start();

  /// Completes the handshake given the peer's hello. `is_initiator`
  /// breaks the key-direction symmetry.
  Result<std::unique_ptr<SecureChannel>> Finish(const Hello& peer,
                                                bool is_initiator);

  /// Derives a channel pair directly from a shared session key (used
  /// when the trusted monitor distributes the key, paper §4.2).
  static Result<std::pair<std::unique_ptr<SecureChannel>,
                          std::unique_ptr<SecureChannel>>>
  FromSessionKey(const Bytes& session_key);

 private:
  crypto::Drbg* drbg_;
  Bytes ephemeral_private_;
  Bytes ephemeral_public_;
};

}  // namespace ironsafe::net

#endif  // IRONSAFE_NET_SECURE_CHANNEL_H_
