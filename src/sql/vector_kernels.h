#ifndef IRONSAFE_SQL_VECTOR_KERNELS_H_
#define IRONSAFE_SQL_VECTOR_KERNELS_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

/// Tight loops over raw column arrays — the innermost layer of the
/// vectorized engine. Everything here works on unboxed payloads
/// (int64/double-bit/std::string arrays plus selection vectors); boxed
/// dynamically-typed cells are banned in this file by ironsafe_lint
/// (rule vector-kernel-boxing), which is what keeps the kernels
/// allocation-free on the hot path. Callers (vector_eval.cc) prove the
/// uniform-type preconditions before dispatching here.
namespace ironsafe::sql::vec {

/// Comparison operator of a filter kernel. Semantics equal the scalar
/// engine's three-way compare: integers compare as int64, any double
/// operand promotes both sides to double, strings compare bytewise.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

enum class ArithOp { kAdd, kSub, kMul };

inline double F64FromBits(int64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

inline int64_t BitsFromF64(double d) {
  int64_t bits;
  std::memcpy(&bits, &d, 8);
  return bits;
}

// ---- Filter kernels ----
// Each scans the active indices sel[0..n) over the payload array,
// compacts the passing indices to the front of `sel` and returns the
// new active count. Order is preserved.

size_t FilterI64(const int64_t* vals, CmpOp op, int64_t rhs, uint32_t* sel,
                 size_t n);
/// Integer payloads compared as doubles (mixed int-column vs
/// double-constant predicates).
size_t FilterI64AsF64(const int64_t* vals, CmpOp op, double rhs,
                      uint32_t* sel, size_t n);
/// `bits` holds IEEE-754 bit patterns.
size_t FilterF64(const int64_t* bits, CmpOp op, double rhs, uint32_t* sel,
                 size_t n);
size_t FilterStr(const std::string* vals, CmpOp op, const std::string& rhs,
                 uint32_t* sel, size_t n);
/// BETWEEN lo AND hi, inclusive on both ends.
size_t FilterBetweenI64(const int64_t* vals, int64_t lo, int64_t hi,
                        uint32_t* sel, size_t n);
size_t FilterBetweenF64(const int64_t* bits, double lo, double hi,
                        uint32_t* sel, size_t n);

// ---- Arithmetic kernels (projection fast paths) ----
// dst is indexed by position (0..n), not by selection index.

void ArithI64Scalar(const int64_t* a, ArithOp op, int64_t b,
                    const uint32_t* sel, size_t n, int64_t* dst);
void ArithF64Scalar(const int64_t* a_bits, ArithOp op, double b,
                    const uint32_t* sel, size_t n, int64_t* dst_bits);
void ArithI64Cols(const int64_t* a, ArithOp op, const int64_t* b,
                  const uint32_t* sel, size_t n, int64_t* dst);
void ArithF64Cols(const int64_t* a_bits, ArithOp op, const int64_t* b_bits,
                  const uint32_t* sel, size_t n, int64_t* dst_bits);

// ---- Join/group key building ----
// Byte-compatible with the scalar engine's normalized keys: numerics
// (except dates) collapse to tag 0x01 + IEEE-754 bits so 3 and 3.0
// join/group together; dates and strings keep their serialized form.

void AppendKeyF64(std::vector<uint8_t>* key, double v);
inline void AppendKeyI64(std::vector<uint8_t>* key, int64_t v) {
  AppendKeyF64(key, static_cast<double>(v));
}
void AppendKeyDate(std::vector<uint8_t>* key, int64_t days);
void AppendKeyStr(std::vector<uint8_t>* key, const std::string& s);

/// FNV-1a, used by the hash-probe microbenches and key prehashing.
uint64_t HashBytes(const uint8_t* data, size_t n);

}  // namespace ironsafe::sql::vec

#endif  // IRONSAFE_SQL_VECTOR_KERNELS_H_
