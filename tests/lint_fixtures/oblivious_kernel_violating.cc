// Fixture: an "oblivious" kernel that branches on decrypted values.
// Every if/else/ternary/break/continue/switch/goto token inside an
// oblivious_kernels file must fire oblivious-branching.
#include <cstdint>
#include <vector>

namespace ironsafe::sql::exec {

// Leaks the comparison outcome through the branch: 1x 'if', 1x 'else'.
void LeakyCompareExchange(std::vector<int64_t>* items, size_t a, size_t b) {
  if ((*items)[a] > (*items)[b]) {
    std::swap((*items)[a], (*items)[b]);
  } else {
    (void)0;
  }
}

// Leaks through the ternary select: 1x '?'.
int64_t LeakyMax(int64_t x, int64_t y) { return x > y ? x : y; }

// Leaks the match position through early exit: 1x 'if', 1x 'break'.
size_t LeakyFind(const std::vector<int64_t>& items, int64_t needle) {
  size_t at = items.size();
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i] == needle) {
      at = i;
      break;
    }
  }
  return at;
}

}  // namespace ironsafe::sql::exec
