# Empty compiler generated dependencies file for ironsafe_net.
# This may be replaced when dependencies are built.
