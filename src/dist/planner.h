#ifndef IRONSAFE_DIST_PLANNER_H_
#define IRONSAFE_DIST_PLANNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/partitioner.h"
#include "sql/ast.h"
#include "sql/database.h"
#include "sql/partition.h"

namespace ironsafe::dist {

/// One storage fragment plus its placement across the shard groups.
struct FragmentPlacement {
  engine::PartitionedQuery::StorageFragment fragment;
  /// True: the source table is partitioned, so every shard group runs
  /// the fragment over its slice and the host merges the shipped rows.
  /// False: the table is replicated; exactly one group (`home_group`)
  /// runs the fragment so the result multiset is unchanged.
  bool partitioned = false;
  int home_group = 0;
  /// Partitioned fragments: the partition-key column the host k-way-
  /// merges the per-shard row streams by. Because loaders insert rows in
  /// ascending key order and a key maps to exactly one shard, the merge
  /// reconstructs the single-node fragment row order bit-exactly — the
  /// anchor for shard-count-invariant results (docs/SHARDING.md).
  std::string merge_key;
};

/// A distributed plan: shard-side fragments plus the host remainder.
struct DistPlan {
  std::vector<FragmentPlacement> fragments;
  std::unique_ptr<sql::SelectStmt> host_query;
  /// True: the fragments are whole-query partial aggregates (one
  /// identical statement run per shard group) and `host_query` is the
  /// re-aggregation over their union. See PlannerOptions.
  bool partial_aggregation = false;
};

struct PlannerOptions {
  int shard_count = 1;
  /// Opt-in partial aggregation (§8-style pushdown, distributed): when
  /// the query has no subqueries / HAVING / DISTINCT / LIMIT, every
  /// select item is a mergeable aggregate (COUNT/SUM/MIN/MAX) or a
  /// GROUP BY column, and all partitioned tables it touches are joined
  /// on their co-partitioned keys, each shard runs the whole query over
  /// its slice and the host merely re-aggregates the shipped partials.
  /// Off by default: merging double-typed partial SUMs is not bit-
  /// identical across shard counts (float addition is non-associative),
  /// so the default plan keeps the shard-count-invariance guarantee and
  /// this mode trades it for a smaller shipped footprint.
  bool partial_aggregation = false;
  /// Returns true when two partitioned tables' slices co-locate (same
  /// partition kind and routing parameters). Unset = never co-located.
  std::function<bool(const std::string&, const std::string&)> co_located;
};

/// Plans `stmt` for a fleet of `options.shard_count` groups. `shard_db`
/// supplies table schemas (any node's database — they all hold every
/// table). `scheme` maps base tables to their partition specs; tables
/// absent from the scheme are treated as replicated.
Result<DistPlan> PlanQuery(const sql::SelectStmt& stmt,
                           const sql::Database& shard_db,
                           const std::vector<sql::TablePartition>& scheme,
                           const PlannerOptions& options);

}  // namespace ironsafe::dist

#endif  // IRONSAFE_DIST_PLANNER_H_
