file(REMOVE_RECURSE
  "libironsafe_engine.a"
)
