// GDPR-compliant data sharing between two controllers (the paper's §3.1
// scenario): airline A collects customer data, hotel chain B consumes it
// under policies that implement three GDPR anti-pattern defenses —
// timely deletion, purpose limitation (reuse map), and transparent
// sharing (audit logging) — while a regulator D audits the trail.
//
//   build/examples/gdpr_sharing

#include <cstdio>

#include "engine/ironsafe.h"
#include "monitor/audit_log.h"
#include "sql/value.h"

using ironsafe::Status;
using ironsafe::engine::IronSafeSystem;

namespace {
void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}
template <typename T>
T Check(ironsafe::Result<T> result) {
  Check(result.status());
  return std::move(*result);
}
}  // namespace

int main() {
  IronSafeSystem::Options options;
  options.csa.scale_factor = 0.001;
  auto system = Check(IronSafeSystem::Create(options));
  Check(system->Bootstrap());
  system->set_current_date(*ironsafe::sql::ParseDate("1997-06-01"));

  system->RegisterClient("airline");                    // controller A
  system->RegisterClient("hotel", /*reuse_bit=*/0);     // controller B
  system->RegisterClient("ad-network", /*reuse_bit=*/1);  // another service

  // One policy combining all three anti-pattern defenses: consumers are
  // expiry-gated, purpose-gated via the reuse bitmap, and every consumer
  // read is logged for later audit.
  Check(system->CreateProtectedTable(
      "airline",
      "CREATE TABLE customers (name VARCHAR, itinerary VARCHAR)",
      "read ::= sessionKeyIs(airline) | (sessionKeyIs(hotel) | "
      "sessionKeyIs(ad-network)) & le(T, TIMESTAMP) & reuseMap(m) & "
      "logUpdate(shares, K, Q)\n"
      "write ::= sessionKeyIs(airline)\n",
      /*with_expiry=*/true, /*with_reuse=*/true));

  int64_t next_year = *ironsafe::sql::ParseDate("1998-06-01");
  // Customer 1 consented to hotel sharing only (bit 0); customer 2 to
  // both services (bits 0 and 1); customer 3 to neither.
  struct Rec {
    const char* name;
    const char* itinerary;
    int64_t reuse;
  } records[] = {{"ada", "LIS->MUC", 0b01},
                 {"bob", "EDI->LIS", 0b11},
                 {"cyd", "MUC->EDI", 0b00}};
  for (const Rec& r : records) {
    Check(system
              ->Execute("airline",
                        std::string("INSERT INTO customers (name, itinerary) "
                                    "VALUES ('") +
                            r.name + "', '" + r.itinerary + "')",
                        "", next_year, r.reuse)
              .status());
  }

  auto hotel = Check(system->Execute(
      "hotel", "SELECT name, itinerary FROM customers ORDER BY name"));
  std::printf("hotel (purpose bit 0) sees %zu customers:\n%s\n",
              hotel.result.rows.size(), hotel.result.ToString().c_str());

  auto ads = Check(system->Execute(
      "ad-network", "SELECT name FROM customers ORDER BY name"));
  std::printf("ad-network (purpose bit 1) sees %zu customers:\n%s\n",
              ads.result.rows.size(), ads.result.ToString().c_str());

  // An outsider is denied outright, and the denial is logged.
  system->RegisterClient("mallory");
  auto denied = system->Execute("mallory", "SELECT * FROM customers");
  std::printf("mallory's query: %s\n\n", denied.status().ToString().c_str());

  // The regulator pulls and verifies the tamper-evident audit trail.
  auto* log = system->monitor()->audit_log();
  Status audit = ironsafe::monitor::AuditLog::Verify(
      log->entries(), log->head_signature(), log->public_key());
  std::printf("audit trail: %zu entries, verification: %s\n",
              log->entries().size(), audit.ToString().c_str());
  for (const auto& entry : log->entries()) {
    std::printf("  [%llu] log=%-8s client=%-10s %s\n",
                static_cast<unsigned long long>(entry.seq),
                entry.log_name.c_str(), entry.client_key_id.c_str(),
                entry.query.substr(0, 60).c_str());
  }
  return audit.ok() ? 0 : 1;
}
