#ifndef IRONSAFE_MONITOR_AUDIT_LOG_H_
#define IRONSAFE_MONITOR_AUDIT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/ed25519.h"

namespace ironsafe::monitor {

/// One tamper-evident log record. `entry_hash` covers the payload and
/// the previous entry's hash, forming a hash chain.
struct AuditEntry {
  uint64_t seq = 0;
  int64_t timestamp = 0;  ///< days since epoch (simulation time)
  std::string log_name;
  std::string client_key_id;
  std::string query;
  Bytes prev_hash;
  Bytes entry_hash;
};

/// Hash-chained, signed audit log kept by the trusted monitor. The §3.3
/// threat model requires that logged events (including malicious queries)
/// cannot be suppressed without detection; regulators audit via
/// Entries() + Verify() (§3.1 step: regulator D obtains the audit trail).
class AuditLog {
 public:
  explicit AuditLog(crypto::Ed25519KeyPair signer)
      : signer_(std::move(signer)) {}

  /// Appends an entry and re-signs the chain head.
  Status Append(const std::string& log_name, const std::string& client_key_id,
                const std::string& query, int64_t timestamp);

  const std::vector<AuditEntry>& entries() const { return entries_; }
  const Bytes& head_signature() const { return head_signature_; }
  const Bytes& public_key() const { return signer_.public_key; }

  /// Verifies a chain + head signature (the regulator-side check).
  /// Detects edits, deletions, reordering, and truncation.
  static Status Verify(const std::vector<AuditEntry>& entries,
                       const Bytes& head_signature, const Bytes& public_key);

  /// Test-only adversary surface.
  std::vector<AuditEntry>* mutable_entries() { return &entries_; }

  static Bytes HashEntry(const AuditEntry& entry);

 private:
  crypto::Ed25519KeyPair signer_;
  std::vector<AuditEntry> entries_;
  Bytes head_signature_;
};

}  // namespace ironsafe::monitor

#endif  // IRONSAFE_MONITOR_AUDIT_LOG_H_
