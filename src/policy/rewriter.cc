#include "policy/rewriter.h"

namespace ironsafe::policy {

using sql::BinOp;
using sql::Expr;
using sql::ExprPtr;
using sql::Value;

namespace {
ExprPtr AndWith(ExprPtr existing, const Expr& filter) {
  if (!existing) return filter.Clone();
  return Expr::MakeBinary(BinOp::kAnd, std::move(existing), filter.Clone());
}
}  // namespace

Status InjectRowFilter(sql::SelectStmt* stmt, const Expr& filter) {
  stmt->where = AndWith(std::move(stmt->where), filter);
  return Status::OK();
}

Status InjectRowFilter(sql::DeleteStmt* stmt, const Expr& filter) {
  stmt->where = AndWith(std::move(stmt->where), filter);
  return Status::OK();
}

Status InjectRowFilter(sql::UpdateStmt* stmt, const Expr& filter) {
  stmt->where = AndWith(std::move(stmt->where), filter);
  return Status::OK();
}

void AddPolicyColumns(sql::CreateTableStmt* stmt, bool with_expiry,
                      bool with_reuse) {
  if (with_expiry) {
    stmt->columns.push_back(sql::Column{kExpiryColumn, sql::Type::kDate});
  }
  if (with_reuse) {
    stmt->columns.push_back(sql::Column{kReuseColumn, sql::Type::kInt64});
  }
}

Status ExtendInsert(sql::InsertStmt* stmt, bool with_expiry,
                    std::optional<int64_t> expiry_days, bool with_reuse,
                    std::optional<int64_t> reuse_map) {
  if (with_expiry && !expiry_days.has_value()) {
    return Status::InvalidArgument(
        "table requires an expiry timestamp for inserted records");
  }
  if (with_reuse && !reuse_map.has_value()) {
    return Status::InvalidArgument(
        "table requires a reuse map for inserted records");
  }
  // When the INSERT names explicit columns, extend the column list too.
  if (!stmt->columns.empty()) {
    if (with_expiry) stmt->columns.push_back(kExpiryColumn);
    if (with_reuse) stmt->columns.push_back(kReuseColumn);
  }
  for (auto& row : stmt->values) {
    if (with_expiry) {
      row.push_back(Expr::MakeLiteral(Value::Date(*expiry_days)));
    }
    if (with_reuse) {
      row.push_back(Expr::MakeLiteral(Value::Int(*reuse_map)));
    }
  }
  return Status::OK();
}

}  // namespace ironsafe::policy
