file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_crypto.dir/aead.cc.o"
  "CMakeFiles/ironsafe_crypto.dir/aead.cc.o.d"
  "CMakeFiles/ironsafe_crypto.dir/aes.cc.o"
  "CMakeFiles/ironsafe_crypto.dir/aes.cc.o.d"
  "CMakeFiles/ironsafe_crypto.dir/chacha20.cc.o"
  "CMakeFiles/ironsafe_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/ironsafe_crypto.dir/ed25519.cc.o"
  "CMakeFiles/ironsafe_crypto.dir/ed25519.cc.o.d"
  "CMakeFiles/ironsafe_crypto.dir/hmac.cc.o"
  "CMakeFiles/ironsafe_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/ironsafe_crypto.dir/sha256.cc.o"
  "CMakeFiles/ironsafe_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/ironsafe_crypto.dir/sha512.cc.o"
  "CMakeFiles/ironsafe_crypto.dir/sha512.cc.o.d"
  "libironsafe_crypto.a"
  "libironsafe_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
