#include <gtest/gtest.h>

#include "sql/schema.h"
#include "sql/value.h"

namespace ironsafe::sql {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, BasicConstructorsAndAccessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Date(100).type(), Type::kDate);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(7.1).Compare(Value::Int(7)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-1000)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("apple").Compare(Value::String("banana")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, SerializationRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),          Value::Bool(true),      Value::Int(-7),
      Value::Double(2.25),    Value::String("hello"), Value::Date(9000),
      Value::String(""),      Value::Int(INT64_MIN),
  };
  Bytes buf;
  for (const Value& v : values) v.Serialize(&buf);
  ByteReader reader(buf);
  for (const Value& v : values) {
    auto back = Value::Deserialize(&reader);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->type(), v.type());
    EXPECT_EQ(back->Compare(v), 0);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(DateTest, ParseFormatRoundTrip) {
  for (const char* iso : {"1970-01-01", "1992-02-29", "1998-12-01",
                          "2000-01-01", "2026-07-08"}) {
    auto days = ParseDate(iso);
    ASSERT_TRUE(days.ok()) << iso;
    EXPECT_EQ(FormatDate(*days), iso);
  }
}

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(*ParseDate("1970-01-01"), 0);
  EXPECT_EQ(*ParseDate("1970-01-02"), 1);
  EXPECT_EQ(*ParseDate("1969-12-31"), -1);
}

TEST(DateTest, KnownOffsets) {
  EXPECT_EQ(*ParseDate("1998-12-01") - *ParseDate("1998-11-01"), 30);
  EXPECT_EQ(*ParseDate("2000-03-01") - *ParseDate("2000-02-01"), 29);  // leap
  // 1900 is not a leap year (divisible by 100, not by 400).
  EXPECT_EQ(*ParseDate("1900-03-01") - *ParseDate("1900-02-28"), 1);
  EXPECT_EQ(*ParseDate("2000-03-01") - *ParseDate("2000-02-28"), 2);
}

TEST(DateTest, RejectsBadInput) {
  EXPECT_FALSE(ParseDate("1998/12/01").ok());
  EXPECT_FALSE(ParseDate("98-12-01").ok());
  EXPECT_FALSE(ParseDate("1998-13-01").ok());
  EXPECT_FALSE(ParseDate("1998-00-10").ok());
  EXPECT_FALSE(ParseDate("abcd-ef-gh").ok());
}

TEST(DateTest, ExtractFields) {
  int64_t d = *ParseDate("1995-03-15");
  EXPECT_EQ(DateYear(d), 1995);
  EXPECT_EQ(DateMonth(d), 3);
  EXPECT_EQ(DateDay(d), 15);
}

TEST(DateTest, AddMonths) {
  int64_t d = *ParseDate("1995-01-31");
  EXPECT_EQ(FormatDate(AddMonths(d, 1)), "1995-02-28");  // clamped
  EXPECT_EQ(FormatDate(AddMonths(d, 12)), "1996-01-31");
  EXPECT_EQ(FormatDate(AddMonths(*ParseDate("1995-06-15"), -3)),
            "1995-03-15");
}

TEST(SchemaTest, FindExactAndSuffix) {
  Schema s({{"l.l_orderkey", Type::kInt64}, {"l.l_price", Type::kDouble}});
  EXPECT_EQ(s.Find("l.l_orderkey"), 0);
  EXPECT_EQ(s.Find("l_price"), 1);
  EXPECT_EQ(s.Find("nope"), -1);
}

TEST(SchemaTest, AmbiguousBareName) {
  Schema s({{"a.id", Type::kInt64}, {"b.id", Type::kInt64}});
  EXPECT_EQ(s.Find("id"), -2);
  EXPECT_EQ(s.Find("a.id"), 0);
}

TEST(SchemaTest, ConcatAndQualify) {
  Schema a({{"x", Type::kInt64}});
  Schema b({{"y", Type::kString}});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.size(), 2u);
  Schema q = c.Qualified("t");
  EXPECT_EQ(q.column(0).name, "t.x");
  EXPECT_EQ(q.column(1).name, "t.y");
  // Re-qualification strips the old prefix.
  Schema q2 = q.Qualified("u");
  EXPECT_EQ(q2.column(0).name, "u.x");
}

TEST(SchemaTest, RowSerializationRoundTrip) {
  Row row = {Value::Int(1), Value::String("ship"), Value::Date(500)};
  Bytes buf;
  SerializeRow(row, &buf);
  ByteReader reader(buf);
  auto back = DeserializeRow(&reader);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[1].AsString(), "ship");
}

}  // namespace
}  // namespace ironsafe::sql
