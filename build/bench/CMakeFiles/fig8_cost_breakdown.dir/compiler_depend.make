# Empty compiler generated dependencies file for fig8_cost_breakdown.
# This may be replaced when dependencies are built.
