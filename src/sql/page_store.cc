#include "sql/page_store.h"

namespace ironsafe::sql {

Result<Bytes> PlainPageStore::ReadPage(uint64_t id, sim::CostModel* cost) {
  return device_->ReadFrame(id, cost);
}

Status PlainPageStore::WritePage(uint64_t id, const Bytes& page,
                                 sim::CostModel* cost) {
  (void)cost;
  if (page.size() != kPageSize) {
    return Status::InvalidArgument("page must be 4096 bytes");
  }
  if (id >= next_page_) next_page_ = id + 1;
  device_->WriteFrame(id, page);
  return Status::OK();
}

Result<Bytes> SecurePageStore::ReadPage(uint64_t id, sim::CostModel* cost) {
  return store_->ReadPage(id, cost);
}

Status SecurePageStore::WritePage(uint64_t id, const Bytes& page,
                                  sim::CostModel* cost) {
  if (id >= next_page_) next_page_ = id + 1;
  return store_->WritePage(id, page, cost);
}

uint64_t SecurePageStore::Allocate() {
  if (next_page_ < store_->num_pages()) next_page_ = store_->num_pages();
  return next_page_++;
}

Result<Bytes> MemoryPageStore::ReadPage(uint64_t id, sim::CostModel* cost) {
  (void)cost;  // in-memory: no device charge
  if (id >= pages_.size()) return Status::NotFound("no such page");
  return pages_[id];
}

Status MemoryPageStore::WritePage(uint64_t id, const Bytes& page,
                                  sim::CostModel* cost) {
  (void)cost;
  if (page.size() != kPageSize) {
    return Status::InvalidArgument("page must be 4096 bytes");
  }
  if (id >= pages_.size()) pages_.resize(id + 1);
  pages_[id] = page;
  return Status::OK();
}

}  // namespace ironsafe::sql
