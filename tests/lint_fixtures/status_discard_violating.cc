// Fixture: discarded Status/Result at statement position in a
// fault-injectable module. Each marked line must fire unchecked-status.

struct FakeChannel {
  int Send(int x);
  int Receive(int x);
};

struct FakeClient {
  int Provision();
  int Write(int slot, int data);
};

void Broken(FakeChannel* ch, FakeClient client) {
  ch->Send(1);           // fires: Result discarded
  ch->Receive(2);        // fires
  client.Provision();    // fires
  client.Write(0, 3);    // fires
}
