#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ironsafe::common {

namespace {
thread_local int tls_slot = -1;
std::atomic<int> g_max_workers{0};
}  // namespace

struct ThreadPool::Batch {
  std::vector<std::function<void()>>* tasks = nullptr;
  std::atomic<size_t> next{0};  // next unclaimed task index
  size_t done = 0;              // completed tasks, guarded by pool mu_
  int active = 0;               // pool threads inside Drain, guarded by mu_
};

ThreadPool::ThreadPool(int threads) {
  threads_.reserve(std::max(0, threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  // Keep at least one background thread even on a single-core machine so
  // the cross-thread hand-off path always executes (and sanitizer runs
  // exercise it); extra workers beyond the core count just time-slice.
  static ThreadPool pool(
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  return pool;
}

void ThreadPool::set_max_workers(int n) { g_max_workers.store(std::max(0, n)); }

int ThreadPool::max_workers() { return g_max_workers.load(); }

int ThreadPool::current_slot() { return tls_slot; }

int ThreadPool::EffectiveWorkers(int requested) {
  int machine = Shared().size() + 1;  // pool threads + the caller
  int cap = g_max_workers.load();
  if (cap <= 0 || cap > machine) cap = machine;
  return std::max(1, std::min(requested, cap));
}

size_t ThreadPool::Drain(Batch* batch) {
  size_t n = batch->tasks->size();
  size_t completed = 0;
  int outer_slot = tls_slot;
  while (true) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    tls_slot = static_cast<int>(i);
    (*batch->tasks)[i]();
    ++completed;
  }
  tls_slot = outer_slot;
  return completed;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_generation = 0;
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    Batch* batch = batch_;
    if (batch == nullptr) continue;  // woke after the batch drained
    ++batch->active;  // keeps the batch alive until we step out of it
    lock.unlock();
    size_t completed = Drain(batch);
    lock.lock();
    --batch->active;
    batch->done += completed;
    if (batch->done == batch->tasks->size() && batch->active == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunTasks(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1 || tls_slot != -1) {
    // Single task, or called from inside a task: run inline. The nested
    // case keeps slot bookkeeping consistent without risking a
    // self-deadlock on batch_mu_.
    int outer_slot = tls_slot;
    for (size_t i = 0; i < tasks.size(); ++i) {
      tls_slot = static_cast<int>(i);
      tasks[i]();
    }
    tls_slot = outer_slot;
    return;
  }

  std::lock_guard<std::mutex> serial(batch_mu_);
  Batch batch;
  batch.tasks = &tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();

  size_t completed = Drain(&batch);

  std::unique_lock<std::mutex> lock(mu_);
  batch.done += completed;
  done_cv_.wait(lock, [&] {
    return batch.done == tasks.size() && batch.active == 0;
  });
  batch_ = nullptr;
}

}  // namespace ironsafe::common
