// Ed25519 / X25519 implementation following the TweetNaCl construction:
// field elements of GF(2^255 - 19) in radix-2^16 limbs (int64[16]), the
// Montgomery ladder for X25519, and extended Edwards coordinates for
// Ed25519. Validated against RFC 8032 / RFC 7748 test vectors in
// tests/crypto_test.cc.

#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/sha512.h"

namespace ironsafe::crypto {

namespace {

using i64 = int64_t;
using Gf = i64[16];

const Gf kGf0 = {0};
const Gf kGf1 = {1};
const Gf k121665 = {0xDB41, 1};
const Gf kD = {0x78a3, 0x1359, 0x4dca, 0x75eb, 0xd8ab, 0x4141, 0x0a4d, 0x0070,
               0xe898, 0x7779, 0x4079, 0x8cc7, 0xfe73, 0x2b6f, 0x6cee, 0x5203};
const Gf kD2 = {0xf159, 0x26b2, 0x9b94, 0xebd6, 0xb156, 0x8283, 0x149a, 0x00e0,
                0xd130, 0xeef3, 0x80f2, 0x198e, 0xfce7, 0x56df, 0xd9dc, 0x2406};
const Gf kX = {0xd51a, 0x8f25, 0x2d60, 0xc956, 0xa7b2, 0x9525, 0xc760, 0x692c,
               0xdc5c, 0xfdd6, 0xe231, 0xc0a4, 0x53fe, 0xcd6e, 0x36d3, 0x2169};
const Gf kY = {0x6658, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666,
               0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666};
const Gf kI = {0xa0b0, 0x4a0e, 0x1b27, 0xc4ee, 0xe478, 0xad2f, 0x1806, 0x2f43,
               0xd7a7, 0x3dfb, 0x0099, 0x2b4d, 0xdf0b, 0x4fc1, 0x2480, 0x2b83};

void Set25519(Gf r, const Gf a) {
  for (int i = 0; i < 16; ++i) r[i] = a[i];
}

void Car25519(Gf o) {
  for (int i = 0; i < 16; ++i) {
    o[i] += (1LL << 16);
    i64 c = o[i] >> 16;
    o[(i + 1) * (i < 15)] += c - 1 + 37 * (c - 1) * (i == 15);
    o[i] -= c << 16;
  }
}

void Sel25519(Gf p, Gf q, int b) {
  i64 c = ~static_cast<i64>(b - 1);
  for (int i = 0; i < 16; ++i) {
    i64 t = c & (p[i] ^ q[i]);
    p[i] ^= t;
    q[i] ^= t;
  }
}

void Pack25519(uint8_t* o, const Gf n) {
  Gf m, t;
  Set25519(t, n);
  Car25519(t);
  Car25519(t);
  Car25519(t);
  for (int j = 0; j < 2; ++j) {
    m[0] = t[0] - 0xffed;
    for (int i = 1; i < 15; ++i) {
      m[i] = t[i] - 0xffff - ((m[i - 1] >> 16) & 1);
      m[i - 1] &= 0xffff;
    }
    m[15] = t[15] - 0x7fff - ((m[14] >> 16) & 1);
    int b = static_cast<int>((m[15] >> 16) & 1);
    m[14] &= 0xffff;
    Sel25519(t, m, 1 - b);
  }
  for (int i = 0; i < 16; ++i) {
    o[2 * i] = static_cast<uint8_t>(t[i] & 0xff);
    o[2 * i + 1] = static_cast<uint8_t>(t[i] >> 8);
  }
}

int Verify32(const uint8_t* x, const uint8_t* y) {
  uint32_t d = 0;
  for (int i = 0; i < 32; ++i) d |= x[i] ^ y[i];
  return (1 & ((d - 1) >> 8)) - 1;  // 0 if equal, -1 otherwise
}

int Neq25519(const Gf a, const Gf b) {
  uint8_t c[32], d[32];
  Pack25519(c, a);
  Pack25519(d, b);
  return Verify32(c, d);
}

uint8_t Par25519(const Gf a) {
  uint8_t d[32];
  Pack25519(d, a);
  return d[0] & 1;
}

void Unpack25519(Gf o, const uint8_t* n) {
  for (int i = 0; i < 16; ++i) {
    o[i] = n[2 * i] + (static_cast<i64>(n[2 * i + 1]) << 8);
  }
  o[15] &= 0x7fff;
}

void Add(Gf o, const Gf a, const Gf b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] + b[i];
}

void Sub(Gf o, const Gf a, const Gf b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] - b[i];
}

void Mul(Gf o, const Gf a, const Gf b) {
  i64 t[31];
  for (int i = 0; i < 31; ++i) t[i] = 0;
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) t[i + j] += a[i] * b[j];
  }
  for (int i = 0; i < 15; ++i) t[i] += 38 * t[i + 16];
  for (int i = 0; i < 16; ++i) o[i] = t[i];
  Car25519(o);
  Car25519(o);
}

void Sqr(Gf o, const Gf a) { Mul(o, a, a); }

void Inv25519(Gf o, const Gf in) {
  Gf c;
  Set25519(c, in);
  for (int a = 253; a >= 0; --a) {
    Sqr(c, c);
    if (a != 2 && a != 4) Mul(c, c, in);
  }
  Set25519(o, c);
}

void Pow2523(Gf o, const Gf in) {
  Gf c;
  Set25519(c, in);
  for (int a = 250; a >= 0; --a) {
    Sqr(c, c);
    if (a != 1) Mul(c, c, in);
  }
  Set25519(o, c);
}

// ---- Edwards curve point ops (extended coordinates p = [X,Y,Z,T]) ----

void PointAdd(Gf p[4], Gf q[4]) {
  Gf a, b, c, d, t, e, f, g, h;
  Sub(a, p[1], p[0]);
  Sub(t, q[1], q[0]);
  Mul(a, a, t);
  Add(b, p[0], p[1]);
  Add(t, q[0], q[1]);
  Mul(b, b, t);
  Mul(c, p[3], q[3]);
  Mul(c, c, kD2);
  Mul(d, p[2], q[2]);
  Add(d, d, d);
  Sub(e, b, a);
  Sub(f, d, c);
  Add(g, d, c);
  Add(h, b, a);
  Mul(p[0], e, f);
  Mul(p[1], h, g);
  Mul(p[2], g, f);
  Mul(p[3], e, h);
}

void CSwap(Gf p[4], Gf q[4], uint8_t b) {
  for (int i = 0; i < 4; ++i) Sel25519(p[i], q[i], b);
}

void Pack(uint8_t* r, Gf p[4]) {
  Gf tx, ty, zi;
  Inv25519(zi, p[2]);
  Mul(tx, p[0], zi);
  Mul(ty, p[1], zi);
  Pack25519(r, ty);
  r[31] ^= static_cast<uint8_t>(Par25519(tx) << 7);
}

void ScalarMult(Gf p[4], Gf q[4], const uint8_t* s) {
  Set25519(p[0], kGf0);
  Set25519(p[1], kGf1);
  Set25519(p[2], kGf1);
  Set25519(p[3], kGf0);
  for (int i = 255; i >= 0; --i) {
    uint8_t b = (s[i / 8] >> (i & 7)) & 1;
    CSwap(p, q, b);
    PointAdd(q, p);
    PointAdd(p, p);
    CSwap(p, q, b);
  }
}

void ScalarBase(Gf p[4], const uint8_t* s) {
  Gf q[4];
  Set25519(q[0], kX);
  Set25519(q[1], kY);
  Set25519(q[2], kGf1);
  Mul(q[3], kX, kY);
  ScalarMult(p, q, s);
}

// ---- Scalar arithmetic mod the group order L ----

const uint64_t kL[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                         0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                         0,    0,    0,    0,    0,    0,    0,    0,
                         0,    0,    0,    0,    0,    0,    0,    0x10};

void ModL(uint8_t* r, i64 x[64]) {
  i64 carry;
  for (int i = 63; i >= 32; --i) {
    carry = 0;
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += carry - 16 * x[i] * static_cast<i64>(kL[j - (i - 32)]);
      carry = (x[j] + 128) >> 8;
      x[j] -= carry << 8;
    }
    x[j] += carry;
    x[i] = 0;
  }
  carry = 0;
  for (int j = 0; j < 32; ++j) {
    x[j] += carry - (x[31] >> 4) * static_cast<i64>(kL[j]);
    carry = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) x[j] -= carry * static_cast<i64>(kL[j]);
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    r[i] = static_cast<uint8_t>(x[i] & 255);
  }
}

void Reduce(uint8_t* r) {
  i64 x[64];
  for (int i = 0; i < 64; ++i) x[i] = r[i];
  for (int i = 0; i < 64; ++i) r[i] = 0;
  ModL(r, x);
}

// Decompresses (and negates) a public key point for verification.
int UnpackNeg(Gf r[4], const uint8_t p[32]) {
  Gf t, chk, num, den, den2, den4, den6;
  Set25519(r[2], kGf1);
  Unpack25519(r[1], p);
  Sqr(num, r[1]);
  Mul(den, num, kD);
  Sub(num, num, r[2]);
  Add(den, r[2], den);
  Sqr(den2, den);
  Sqr(den4, den2);
  Mul(den6, den4, den2);
  Mul(t, den6, num);
  Mul(t, t, den);
  Pow2523(t, t);
  Mul(t, t, num);
  Mul(t, t, den);
  Mul(t, t, den);
  Mul(r[0], t, den);
  Sqr(chk, r[0]);
  Mul(chk, chk, den);
  if (Neq25519(chk, num)) Mul(r[0], r[0], kI);
  Sqr(chk, r[0]);
  Mul(chk, chk, den);
  if (Neq25519(chk, num)) return -1;
  if (Par25519(r[0]) == (p[31] >> 7)) Sub(r[0], kGf0, r[0]);
  Mul(r[3], r[0], r[1]);
  return 0;
}

Bytes HashConcat(const uint8_t* a, size_t alen, const Bytes& b) {
  Sha512 h;
  h.Update(a, alen);
  h.Update(b);
  return h.Final();
}

}  // namespace

Result<Ed25519KeyPair> Ed25519KeyPairFromSeed(const Bytes& seed) {
  if (seed.size() != 32) {
    return Status::InvalidArgument("Ed25519 seed must be 32 bytes");
  }
  Bytes d = Sha512::Hash(seed);
  d[0] &= 248;
  d[31] &= 127;
  d[31] |= 64;

  Gf p[4];
  ScalarBase(p, d.data());
  Bytes pk(32);
  Pack(pk.data(), p);

  Ed25519KeyPair kp;
  kp.public_key = pk;
  kp.private_key = seed;
  Append(&kp.private_key, pk);
  return kp;
}

Result<Bytes> Ed25519Sign(const Bytes& private_key, const Bytes& message) {
  if (private_key.size() != 64) {
    return Status::InvalidArgument("Ed25519 private key must be 64 bytes");
  }
  Bytes d = Sha512::Hash(Bytes(private_key.begin(), private_key.begin() + 32));
  d[0] &= 248;
  d[31] &= 127;
  d[31] |= 64;

  // r = H(prefix || message) mod L
  Bytes r = HashConcat(d.data() + 32, 32, message);
  Reduce(r.data());

  Gf p[4];
  ScalarBase(p, r.data());
  Bytes sig(64);
  Pack(sig.data(), p);

  // h = H(R || A || message) mod L
  Sha512 hh;
  hh.Update(sig.data(), 32);
  hh.Update(private_key.data() + 32, 32);
  hh.Update(message);
  Bytes h = hh.Final();
  Reduce(h.data());

  // S = r + h * a mod L
  i64 x[64];
  for (int i = 0; i < 64; ++i) x[i] = 0;
  for (int i = 0; i < 32; ++i) x[i] = r[i];
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      x[i + j] += static_cast<i64>(h[i]) * static_cast<i64>(d[j]);
    }
  }
  ModL(sig.data() + 32, x);
  return sig;
}

bool Ed25519Verify(const Bytes& public_key, const Bytes& message,
                   const Bytes& signature) {
  if (public_key.size() != 32 || signature.size() != 64) return false;

  Gf q[4];
  if (UnpackNeg(q, public_key.data()) != 0) return false;

  Sha512 hh;
  hh.Update(signature.data(), 32);
  hh.Update(public_key);
  hh.Update(message);
  Bytes h = hh.Final();
  Reduce(h.data());

  Gf p[4];
  ScalarMult(p, q, h.data());

  Gf b[4];
  ScalarBase(b, signature.data() + 32);
  PointAdd(p, b);

  uint8_t t[32];
  Pack(t, p);
  return Verify32(signature.data(), t) == 0;
}

Result<Bytes> X25519(const Bytes& scalar, const Bytes& point) {
  if (scalar.size() != 32 || point.size() != 32) {
    return Status::InvalidArgument("X25519 inputs must be 32 bytes");
  }
  uint8_t z[32];
  std::memcpy(z, scalar.data(), 32);
  z[31] = (scalar[31] & 127) | 64;
  z[0] &= 248;

  i64 x[80];
  Gf a, b, c, d, e, f;
  Unpack25519(x, point.data());
  for (int i = 0; i < 16; ++i) {
    b[i] = x[i];
    d[i] = a[i] = c[i] = 0;
  }
  a[0] = d[0] = 1;
  for (int i = 254; i >= 0; --i) {
    int r = (z[i >> 3] >> (i & 7)) & 1;
    Sel25519(a, b, r);
    Sel25519(c, d, r);
    Add(e, a, c);
    Sub(a, a, c);
    Add(c, b, d);
    Sub(b, b, d);
    Sqr(d, e);
    Sqr(f, a);
    Mul(a, c, a);
    Mul(c, b, e);
    Add(e, a, c);
    Sub(a, a, c);
    Sqr(b, a);
    Sub(c, d, f);
    Mul(a, c, k121665);
    Add(a, a, d);
    Mul(c, c, a);
    Mul(a, d, f);
    Mul(d, b, x);
    Sqr(b, e);
    Sel25519(a, b, r);
    Sel25519(c, d, r);
  }
  for (int i = 0; i < 16; ++i) {
    x[i + 16] = a[i];
    x[i + 32] = c[i];
    x[i + 48] = b[i];
    x[i + 64] = d[i];
  }
  Inv25519(x + 32, x + 32);
  Mul(x + 16, x + 16, x + 32);
  Bytes out(32);
  Pack25519(out.data(), x + 16);
  return out;
}

Result<Bytes> X25519Base(const Bytes& scalar) {
  Bytes base(32, 0);
  base[0] = 9;
  return X25519(scalar, base);
}

}  // namespace ironsafe::crypto
