#ifndef IRONSAFE_TESTS_LINT_FIXTURES_HYGIENE_CLEAN_H_
#define IRONSAFE_TESTS_LINT_FIXTURES_HYGIENE_CLEAN_H_

// Linted as src/sql/hygiene_clean.h: guarded, fully qualified names.
#include <string>

namespace ironsafe::sql {
inline std::string Greet() { return "hi"; }
}  // namespace ironsafe::sql

#endif  // IRONSAFE_TESTS_LINT_FIXTURES_HYGIENE_CLEAN_H_
