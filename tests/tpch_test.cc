#include <gtest/gtest.h>

#include <set>

#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace ironsafe::tpch {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = sql::Database::CreateInMemory().release();
    TpchGenerator gen(TpchConfig{0.001, 42});
    auto st = gen.LoadInto(db_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  static sql::Database* db_;
};

sql::Database* TpchTest::db_ = nullptr;

TEST_F(TpchTest, AllTablesCreatedWithExpectedCardinalities) {
  TpchGenerator gen(TpchConfig{0.001, 42});
  for (const char* t :
       {"region", "nation", "supplier", "customer", "part", "partsupp",
        "orders", "lineitem"}) {
    auto table = db_->GetTable(t);
    ASSERT_TRUE(table.ok()) << t;
    EXPECT_GT((*table)->row_count(), 0u) << t;
  }
  EXPECT_EQ((*db_->GetTable("region"))->row_count(), 5u);
  EXPECT_EQ((*db_->GetTable("nation"))->row_count(), 25u);
  EXPECT_EQ((*db_->GetTable("partsupp"))->row_count(),
            4 * (*db_->GetTable("part"))->row_count());
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  auto db2 = sql::Database::CreateInMemory();
  TpchGenerator gen(TpchConfig{0.001, 42});
  ASSERT_TRUE(gen.LoadInto(db2.get()).ok());
  auto r1 = db_->Execute("SELECT sum(o_totalprice) FROM orders");
  auto r2 = db2->Execute("SELECT sum(o_totalprice) FROM orders");
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->rows[0][0].AsDouble(), r2->rows[0][0].AsDouble());
}

TEST_F(TpchTest, ForeignKeysResolve) {
  // Every lineitem points at an existing order and part.
  auto r = db_->Execute(
      "SELECT count(*) FROM lineitem WHERE l_orderkey NOT IN "
      "(SELECT o_orderkey FROM orders)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);

  auto r2 = db_->Execute(
      "SELECT count(*) FROM partsupp WHERE ps_suppkey NOT IN "
      "(SELECT s_suppkey FROM supplier)");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0].AsInt(), 0);
}

TEST_F(TpchTest, DatesInTpchRange) {
  auto r = db_->Execute(
      "SELECT min(o_orderdate), max(o_orderdate) FROM orders");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->rows[0][0].AsInt(), *sql::ParseDate("1992-01-01"));
  EXPECT_LE(r->rows[0][1].AsInt(), *sql::ParseDate("1998-08-02"));
}

TEST_F(TpchTest, QuerySetHasSixteenQueries) {
  EXPECT_EQ(Queries().size(), 16u);
  EXPECT_TRUE(GetQuery(6).ok());
  EXPECT_TRUE(GetQuery(1).status().IsNotFound());   // not evaluated
  EXPECT_TRUE(GetQuery(22).status().IsNotFound());
}

TEST_F(TpchTest, ExtendedSetCoversTheOtherSix) {
  EXPECT_EQ(ExtendedQueries().size(), 6u);
  std::set<int> numbers;
  for (const auto& q : Queries()) numbers.insert(q.number);
  for (const auto& q : ExtendedQueries()) numbers.insert(q.number);
  // Together: all 22 TPC-H queries.
  EXPECT_EQ(numbers.size(), 22u);
  EXPECT_EQ(*numbers.begin(), 1);
  EXPECT_EQ(*numbers.rbegin(), 22);
}

// The six queries the paper does not evaluate still execute correctly.
class TpchExtendedRuns : public TpchTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(TpchExtendedRuns, ExecutesSuccessfully) {
  const TpchQuery* query = nullptr;
  for (const auto& q : ExtendedQueries()) {
    if (q.number == GetParam()) query = &q;
  }
  ASSERT_NE(query, nullptr);
  auto r = db_->Execute(query->sql);
  ASSERT_TRUE(r.ok()) << "Q" << GetParam() << ": " << r.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Extended, TpchExtendedRuns,
                         ::testing::Values(1, 11, 15, 17, 20, 22),
                         [](const auto& param_info) {
                           return "Q" + std::to_string(param_info.param);
                         });

TEST_F(TpchTest, Q1AggregatesAreInternallyConsistent) {
  const TpchQuery* q1 = &ExtendedQueries()[0];
  auto r = db_->Execute(q1->sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->rows.empty());
  for (const auto& row : r->rows) {
    double sum_qty = row[2].AsDouble();
    double avg_qty = row[6].AsDouble();
    int64_t count = row[9].AsInt();
    EXPECT_NEAR(avg_qty * static_cast<double>(count), sum_qty, 1e-6);
    // Discounted price never exceeds base price.
    EXPECT_LE(row[4].AsDouble(), row[3].AsDouble() + 1e-9);
  }
}

// Every evaluated query must parse and execute on generated data.
class TpchQueryRuns : public TpchTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TpchQueryRuns, ExecutesSuccessfully) {
  auto q = GetQuery(GetParam());
  ASSERT_TRUE(q.ok());
  sim::CostModel cm;
  auto r = db_->Execute((*q)->sql, &cm);
  ASSERT_TRUE(r.ok()) << "Q" << GetParam() << ": " << r.status().ToString();
  // The simulation must have charged some work.
  EXPECT_GT(cm.elapsed_ns(), 0u) << "Q" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryRuns,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13,
                                           14, 16, 18, 19, 21),
                         [](const auto& param_info) {
                           return "Q" + std::to_string(param_info.param);
                         });

// Spot-check selected query semantics.
TEST_F(TpchTest, Q6MatchesManualComputation) {
  auto q6 = db_->Execute((*GetQuery(6))->sql);
  ASSERT_TRUE(q6.ok());
  auto manual = db_->Execute(
      "SELECT l_extendedprice, l_discount FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < "
      "DATE '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND "
      "l_quantity < 24");
  ASSERT_TRUE(manual.ok());
  double expected = 0;
  for (const auto& row : manual->rows) {
    expected += row[0].AsDouble() * row[1].AsDouble();
  }
  ASSERT_EQ(q6->rows.size(), 1u);
  if (manual->rows.empty()) {
    EXPECT_TRUE(q6->rows[0][0].is_null());
  } else {
    EXPECT_NEAR(q6->rows[0][0].AsDouble(), expected, 1e-6);
  }
}

TEST_F(TpchTest, Q3ReturnsBuildingSegmentOrders) {
  auto r = db_->Execute((*GetQuery(3))->sql);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->rows.size(), 10u);
  // Revenue column must be sorted descending.
  for (size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_GE(r->rows[i - 1][1].AsDouble(), r->rows[i][1].AsDouble());
  }
}

TEST_F(TpchTest, Q12CountsConsistent) {
  auto r = db_->Execute((*GetQuery(12))->sql);
  ASSERT_TRUE(r.ok());
  // high + low counts must equal the unconditional count per ship mode.
  for (const auto& row : r->rows) {
    auto check = db_->Execute(
        "SELECT count(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey "
        "AND l_shipmode = '" + row[0].AsString() + "' AND l_commitdate < "
        "l_receiptdate AND l_shipdate < l_commitdate AND l_receiptdate >= "
        "DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'");
    ASSERT_TRUE(check.ok());
    EXPECT_EQ(row[1].AsInt() + row[2].AsInt(), check->rows[0][0].AsInt());
  }
}

}  // namespace
}  // namespace ironsafe::tpch
