#ifndef IRONSAFE_SQL_AST_H_
#define IRONSAFE_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sql/schema.h"
#include "sql/value.h"

namespace ironsafe::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;
struct SelectStmt;

enum class ExprKind {
  kLiteral,
  kColumn,
  kStar,            ///< SELECT * or COUNT(*)
  kUnary,
  kBinary,
  kFunction,        ///< scalar functions: year(x), substr(x,a,b), ...
  kAggregate,
  kCase,
  kInList,          ///< expr [NOT] IN (v1, v2, ...)
  kInSubquery,      ///< expr [NOT] IN (SELECT ...)
  kExists,          ///< [NOT] EXISTS (SELECT ...)
  kScalarSubquery,  ///< (SELECT single value)
  kBetween,         ///< expr BETWEEN lo AND hi
  kLike,            ///< expr [NOT] LIKE 'pattern'
  kIsNull,          ///< expr IS [NOT] NULL
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kConcat,
};

enum class UnOp { kNeg, kNot };

enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

std::string_view BinOpName(BinOp op);
std::string_view AggFuncName(AggFunc f);

/// One SQL expression node. A single tagged struct (rather than a class
/// hierarchy) keeps cloning and printing — which the policy rewriter
/// relies on — simple and total.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                 // kLiteral
  std::string column_name;       // kColumn (possibly "alias.name")
  UnOp un_op = UnOp::kNeg;       // kUnary (operand in left)
  BinOp bin_op = BinOp::kAdd;    // kBinary
  ExprPtr left;
  ExprPtr right;
  std::string func_name;         // kFunction (lowercased)
  std::vector<ExprPtr> args;     // kFunction / kInList / kBetween(lo,hi)
  AggFunc agg_func = AggFunc::kCount;  // kAggregate (arg in args[0])
  bool distinct = false;         // kAggregate: COUNT(DISTINCT x)
  bool negated = false;          // kInList/kInSubquery/kExists/kLike/kIsNull
  std::vector<std::pair<ExprPtr, ExprPtr>> when_clauses;  // kCase
  ExprPtr else_expr;             // kCase
  std::unique_ptr<SelectStmt> subquery;  // k*Subquery / kExists

  ExprPtr Clone() const;
  std::string ToString() const;

  // ---- Builders ----
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumn(std::string name);
  static ExprPtr MakeBinary(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeUnary(UnOp op, ExprPtr operand);
  static ExprPtr MakeAggregate(AggFunc f, ExprPtr arg, bool distinct = false);
  static ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);
};

/// A table in FROM: a base table, or a derived table (subquery) that must
/// carry an alias.
struct TableRef {
  std::string table_name;
  std::string alias;  ///< defaults to table_name; required for subqueries
  std::unique_ptr<SelectStmt> subquery;

  TableRef() = default;
  TableRef(std::string name, std::string a)
      : table_name(std::move(name)), alias(std::move(a)) {}
  TableRef(TableRef&&) = default;
  TableRef& operator=(TableRef&&) = default;

  TableRef Clone() const;
};

/// An explicit `JOIN <table> ON <cond>` following the first FROM entry.
struct JoinClause {
  TableRef table;
  ExprPtr on;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< output column name; derived from expr if empty
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

/// A SELECT statement (also used for subqueries).
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;     ///< comma-separated relations
  std::vector<JoinClause> joins;  ///< explicit joins appended to `from`
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;

  std::unique_ptr<SelectStmt> Clone() const;
  std::string ToString() const;
};

struct CreateTableStmt {
  std::string table_name;
  std::vector<Column> columns;
};

struct InsertStmt {
  std::string table_name;
  std::vector<std::string> columns;          ///< empty = all, in order
  std::vector<std::vector<ExprPtr>> values;  ///< rows of literal exprs
};

struct DeleteStmt {
  std::string table_name;
  ExprPtr where;  ///< null = delete all
};

struct UpdateStmt {
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

/// Any parsed statement.
struct Statement {
  enum class Kind { kSelect, kCreateTable, kInsert, kDelete, kUpdate };
  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<UpdateStmt> update;
};

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_AST_H_
