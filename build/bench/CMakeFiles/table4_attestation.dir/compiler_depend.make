# Empty compiler generated dependencies file for table4_attestation.
# This may be replaced when dependencies are built.
