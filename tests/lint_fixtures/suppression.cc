// Linted as src/sim/suppression.cc: every violation here carries an
// allow() for its rule — the file must lint clean — except the last,
// whose allow() names a different rule and must still fire.
#include <chrono>
#include <cstdlib>

namespace ironsafe::sim {
long Shim() {
  // ironsafe-lint: allow(determinism) — fixture: comment-above form
  auto t = std::chrono::system_clock::now();
  long r = rand();  // ironsafe-lint: allow(determinism) — same-line form
  (void)t;
  // ironsafe-lint: allow(hygiene) — wrong rule: the next line must fire
  srand(7);
  return r;
}
}  // namespace ironsafe::sim
