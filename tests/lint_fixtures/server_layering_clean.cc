// Clean fixture: the serving layer sits at the top of the DAG, so it may
// include its own headers plus anything reachable through its declared
// deps (common, obs, net, engine — and transitively monitor, sql, ...).
#include "server/query_service.h"
#include "server/scheduler.h"
#include "engine/ironsafe.h"
#include "monitor/monitor.h"
#include "net/secure_channel.h"
#include "obs/trace.h"
#include "sim/fault.h"

void ServerLayeringCleanFixture() {}
