#ifndef IRONSAFE_SQL_VALUE_H_
#define IRONSAFE_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"

namespace ironsafe::sql {

/// SQL column types. Dates are stored as int64 days since 1970-01-01 but
/// keep a distinct type for formatting and date arithmetic.
enum class Type { kNull, kBool, kInt64, kDouble, kString, kDate };

std::string_view TypeName(Type t);

/// A dynamically typed SQL value. NULL is represented by Type::kNull.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Type::kBool, b ? 1 : 0); }
  static Value Int(int64_t v) { return Value(Type::kInt64, v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string s) { return Value(std::move(s)); }
  static Value Date(int64_t days) { return Value(Type::kDate, days); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool AsBool() const { return int_ != 0; }
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == Type::kDouble ? double_ : static_cast<double>(int_);
  }
  const std::string& AsString() const { return str_; }

  /// True if the type is kInt64, kDouble or kDate (usable in arithmetic).
  bool IsNumeric() const {
    return type_ == Type::kInt64 || type_ == Type::kDouble ||
           type_ == Type::kDate;
  }

  /// SQL literal rendering: NULL, 42, 3.14, 'text', DATE '1995-03-15'.
  std::string ToString() const;

  /// Three-way comparison for ORDER BY and joins: NULL sorts first;
  /// numeric types compare by value across int/double/date.
  /// Returns <0, 0, >0. Comparing string to numeric is a programming
  /// error and compares by type id (deterministic but meaningless).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== for numeric cross-type equality.
  size_t Hash() const;

  // ---- Serialization (for page storage and network shipping) ----
  void Serialize(Bytes* out) const;
  static Result<Value> Deserialize(ByteReader* reader);

 private:
  Value(Type t, int64_t v) : type_(t), int_(v) {}
  explicit Value(double v) : type_(Type::kDouble), double_(v) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  Type type_;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
};

/// Parses "YYYY-MM-DD" to days since epoch.
Result<int64_t> ParseDate(std::string_view iso);

/// Formats days since epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

/// Extracts the year / month / day from a days-since-epoch date.
int32_t DateYear(int64_t days);
int32_t DateMonth(int64_t days);
int32_t DateDay(int64_t days);

/// Date arithmetic helpers for INTERVAL support.
int64_t AddMonths(int64_t days, int months);

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_VALUE_H_
