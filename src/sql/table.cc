#include "sql/table.h"

#include <algorithm>

#include "sql/column_batch.h"

namespace ironsafe::sql {

Result<DecodedMorsel> Table::DecodeMorselBatch(uint64_t unit,
                                               sim::CostModel* cost) const {
  auto batch = std::make_shared<ColumnBatch>(schema().size());
  auto cursor = NewMorselCursor(unit, unit + 1, cost);
  if (cursor == nullptr) {
    return Status::InvalidArgument("table does not support morsel scans");
  }
  Row row;
  while (true) {
    ASSIGN_OR_RETURN(bool more, cursor->Next(&row));
    if (!more) break;
    batch->AppendRow(row);
  }
  return DecodedMorsel{std::move(batch), false};
}

// ------------------------------------------------------ MemoryTable ----

namespace {
class MemoryTableCursor : public TableCursor {
 public:
  MemoryTableCursor(const std::vector<Row>* rows, size_t begin, size_t end)
      : rows_(rows), pos_(begin), end_(end) {}

  Result<bool> Next(Row* row) override {
    if (pos_ >= end_) return false;
    *row = (*rows_)[pos_++];
    return true;
  }

 private:
  const std::vector<Row>* rows_;
  size_t pos_;
  size_t end_;
};
}  // namespace

Status MemoryTable::Append(const Row& row, sim::CostModel* cost) {
  (void)cost;
  if (row.size() != schema().size()) {
    return Status::InvalidArgument("row arity mismatch for " + name());
  }
  rows_.push_back(row);
  return Status::OK();
}

std::unique_ptr<TableCursor> MemoryTable::NewCursor(
    sim::CostModel* cost) const {
  (void)cost;
  return std::make_unique<MemoryTableCursor>(&rows_, 0, rows_.size());
}

uint64_t MemoryTable::morsel_units() const {
  return (rows_.size() + kRowsPerMorsel - 1) / kRowsPerMorsel;
}

std::unique_ptr<TableCursor> MemoryTable::NewMorselCursor(
    uint64_t begin, uint64_t end, sim::CostModel* cost) const {
  (void)cost;
  size_t row_begin = std::min<size_t>(begin * kRowsPerMorsel, rows_.size());
  size_t row_end = std::min<size_t>(end * kRowsPerMorsel, rows_.size());
  return std::make_unique<MemoryTableCursor>(&rows_, row_begin, row_end);
}

Result<DecodedMorsel> MemoryTable::DecodeMorselBatch(
    uint64_t unit, sim::CostModel* cost) const {
  (void)cost;
  size_t begin = std::min<size_t>(unit * kRowsPerMorsel, rows_.size());
  size_t end = std::min<size_t>((unit + 1) * kRowsPerMorsel, rows_.size());
  auto batch = std::make_shared<ColumnBatch>(schema().size());
  for (size_t i = begin; i < end; ++i) batch->AppendRow(rows_[i]);
  return DecodedMorsel{std::move(batch), false};
}

uint64_t MemoryTable::page_count() const {
  size_t bytes = 0;
  for (const Row& r : rows_) bytes += RowBytes(r);
  return (bytes + PageStore::kPageSize - 1) / PageStore::kPageSize;
}

Status MemoryTable::Rewrite(const std::function<Result<bool>(Row*, bool*)>& fn,
                            sim::CostModel* cost, uint64_t* affected) {
  (void)cost;
  std::vector<Row> kept;
  uint64_t count = 0;
  for (Row& row : rows_) {
    bool modified = false;
    ASSIGN_OR_RETURN(bool keep, fn(&row, &modified));
    if (keep) {
      kept.push_back(std::move(row));
      if (modified) ++count;
    } else {
      ++count;
    }
  }
  rows_ = std::move(kept);
  if (affected != nullptr) *affected = count;
  return Status::OK();
}

// ------------------------------------------------------- PagedTable ----

namespace {
constexpr size_t kPageHeader = 2;  // u16 row count

Bytes BuildPage(const std::vector<Bytes>& rows) {
  Bytes page;
  page.reserve(PageStore::kPageSize);
  PutU16(&page, static_cast<uint16_t>(rows.size()));
  for (const Bytes& r : rows) Append(&page, r);
  page.resize(PageStore::kPageSize, 0);
  return page;
}
}  // namespace

Status PagedTable::FlushBuffer(sim::CostModel* cost) {
  if (buffer_.empty()) return Status::OK();
  uint64_t id = store_->Allocate();
  RETURN_IF_ERROR(store_->WritePage(id, BuildPage(buffer_), cost));
  page_ids_.push_back(id);
  buffer_.clear();
  buffer_bytes_ = 0;
  return Status::OK();
}

Status PagedTable::Append(const Row& row, sim::CostModel* cost) {
  if (row.size() != schema().size()) {
    return Status::InvalidArgument("row arity mismatch for " + name());
  }
  Bytes serialized;
  SerializeRow(row, &serialized);
  if (serialized.size() + kPageHeader > PageStore::kPageSize) {
    return Status::InvalidArgument("row larger than a page");
  }
  if (kPageHeader + buffer_bytes_ + serialized.size() >
      PageStore::kPageSize) {
    RETURN_IF_ERROR(FlushBuffer(cost));
  }
  buffer_bytes_ += serialized.size();
  buffer_.push_back(std::move(serialized));
  ++row_count_;
  return Status::OK();
}

namespace {
/// Scans flushed pages [page_begin, page_end) of the page-id list; the
/// index one past the last flushed page addresses the unflushed buffer,
/// so a full-range cursor ([0, page_count)) reproduces table order.
class PagedTableCursor : public TableCursor {
 public:
  PagedTableCursor(PageStore* store, const std::vector<uint64_t>* pages,
                   const std::vector<Bytes>* buffer, size_t page_begin,
                   size_t page_end, sim::CostModel* cost)
      : store_(store),
        pages_(pages),
        buffer_(buffer),
        page_index_(page_begin),
        page_end_(page_end),
        cost_(cost) {}

  Result<bool> Next(Row* row) override {
    while (true) {
      if (rows_left_ > 0) {
        ASSIGN_OR_RETURN(Row r, DeserializeRow(&*reader_));
        *row = std::move(r);
        --rows_left_;
        return true;
      }
      if (page_index_ < std::min(page_end_, pages_->size())) {
        ASSIGN_OR_RETURN(current_page_,
                         store_->ReadPage((*pages_)[page_index_++], cost_));
        reader_.emplace(current_page_);
        ASSIGN_OR_RETURN(uint16_t n, reader_->ReadU16());
        rows_left_ = n;
        continue;
      }
      // Unflushed buffered rows (the trailing pseudo-page).
      if (page_end_ > pages_->size() && buffer_pos_ < buffer_->size()) {
        ByteReader r((*buffer_)[buffer_pos_++]);
        ASSIGN_OR_RETURN(Row rr, DeserializeRow(&r));
        *row = std::move(rr);
        return true;
      }
      return false;
    }
  }

 private:
  PageStore* store_;
  const std::vector<uint64_t>* pages_;
  const std::vector<Bytes>* buffer_;
  size_t page_index_;
  size_t page_end_;
  sim::CostModel* cost_;
  Bytes current_page_;
  std::optional<ByteReader> reader_;
  uint16_t rows_left_ = 0;
  size_t buffer_pos_ = 0;
};
}  // namespace

std::unique_ptr<TableCursor> PagedTable::NewCursor(
    sim::CostModel* cost) const {
  return std::make_unique<PagedTableCursor>(store_, &page_ids_, &buffer_, 0,
                                            page_count(), cost);
}

std::unique_ptr<TableCursor> PagedTable::NewMorselCursor(
    uint64_t begin, uint64_t end, sim::CostModel* cost) const {
  return std::make_unique<PagedTableCursor>(store_, &page_ids_, &buffer_,
                                            begin, end, cost);
}

Result<DecodedMorsel> PagedTable::DecodeMorselBatch(
    uint64_t unit, sim::CostModel* cost) const {
  if (unit < page_ids_.size()) {
    uint64_t id = page_ids_[unit];
    // The page read always happens first: decoded-batch hits must leave
    // the encoded page cache, its counters and every security charge
    // exactly as a row-engine scan of the same unit would.
    ASSIGN_OR_RETURN(Bytes page, store_->ReadPage(id, cost));
    if (auto cached = store_->CachedBatch(id); cached != nullptr) {
      return DecodedMorsel{std::move(cached), true};
    }
    ASSIGN_OR_RETURN(auto batch, ColumnBatch::FromPage(page, schema().size()));
    store_->CacheBatch(id, batch);
    return DecodedMorsel{std::move(batch), false};
  }
  // The trailing pseudo-page of unflushed rows is never cached: it has
  // no page id and mutates on every Append.
  auto batch = std::make_shared<ColumnBatch>(schema().size());
  for (const Bytes& serialized : buffer_) {
    ByteReader reader(serialized);
    RETURN_IF_ERROR(batch->AppendSerialized(&reader));
  }
  return DecodedMorsel{std::move(batch), false};
}

Status PagedTable::Rewrite(const std::function<Result<bool>(Row*, bool*)>& fn,
                           sim::CostModel* cost, uint64_t* affected) {
  // Read everything, apply, rewrite pages in place (reusing page ids).
  std::vector<Row> kept;
  uint64_t count = 0;
  {
    auto cursor = NewCursor(cost);
    Row row;
    while (true) {
      ASSIGN_OR_RETURN(bool more, cursor->Next(&row));
      if (!more) break;
      bool modified = false;
      ASSIGN_OR_RETURN(bool keep, fn(&row, &modified));
      if (keep) {
        kept.push_back(row);
        if (modified) ++count;
      } else {
        ++count;
      }
    }
  }
  // Re-pack into the existing page list (allocate more if needed).
  std::vector<uint64_t> old_pages = std::move(page_ids_);
  page_ids_.clear();
  buffer_.clear();
  buffer_bytes_ = 0;
  row_count_ = 0;
  size_t reuse_index = 0;
  store_->BeginBatch();
  for (const Row& row : kept) {
    Bytes serialized;
    SerializeRow(row, &serialized);
    if (kPageHeader + buffer_bytes_ + serialized.size() >
        PageStore::kPageSize) {
      uint64_t id = reuse_index < old_pages.size() ? old_pages[reuse_index++]
                                                   : store_->Allocate();
      RETURN_IF_ERROR(store_->WritePage(id, BuildPage(buffer_), cost));
      page_ids_.push_back(id);
      buffer_.clear();
      buffer_bytes_ = 0;
    }
    buffer_bytes_ += serialized.size();
    buffer_.push_back(std::move(serialized));
    ++row_count_;
  }
  if (!buffer_.empty()) {
    uint64_t id = reuse_index < old_pages.size() ? old_pages[reuse_index++]
                                                 : store_->Allocate();
    RETURN_IF_ERROR(store_->WritePage(id, BuildPage(buffer_), cost));
    page_ids_.push_back(id);
    buffer_.clear();
    buffer_bytes_ = 0;
  }
  RETURN_IF_ERROR(store_->EndBatch());
  if (affected != nullptr) *affected = count;
  return Status::OK();
}

}  // namespace ironsafe::sql
