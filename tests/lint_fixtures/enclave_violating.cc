// Linted as src/tee/enclave_violating.cc: secure-world code reaching
// untrusted host I/O three different ways.
#include <iostream>

#include "common/logging.h"

namespace ironsafe::tee {
void Leak(int code) {
  printf("leaking %d\n", code);
}
}  // namespace ironsafe::tee
