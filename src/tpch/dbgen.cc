#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tpch/table_spec.h"

namespace ironsafe::tpch {

using sql::Row;
using sql::Value;

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

struct NationSpec {
  const char* name;
  int region;
};
const NationSpec kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1},  {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},      {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},    {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},     {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kColors[] = {
    "almond", "antique", "aquamarine", "azure", "beige",  "bisque",
    "black",  "blanched", "blue",      "blush", "brown",  "burlywood",
    "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
    "cream",  "cyan",    "dark",      "deep",  "dim",    "dodger",
    "drab",   "firebrick", "floral",  "forest", "frosted", "gainsboro",
    "ghost",  "goldenrod", "green",   "grey",  "honeydew", "hot",
    "indian", "ivory",   "khaki",     "lace",  "lavender", "lawn"};
const char* kWords[] = {"carefully", "final",  "deposits", "quickly",
                        "furiously", "pending", "requests", "accounts",
                        "ironic",    "packages", "regular",  "theodolites",
                        "express",   "bold",    "even",     "silent",
                        "slyly",     "idle",    "blithely", "daring"};

constexpr int64_t kMinDate = 8035;   // 1992-01-01
constexpr int64_t kMaxDate = 10440;  // 1998-08-02
constexpr int64_t kCurrentDate = 9298;  // 1995-06-17 (return-flag pivot)

std::string Pad9(uint64_t n) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%09llu", static_cast<unsigned long long>(n));
  return buf;
}

template <size_t N>
const char* Pick(Random* rng, const char* const (&list)[N]) {
  return list[rng->Uniform(N)];
}

std::string Comment(Random* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i) out.push_back(' ');
    out += Pick(rng, kWords);
  }
  return out;
}

std::string Phone(Random* rng, int nationkey) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d-%03d-%03d-%04d", 10 + nationkey,
                static_cast<int>(rng->UniformRange(100, 999)),
                static_cast<int>(rng->UniformRange(100, 999)),
                static_cast<int>(rng->UniformRange(1000, 9999)));
  return buf;
}

double Money(Random* rng, double lo, double hi) {
  double v = lo + rng->NextDouble() * (hi - lo);
  return std::round(v * 100.0) / 100.0;
}

uint64_t Scaled(double sf, uint64_t base, uint64_t min_rows) {
  return std::max<uint64_t>(min_rows,
                            static_cast<uint64_t>(sf * static_cast<double>(base)));
}

}  // namespace

const std::vector<std::string>& TpchGenerator::SchemaSql() {
  // Derived from the shared table specs (table_spec.h), so the loaders
  // and the fleet's partitioner can never disagree on a column list.
  static const std::vector<std::string>* kSchemas = [] {
    auto* schemas = new std::vector<std::string>;
    for (const TableSpec& spec : TpchTables()) {
      schemas->push_back(spec.CreateTableSql());
    }
    return schemas;
  }();
  return *kSchemas;
}

TpchGenerator::TpchGenerator(TpchConfig config)
    : config_(config), rng_(config.seed) {
  double sf = config_.scale_factor;
  suppliers_ = Scaled(sf, 10'000, 10);
  customers_ = Scaled(sf, 150'000, 30);
  parts_ = Scaled(sf, 200'000, 40);
  orders_ = Scaled(sf, 1'500'000, 150);
}

uint64_t TpchGenerator::RowCount(const std::string& table) const {
  if (table == "region") return 5;
  if (table == "nation") return 25;
  if (table == "supplier") return suppliers_;
  if (table == "customer") return customers_;
  if (table == "part") return parts_;
  if (table == "partsupp") return parts_ * 4;
  if (table == "orders") return orders_;
  if (table == "lineitem") return orders_ * 4;  // expected value
  return 0;
}

Status TpchGenerator::LoadInto(sql::Database* db, sim::CostModel* cost) {
  for (const std::string& ddl : SchemaSql()) {
    RETURN_IF_ERROR(db->Execute(ddl).status());
  }
  RETURN_IF_ERROR(LoadRegionNation(db, cost));
  RETURN_IF_ERROR(LoadSupplier(db, cost));
  RETURN_IF_ERROR(LoadCustomer(db, cost));
  RETURN_IF_ERROR(LoadPart(db, cost));
  RETURN_IF_ERROR(LoadPartSupp(db, cost));
  RETURN_IF_ERROR(LoadOrdersLineitem(db, cost));
  return Status::OK();
}

Status TpchGenerator::LoadRegionNation(sql::Database* db,
                                       sim::CostModel* cost) {
  std::vector<Row> regions;
  for (int i = 0; i < 5; ++i) {
    regions.push_back(Row{Value::Int(i), Value::String(kRegions[i]),
                          Value::String(Comment(&rng_, 6))});
  }
  RETURN_IF_ERROR(db->BulkLoad("region", regions, cost));

  std::vector<Row> nations;
  for (int i = 0; i < 25; ++i) {
    nations.push_back(Row{Value::Int(i), Value::String(kNations[i].name),
                          Value::Int(kNations[i].region),
                          Value::String(Comment(&rng_, 8))});
  }
  return db->BulkLoad("nation", nations, cost);
}

Status TpchGenerator::LoadSupplier(sql::Database* db, sim::CostModel* cost) {
  std::vector<Row> rows;
  rows.reserve(suppliers_);
  for (uint64_t i = 1; i <= suppliers_; ++i) {
    int nation = static_cast<int>(rng_.Uniform(25));
    std::string comment = Comment(&rng_, 8);
    // TPC-H plants "Customer ... Complaints" in ~5 per 10k suppliers (Q16).
    if (i % 1999 == 7 || (suppliers_ < 2000 && i == 7)) {
      comment = "timid Customer braids sleep Complaints " + comment;
    }
    rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                       Value::String("Supplier#" + Pad9(i)),
                       Value::String(Comment(&rng_, 3)), Value::Int(nation),
                       Value::String(Phone(&rng_, nation)),
                       Value::Double(Money(&rng_, -999.99, 9999.99)),
                       Value::String(comment)});
  }
  return db->BulkLoad("supplier", rows, cost);
}

Status TpchGenerator::LoadCustomer(sql::Database* db, sim::CostModel* cost) {
  std::vector<Row> rows;
  rows.reserve(customers_);
  for (uint64_t i = 1; i <= customers_; ++i) {
    int nation = static_cast<int>(rng_.Uniform(25));
    rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                       Value::String("Customer#" + Pad9(i)),
                       Value::String(Comment(&rng_, 3)), Value::Int(nation),
                       Value::String(Phone(&rng_, nation)),
                       Value::Double(Money(&rng_, -999.99, 9999.99)),
                       Value::String(Pick(&rng_, kSegments)),
                       Value::String(Comment(&rng_, 10))});
  }
  return db->BulkLoad("customer", rows, cost);
}

Status TpchGenerator::LoadPart(sql::Database* db, sim::CostModel* cost) {
  std::vector<Row> rows;
  rows.reserve(parts_);
  part_price_.assign(parts_ + 1, 0.0);
  for (uint64_t i = 1; i <= parts_; ++i) {
    std::string name = std::string(Pick(&rng_, kColors)) + " " +
                       Pick(&rng_, kColors) + " " + Pick(&rng_, kColors);
    int mfgr = static_cast<int>(rng_.UniformRange(1, 5));
    int brand = mfgr * 10 + static_cast<int>(rng_.UniformRange(1, 5));
    std::string type = std::string(Pick(&rng_, kTypes1)) + " " +
                       Pick(&rng_, kTypes2) + " " + Pick(&rng_, kTypes3);
    std::string container =
        std::string(Pick(&rng_, kContainers1)) + " " + Pick(&rng_, kContainers2);
    // TPC-H retail price formula keeps prices in [900, 2100).
    double price = 900.0 + (static_cast<double>(i % 1000) / 10.0) +
                   100.0 * static_cast<double>(i % 10);
    part_price_[i] = price;
    rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                       Value::String(std::move(name)),
                       Value::String("Manufacturer#" + std::to_string(mfgr)),
                       Value::String("Brand#" + std::to_string(brand)),
                       Value::String(std::move(type)),
                       Value::Int(rng_.UniformRange(1, 50)),
                       Value::String(std::move(container)),
                       Value::Double(price), Value::String(Comment(&rng_, 5))});
  }
  return db->BulkLoad("part", rows, cost);
}

Status TpchGenerator::LoadPartSupp(sql::Database* db, sim::CostModel* cost) {
  std::vector<Row> rows;
  rows.reserve(parts_ * 4);
  for (uint64_t p = 1; p <= parts_; ++p) {
    for (int j = 0; j < 4; ++j) {
      uint64_t supp =
          (p + static_cast<uint64_t>(j) * (suppliers_ / 4 + 1)) % suppliers_ + 1;
      rows.push_back(Row{Value::Int(static_cast<int64_t>(p)),
                         Value::Int(static_cast<int64_t>(supp)),
                         Value::Int(rng_.UniformRange(1, 9999)),
                         Value::Double(Money(&rng_, 1.0, 1000.0)),
                         Value::String(Comment(&rng_, 12))});
    }
  }
  return db->BulkLoad("partsupp", rows, cost);
}

Status TpchGenerator::LoadOrdersLineitem(sql::Database* db,
                                         sim::CostModel* cost) {
  std::vector<Row> orders;
  std::vector<Row> lines;
  orders.reserve(orders_);
  lines.reserve(orders_ * 4);

  for (uint64_t o = 1; o <= orders_; ++o) {
    uint64_t cust = rng_.Uniform(customers_) + 1;
    int64_t odate = rng_.UniformRange(kMinDate, kMaxDate - 151);
    int nlines = static_cast<int>(rng_.UniformRange(1, 7));
    double total = 0;
    int f_count = 0;

    for (int ln = 1; ln <= nlines; ++ln) {
      uint64_t part = rng_.Uniform(parts_) + 1;
      uint64_t supp =
          (part + rng_.Uniform(4) * (suppliers_ / 4 + 1)) % suppliers_ + 1;
      double qty = static_cast<double>(rng_.UniformRange(1, 50));
      double price = part_price_[part] * qty / 10.0;
      double discount = static_cast<double>(rng_.UniformRange(0, 10)) / 100.0;
      double tax = static_cast<double>(rng_.UniformRange(0, 8)) / 100.0;
      int64_t shipdate = odate + rng_.UniformRange(1, 121);
      int64_t commitdate = odate + rng_.UniformRange(30, 90);
      int64_t receiptdate = shipdate + rng_.UniformRange(1, 30);
      std::string returnflag =
          receiptdate <= kCurrentDate ? (rng_.Bernoulli(0.5) ? "R" : "A") : "N";
      std::string linestatus = shipdate > kCurrentDate ? "O" : "F";
      if (linestatus == "F") ++f_count;
      total += price * (1.0 + tax) * (1.0 - discount);

      lines.push_back(Row{
          Value::Int(static_cast<int64_t>(o)),
          Value::Int(static_cast<int64_t>(part)),
          Value::Int(static_cast<int64_t>(supp)), Value::Int(ln),
          Value::Double(qty), Value::Double(std::round(price * 100) / 100),
          Value::Double(discount), Value::Double(tax),
          Value::String(std::move(returnflag)),
          Value::String(std::move(linestatus)), Value::Date(shipdate),
          Value::Date(commitdate), Value::Date(receiptdate),
          Value::String(Pick(&rng_, kInstructs)),
          Value::String(Pick(&rng_, kShipModes)),
          Value::String(Comment(&rng_, 4))});
    }

    std::string status = f_count == nlines ? "F" : (f_count == 0 ? "O" : "P");
    std::string comment = Comment(&rng_, 6);
    // ~1% of orders mention "special ... requests" (Q13's anti-pattern).
    if (o % 97 == 13) comment = "special packages requests " + comment;
    orders.push_back(Row{
        Value::Int(static_cast<int64_t>(o)),
        Value::Int(static_cast<int64_t>(cust)), Value::String(std::move(status)),
        Value::Double(std::round(total * 100) / 100), Value::Date(odate),
        Value::String(Pick(&rng_, kPriorities)),
        Value::String("Clerk#" + Pad9(rng_.Uniform(1000) + 1)), Value::Int(0),
        Value::String(std::move(comment))});
  }
  RETURN_IF_ERROR(db->BulkLoad("orders", orders, cost));
  return db->BulkLoad("lineitem", lines, cost);
}

}  // namespace ironsafe::tpch
