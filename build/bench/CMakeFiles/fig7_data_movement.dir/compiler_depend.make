# Empty compiler generated dependencies file for fig7_data_movement.
# This may be replaced when dependencies are built.
