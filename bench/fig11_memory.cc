// Figure 11: speedup of the storage-side (offloaded) execution as the
// memory available to the storage-side application grows. The paper uses
// 128 MiB / 256 MiB / 2 GiB against a ~3 GB database; we preserve those
// database:memory ratios at the bench scale factor. Expected shape:
// many offloaded queries fit the smallest budget (flat), several speed
// up at the middle budget, and the join-heavy #13 keeps improving.

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::SystemConfig;

uint64_t DatabaseBytes(engine::CsaSystem* system) {
  uint64_t pages = 0;
  for (const char* t : {"lineitem", "orders", "customer", "part", "partsupp",
                        "supplier", "nation", "region"}) {
    auto table = system->secure_db()->GetTable(t);
    if (table.ok()) pages += (*table)->page_count();
  }
  return pages * 4096;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));
  uint64_t db_bytes = DatabaseBytes(system.get());

  // Paper ratios against a ~3 GB SF-3 database.
  const struct {
    const char* label;
    double fraction;  // of database size
  } kBudgets[] = {{"128MiB-equiv", 128.0 / 3072.0},
                  {"256MiB-equiv", 256.0 / 3072.0},
                  {"2GiB-equiv", 2048.0 / 3072.0}};

  PrintHeader("Figure 11: storage-side speedup vs memory budget (SF=" +
              std::to_string(sf) + ", db=" +
              std::to_string(db_bytes / 1024) + " KiB)");
  std::printf("%5s", "query");
  for (const auto& b : kBudgets) std::printf(" %14s", b.label);
  std::printf("\n");

  WallClock wall;
  for (const auto& query : tpch::Queries()) {
    std::printf("%5d", query.number);
    double baseline_ms = 0;
    for (const auto& budget : kBudgets) {
      system->set_storage_memory_bytes(std::max<uint64_t>(
          4096, static_cast<uint64_t>(budget.fraction * static_cast<double>(db_bytes))));
      BENCH_ASSIGN(auto sos, system->Run(SystemConfig::kSos, query.sql));
      double ms = sos.cost.elapsed_ms();
      if (baseline_ms == 0) baseline_ms = ms;
      std::printf(" %13.2fx", baseline_ms / ms);
    }
    std::printf("\n");
  }
  system->set_storage_memory_bytes(32ull << 30);
  std::printf("(normalized to the 128MiB-equivalent budget; >1 means the "
              "extra memory helped)\n");
  PrintWallClock(wall);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
