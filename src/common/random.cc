#include "common/random.h"

namespace ironsafe {

namespace {
// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(&seed);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) { return Next() % n; }

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace ironsafe
