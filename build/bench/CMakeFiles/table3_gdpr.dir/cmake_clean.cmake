file(REMOVE_RECURSE
  "CMakeFiles/table3_gdpr.dir/table3_gdpr.cc.o"
  "CMakeFiles/table3_gdpr.dir/table3_gdpr.cc.o.d"
  "table3_gdpr"
  "table3_gdpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gdpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
