#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tools/ironsafe_lint/lint.h"

// ironsafe_lint [--root <dir>] [--json <out>] [subtree...]
//
// Walks src/, bench/, and tests/ under --root (default: cwd), prints
// one "file:line: [rule] message" diagnostic per violation, and exits
// nonzero when any are found. --json additionally writes the
// machine-readable report. Explicit subtree arguments replace the
// default walk roots.
int main(int argc, char** argv) {
  ironsafe::lint::Options opts;
  std::string json_path;
  std::vector<std::string> subtrees;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto take_value = [&](const char* flag) -> std::string {
      std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == flag && i + 1 < argc) return argv[++i];
      return "";
    };
    if (arg.rfind("--root", 0) == 0) {
      opts.tree_root = take_value("--root");
    } else if (arg.rfind("--json", 0) == 0) {
      json_path = take_value("--json");
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: ironsafe_lint [--root <dir>] [--json <out>] "
                  "[subtree...]\n");
      return 0;
    } else {
      subtrees.push_back(arg);
    }
  }
  if (!subtrees.empty()) opts.roots = subtrees;

  ironsafe::lint::Report report = ironsafe::lint::LintTree(opts);
  for (const auto& d : report.diagnostics) {
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << ironsafe::lint::ReportToJson(report) << "\n";
  }
  std::printf("ironsafe_lint: %d file(s) scanned, %zu violation(s)\n",
              report.files_scanned, report.diagnostics.size());
  return report.diagnostics.empty() ? 0 : 1;
}
