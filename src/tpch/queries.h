#ifndef IRONSAFE_TPCH_QUERIES_H_
#define IRONSAFE_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace ironsafe::tpch {

/// One evaluated TPC-H query, in IronSafe's SQL dialect. The paper
/// evaluates 16 of the 22 queries (the ones appearing in its Figures
/// 6-12): #2,3,4,5,6,7,8,9,10,12,13,14,16,18,19,21.
///
/// Dialect adaptations, documented in DESIGN.md:
///  - Q4 uses a semi-join (IN subquery) instead of EXISTS, per the
///    standard decorrelated form.
///  - Q13 uses an inner join (customers with zero orders are omitted).
///  - Q18's quantity threshold is lowered so small scale factors produce
///    non-empty results.
struct TpchQuery {
  int number;
  std::string name;
  std::string sql;
};

/// All 16 evaluated queries, ordered by query number.
const std::vector<TpchQuery>& Queries();

/// The six remaining TPC-H queries (Q1, Q11, Q15, Q17, Q20, Q22). The
/// paper excludes them from its evaluation because their automatic
/// partitions are unsuitable for offloading (§6.1); the engine runs them
/// fine, so they are available for completeness and for the partitioner
/// ablation.
const std::vector<TpchQuery>& ExtendedQueries();

/// Finds a query by number in the evaluated set; NotFound for the six
/// unevaluated ones (use ExtendedQueries() for those).
Result<const TpchQuery*> GetQuery(int number);

}  // namespace ironsafe::tpch

#endif  // IRONSAFE_TPCH_QUERIES_H_
