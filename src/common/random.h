#ifndef IRONSAFE_COMMON_RANDOM_H_
#define IRONSAFE_COMMON_RANDOM_H_

#include <cstdint>

namespace ironsafe {

/// Deterministic 64-bit PRNG (xoshiro256**). Used for workload generation
/// and simulation so every run is reproducible from a seed. Cryptographic
/// randomness comes from crypto::Drbg, not from this class.
class Random {
 public:
  explicit Random(uint64_t seed);

  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace ironsafe

#endif  // IRONSAFE_COMMON_RANDOM_H_
