file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_securestore.dir/merkle_tree.cc.o"
  "CMakeFiles/ironsafe_securestore.dir/merkle_tree.cc.o.d"
  "CMakeFiles/ironsafe_securestore.dir/secure_store.cc.o"
  "CMakeFiles/ironsafe_securestore.dir/secure_store.cc.o.d"
  "libironsafe_securestore.a"
  "libironsafe_securestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_securestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
