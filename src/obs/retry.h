#ifndef IRONSAFE_OBS_RETRY_H_
#define IRONSAFE_OBS_RETRY_H_

#include <string>
#include <utility>

#include "common/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cost_model.h"

namespace ironsafe::obs {

/// The canonical wiring of common/retry.h into the deterministic-time and
/// observability substrate. Each re-attempt of operation `op`:
///
///   - charges the simulated backoff to `cost` as fixed latency,
///   - bumps `retry.<op>.attempts` (and `retry.attempts` overall),
///   - emits a "retry" span covering the backoff, tagged with the attempt
///     number and the failure that caused it,
///
/// so recovery is visible in Chrome traces and the counter registry. The
/// first attempt stays hook-free: a fault-free run through the returned
/// policy is bit-identical in cost and trace to the bare call.
inline RetryPolicy ObservedRetryPolicy(std::string op, sim::CostModel* cost,
                                       RetryPolicy base = {}) {
  base.on_backoff = [op = std::move(op), cost](int next_attempt,
                                               uint64_t backoff_ns,
                                               const Status& failure) {
    GetCounter("retry.attempts").Increment();
    GetCounter("retry." + op + ".attempts").Increment();
    SpanGuard span("retry", "retry", cost);
    span.Tag("op", op);
    span.Tag("attempt", static_cast<int64_t>(next_attempt));
    span.Tag("cause", StatusCodeToString(failure.code()));
    if (cost != nullptr) cost->ChargeFixed(backoff_ns);
  };
  return base;
}

}  // namespace ironsafe::obs

#endif  // IRONSAFE_OBS_RETRY_H_
