#include "securestore/merkle_tree.h"

#include "crypto/hmac.h"

namespace ironsafe::securestore {

namespace {
uint64_t RoundUpPow2(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

MerkleTree::MerkleTree(Bytes hmac_key, uint64_t num_leaves)
    : key_(std::move(hmac_key)),
      num_leaves_(num_leaves),
      leaf_capacity_(RoundUpPow2(std::max<uint64_t>(1, num_leaves))) {
  depth_ = 0;
  for (uint64_t c = leaf_capacity_; c > 1; c >>= 1) ++depth_;
  nodes_.assign(2 * leaf_capacity_, Bytes{});
  RecomputeAll();
}

Bytes MerkleTree::HashChildren(const Bytes& left, const Bytes& right) const {
  Bytes input;
  PutLengthPrefixed(&input, left);
  PutLengthPrefixed(&input, right);
  return crypto::HmacSha256(key_, input);
}

void MerkleTree::RecomputeAll() {
  for (uint64_t i = leaf_capacity_ - 1; i >= 1; --i) {
    nodes_[i] = HashChildren(nodes_[2 * i], nodes_[2 * i + 1]);
  }
}

uint64_t MerkleTree::UpdateLeaf(uint64_t index, const Bytes& leaf_mac) {
  if (index >= leaf_capacity_) {
    // Grow: double capacity until it fits, then rebuild.
    while (leaf_capacity_ <= index) leaf_capacity_ <<= 1;
    std::vector<Bytes> old_leaves(nodes_.begin() + nodes_.size() / 2,
                                  nodes_.end());
    nodes_.assign(2 * leaf_capacity_, Bytes{});
    std::copy(old_leaves.begin(), old_leaves.end(),
              nodes_.begin() + leaf_capacity_);
    depth_ = 0;
    for (uint64_t c = leaf_capacity_; c > 1; c >>= 1) ++depth_;
    RecomputeAll();
  }
  if (index >= num_leaves_) num_leaves_ = index + 1;
  nodes_[leaf_capacity_ + index] = leaf_mac;
  uint64_t updated = 0;
  for (uint64_t i = (leaf_capacity_ + index) / 2; i >= 1; i /= 2) {
    nodes_[i] = HashChildren(nodes_[2 * i], nodes_[2 * i + 1]);
    ++updated;
  }
  return updated;
}

Status MerkleTree::VerifyLeaf(uint64_t index, const Bytes& leaf_mac,
                              uint64_t* nodes_checked) const {
  if (index >= leaf_capacity_) {
    return Status::InvalidArgument("merkle leaf index out of range");
  }
  if (nodes_[leaf_capacity_ + index] != leaf_mac) {
    return Status::Corruption("leaf MAC does not match tree");
  }
  // Recompute the path from the (claimed) leaf up and compare to the root.
  Bytes current = leaf_mac;
  uint64_t node = leaf_capacity_ + index;
  uint64_t checked = 0;
  while (node > 1) {
    uint64_t sibling = node ^ 1;
    const Bytes& sib = nodes_[sibling];
    current = (node % 2 == 0) ? HashChildren(current, sib)
                              : HashChildren(sib, current);
    node /= 2;
    ++checked;
  }
  if (nodes_checked != nullptr) *nodes_checked = checked;
  if (current != nodes_[1]) {
    return Status::Corruption("merkle path does not reach trusted root");
  }
  return Status::OK();
}

Bytes MerkleTree::SerializeLeaves() const {
  Bytes out;
  PutU64(&out, num_leaves_);
  for (uint64_t i = 0; i < num_leaves_; ++i) {
    PutLengthPrefixed(&out, nodes_[leaf_capacity_ + i]);
  }
  return out;
}

Result<MerkleTree> MerkleTree::Deserialize(Bytes hmac_key,
                                           const Bytes& image) {
  ByteReader r(image);
  ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
  if (n > (1ull << 32)) return Status::Corruption("implausible leaf count");
  MerkleTree tree(std::move(hmac_key), n);
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(Bytes leaf, r.ReadLengthPrefixed());
    tree.nodes_[tree.leaf_capacity_ + i] = std::move(leaf);
  }
  tree.RecomputeAll();
  return tree;
}

}  // namespace ironsafe::securestore
