#ifndef IRONSAFE_SQL_SCHEMA_H_
#define IRONSAFE_SQL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/value.h"

namespace ironsafe::sql {

/// A column definition.
struct Column {
  std::string name;
  Type type = Type::kNull;
};

/// An ordered set of columns. Column lookup is by (optionally qualified)
/// name; qualification is handled by the binder, which prefixes names
/// with "alias." when needed.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of `name`, or -1 if absent; -2 if ambiguous. A bare name
  /// matches a stored qualified name's suffix ("o_orderkey" matches
  /// "orders.o_orderkey").
  int Find(const std::string& name) const;

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Concatenation for join outputs.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Returns a copy with every column renamed to "qualifier.name",
  /// stripping any existing qualifier first.
  Schema Qualified(const std::string& qualifier) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// A tuple matching some Schema positionally.
using Row = std::vector<Value>;

/// Serializes a row (values only; schema travels separately).
void SerializeRow(const Row& row, Bytes* out);
Result<Row> DeserializeRow(ByteReader* reader);

/// Approximate in-memory footprint of a row, for memory accounting.
size_t RowBytes(const Row& row);

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_SCHEMA_H_
