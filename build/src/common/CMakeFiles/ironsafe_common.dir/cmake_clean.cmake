file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_common.dir/bytes.cc.o"
  "CMakeFiles/ironsafe_common.dir/bytes.cc.o.d"
  "CMakeFiles/ironsafe_common.dir/logging.cc.o"
  "CMakeFiles/ironsafe_common.dir/logging.cc.o.d"
  "CMakeFiles/ironsafe_common.dir/random.cc.o"
  "CMakeFiles/ironsafe_common.dir/random.cc.o.d"
  "CMakeFiles/ironsafe_common.dir/status.cc.o"
  "CMakeFiles/ironsafe_common.dir/status.cc.o.d"
  "libironsafe_common.a"
  "libironsafe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
