#include <gtest/gtest.h>

#include "net/secure_channel.h"
#include "net/wire.h"

namespace ironsafe::net {
namespace {

class SecureChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crypto::Drbg drbg_a(ToBytes("alice")), drbg_b(ToBytes("bob"));
    Handshake a(&drbg_a), b(&drbg_b);
    auto hello_a = a.Start();
    auto hello_b = b.Start();
    ASSERT_TRUE(hello_a.ok() && hello_b.ok());
    auto chan_a = a.Finish(*hello_b, /*is_initiator=*/true);
    auto chan_b = b.Finish(*hello_a, /*is_initiator=*/false);
    ASSERT_TRUE(chan_a.ok() && chan_b.ok());
    a_ = std::move(*chan_a);
    b_ = std::move(*chan_b);
  }

  std::unique_ptr<SecureChannel> a_, b_;
};

TEST_F(SecureChannelTest, RoundTripBothDirections) {
  auto f1 = a_->Send(ToBytes("query"), nullptr);
  ASSERT_TRUE(f1.ok());
  auto p1 = b_->Receive(*f1, nullptr);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, ToBytes("query"));

  auto f2 = b_->Send(ToBytes("rows"), nullptr);
  auto p2 = a_->Receive(*f2, nullptr);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p2, ToBytes("rows"));
}

TEST_F(SecureChannelTest, SessionIdsAgree) {
  EXPECT_EQ(a_->session_id(), b_->session_id());
}

TEST_F(SecureChannelTest, WireIsCiphertext) {
  Bytes plaintext = ToBytes("SELECT c_name FROM customer");
  auto frame = a_->Send(plaintext, nullptr);
  ASSERT_TRUE(frame.ok());
  std::string wire(frame->begin(), frame->end());
  EXPECT_EQ(wire.find("customer"), std::string::npos);
}

TEST_F(SecureChannelTest, TamperDetected) {
  auto frame = a_->Send(ToBytes("data"), nullptr);
  (*frame)[frame->size() / 2] ^= 1;
  EXPECT_TRUE(b_->Receive(*frame, nullptr).status().IsCorruption());
}

TEST_F(SecureChannelTest, ReplayDetected) {
  auto frame = a_->Send(ToBytes("pay $100"), nullptr);
  ASSERT_TRUE(b_->Receive(*frame, nullptr).ok());
  // Same frame again: the receive sequence number advanced.
  EXPECT_TRUE(b_->Receive(*frame, nullptr).status().IsCorruption());
}

TEST_F(SecureChannelTest, TamperedThenLegitFrameStillAuthenticates) {
  // Regression: a rejected frame must not consume the receive sequence
  // number. An adversary injecting garbage in front of a legitimate
  // frame would otherwise permanently desync the channel.
  auto frame = a_->Send(ToBytes("data"), nullptr);
  ASSERT_TRUE(frame.ok());
  Bytes tampered = *frame;
  tampered[tampered.size() / 2] ^= 1;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(b_->Receive(tampered, nullptr).status().IsCorruption());
  }
  auto got = b_->Receive(*frame, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, ToBytes("data"));
  // And the channel keeps working afterwards.
  auto next = a_->Send(ToBytes("more"), nullptr);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(b_->Receive(*next, nullptr).ok());
}

TEST_F(SecureChannelTest, ReorderDetected) {
  auto f1 = a_->Send(ToBytes("first"), nullptr);
  auto f2 = a_->Send(ToBytes("second"), nullptr);
  EXPECT_TRUE(b_->Receive(*f2, nullptr).status().IsCorruption());
  EXPECT_TRUE(b_->Receive(*f1, nullptr).ok());
}

TEST_F(SecureChannelTest, NetworkCostCharged) {
  sim::CostModel cm;
  Bytes payload(1 << 20, 0xAA);
  ASSERT_TRUE(a_->Send(payload, &cm).ok());
  EXPECT_GT(cm.network_bytes(), payload.size());  // + AEAD overhead
}

TEST_F(SecureChannelTest, CloseFailsSubsequentSendAndReceive) {
  // Keep a valid frame from before the close to prove Receive rejects it
  // under the dead keys rather than decrypting with stale material.
  auto inbound = b_->Send(ToBytes("late frame"), nullptr);
  ASSERT_TRUE(inbound.ok());

  a_->Close();
  EXPECT_TRUE(a_->closed());
  EXPECT_TRUE(a_->Send(ToBytes("x"), nullptr)
                  .status()
                  .code() == StatusCode::kFailedPrecondition);
  EXPECT_TRUE(a_->Receive(*inbound, nullptr).status().code() ==
              StatusCode::kFailedPrecondition);
  // The session id was zeroized with the keys.
  EXPECT_EQ(a_->session_id(), Bytes(a_->session_id().size(), 0));
  // Idempotent: a second Close is a no-op, and the peer is unaffected.
  a_->Close();
  auto f = b_->Send(ToBytes("peer still works"), nullptr);
  EXPECT_TRUE(f.ok());
}

TEST_F(SecureChannelTest, CloseIsOneSided) {
  b_->Close();
  EXPECT_FALSE(a_->closed());
  // a_ can still seal; nobody can open it (b_'s recv keys are gone).
  auto frame = a_->Send(ToBytes("into the void"), nullptr);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(b_->Receive(*frame, nullptr).ok());
}

TEST(HandshakeTest, EavesdropperCannotDecrypt) {
  crypto::Drbg d1(ToBytes("a")), d2(ToBytes("b")), d3(ToBytes("eve"));
  Handshake a(&d1), b(&d2), eve(&d3);
  auto ha = a.Start();
  auto hb = b.Start();
  auto he = eve.Start();
  auto chan_a = a.Finish(*hb, true);
  // Eve saw both hellos but knows neither private key: she derives a
  // different channel and cannot open A's frames.
  auto chan_eve = eve.Finish(*ha, false);
  auto frame = (*chan_a)->Send(ToBytes("secret"), nullptr);
  EXPECT_FALSE((*chan_eve)->Receive(*frame, nullptr).ok());
}

TEST(HandshakeTest, FromSessionKeyPairInterops) {
  auto pair = Handshake::FromSessionKey(Bytes(32, 0x11));
  ASSERT_TRUE(pair.ok());
  auto frame = pair->first->Send(ToBytes("hi"), nullptr);
  auto back = pair->second->Receive(*frame, nullptr);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, ToBytes("hi"));
}

TEST(HandshakeTest, FinishBeforeStartFails) {
  crypto::Drbg d(ToBytes("x"));
  Handshake h(&d);
  Handshake::Hello hello{Bytes(32, 1)};
  EXPECT_FALSE(h.Finish(hello, true).ok());
}

TEST(WireTest, ResultRoundTrip) {
  sql::QueryResult result;
  result.schema.AddColumn(sql::Column{"id", sql::Type::kInt64});
  result.schema.AddColumn(sql::Column{"name", sql::Type::kString});
  result.schema.AddColumn(sql::Column{"d", sql::Type::kDate});
  for (int i = 0; i < 100; ++i) {
    result.rows.push_back(sql::Row{sql::Value::Int(i),
                                   sql::Value::String("row" + std::to_string(i)),
                                   sql::Value::Date(1000 + i)});
  }
  auto back = DeserializeResult(SerializeResult(result));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->schema.size(), 3u);
  EXPECT_EQ(back->schema.column(1).name, "name");
  ASSERT_EQ(back->rows.size(), 100u);
  EXPECT_EQ(back->rows[42][1].AsString(), "row42");
  EXPECT_EQ(back->rows[99][2].type(), sql::Type::kDate);
}

TEST(WireTest, EmptyResult) {
  sql::QueryResult result;
  result.schema.AddColumn(sql::Column{"x", sql::Type::kDouble});
  auto back = DeserializeResult(SerializeResult(result));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->rows.empty());
  EXPECT_EQ(back->schema.size(), 1u);
}

TEST(WireTest, GarbageRejected) {
  EXPECT_FALSE(DeserializeResult(ToBytes("not a record batch")).ok());
  EXPECT_FALSE(DeserializeResult({}).ok());
}

}  // namespace
}  // namespace ironsafe::net
