// Ablations of IronSafe's design choices (DESIGN.md):
//
//  A. Secure-storage construction: what each layer of the per-page
//     protection (decryption, freshness/Merkle verification) costs, by
//     zeroing its cycle budget in the cost model and re-running scs.
//  B. Partitioner: filter pushdown (the paper's evaluated strategy)
//     versus whole-query aggregation pushdown (the paper's §8 future
//     work), measured on the single-table aggregate queries where the
//     latter applies.

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::CsaOptions;
using engine::SystemConfig;

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  WallClock wall;

  // ---- A. secure-store layer ablation ----
  PrintHeader("Ablation A: per-layer cost of the secure page store (scs)");
  struct Variant {
    const char* name;
    bool decrypt;
    bool freshness;
  };
  const Variant kVariants[] = {
      {"full (enc+MAC+merkle)", true, true},
      {"no freshness", true, false},
      {"no decryption", false, true},
      {"neither (≈ vcs + channel)", false, false},
  };
  std::printf("%-28s %12s %12s %12s\n", "variant", "Q6(ms)", "Q3(ms)",
              "Q9(ms)");
  for (const Variant& v : kVariants) {
    CsaOptions options;
    if (!v.decrypt) options.hardware.page_decrypt_cycles = 0;
    if (!v.freshness) {
      options.hardware.page_hmac_cycles = 0;
      options.hardware.merkle_node_cycles = 0;
    }
    BENCH_ASSIGN(auto system, MakeLoadedSystem(sf, options));
    std::printf("%-28s", v.name);
    for (int qnum : {6, 3, 9}) {
      BENCH_ASSIGN(const tpch::TpchQuery* query, tpch::GetQuery(qnum));
      BENCH_ASSIGN(auto scs, system->Run(SystemConfig::kScs, query->sql));
      std::printf(" %12.3f", scs.cost.elapsed_ms());
    }
    std::printf("\n");
  }
  std::printf("(expected: freshness is the dominant security layer, "
              "matching Figure 8)\n");

  // ---- B. partitioner ablation ----
  PrintHeader("Ablation B: filter pushdown vs whole-query pushdown (scs)");
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));
  // Q6 and a Q1-style aggregate are single-table, subquery-free — the
  // aggregation pushdown applies; multi-table queries fall back.
  const struct {
    const char* label;
    std::string sql;
  } kQueries[] = {
      {"Q6", (*tpch::GetQuery(6))->sql},
      {"Q1", tpch::ExtendedQueries()[0].sql},
      {"Q3 (multi-table: falls back)", (*tpch::GetQuery(3))->sql},
  };
  std::printf("%-30s %14s %14s %14s %14s\n", "query", "filter(ms)",
              "ship(KiB)", "wholeq(ms)", "ship(KiB)");
  for (const auto& q : kQueries) {
    system->set_aggregation_pushdown(false);
    BENCH_ASSIGN(auto filter_run, system->Run(SystemConfig::kScs, q.sql));
    system->set_aggregation_pushdown(true);
    BENCH_ASSIGN(auto whole_run, system->Run(SystemConfig::kScs, q.sql));
    std::printf("%-30s %14.3f %14.1f %14.3f %14.1f\n", q.label,
                filter_run.cost.elapsed_ms(),
                static_cast<double>(filter_run.shipped_bytes) / 1024.0,
                whole_run.cost.elapsed_ms(),
                static_cast<double>(whole_run.shipped_bytes) / 1024.0);
  }
  system->set_aggregation_pushdown(false);
  std::printf("(whole-query pushdown ships only the final rows; the win "
              "comes from eliminating record shipping + host work)\n");
  PrintWallClock(wall, "both ablations");
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
