// Linted as src/sim/determinism_violating.cc: ambient clocks and
// unseeded randomness, each of which breaks bit-identical replay.
#include <chrono>
#include <cstdlib>
#include <random>

namespace ironsafe::sim {
long Bad() {
  std::random_device rd;
  srand(42);
  long x = rand();
  auto now = std::chrono::system_clock::now();
  (void)now;
  return x + static_cast<long>(time(nullptr)) + rd();
}
}  // namespace ironsafe::sim
