
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/ironsafe_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/ironsafe_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ironsafe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/ironsafe_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/ironsafe_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/ironsafe_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/securestore/CMakeFiles/ironsafe_securestore.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/ironsafe_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ironsafe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ironsafe_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ironsafe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ironsafe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
