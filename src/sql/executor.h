#ifndef IRONSAFE_SQL_EXECUTOR_H_
#define IRONSAFE_SQL_EXECUTOR_H_

#include <cstdint>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/eval.h"
#include "sim/cost_model.h"

namespace ironsafe::sql {

class Database;

/// Which execution engine runs the SELECT pipeline.
///  - kVectorized (default): batch-at-a-time columnar execution — pages
///    are decoded once into ~2K-row ColumnBatches, predicates narrow
///    selection vectors instead of materializing rows, and tight typed
///    kernels handle filter/join-key/aggregate/project work.
///  - kRow: the legacy row-at-a-time volcano engine, kept for result
///    parity testing and as the perf baseline in the benches.
/// Both engines return identical rows, stats and traces for the same
/// query; their simulated cost accounts differ (the vectorized engine
/// charges cheaper per-row constants, see docs/COST_MODEL.md) but each
/// is bit-identical across real worker counts.
enum class ExecEngine { kVectorized, kRow };

/// Execution knobs. `site` decides which simulated CPU is charged for
/// operator work; `memory_cap_bytes` models the storage server's memory
/// limit (paper Figure 11) — working sets beyond it pay spill I/O;
/// `parallelism` is the query fan-out: it sets the simulated ways of
/// ChargeParallelCycles (capped by the site's core count, paper
/// Figure 10) AND the requested real worker count for morsel-parallel
/// scans and join key evaluation. The real fan-out is additionally
/// capped by the machine / ThreadPool::set_max_workers, and by design
/// the real worker count never changes results, stats, or simulated
/// cost — only wall-clock time.
struct ExecOptions {
  sim::Site site = sim::Site::kHost;
  uint64_t memory_cap_bytes = UINT64_MAX;
  int parallelism = 1;
  /// Emit pipeline-stage spans to the current thread's obs::Tracer (no-op
  /// when none is installed). Scalar/correlated subqueries run with this
  /// off — they re-execute per outer row and would flood the trace.
  bool trace = true;
  ExecEngine engine = ExecEngine::kVectorized;
  /// Opt-in oblivious execution (docs/OBLIVIOUS.md): scans read every
  /// page/batch of each base table in order with no pushdown, filters
  /// flip validity flags instead of dropping rows, sorts run on a
  /// bitonic merge network and joins are sort-merge over both full
  /// inputs, so the page/batch access sequence and every cost charge
  /// depend only on input shapes (row counts, schema, join-key
  /// multiplicity structure) — never on filter predicates or non-key
  /// values. Composes with `engine`: both scan decode paths feed one
  /// padded pipeline and return bit-identical rows, stats and cost.
  bool oblivious = false;
};

/// Statistics accumulated while executing one query.
struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_output = 0;
  uint64_t peak_memory_bytes = 0;
  uint64_t spill_bytes = 0;

  bool operator==(const ExecStats&) const = default;
};

/// Executes a SELECT against `db`. `outer` is the correlation scope for
/// subqueries (null at top level). Work is charged to `cost` per the
/// options. The pipeline: scan+pushed filters -> joins (hash when an
/// equi-predicate exists, else nested loop) -> residual predicates ->
/// aggregation -> HAVING -> projection -> DISTINCT -> ORDER BY -> LIMIT.
Result<QueryResult> ExecuteSelect(Database* db, const SelectStmt& stmt,
                                  const EvalScope* outer,
                                  sim::CostModel* cost,
                                  const ExecOptions& opts = {},
                                  ExecStats* stats = nullptr);

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_EXECUTOR_H_
