#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/tokenizer.h"

namespace ironsafe::sql {
namespace {

TEST(TokenizerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, 42, 3.14, 'str' FROM t WHERE x <= 5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kSymbol);
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[5].double_value, 3.14);
  EXPECT_EQ((*tokens)[7].text, "str");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(TokenizerTest, EscapedQuote) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(TokenizerTest, LineComments) {
  auto tokens = Tokenize("SELECT -- comment\n 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].int_value, 1);
}

TEST(TokenizerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(TokenizerTest, TwoCharSymbols) {
  auto tokens = Tokenize("a <> b <= c >= d != e || f");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[3].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[5].IsSymbol(">="));
  EXPECT_TRUE((*tokens)[7].IsSymbol("!="));
  EXPECT_TRUE((*tokens)[9].IsSymbol("||"));
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT a, b FROM t WHERE a > 5 ORDER BY b DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->items.size(), 2u);
  EXPECT_EQ((*stmt)->from.size(), 1u);
  ASSERT_TRUE((*stmt)->where != nullptr);
  EXPECT_EQ((*stmt)->order_by.size(), 1u);
  EXPECT_TRUE((*stmt)->order_by[0].desc);
  EXPECT_EQ((*stmt)->limit, 10);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseSelect("SELECT * FROM lineitem");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].expr->kind, ExprKind::kStar);
}

TEST(ParserTest, Aliases) {
  auto stmt = ParseSelect("SELECT sum(x) AS total, y cnt FROM t g");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].alias, "total");
  EXPECT_EQ((*stmt)->items[1].alias, "cnt");
  EXPECT_EQ((*stmt)->from[0].alias, "g");
}

TEST(ParserTest, JoinsAndGroupBy) {
  auto stmt = ParseSelect(
      "SELECT c_name, count(*) FROM customer c JOIN orders o ON "
      "c.c_custkey = o.o_custkey GROUP BY c_name HAVING count(*) > 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->joins.size(), 1u);
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_TRUE((*stmt)->having != nullptr);
}

TEST(ParserTest, CommaJoin) {
  auto stmt = ParseSelect("SELECT * FROM a, b, c WHERE a.x = b.y");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->from.size(), 3u);
}

TEST(ParserTest, DateAndIntervalLiterals) {
  auto e = ParseExpression("o_orderdate < DATE '1995-03-15' + INTERVAL '3' MONTH");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // INTERVAL arithmetic becomes date_add(...).
  EXPECT_NE((*e)->ToString().find("date_add"), std::string::npos);
}

TEST(ParserTest, IntervalSubtraction) {
  auto e = ParseExpression("d - INTERVAL '90' DAY");
  ASSERT_TRUE(e.ok());
  // Subtraction is negated inside date_add.
  EXPECT_NE((*e)->ToString().find("-90"), std::string::npos);
}

TEST(ParserTest, InListAndSubquery) {
  auto e1 = ParseExpression("x IN (1, 2, 3)");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ((*e1)->kind, ExprKind::kInList);

  auto e2 = ParseExpression("x NOT IN (SELECT y FROM t)");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->kind, ExprKind::kInSubquery);
  EXPECT_TRUE((*e2)->negated);
}

TEST(ParserTest, ExistsAndScalarSubquery) {
  auto e1 = ParseExpression("EXISTS (SELECT 1 FROM t WHERE t.a = o.b)");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ((*e1)->kind, ExprKind::kExists);

  auto e2 = ParseExpression("price < (SELECT min(p) FROM parts)");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->kind, ExprKind::kBinary);
  EXPECT_EQ((*e2)->right->kind, ExprKind::kScalarSubquery);
}

TEST(ParserTest, CaseWhen) {
  auto e = ParseExpression(
      "CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kCase);
  EXPECT_EQ((*e)->when_clauses.size(), 2u);
}

TEST(ParserTest, BetweenLikeIsNull) {
  EXPECT_EQ((*ParseExpression("x BETWEEN 1 AND 10"))->kind, ExprKind::kBetween);
  EXPECT_EQ((*ParseExpression("s LIKE '%green%'"))->kind, ExprKind::kLike);
  EXPECT_EQ((*ParseExpression("s NOT LIKE 'a_'"))->negated, true);
  EXPECT_EQ((*ParseExpression("x IS NULL"))->kind, ExprKind::kIsNull);
  EXPECT_TRUE((*ParseExpression("x IS NOT NULL"))->negated);
}

TEST(ParserTest, ExtractBecomesFunction) {
  auto e = ParseExpression("EXTRACT(YEAR FROM o_orderdate)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kFunction);
  EXPECT_EQ((*e)->func_name, "year");
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(1 + (2 * 3))");

  auto e2 = ParseExpression("a OR b AND c");
  EXPECT_EQ((*e2)->ToString(), "(a OR (b AND c))");
}

TEST(ParserTest, CountDistinct) {
  auto e = ParseExpression("count(DISTINCT l_suppkey)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kAggregate);
  EXPECT_TRUE((*e)->distinct);
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse(
      "CREATE TABLE orders (o_orderkey INTEGER, o_totalprice DECIMAL(15,2), "
      "o_orderdate DATE, o_comment VARCHAR(79))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  const auto& cols = stmt->create_table->columns;
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_EQ(cols[0].type, Type::kInt64);
  EXPECT_EQ(cols[1].type, Type::kDouble);
  EXPECT_EQ(cols[2].type, Type::kDate);
  EXPECT_EQ(cols[3].type, Type::kString);
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert->values.size(), 2u);
  EXPECT_EQ(stmt->insert->columns.size(), 2u);
}

TEST(ParserTest, DeleteAndUpdate) {
  auto d = Parse("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, Statement::Kind::kDelete);

  auto u = Parse("UPDATE t SET a = a + 1, b = 'z' WHERE c > 0");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->update->assignments.size(), 2u);
}

TEST(ParserTest, ErrorsAreInformative) {
  auto r1 = ParseSelect("SELECT FROM t");
  EXPECT_FALSE(r1.ok());
  auto r2 = ParseSelect("SELECT a FROM t WHERE");
  EXPECT_FALSE(r2.ok());
  auto r3 = Parse("GARBAGE");
  EXPECT_FALSE(r3.ok());
  auto r4 = ParseSelect("SELECT a FROM t extra junk ; more");
  EXPECT_FALSE(r4.ok());
}

TEST(ParserTest, ToStringRoundTripsThroughParser) {
  const char* queries[] = {
      "SELECT a, sum(b) AS total FROM t WHERE c > 5 GROUP BY a ORDER BY total DESC LIMIT 3",
      "SELECT * FROM x, y WHERE x.k = y.k AND x.v BETWEEN 1 AND 9",
      "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
  };
  for (const char* q : queries) {
    auto first = ParseSelect(q);
    ASSERT_TRUE(first.ok()) << q;
    std::string printed = (*first)->ToString();
    auto second = ParseSelect(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ((*second)->ToString(), printed);
  }
}

TEST(ParserTest, CloneIsDeepAndEqual) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE u.z = t.z)");
  ASSERT_TRUE(stmt.ok());
  auto clone = (*stmt)->Clone();
  EXPECT_EQ(clone->ToString(), (*stmt)->ToString());
}

}  // namespace
}  // namespace ironsafe::sql
