file(REMOVE_RECURSE
  "libironsafe_net.a"
)
