#include "sql/tokenizer.h"

#include <cctype>
#include <cstdlib>

namespace ironsafe::sql {

bool Token::IsKeyword(std::string_view kw) const {
  if (kind != TokenKind::kIdent || text.size() != kw.size()) return false;
  for (size_t i = 0; i < kw.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto peek = [&](size_t k) -> char { return i + k < n ? sql[i + k] : '\0'; };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && peek(1) == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text(sql.substr(start, i - start));
      if (is_float) {
        tok.kind = TokenKind::kDouble;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            s.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        s.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    static constexpr std::string_view kTwoChar[] = {"<=", ">=", "<>", "!=",
                                                    "||"};
    bool matched = false;
    for (std::string_view sym : kTwoChar) {
      if (c == sym[0] && peek(1) == sym[1]) {
        tok.kind = TokenKind::kSymbol;
        tok.text = std::string(sym);
        i += 2;
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view kOneChar = "+-*/%(),.;=<>";
    if (kOneChar.find(c) != std::string_view::npos) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace ironsafe::sql
