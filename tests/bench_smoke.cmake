# Smoke test for the machine-readable perf baselines: run fig6 in
# --quick mode with --json, then validate the emitted BENCH file with
# baseline_check (schema fields present, and the vectorized engine
# strictly cheaper than the row engine in simulated cycles — the
# deterministic half of the before/after claim).
#
# Invoked by ctest as:
#   cmake -DBENCH=<bench binary> -DCHECK=<baseline_check binary>
#         -DOUT=<json path> [-DBENCH_ARGS="<space-separated args>"]
#         -P bench_smoke.cmake
#
# BENCH_ARGS defaults to the fig6 quick invocation so the original
# bench_smoke registration stays unchanged; serve_smoke passes its own.
# CHECK_ARGS defaults to --require-sim-improvement (vectorized < row);
# oblivious_smoke passes --require-sim-overhead instead (oblivious > row,
# the cost the padded pipeline is expected to pay).

foreach(var BENCH CHECK OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke.cmake requires -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED BENCH_ARGS)
  set(BENCH_ARGS "0.001 --quick")
endif()
separate_arguments(BENCH_ARGS)
if(NOT DEFINED CHECK_ARGS)
  set(CHECK_ARGS "--require-sim-improvement")
endif()
separate_arguments(CHECK_ARGS)

execute_process(
  COMMAND ${BENCH} ${BENCH_ARGS} --json=${OUT}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench failed (rc=${bench_rc}):\n${bench_out}\n${bench_err}")
endif()
if(NOT bench_out MATCHES "baseline written: ")
  message(FATAL_ERROR "bench did not report writing a baseline:\n${bench_out}")
endif()

execute_process(
  COMMAND ${CHECK} ${OUT} ${CHECK_ARGS}
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "baseline_check failed (rc=${check_rc}):\n${check_out}\n${check_err}")
endif()
message(STATUS "bench_smoke ok: ${check_out}")
