#ifndef IRONSAFE_SECURESTORE_MERKLE_TREE_H_
#define IRONSAFE_SECURESTORE_MERKLE_TREE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ironsafe::securestore {

/// Keyed Merkle tree over page MACs (paper §4.1: "recursively builds a
/// Merkle tree also employing HMACs to create the internal nodes and root
/// of the tree"). Leaves are the per-page HMAC-SHA-512 values; internal
/// nodes are HMAC-SHA-256(key, left || right). The tree image itself
/// lives on the untrusted medium; only the root needs a trusted anchor.
class MerkleTree {
 public:
  /// Builds a tree with capacity for `num_leaves` leaves (rounded up to a
  /// power of two internally). Absent leaves hash as empty strings.
  MerkleTree(Bytes hmac_key, uint64_t num_leaves);

  uint64_t num_leaves() const { return num_leaves_; }

  /// Sets leaf `index` and recomputes the path to the root.
  /// Returns the number of internal nodes recomputed (for cost charging).
  uint64_t UpdateLeaf(uint64_t index, const Bytes& leaf_mac);

  const Bytes& Root() const { return nodes_[1]; }

  /// Verifies that `leaf_mac` at `index` is consistent with the current
  /// root by recomputing the authentication path. `nodes_checked` (if
  /// non-null) receives the path length for cost accounting.
  Status VerifyLeaf(uint64_t index, const Bytes& leaf_mac,
                    uint64_t* nodes_checked = nullptr) const;

  /// Serializes all leaves (the tree is recomputable from them).
  Bytes SerializeLeaves() const;

  /// Rebuilds a tree from a serialized leaf image (e.g. read back from the
  /// untrusted metadata region). Fails on malformed input.
  static Result<MerkleTree> Deserialize(Bytes hmac_key, const Bytes& image);

  /// Depth of the tree (number of internal levels), for cost estimates.
  uint64_t Depth() const { return depth_; }

 private:
  void RecomputeAll();
  Bytes HashChildren(const Bytes& left, const Bytes& right) const;

  Bytes key_;
  uint64_t num_leaves_;
  uint64_t leaf_capacity_;  // power of two
  uint64_t depth_;
  // Heap layout: nodes_[1] is root, children of i are 2i and 2i+1.
  // Leaves occupy nodes_[leaf_capacity_ .. 2*leaf_capacity_).
  std::vector<Bytes> nodes_;
};

}  // namespace ironsafe::securestore

#endif  // IRONSAFE_SECURESTORE_MERKLE_TREE_H_
