file(REMOVE_RECURSE
  "CMakeFiles/ironsafe_monitor.dir/audit_log.cc.o"
  "CMakeFiles/ironsafe_monitor.dir/audit_log.cc.o.d"
  "CMakeFiles/ironsafe_monitor.dir/monitor.cc.o"
  "CMakeFiles/ironsafe_monitor.dir/monitor.cc.o.d"
  "libironsafe_monitor.a"
  "libironsafe_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironsafe_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
