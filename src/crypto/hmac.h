#ifndef IRONSAFE_CRYPTO_HMAC_H_
#define IRONSAFE_CRYPTO_HMAC_H_

#include "common/bytes.h"

namespace ironsafe::crypto {

/// HMAC (RFC 2104) over SHA-256 / SHA-512. One-shot interfaces; keys of
/// any length are handled per the RFC (hashed if longer than a block).
Bytes HmacSha256(const Bytes& key, const Bytes& message);
Bytes HmacSha512(const Bytes& key, const Bytes& message);

/// Verifies in constant time. Returns true iff mac == HMAC(key, message).
bool VerifyHmacSha256(const Bytes& key, const Bytes& message, const Bytes& mac);
bool VerifyHmacSha512(const Bytes& key, const Bytes& message, const Bytes& mac);

/// HKDF (RFC 5869) with HMAC-SHA-256: extract-then-expand key derivation.
/// Returns `length` bytes of output keying material.
Bytes HkdfSha256(const Bytes& salt, const Bytes& ikm, const Bytes& info,
                 size_t length);

}  // namespace ironsafe::crypto

#endif  // IRONSAFE_CRYPTO_HMAC_H_
