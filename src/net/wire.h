#ifndef IRONSAFE_NET_WIRE_H_
#define IRONSAFE_NET_WIRE_H_

#include "common/bytes.h"
#include "common/result.h"
#include "sql/eval.h"

namespace ironsafe::net {

/// Record-batch serialization for shipping query results between the
/// storage engine and the host engine (paper §5: "the sender serializes
/// records and the receiver deserializes these records to be added to
/// the in-memory table on the host").
Bytes SerializeResult(const sql::QueryResult& result);
Result<sql::QueryResult> DeserializeResult(const Bytes& wire);

}  // namespace ironsafe::net

#endif  // IRONSAFE_NET_WIRE_H_
