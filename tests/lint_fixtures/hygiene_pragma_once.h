#pragma once

// Linted as src/sql/hygiene_pragma_once.h: #pragma once is an accepted
// include guard.
#include <string>

namespace ironsafe::sql {
inline std::string Greet() { return "hi"; }
}  // namespace ironsafe::sql
