#ifndef IRONSAFE_BENCH_BENCH_UTIL_H_
#define IRONSAFE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/csa_system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace ironsafe::bench {

/// Default bench scale factor: small enough that the full suite runs in
/// CI time, large enough that per-query behaviour differentiates. All
/// harnesses accept an SF override as argv[1].
inline constexpr double kDefaultScaleFactor = 0.002;
inline constexpr uint64_t kSeed = 19940101;

inline double ArgScaleFactor(int argc, char** argv) {
  if (argc > 1) {
    double sf = std::atof(argv[1]);
    if (sf > 0) return sf;
  }
  return kDefaultScaleFactor;
}

/// Flags shared by every bench harness. The first positional argument is
/// still the scale factor, so `fig6_tpch_speedup 0.01` keeps working.
///
///   --trace-json=<path>   write a Chrome trace_event file on exit
///   --trace-wall          include wall-clock fields in the trace (makes
///                         the file machine-dependent)
///   --trace-detail        include per-worker detail spans (makes the
///                         file dependent on the worker count)
///   --workers=N           cap the morsel thread pool at N workers
///   --clients=N           concurrent client sessions (serving benches)
struct BenchArgs {
  double scale_factor = kDefaultScaleFactor;
  std::string trace_json;  // empty = tracing off
  bool trace_wall = false;
  bool trace_detail = false;
  int workers = 0;  // 0 = hardware default
  int clients = 8;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  bool saw_sf = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-json=", 13) == 0) {
      args.trace_json = arg + 13;
    } else if (std::strcmp(arg, "--trace-wall") == 0) {
      args.trace_wall = true;
    } else if (std::strcmp(arg, "--trace-detail") == 0) {
      args.trace_detail = true;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      args.workers = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      args.clients = std::atoi(arg + 10);
      if (args.clients < 1) args.clients = 1;
    } else if (!saw_sf) {
      double sf = std::atof(arg);
      if (sf > 0) {
        args.scale_factor = sf;
        saw_sf = true;
      } else {
        std::fprintf(stderr, "unknown bench argument: %s\n", arg);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown bench argument: %s\n", arg);
      std::exit(2);
    }
  }
  if (args.workers > 0) common::ThreadPool::set_max_workers(args.workers);
  return args;
}

/// Installs a session tracer for the lifetime of the bench when
/// `--trace-json` was given, and writes the Chrome trace (plus a snapshot
/// of the global counter registry) when the harness returns. With no
/// trace path this is inert: no tracer is installed and the hot path
/// takes its untraced branch.
class BenchTracer {
 public:
  explicit BenchTracer(const BenchArgs& args) : args_(args) {
    if (!args_.trace_json.empty()) {
      tracer_ = std::make_unique<obs::Tracer>();
      scope_ = std::make_unique<obs::ScopedTracer>(tracer_.get());
    }
  }

  ~BenchTracer() {
    if (tracer_ == nullptr) return;
    scope_.reset();  // uninstall before exporting
    obs::ExportOptions opts;
    opts.include_wall = args_.trace_wall;
    opts.include_detail = args_.trace_detail;
    opts.metrics = &obs::MetricsRegistry::Global();
    Status st = tracer_->WriteChromeTrace(args_.trace_json, opts);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return;
    }
    std::printf("trace written: %s (%zu spans)\n", args_.trace_json.c_str(),
                tracer_->span_count());
  }

  BenchTracer(const BenchTracer&) = delete;
  BenchTracer& operator=(const BenchTracer&) = delete;

 private:
  BenchArgs args_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::ScopedTracer> scope_;
};

/// Builds a CSA testbed loaded with TPC-H data at `sf`.
inline Result<std::unique_ptr<engine::CsaSystem>> MakeLoadedSystem(
    double sf, engine::CsaOptions options = {}) {
  options.scale_factor = sf;
  auto system = engine::CsaSystem::Create(options);
  if (!system.ok()) return system.status();
  Status st = (*system)->Load([&](sql::Database* db) {
    tpch::TpchGenerator gen(tpch::TpchConfig{sf, kSeed});
    return gen.LoadInto(db);
  });
  if (!st.ok()) return st;
  return std::move(*system);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Real (wall-clock) elapsed time, reported alongside the simulated
/// nanoseconds in every figure bench. Simulated results are machine- and
/// thread-count-independent; the wall clock is what morsel parallelism
/// actually improves.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  double ms() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Uniform closing line for every harness: simulated totals appear in the
/// per-query tables above in ms (sim); this reports the real elapsed time
/// in ms (real) with one shared format.
inline void PrintWallClock(const WallClock& wall,
                           const char* scope = "the full sweep") {
  std::printf("wall clock: %.1f ms real for %s\n", wall.ms(), scope);
}

inline void Die(const Status& status) {
  std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
  std::exit(1);
}

#define BENCH_CONCAT_INNER(a, b) a##b
#define BENCH_CONCAT(a, b) BENCH_CONCAT_INNER(a, b)

#define BENCH_ASSIGN(decl, expr)                                       \
  auto BENCH_CONCAT(_bench_r_, __LINE__) = (expr);                     \
  if (!BENCH_CONCAT(_bench_r_, __LINE__).ok())                         \
    ::ironsafe::bench::Die(BENCH_CONCAT(_bench_r_, __LINE__).status()); \
  decl = std::move(*BENCH_CONCAT(_bench_r_, __LINE__))

}  // namespace ironsafe::bench

#endif  // IRONSAFE_BENCH_BENCH_UTIL_H_
