# Empty compiler generated dependencies file for ironsafe_monitor.
# This may be replaced when dependencies are built.
