#include "sim/fault.h"

#include <algorithm>

namespace ironsafe::sim {

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::ArmNth(std::string_view site, uint64_t nth, uint64_t count,
                           uint64_t param) {
  if (nth == 0 || count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[std::string(site)];
  Trigger t;
  t.fire_at = state.occurrences + nth;
  t.remaining = count;
  t.param = param;
  state.triggers.push_back(std::move(t));
}

void FaultRegistry::ArmProbability(std::string_view site, double p,
                                   uint64_t seed) {
  if (p <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[std::string(site)];
  Trigger t;
  t.probability = p;
  t.rng = Random(seed);
  state.triggers.push_back(std::move(t));
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
}

std::optional<FaultHit> FaultRegistry::Fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Count occurrences even for unarmed sites so a later ArmNth is
    // relative to the arming point, not process start.
    ++sites_[std::string(site)].occurrences;
    return std::nullopt;
  }
  SiteState& state = it->second;
  ++state.occurrences;
  for (Trigger& t : state.triggers) {
    if (t.fire_at != 0) {
      if (t.remaining == 0 || state.occurrences < t.fire_at) continue;
      --t.remaining;
      ++state.fired;
      return FaultHit{t.param + (state.occurrences - t.fire_at)};
    }
    // Probability mode: one PRNG draw per occurrence keeps the decision
    // sequence a pure function of (seed, occurrence index).
    uint64_t draw = t.rng.Next();
    if (t.rng.Bernoulli(t.probability)) {
      ++state.fired;
      return FaultHit{draw};
    }
  }
  return std::nullopt;
}

uint64_t FaultRegistry::occurrences(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.occurrences;
}

uint64_t FaultRegistry::fired(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::vector<std::pair<std::string, uint64_t>> FaultRegistry::FiredSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [name, state] : sites_) {
    if (state.fired > 0) out.emplace_back(name, state.fired);
  }
  return out;
}

}  // namespace ironsafe::sim
