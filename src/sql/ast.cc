#include "sql/ast.h"

#include <sstream>

namespace ironsafe::sql {

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kConcat: return "||";
  }
  return "?";
}

std::string_view AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumn(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumn;
  e->column_name = std::move(name);
  return e;
}

ExprPtr Expr::MakeBinary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Expr::MakeUnary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expr::MakeAggregate(AggFunc f, ExprPtr arg, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg_func = f;
  e->distinct = distinct;
  if (arg) e->args.push_back(std::move(arg));
  return e;
}

ExprPtr Expr::MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column_name = column_name;
  e->un_op = un_op;
  e->bin_op = bin_op;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  e->func_name = func_name;
  for (const auto& a : args) e->args.push_back(a->Clone());
  e->agg_func = agg_func;
  e->distinct = distinct;
  e->negated = negated;
  for (const auto& [w, t] : when_clauses) {
    e->when_clauses.emplace_back(w->Clone(), t->Clone());
  }
  if (else_expr) e->else_expr = else_expr->Clone();
  if (subquery) e->subquery = subquery->Clone();
  return e;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kLiteral:
      os << literal.ToString();
      break;
    case ExprKind::kColumn:
      os << column_name;
      break;
    case ExprKind::kStar:
      os << "*";
      break;
    case ExprKind::kUnary:
      os << (un_op == UnOp::kNeg ? "-" : "NOT ") << "(" << left->ToString()
         << ")";
      break;
    case ExprKind::kBinary:
      os << "(" << left->ToString() << " " << BinOpName(bin_op) << " "
         << right->ToString() << ")";
      break;
    case ExprKind::kFunction: {
      os << func_name << "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << args[i]->ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kAggregate:
      os << AggFuncName(agg_func) << "(";
      if (distinct) os << "DISTINCT ";
      os << (agg_func == AggFunc::kCountStar ? "*" : args[0]->ToString())
         << ")";
      break;
    case ExprKind::kCase: {
      os << "CASE";
      for (const auto& [w, t] : when_clauses) {
        os << " WHEN " << w->ToString() << " THEN " << t->ToString();
      }
      if (else_expr) os << " ELSE " << else_expr->ToString();
      os << " END";
      break;
    }
    case ExprKind::kInList: {
      os << left->ToString() << (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << args[i]->ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kInSubquery:
      os << left->ToString() << (negated ? " NOT IN (" : " IN (")
         << subquery->ToString() << ")";
      break;
    case ExprKind::kExists:
      os << (negated ? "NOT EXISTS (" : "EXISTS (") << subquery->ToString()
         << ")";
      break;
    case ExprKind::kScalarSubquery:
      os << "(" << subquery->ToString() << ")";
      break;
    case ExprKind::kBetween:
      os << left->ToString() << " BETWEEN " << args[0]->ToString() << " AND "
         << args[1]->ToString();
      break;
    case ExprKind::kLike:
      os << left->ToString() << (negated ? " NOT LIKE " : " LIKE ")
         << args[0]->ToString();
      break;
    case ExprKind::kIsNull:
      os << left->ToString() << (negated ? " IS NOT NULL" : " IS NULL");
      break;
  }
  return os.str();
}

TableRef TableRef::Clone() const {
  TableRef ref(table_name, alias);
  if (subquery) ref.subquery = subquery->Clone();
  return ref;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto s = std::make_unique<SelectStmt>();
  s->distinct = distinct;
  for (const auto& item : items) {
    s->items.push_back(SelectItem{item.expr->Clone(), item.alias});
  }
  for (const auto& t : from) s->from.push_back(t.Clone());
  for (const auto& j : joins) {
    s->joins.push_back(JoinClause{j.table.Clone(), j.on->Clone()});
  }
  if (where) s->where = where->Clone();
  for (const auto& g : group_by) s->group_by.push_back(g->Clone());
  if (having) s->having = having->Clone();
  for (const auto& o : order_by) {
    s->order_by.push_back(OrderItem{o.expr->Clone(), o.desc});
  }
  s->limit = limit;
  return s;
}

std::string SelectStmt::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) os << ", ";
    os << items[i].expr->ToString();
    if (!items[i].alias.empty()) os << " AS " << items[i].alias;
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i) os << ", ";
    if (from[i].subquery) {
      os << "(" << from[i].subquery->ToString() << ") " << from[i].alias;
    } else {
      os << from[i].table_name;
      if (!from[i].alias.empty() && from[i].alias != from[i].table_name) {
        os << " " << from[i].alias;
      }
    }
  }
  for (const auto& j : joins) {
    os << " JOIN " << j.table.table_name;
    if (!j.table.alias.empty() && j.table.alias != j.table.table_name) {
      os << " " << j.table.alias;
    }
    os << " ON " << j.on->ToString();
  }
  if (where) os << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) os << ", ";
      os << group_by[i]->ToString();
    }
  }
  if (having) os << " HAVING " << having->ToString();
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) os << ", ";
      os << order_by[i].expr->ToString();
      if (order_by[i].desc) os << " DESC";
    }
  }
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

}  // namespace ironsafe::sql
