// Linted as src/crypto/layering_violating.cc: crypto sits near the
// bottom of the DAG and must not reach up into engine or policy.
#include "common/bytes.h"
#include "engine/ironsafe.h"
#include "policy/policy.h"

namespace ironsafe::crypto {
int Unused() { return 0; }
}  // namespace ironsafe::crypto
