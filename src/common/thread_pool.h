#ifndef IRONSAFE_COMMON_THREAD_POOL_H_
#define IRONSAFE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ironsafe::common {

/// Reusable worker pool for morsel-driven parallel execution. One
/// process-wide pool (Shared()) is sized to the hardware; executors fan
/// work out as an indexed batch of tasks and block until the batch
/// drains. Task index — not thread identity — addresses all per-task
/// state (result slices, cost-model slices, page-access logs), so the
/// outcome of a batch is independent of which thread runs which task.
class ThreadPool {
 public:
  /// `threads` pool threads are spawned; the thread calling RunTasks
  /// always participates as well, so a pool of 0 threads still makes
  /// progress (serial execution).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use with
  /// max(1, hardware_concurrency() - 1) threads — the caller participates
  /// in every batch, so fan-out uses all cores without oversubscribing
  /// (except on a single core, where one background thread is kept so the
  /// cross-thread path always runs).
  static ThreadPool& Shared();

  /// Caps EffectiveWorkers (0 restores the hardware default). For tests
  /// and benches that pin the real thread count; simulated costs must
  /// never depend on this knob.
  static void set_max_workers(int n);
  static int max_workers();

  /// How many workers a caller asking for `requested`-way parallelism
  /// should fan out to: bounded by the request, the max_workers cap,
  /// and the machine. Always at least 1.
  static int EffectiveWorkers(int requested);

  /// Runs tasks[0..n) to completion; blocks until every task returned.
  /// The calling thread participates. During task i, current_slot() == i
  /// on the executing thread. One batch runs at a time; a RunTasks call
  /// issued from inside a task executes its batch inline (serially) to
  /// avoid self-deadlock.
  void RunTasks(std::vector<std::function<void()>>& tasks);

  /// Index of the task the calling thread is executing, or -1 outside a
  /// batch. Lets deep callees (e.g. page stores) file per-task records
  /// without threading an id through every interface.
  static int current_slot();

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  struct Batch;

  void WorkerLoop();
  static size_t Drain(Batch* batch);

  std::mutex batch_mu_;  // serializes concurrent RunTasks callers

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;     // in-flight batch, guarded by mu_
  uint64_t generation_ = 0;    // bumped per batch, guarded by mu_
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ironsafe::common

#endif  // IRONSAFE_COMMON_THREAD_POOL_H_
