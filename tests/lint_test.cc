// Tests for tools/ironsafe_lint: every rule must fire on its violating
// fixture and stay silent on its clean one, suppressions must be honored,
// and the JSON report must parse with the documented schema.

#include "tools/ironsafe_lint/lint.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace ironsafe::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints a fixture as if it lived at `rel_path` in the tree.
std::vector<Diagnostic> LintFixtureAs(const std::string& fixture,
                                      const std::string& rel_path) {
  return LintSource(rel_path, ReadFixture(fixture));
}

std::multiset<std::string> Rules(const std::vector<Diagnostic>& diags) {
  std::multiset<std::string> out;
  for (const auto& d : diags) out.insert(d.rule);
  return out;
}

TEST(LintLayering, FiresOnUpwardInclude) {
  auto diags =
      LintFixtureAs("layering_violating.cc", "src/crypto/layering_violating.cc");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "layering");
  EXPECT_EQ(diags[1].rule, "layering");
  // engine/ironsafe.h on line 4, policy/policy.h on line 5.
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_EQ(diags[1].line, 5);
  EXPECT_NE(diags[0].message.find("engine"), std::string::npos);
}

TEST(LintLayering, SilentOnDeclaredDeps) {
  EXPECT_TRUE(
      LintFixtureAs("layering_clean.cc", "src/crypto/layering_clean.cc")
          .empty());
}

TEST(LintLayering, TransitiveClosureIsAllowed) {
  // sql links securestore which links tee: sql -> tee is indirect but legal.
  EXPECT_TRUE(LintSource("src/sql/x.cc", "#include \"tee/sgx.h\"\n").empty());
  // ...but tee -> sql would invert the DAG.
  auto diags = LintSource("src/tee/x.cc", "#include \"sql/value.h\"\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layering");
}

TEST(LintLayering, ServerMayIncludeEverythingBelow) {
  EXPECT_TRUE(LintFixtureAs("server_layering_clean.cc",
                            "src/server/server_layering_clean.cc")
                  .empty());
}

TEST(LintLayering, NothingBelowServerMayIncludeIt) {
  auto diags = LintFixtureAs("server_layering_violating.cc",
                             "src/engine/server_layering_violating.cc");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layering");
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("server"), std::string::npos);
  // The inversion is caught from every lower layer, not just engine.
  auto net_diags = LintSource("src/net/x.cc",
                              "#include \"server/scheduler.h\"\n");
  ASSERT_EQ(net_diags.size(), 1u);
  EXPECT_EQ(net_diags[0].rule, "layering");
}

TEST(LintLayering, DistMayIncludeEverythingItLinks) {
  EXPECT_TRUE(LintFixtureAs("dist_layering_clean.cc",
                            "src/dist/dist_layering_clean.cc")
                  .empty());
}

TEST(LintLayering, DistMayNotIncludeTpchOrServer) {
  auto diags = LintFixtureAs("dist_layering_violating.cc",
                             "src/dist/dist_layering_violating.cc");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "layering");
  EXPECT_NE(diags[0].message.find("tpch"), std::string::npos);
  EXPECT_EQ(diags[1].rule, "layering");
  EXPECT_NE(diags[1].message.find("server"), std::string::npos);
  // And nothing below dist may include it: the fleet caps the DAG
  // alongside server.
  auto engine_diags =
      LintSource("src/engine/x.cc", "#include \"dist/fleet.h\"\n");
  ASSERT_EQ(engine_diags.size(), 1u);
  EXPECT_EQ(engine_diags[0].rule, "layering");
}

TEST(LintLayering, BenchAndTestsAreUnrestricted) {
  EXPECT_TRUE(
      LintSource("bench/x.cc", "#include \"engine/ironsafe.h\"\n").empty());
  EXPECT_TRUE(
      LintSource("tests/x.cc", "#include \"engine/ironsafe.h\"\n").empty());
}

TEST(LintEnclaveBoundary, FiresOnHostIo) {
  auto diags =
      LintFixtureAs("enclave_violating.cc", "src/tee/enclave_violating.cc");
  EXPECT_EQ(Rules(diags),
            (std::multiset<std::string>{"enclave-boundary", "enclave-boundary",
                                        "enclave-boundary"}));
}

TEST(LintEnclaveBoundary, SilentOnCleanSecureWorldCode) {
  EXPECT_TRUE(
      LintFixtureAs("enclave_clean.cc", "src/tee/enclave_clean.cc").empty());
}

TEST(LintEnclaveBoundary, OnlyAppliesToSecureWorld) {
  // The same I/O is fine outside src/tee and src/securestore.
  for (const auto& d :
       LintFixtureAs("enclave_violating.cc", "src/engine/x.cc")) {
    EXPECT_NE(d.rule, "enclave-boundary") << d.message;
  }
}

TEST(LintDeterminism, FiresOnClocksAndRandomness) {
  auto diags = LintFixtureAs("determinism_violating.cc",
                             "src/sim/determinism_violating.cc");
  // random_device, srand, rand, system_clock, time — one each.
  EXPECT_EQ(diags.size(), 5u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "determinism");
}

TEST(LintDeterminism, SilentOnSeededAndSimulatedTime) {
  EXPECT_TRUE(
      LintFixtureAs("determinism_clean.cc", "src/sim/determinism_clean.cc")
          .empty());
}

TEST(LintDeterminism, TimingShimsAreAllowlisted) {
  std::string shim =
      "#pragma once\n"
      "#include <chrono>\n"
      "inline auto Now() { return std::chrono::steady_clock::now(); }\n";
  EXPECT_TRUE(LintSource("bench/bench_util.h", shim).empty());
  EXPECT_TRUE(LintSource("src/common/thread_pool.cc", shim).empty());
  EXPECT_FALSE(LintSource("src/common/thread_pool.h", shim).empty());
}

TEST(LintDeterminism, FiresOnUnorderedIterationInOrderedOutputFile) {
  auto diags =
      LintFixtureAs("unordered_violating.cc", "src/obs/unordered_violating.cc");
  // One range-for over an unordered_map, one .begin() walk of an
  // unordered_set.
  EXPECT_EQ(diags.size(), 2u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "determinism");
    EXPECT_NE(d.message.find("hash order"), std::string::npos);
  }
}

TEST(LintDeterminism, SilentOnSortedSerialization) {
  EXPECT_TRUE(
      LintFixtureAs("unordered_clean.cc", "src/obs/unordered_clean.cc")
          .empty());
}

TEST(LintDeterminism, UnorderedIterationAllowedOffTheSerializationPath) {
  // The same loops are fine where output order is not observable.
  EXPECT_TRUE(
      LintFixtureAs("unordered_violating.cc", "src/sql/hash_probe.cc")
          .empty());
}

TEST(LintUncheckedStatus, FiresOnDiscardedFallibleCalls) {
  auto diags = LintFixtureAs("status_discard_violating.cc",
                             "src/tee/status_discard_violating.cc");
  // Send, Receive, Provision, Write — one each.
  ASSERT_EQ(diags.size(), 4u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "unchecked-status");
    EXPECT_NE(d.message.find("discarded"), std::string::npos);
  }
}

TEST(LintUncheckedStatus, SilentOnConsumedResults) {
  EXPECT_TRUE(LintFixtureAs("status_discard_clean.cc",
                            "src/net/status_discard_clean.cc")
                  .empty());
}

TEST(LintUncheckedStatus, OnlyAppliesToFaultInjectableModules) {
  // The same discards are legal outside src/net, src/tee, src/securestore.
  EXPECT_TRUE(LintFixtureAs("status_discard_violating.cc",
                            "src/engine/status_discard_violating.cc")
                  .empty());
  EXPECT_TRUE(LintFixtureAs("status_discard_violating.cc",
                            "tests/status_discard_violating.cc")
                  .empty());
}

TEST(LintUncheckedStatus, AllowCommentSilences) {
  std::string code =
      "struct C { int Send(int); };\n"
      "void F(C* c) {\n"
      "  // ironsafe-lint: allow(unchecked-status)\n"
      "  c->Send(1);\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/net/x.cc", code).empty());
}

TEST(LintVectorKernelBoxing, FiresOnValueInKernelFile) {
  auto diags = LintFixtureAs("vector_kernel_violating.cc",
                             "src/sql/vector_kernels.cc");
  // Value appears twice: the parameter type and the loop binding.
  ASSERT_EQ(diags.size(), 2u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "vector-kernel-boxing");
    EXPECT_NE(d.message.find("unboxed"), std::string::npos);
  }
}

TEST(LintVectorKernelBoxing, SilentOnUnboxedKernel) {
  EXPECT_TRUE(LintFixtureAs("vector_kernel_clean.cc",
                            "src/sql/vector_kernels.cc")
                  .empty());
}

TEST(LintVectorKernelBoxing, OnlyAppliesToKernelFiles) {
  // The same boxed code is legal everywhere else — including the
  // vectorized evaluator, whose job is the boxing fallback.
  EXPECT_TRUE(LintFixtureAs("vector_kernel_violating.cc",
                            "src/sql/vector_eval.cc")
                  .empty());
  EXPECT_TRUE(LintFixtureAs("vector_kernel_violating.cc",
                            "src/sql/executor.cc")
                  .empty());
}

TEST(LintVectorKernelBoxing, AppliesToKernelHeadersToo) {
  auto diags = LintFixtureAs("vector_kernel_violating.cc",
                             "src/sql/vector_kernels.h");
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].rule, "vector-kernel-boxing");
}

TEST(LintVectorKernelBoxing, AllowCommentSilences) {
  std::string code =
      "// ironsafe-lint: allow(vector-kernel-boxing)\n"
      "class Value;\n";
  EXPECT_TRUE(LintSource("src/sql/vector_kernels.cc", code).empty());
}

TEST(LintObliviousBranching, FiresOnBranchyKernelFile) {
  auto diags = LintFixtureAs("oblivious_kernel_violating.cc",
                             "src/sql/oblivious_kernels.cc");
  // 2x if, 1x else, 1x ternary '?', 1x break.
  ASSERT_EQ(diags.size(), 5u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "oblivious-branching");
    EXPECT_NE(d.message.find("public shapes"), std::string::npos);
  }
}

TEST(LintObliviousBranching, SilentOnBranchFreeKernel) {
  EXPECT_TRUE(LintFixtureAs("oblivious_kernel_clean.cc",
                            "src/sql/oblivious_kernels.cc")
                  .empty());
}

TEST(LintObliviousBranching, OnlyAppliesToObliviousKernelFiles) {
  // The same branchy code is legal everywhere else — including the
  // oblivious executor's orchestration layer, which may branch on
  // public shapes freely.
  EXPECT_TRUE(LintFixtureAs("oblivious_kernel_violating.cc",
                            "src/sql/oblivious_executor.cc")
                  .empty());
  EXPECT_TRUE(LintFixtureAs("oblivious_kernel_violating.cc",
                            "src/sql/executor.cc")
                  .empty());
}

TEST(LintObliviousBranching, AppliesToKernelHeadersToo) {
  auto diags = LintFixtureAs("oblivious_kernel_violating.cc",
                             "src/sql/oblivious_kernels.h");
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].rule, "oblivious-branching");
}

TEST(LintObliviousBranching, AllowCommentSilences) {
  std::string code =
      "// ironsafe-lint: allow(oblivious-branching)\n"
      "int F(int x) { return x > 0 ? x : 0; }\n";
  EXPECT_TRUE(LintSource("src/sql/oblivious_kernels.cc", code).empty());
}

TEST(LintObliviousBranching, ShippedKernelsAreClean) {
  // The real kernels must satisfy their own rule with no suppressions.
  for (const char* rel :
       {"src/sql/oblivious_kernels.h", "src/sql/oblivious_kernels.cc"}) {
    std::ifstream in(std::string(LINT_FIXTURE_DIR "/../../") + rel,
                     std::ios::binary);
    ASSERT_TRUE(in.good()) << rel;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    EXPECT_EQ(text.find("ironsafe-lint: allow"), std::string::npos) << rel;
    EXPECT_TRUE(LintSource(rel, text).empty()) << rel;
  }
}

TEST(LintHygiene, FiresOnMissingGuardAndUsingNamespaceStd) {
  auto diags =
      LintFixtureAs("hygiene_violating.h", "src/sql/hygiene_violating.h");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "hygiene");
  EXPECT_EQ(diags[0].line, 1);  // guard diagnostic anchors to the top
  EXPECT_EQ(diags[1].rule, "hygiene");
  EXPECT_NE(diags[1].message.find("using namespace std"), std::string::npos);
}

TEST(LintHygiene, AcceptsBothGuardStyles) {
  EXPECT_TRUE(
      LintFixtureAs("hygiene_clean.h", "src/sql/hygiene_clean.h").empty());
  EXPECT_TRUE(
      LintFixtureAs("hygiene_pragma_once.h", "src/sql/hygiene_pragma_once.h")
          .empty());
}

TEST(LintHygiene, SourceFilesNeedNoGuard) {
  EXPECT_TRUE(LintSource("src/sql/x.cc", "int x = 1;\n").empty());
}

TEST(LintSuppression, AllowCommentSilencesItsRuleOnly) {
  auto diags = LintFixtureAs("suppression.cc", "src/sim/suppression.cc");
  // Two violations carry allow(determinism) (comment-above and same-line
  // form); the third carries allow(hygiene) and must still fire.
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "determinism");
  EXPECT_NE(diags[0].message.find("srand"), std::string::npos);
}

TEST(LintTreeWalk, DetectsIncludeCycles) {
  Options opts;
  opts.tree_root = LINT_FIXTURE_DIR;
  opts.roots = {"cycle"};
  Report report = LintTree(opts);
  EXPECT_EQ(report.files_scanned, 2);
  bool found = false;
  for (const auto& d : report.diagnostics) {
    if (d.rule == "layering" &&
        d.message.find("include cycle") != std::string::npos) {
      found = true;
      EXPECT_NE(d.message.find("cycle/a.h"), std::string::npos);
      EXPECT_NE(d.message.find("cycle/b.h"), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << "no include-cycle diagnostic reported";
}

TEST(LintTreeWalk, FixtureDirectoryIsExcludedByDefault) {
  Options opts;
  opts.tree_root = std::string(LINT_FIXTURE_DIR) + "/..";
  opts.roots = {"lint_fixtures"};
  Report report = LintTree(opts);
  EXPECT_EQ(report.files_scanned, 0);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintJsonReport, MatchesDocumentedSchema) {
  Options opts;
  opts.tree_root = LINT_FIXTURE_DIR;
  opts.roots = {"cycle"};
  Report report = LintTree(opts);
  auto parsed = obs::JsonParse(ReportToJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Find("version"), nullptr);
  EXPECT_EQ(root.Find("version")->number_value, 1);
  ASSERT_NE(root.Find("files_scanned"), nullptr);
  EXPECT_EQ(root.Find("files_scanned")->number_value, 2);
  const obs::JsonValue* diags = root.Find("diagnostics");
  ASSERT_NE(diags, nullptr);
  ASSERT_TRUE(diags->is_array());
  ASSERT_NE(root.Find("violation_count"), nullptr);
  EXPECT_EQ(root.Find("violation_count")->number_value,
            static_cast<double>(diags->array_value.size()));
  for (const obs::JsonValue& d : diags->array_value) {
    ASSERT_TRUE(d.is_object());
    ASSERT_NE(d.Find("rule"), nullptr);
    EXPECT_TRUE(d.Find("rule")->is_string());
    ASSERT_NE(d.Find("file"), nullptr);
    EXPECT_TRUE(d.Find("file")->is_string());
    ASSERT_NE(d.Find("line"), nullptr);
    EXPECT_TRUE(d.Find("line")->is_number());
    ASSERT_NE(d.Find("message"), nullptr);
    EXPECT_TRUE(d.Find("message")->is_string());
  }
}

TEST(LintJsonReport, DiagnosticsAreSortedAndDeterministic) {
  Options opts;
  opts.tree_root = LINT_FIXTURE_DIR;
  opts.roots = {"cycle"};
  std::string a = ReportToJson(LintTree(opts));
  std::string b = ReportToJson(LintTree(opts));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ironsafe::lint
