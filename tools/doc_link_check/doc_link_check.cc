// Offline validator for the repo's Markdown cross-links, wired into
// ctest as `docs_links` and into scripts/check.sh. It walks every
// committed *.md (repo root and docs/), extracts inline links, and
// verifies that
//   - relative link targets exist on disk, and
//   - fragment targets (`#anchor`, `file.md#anchor`) match a heading in
//     the target document under GitHub's slug rules (lowercase,
//     punctuation stripped, spaces to hyphens, `-N` suffixes for
//     duplicate headings).
//
// External schemes (http/https/mailto) are out of scope — this gate is
// about keeping the internal documentation graph (README, ROADMAP,
// EXPERIMENTS, docs/ARCHITECTURE and friends) unbroken as files and
// section titles move. Links inside fenced code blocks and inline code
// spans are ignored, so C++ snippets like `operator[](int64_t key)`
// never trip the parser.
//
//   doc_link_check --root <repo root>
//
// Exit code 0 when every link resolves; 1 with one line per broken link
// otherwise.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Link {
  std::string file;    // markdown file containing the link
  int line = 0;        // 1-based line number
  std::string target;  // raw link target, e.g. "docs/SERVING.md#drain"
};

/// GitHub's heading-to-anchor slug: lowercase, keep [a-z0-9 -], drop the
/// rest, spaces to hyphens.
std::string Slugify(const std::string& heading) {
  std::string slug;
  slug.reserve(heading.size());
  for (unsigned char c : heading) {
    if (std::isalnum(c)) {
      slug.push_back(static_cast<char>(std::tolower(c)));
    } else if (c == ' ' || c == '-') {
      slug.push_back(c == ' ' ? '-' : '-');
    }
    // Everything else (punctuation, backticks, slashes) is dropped.
  }
  return slug;
}

/// Strips inline code spans (`...`) from one line so code snippets can
/// never look like links or headings.
std::string StripInlineCode(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool in_code = false;
  for (char c : line) {
    if (c == '`') {
      in_code = !in_code;
      continue;
    }
    if (!in_code) out.push_back(c);
  }
  return out;
}

bool IsFenceLine(const std::string& line) {
  size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos) return false;
  return line.compare(i, 3, "```") == 0 || line.compare(i, 3, "~~~") == 0;
}

/// The set of anchors a markdown document exposes, including the -1, -2
/// suffixes GitHub appends to repeated headings.
std::set<std::string> CollectAnchors(const fs::path& file) {
  std::set<std::string> anchors;
  std::map<std::string, int> seen;
  std::ifstream in(file);
  std::string line;
  bool in_fence = false;
  while (std::getline(in, line)) {
    if (IsFenceLine(line)) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    size_t hashes = 0;
    while (hashes < line.size() && line[hashes] == '#') ++hashes;
    if (hashes == 0 || hashes > 6) continue;
    if (hashes >= line.size() || line[hashes] != ' ') continue;
    // Backticks inside headings are dropped by the slug, not the text.
    std::string heading = line.substr(hashes + 1);
    std::string base = Slugify(heading);
    int n = seen[base]++;
    anchors.insert(n == 0 ? base : base + "-" + std::to_string(n));
  }
  return anchors;
}

/// Extracts inline `[text](target)` links from one document, skipping
/// fenced code blocks and inline code spans.
std::vector<Link> CollectLinks(const fs::path& file,
                               const std::string& display_name) {
  std::vector<Link> links;
  std::ifstream in(file);
  std::string raw;
  int lineno = 0;
  bool in_fence = false;
  while (std::getline(in, raw)) {
    ++lineno;
    if (IsFenceLine(raw)) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    std::string line = StripInlineCode(raw);
    for (size_t i = 0; i + 1 < line.size(); ++i) {
      if (line[i] != ']' || line[i + 1] != '(') continue;
      size_t close = line.find(')', i + 2);
      if (close == std::string::npos) continue;
      // Require a matching '[' earlier on the line — "](...)" without
      // one is not a markdown link.
      if (line.rfind('[', i) == std::string::npos) continue;
      std::string target = line.substr(i + 2, close - i - 2);
      // Titles: [text](path "title")
      size_t space = target.find(' ');
      if (space != std::string::npos) target = target.substr(0, space);
      if (!target.empty()) links.push_back(Link{display_name, lineno, target});
      i = close;
    }
  }
  return links;
}

bool IsExternal(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0 || target.rfind("ftp://", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::cerr << "usage: doc_link_check --root <dir>\n";
      return 2;
    }
  }

  // The committed documentation set: *.md at the repo root plus docs/.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".md") {
      files.push_back(entry.path());
    }
  }
  if (fs::is_directory(root / "docs")) {
    for (const auto& entry : fs::directory_iterator(root / "docs")) {
      if (entry.is_regular_file() && entry.path().extension() == ".md") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::map<std::string, std::set<std::string>> anchor_cache;
  auto anchors_of = [&](const fs::path& file) -> const std::set<std::string>& {
    std::string key = fs::weakly_canonical(file).string();
    auto it = anchor_cache.find(key);
    if (it == anchor_cache.end()) {
      it = anchor_cache.emplace(key, CollectAnchors(file)).first;
    }
    return it->second;
  };

  int broken = 0;
  size_t checked = 0;
  for (const fs::path& file : files) {
    std::string display = fs::relative(file, root).string();
    for (const Link& link : CollectLinks(file, display)) {
      if (IsExternal(link.target)) continue;
      std::string path_part = link.target;
      std::string anchor;
      size_t hash = link.target.find('#');
      if (hash != std::string::npos) {
        path_part = link.target.substr(0, hash);
        anchor = link.target.substr(hash + 1);
      }
      ++checked;

      fs::path target_file =
          path_part.empty() ? file : file.parent_path() / path_part;
      if (!fs::exists(target_file)) {
        std::cerr << display << ":" << link.line << ": broken link target '"
                  << link.target << "' (no such file)\n";
        ++broken;
        continue;
      }
      if (!anchor.empty()) {
        if (fs::is_directory(target_file) ||
            target_file.extension() != ".md") {
          std::cerr << display << ":" << link.line << ": anchor '#" << anchor
                    << "' on a non-markdown target '" << path_part << "'\n";
          ++broken;
          continue;
        }
        const std::set<std::string>& anchors = anchors_of(target_file);
        if (anchors.find(anchor) == anchors.end()) {
          std::cerr << display << ":" << link.line << ": broken anchor '#"
                    << anchor << "' in '"
                    << (path_part.empty() ? display : path_part)
                    << "' (no matching heading)\n";
          ++broken;
        }
      }
    }
  }

  if (broken != 0) {
    std::cerr << "doc_link_check: " << broken << " broken link(s) across "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "doc_link_check: " << checked << " internal link(s) across "
            << files.size() << " markdown file(s), all resolved\n";
  return 0;
}
