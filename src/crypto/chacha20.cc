#include "crypto/chacha20.h"

#include <cstring>

#include "crypto/sha256.h"

namespace ironsafe::crypto {

namespace {

uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(uint32_t* s, int a, int b, int c, int d) {
  s[a] += s[b]; s[d] ^= s[a]; s[d] = Rotl(s[d], 16);
  s[c] += s[d]; s[b] ^= s[c]; s[b] = Rotl(s[b], 12);
  s[a] += s[b]; s[d] ^= s[a]; s[d] = Rotl(s[d], 8);
  s[c] += s[d]; s[b] ^= s[c]; s[b] = Rotl(s[b], 7);
}

void Block(const uint32_t key[8], uint32_t counter, const uint32_t nonce[3],
           uint8_t out[64]) {
  uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
                        key[0],     key[1],     key[2],     key[3],
                        key[4],     key[5],     key[6],     key[7],
                        counter,    nonce[0],   nonce[1],   nonce[2]};
  uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int i = 0; i < 10; ++i) {
    QuarterRound(working, 0, 4, 8, 12);
    QuarterRound(working, 1, 5, 9, 13);
    QuarterRound(working, 2, 6, 10, 14);
    QuarterRound(working, 3, 7, 11, 15);
    QuarterRound(working, 0, 5, 10, 15);
    QuarterRound(working, 1, 6, 11, 12);
    QuarterRound(working, 2, 7, 8, 13);
    QuarterRound(working, 3, 4, 9, 14);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = working[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

void LoadWords(const uint8_t* in, uint32_t* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = GetU32(in + 4 * i);
}

}  // namespace

Result<Bytes> ChaCha20(const Bytes& key, const Bytes& nonce, uint32_t counter,
                       const Bytes& data) {
  if (key.size() != 32) {
    return Status::InvalidArgument("ChaCha20 key must be 32 bytes");
  }
  if (nonce.size() != 12) {
    return Status::InvalidArgument("ChaCha20 nonce must be 12 bytes");
  }
  uint32_t k[8], n[3];
  LoadWords(key.data(), k, 8);
  LoadWords(nonce.data(), n, 3);

  Bytes out(data.size());
  uint8_t keystream[64];
  for (size_t off = 0; off < data.size(); off += 64) {
    Block(k, counter++, n, keystream);
    size_t take = std::min<size_t>(64, data.size() - off);
    for (size_t i = 0; i < take; ++i) out[off + i] = data[off + i] ^ keystream[i];
  }
  return out;
}

Drbg::Drbg(const Bytes& seed) : key_(Sha256::Hash(seed)) {}

void Drbg::Ratchet() {
  uint32_t k[8];
  for (int i = 0; i < 8; ++i) k[i] = GetU32(key_.data() + 4 * i);
  uint32_t nonce[3] = {static_cast<uint32_t>(block_),
                       static_cast<uint32_t>(block_ >> 32), 0x64726267};
  uint8_t buf[64];
  Block(k, 0, nonce, buf);
  ++block_;
  // First 32 bytes become the next key (forward secrecy); the rest is output.
  key_.assign(buf, buf + 32);
  pool_.insert(pool_.end(), buf + 32, buf + 64);
}

void Drbg::Generate(uint8_t* out, size_t len) {
  size_t produced = 0;
  while (produced < len) {
    if (pool_.empty()) Ratchet();
    size_t take = std::min(len - produced, pool_.size());
    std::memcpy(out + produced, pool_.data(), take);
    pool_.erase(pool_.begin(), pool_.begin() + take);
    produced += take;
  }
}

Bytes Drbg::Generate(size_t len) {
  Bytes out(len);
  Generate(out.data(), len);
  return out;
}

}  // namespace ironsafe::crypto
