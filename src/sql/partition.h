#ifndef IRONSAFE_SQL_PARTITION_H_
#define IRONSAFE_SQL_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ironsafe::sql {

/// How one table's rows are distributed across the storage shards of a
/// multi-node fleet (src/dist). The metadata lives at the SQL layer so
/// workload definitions (src/tpch) and the distributed planner consume
/// one shared vocabulary without depending on each other.
enum class PartitionKind {
  /// Every shard holds a full copy; the planner reads it on exactly one
  /// shard per query so the result multiset is unchanged.
  kReplicated,
  /// Row goes to shard SplitMix64(key) % shard_count.
  kHash,
  /// Contiguous key ranges: shard (key - min_key) / chunk, with the
  /// chunk width derived from the loaded key span. Tables range-
  /// partitioned on keys drawn from the same domain (orders/lineitem on
  /// orderkey) land matching keys on the same shard.
  kRange,
};

/// One table's partition spec: the single source of truth shared by the
/// data generator and the fleet's router/planner.
struct TablePartition {
  std::string table;
  PartitionKind kind = PartitionKind::kReplicated;
  std::string key_column;  ///< empty iff kReplicated

  bool operator==(const TablePartition&) const = default;
};

/// The stateless 64-bit mixer behind kHash placement. Splittable,
/// deterministic, and endian-free, so every node computes the same
/// shard for a key on any machine.
inline uint64_t PartitionHash(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_PARTITION_H_
