#include "tee/trustzone.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace ironsafe::tee {

Bytes BootStageRecord::Serialize() const {
  Bytes out;
  PutLengthPrefixed(&out, stage);
  PutLengthPrefixed(&out, measurement);
  PutLengthPrefixed(&out, signature);
  return out;
}

Bytes StorageNodeConfig::Serialize() const {
  Bytes out;
  PutLengthPrefixed(&out, node_id);
  PutLengthPrefixed(&out, location);
  PutU32(&out, firmware_version);
  return out;
}

DeviceManufacturer::DeviceManufacturer(const Bytes& seed) {
  Bytes key_seed = crypto::HkdfSha256({}, seed, ToBytes("rotpk"), 32);
  root_key_ = *crypto::Ed25519KeyPairFromSeed(key_seed);
}

Bytes DeviceManufacturer::CertificateSigningInput(
    const std::string& node_id, const Bytes& device_public_key) {
  Bytes m;
  PutLengthPrefixed(&m, node_id);
  PutLengthPrefixed(&m, device_public_key);
  return m;
}

Bytes DeviceManufacturer::CertifyDevice(const std::string& node_id,
                                        const Bytes& device_public_key) const {
  return *crypto::Ed25519Sign(
      root_key_.private_key,
      CertificateSigningInput(node_id, device_public_key));
}

TrustZoneDevice::TrustZoneDevice(const Bytes& seed,
                                 const DeviceManufacturer& manufacturer,
                                 StorageNodeConfig config)
    : config_(std::move(config)) {
  huk_ = crypto::HkdfSha256({}, seed, ToBytes("hardware-unique-key"), 32);
  Bytes att_seed = crypto::HkdfSha256({}, huk_, ToBytes("attestation"), 32);
  attestation_key_ = *crypto::Ed25519KeyPairFromSeed(att_seed);
  device_certificate_ =
      manufacturer.CertifyDevice(config_.node_id, attestation_key_.public_key);
}

void TrustZoneDevice::Boot(
    const std::vector<std::pair<std::string, Bytes>>& images) {
  chain_.clear();
  Bytes prev;  // ROM stage has no predecessor
  for (const auto& [stage, image] : images) {
    BootStageRecord rec;
    rec.stage = stage;
    rec.measurement = crypto::Sha256::Hash(image);
    Bytes input;
    PutLengthPrefixed(&input, rec.stage);
    PutLengthPrefixed(&input, rec.measurement);
    PutLengthPrefixed(&input, prev);
    rec.signature =
        *crypto::Ed25519Sign(attestation_key_.private_key, input);
    prev = rec.measurement;
    chain_.push_back(std::move(rec));
  }
  normal_world_hash_ = chain_.empty() ? Bytes{} : chain_.back().measurement;
  booted_ = true;
}

Bytes TrustZoneDevice::ChallengeSigningInput(const Bytes& challenge,
                                             const Bytes& normal_world_hash,
                                             const StorageNodeConfig& config) {
  Bytes m;
  PutLengthPrefixed(&m, challenge);
  PutLengthPrefixed(&m, normal_world_hash);
  Bytes cfg = config.Serialize();
  PutLengthPrefixed(&m, cfg);
  return m;
}

Result<TzAttestationResponse> TrustZoneDevice::RespondToChallenge(
    const Bytes& challenge) const {
  if (!booted_) {
    return Status::FailedPrecondition("device has not completed trusted boot");
  }
  TzAttestationResponse resp;
  resp.normal_world_hash = normal_world_hash_;
  resp.cert_chain = chain_;
  resp.config = config_;
  resp.device_public_key = attestation_key_.public_key;
  resp.device_certificate = device_certificate_;
  resp.challenge_signature = *crypto::Ed25519Sign(
      attestation_key_.private_key,
      ChallengeSigningInput(challenge, normal_world_hash_, config_));
  return resp;
}

Bytes TrustZoneDevice::DeriveHardwareKey(std::string_view label,
                                         size_t length) const {
  return crypto::HkdfSha256({}, huk_, ToBytes(label), length);
}

Status VerifyTzAttestation(const Bytes& manufacturer_root_key,
                           const std::string& expected_node_id,
                           const Bytes& challenge,
                           const TzAttestationResponse& response) {
  if (response.config.node_id != expected_node_id) {
    return Status::Unauthenticated("attestation response from wrong node");
  }
  // 1. The device key must be certified by the manufacturer (ROTPK chain).
  if (!crypto::Ed25519Verify(
          manufacturer_root_key,
          DeviceManufacturer::CertificateSigningInput(
              response.config.node_id, response.device_public_key),
          response.device_certificate)) {
    return Status::Unauthenticated("device certificate invalid");
  }
  // 2. The challenge signature proves liveness and binds the measured
  //    normal world and deployment config to this exchange.
  if (!crypto::Ed25519Verify(
          response.device_public_key,
          TrustZoneDevice::ChallengeSigningInput(
              challenge, response.normal_world_hash, response.config),
          response.challenge_signature)) {
    return Status::Unauthenticated("challenge response signature invalid");
  }
  // 3. The secure-boot chain must be internally consistent and signed.
  Bytes prev;
  for (const auto& rec : response.cert_chain) {
    Bytes input;
    PutLengthPrefixed(&input, rec.stage);
    PutLengthPrefixed(&input, rec.measurement);
    PutLengthPrefixed(&input, prev);
    if (!crypto::Ed25519Verify(response.device_public_key, input,
                               rec.signature)) {
      return Status::Unauthenticated("boot certificate chain broken at " +
                                     rec.stage);
    }
    prev = rec.measurement;
  }
  if (!response.cert_chain.empty() &&
      response.cert_chain.back().measurement != response.normal_world_hash) {
    return Status::Unauthenticated(
        "normal world hash does not match boot chain");
  }
  return Status::OK();
}

}  // namespace ironsafe::tee
