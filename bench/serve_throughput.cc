// Multi-tenant serving bench: N closed-loop clients share one IronSafe
// deployment through the src/server QueryService — per-session secure
// channels, bounded fair admission, and the policy-epoch plan cache.
//
//   serve_throughput [sf] [--clients=N] [--workers=N] [--trace-json=...]
//                    [--json=<path>]
//
// Every number in the tables below is simulated time, so the output is
// byte-identical for any --workers value (only the closing wall-clock
// line varies): fixed client schedule + seed => fixed cost totals and a
// fixed default trace, the serving layer's determinism contract.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/retry.h"
#include "engine/ironsafe.h"
#include "server/query_service.h"
#include "sql/value.h"

namespace ironsafe::bench {
namespace {

using engine::IronSafeSystem;
using server::QueryService;

constexpr int kRounds = 6;

/// Per-client result accounting, filled from the decoded responses.
struct ClientTotals {
  uint64_t statements = 0;
  uint64_t rows = 0;
  uint64_t cache_hits = 0;
  uint64_t offloaded = 0;
  sim::SimNanos monitor_ns = 0;
  sim::SimNanos execution_ns = 0;
};

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  BenchTracer tracer(args);
  BaselineWriter writer(args, "serve_throughput");
  const int clients = args.clients;

  IronSafeSystem::Options options;
  options.csa.scale_factor = args.scale_factor;
  auto system_or = IronSafeSystem::Create(options);
  if (!system_or.ok()) Die(system_or.status());
  auto system = std::move(*system_or);
  if (Status st = system->Bootstrap(); !st.ok()) Die(st);
  system->set_current_date(*sql::ParseDate("1997-06-01"));

  // One producer plus N consumers, all on the same protected table.
  system->RegisterClient("producer");
  std::string policy = "read ::= sessionKeyIs(producer)";
  for (int c = 0; c < clients; ++c) {
    std::string key = "c" + std::to_string(c);
    system->RegisterClient(key);
    policy += " | sessionKeyIs(" + key + ")";
  }
  policy += "\nwrite ::= sessionKeyIs(producer)\n";
  if (Status st = system->CreateProtectedTable(
          "producer",
          "CREATE TABLE accounts (id INTEGER, owner VARCHAR, balance DOUBLE)",
          policy, /*with_expiry=*/false, /*with_reuse=*/false);
      !st.ok()) {
    Die(st);
  }
  for (int batch = 0; batch < 8; ++batch) {
    std::string insert = "INSERT INTO accounts (id, owner, balance) VALUES ";
    for (int i = 0; i < 25; ++i) {
      int id = batch * 25 + i;
      if (i) insert += ", ";
      insert += "(" + std::to_string(id) + ", 'user" + std::to_string(id) +
                "', " + std::to_string(100.0 + id) + ")";
    }
    auto r = system->Execute("producer", insert);
    if (!r.ok()) Die(r.status());
  }

  // A deliberately tight global bound so the admission controller's
  // backpressure path is exercised under the default schedule.
  server::ServiceOptions service_options;
  service_options.limits.max_per_session = 4;
  service_options.limits.max_total =
      clients > 1 ? 2 * static_cast<size_t>(clients) - 2 : 2;
  QueryService service(system.get(), service_options);

  struct Client {
    uint64_t session = 0;
    std::unique_ptr<net::SecureChannel> channel;
    std::string hot_sql;   ///< repeated every round -> plan-cache hits
    std::string key;
  };
  std::vector<Client> ends(clients);
  for (int c = 0; c < clients; ++c) {
    Client& client = ends[c];
    client.key = "c" + std::to_string(c);
    auto session = service.OpenSession(client.key);
    if (!session.ok()) Die(session.status());
    client.session = session->id;
    client.channel = std::move(session->channel);
    client.hot_sql = "SELECT owner, balance FROM accounts WHERE id = " +
                     std::to_string(c * 7 % 200);
  }

  // Closed-loop mixed workload: every round each client submits its hot
  // statement plus one varying point/range query. Backpressure retries
  // go through common/retry with the canonical classifier, pumping the
  // scheduler on each backoff so the retry always finds room.
  WallClock wall;
  uint64_t backpressure_hits = 0;
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.retryable = [](const Status& s) { return IsBackpressure(s); };
  retry.on_backoff = [&](int, uint64_t, const Status&) {
    ++backpressure_hits;
    service.RunUntilIdle();
  };

  auto submit = [&](Client& client, const std::string& sql) {
    server::StatementRequest request;
    request.sql = sql;
    auto frame = client.channel->Send(
        server::EncodeStatementRequest(request), nullptr);
    if (!frame.ok()) Die(frame.status());
    Status st = RetryWithBackoff(retry, [&]() -> Status {
      auto seq = service.Submit(client.session, *frame);
      return seq.ok() ? Status::OK() : seq.status();
    });
    if (!st.ok()) Die(st);
  };

  for (int round = 0; round < kRounds; ++round) {
    for (int c = 0; c < clients; ++c) {
      Client& client = ends[c];
      submit(client, client.hot_sql);
      int probe = (round * clients + c) % 200;
      submit(client, "SELECT owner FROM accounts WHERE balance > " +
                         std::to_string(100 + probe) + ".5");
    }
    service.RunUntilIdle();
  }
  size_t drained = service.Drain();

  // Decode every completion on the client side of its channel, folding
  // the response bytes into the shared FNV digest (bench_util.h) and
  // sampling end-to-end latencies for the percentile lines below.
  std::vector<ClientTotals> totals(clients);
  ClientTotals grand;
  uint64_t response_digest = kDigestOffset;
  std::vector<sim::SimNanos> e2e;
  for (int c = 0; c < clients; ++c) {
    Client& client = ends[c];
    for (server::Completion& done : service.TakeCompletions(client.session)) {
      if (!done.transport.ok()) Die(done.transport);
      auto plain = client.channel->Receive(done.response_frame, nullptr);
      if (!plain.ok()) Die(plain.status());
      auto response = server::DecodeStatementResponse(*plain);
      if (!response.ok()) Die(response.status());
      if (!response->status.ok()) Die(response->status);
      response_digest = DigestBytes(response_digest, *plain);
      e2e.push_back(done.e2e_ns);
      ClientTotals& t = totals[c];
      ++t.statements;
      t.rows += response->result.rows.size();
      t.cache_hits += response->plan_cache_hit ? 1 : 0;
      t.offloaded += response->offloaded ? 1 : 0;
      t.monitor_ns += response->monitor_ns;
      t.execution_ns += response->execution_ns;
    }
  }
  service.Shutdown();

  PrintHeader("serve_throughput: " + std::to_string(clients) +
              " clients x " + std::to_string(kRounds) + " rounds");
  std::printf("%-8s %6s %6s %10s %10s %12s %12s\n", "client", "stmts",
              "rows", "cache-hit", "offloaded", "monitor(ms)", "exec(ms)");
  for (int c = 0; c < clients; ++c) {
    const ClientTotals& t = totals[c];
    std::printf("%-8s %6llu %6llu %10llu %10llu %12.3f %12.3f\n",
                ends[c].key.c_str(),
                static_cast<unsigned long long>(t.statements),
                static_cast<unsigned long long>(t.rows),
                static_cast<unsigned long long>(t.cache_hits),
                static_cast<unsigned long long>(t.offloaded),
                static_cast<double>(t.monitor_ns) / 1e6,
                static_cast<double>(t.execution_ns) / 1e6);
    grand.statements += t.statements;
    grand.rows += t.rows;
    grand.cache_hits += t.cache_hits;
    grand.offloaded += t.offloaded;
    grand.monitor_ns += t.monitor_ns;
    grand.execution_ns += t.execution_ns;
  }
  std::printf("%-8s %6llu %6llu %10llu %10llu %12.3f %12.3f\n", "TOTAL",
              static_cast<unsigned long long>(grand.statements),
              static_cast<unsigned long long>(grand.rows),
              static_cast<unsigned long long>(grand.cache_hits),
              static_cast<unsigned long long>(grand.offloaded),
              static_cast<double>(grand.monitor_ns) / 1e6,
              static_cast<double>(grand.execution_ns) / 1e6);

  std::printf("e2e latency: p50 %.3f ms, p99 %.3f ms (sim); "
              "response digest %016llx\n",
              static_cast<double>(Percentile(e2e, 50)) / 1e6,
              static_cast<double>(Percentile(e2e, 99)) / 1e6,
              static_cast<unsigned long long>(response_digest));

  QueryService::Stats stats = service.stats();
  std::printf("admission: %llu accepted, %llu backpressure rejections, "
              "peak queue depth %zu (bound %zu)\n",
              static_cast<unsigned long long>(stats.statements_admitted),
              static_cast<unsigned long long>(stats.statements_rejected),
              stats.peak_queue_depth, service_options.limits.max_total);
  std::printf("plan cache: %llu hits / %llu misses; drain flushed %zu; "
              "serve-side shipping %.3f ms (sim)\n",
              static_cast<unsigned long long>(stats.plan_cache_hits),
              static_cast<unsigned long long>(stats.plan_cache_misses),
              drained, static_cast<double>(stats.total_serve_ns) / 1e6);
  if (backpressure_hits != stats.statements_rejected) {
    std::fprintf(stderr, "retry accounting mismatch\n");
    return 1;
  }
  if (grand.statements != stats.statements_executed) {
    std::fprintf(stderr, "lost or duplicated completions\n");
    return 1;
  }
  // --json: same BENCH_*.json schema as the figure benches (one row per
  // simulated aggregate; no row-engine comparison column here).
  double wall_ms = wall.ms();
  writer.Add("monitor_total", grand.monitor_ns, wall_ms);
  writer.Add("execution_total", grand.execution_ns, wall_ms);
  writer.Add("serve_shipping", stats.total_serve_ns, wall_ms);
  // Tiny configs can dispatch every statement instantly; baseline_check
  // requires every recorded metric to be positive, so skip a zero.
  if (stats.total_sched_delay_ns > 0) {
    writer.Add("sched_delay_total", stats.total_sched_delay_ns, wall_ms);
  }
  PrintWallClock(wall, "the serving sweep");
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
