#include "tools/ironsafe_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace ironsafe::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer: strips comments and literals, tokenizes identifiers and single
// punctuation (with "::" and "->" kept whole), and records preprocessor
// directives and `// ironsafe-lint: allow(...)` suppressions separately.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Directive {
  enum class Kind { kInclude, kIfndef, kDefine, kPragmaOnce, kOther };
  Kind kind;
  std::string arg;    // include target / macro name
  bool angled = false;  // <...> vs "..." for includes
  int line;
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  /// Lines on which diagnostics of a given rule are suppressed.
  std::set<std::pair<int, std::string>> suppressed;
  /// Line of the first token or directive, 0 if the file is empty.
  int first_code_line = 0;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses "rule1, rule2" out of a comment containing the marker
/// `ironsafe-lint: allow(...)` and suppresses those rules on `line` and
/// the following line (so a comment on its own line covers the code
/// under it).
void RecordSuppression(std::string_view comment, int line, Lexed* out) {
  static constexpr std::string_view kMarker = "ironsafe-lint: allow(";
  size_t at = comment.find(kMarker);
  if (at == std::string_view::npos) return;
  size_t open = at + kMarker.size();
  size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(open, close - open);
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    std::string_view rule = list.substr(pos, comma - pos);
    while (!rule.empty() && rule.front() == ' ') rule.remove_prefix(1);
    while (!rule.empty() && rule.back() == ' ') rule.remove_suffix(1);
    if (!rule.empty()) {
      out->suppressed.emplace(line, std::string(rule));
      out->suppressed.emplace(line + 1, std::string(rule));
    }
    pos = comma + 1;
  }
}

/// Consumes a preprocessor directive starting at `i` (just past '#').
size_t LexDirective(std::string_view s, size_t i, int line, Lexed* out) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  size_t word_start = i;
  while (i < s.size() && IsIdentChar(s[i])) ++i;
  std::string_view word = s.substr(word_start, i - word_start);

  Directive d;
  d.line = line;
  d.kind = Directive::Kind::kOther;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  if (word == "include") {
    d.kind = Directive::Kind::kInclude;
    if (i < s.size() && (s[i] == '"' || s[i] == '<')) {
      char closer = s[i] == '<' ? '>' : '"';
      d.angled = s[i] == '<';
      size_t start = ++i;
      while (i < s.size() && s[i] != closer && s[i] != '\n') ++i;
      d.arg = std::string(s.substr(start, i - start));
      if (i < s.size() && s[i] == closer) ++i;
    }
  } else if (word == "ifndef" || word == "define") {
    d.kind = word == "ifndef" ? Directive::Kind::kIfndef
                              : Directive::Kind::kDefine;
    size_t start = i;
    while (i < s.size() && IsIdentChar(s[i])) ++i;
    d.arg = std::string(s.substr(start, i - start));
  } else if (word == "pragma") {
    size_t start = i;
    while (i < s.size() && IsIdentChar(s[i])) ++i;
    if (s.substr(start, i - start) == "once") d.kind = Directive::Kind::kPragmaOnce;
  }
  out->directives.push_back(std::move(d));
  if (out->first_code_line == 0) out->first_code_line = line;
  // Skip the rest of the directive line, honoring backslash continuations
  // but still peeling off trailing // comments for suppression markers.
  while (i < s.size() && s[i] != '\n') {
    if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') {
      i += 2;
      continue;
    }
    if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/') break;
    ++i;
  }
  return i;
}

Lexed Lex(std::string_view s) {
  Lexed out;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      size_t start = i;
      while (i < s.size() && s[i] != '\n') ++i;
      RecordSuppression(s.substr(start, i - start), line, &out);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      size_t start = i;
      int start_line = line;
      i += 2;
      while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) {
        if (s[i] == '\n') ++line;
        ++i;
      }
      i = std::min(i + 2, s.size());
      RecordSuppression(s.substr(start, i - start), start_line, &out);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"') {
      size_t dstart = i + 2;
      size_t paren = s.find('(', dstart);
      if (paren != std::string_view::npos && paren - dstart <= 16) {
        std::string closer = ")" + std::string(s.substr(dstart, paren - dstart)) + "\"";
        size_t end = s.find(closer, paren + 1);
        for (size_t j = i; j < std::min(end, s.size()); ++j)
          if (s[j] == '\n') ++line;
        i = end == std::string_view::npos ? s.size() : end + closer.size();
        at_line_start = false;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < s.size() && s[i] != quote && s[i] != '\n') {
        if (s[i] == '\\' && i + 1 < s.size()) ++i;
        ++i;
      }
      if (i < s.size() && s[i] == quote) ++i;
      at_line_start = false;
      continue;
    }
    // Preprocessor directive.
    if (c == '#' && at_line_start) {
      i = LexDirective(s, i + 1, line, &out);
      continue;
    }
    at_line_start = false;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < s.size() && IsIdentChar(s[i])) ++i;
      out.tokens.push_back(
          {Token::Kind::kIdent, std::string(s.substr(start, i - start)), line});
      if (out.first_code_line == 0) out.first_code_line = line;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < s.size() && (IsIdentChar(s[i]) || s[i] == '.')) ++i;
      if (out.first_code_line == 0) out.first_code_line = line;
      continue;  // numbers never matter to any rule
    }
    // Punctuation; keep "::" and "->" whole so scope resolution and
    // member access are single tokens.
    std::string punct(1, c);
    if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
      punct = "::";
      ++i;
    } else if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
      punct = "->";
      ++i;
    }
    out.tokens.push_back({Token::Kind::kPunct, std::move(punct), line});
    if (out.first_code_line == 0) out.first_code_line = line;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule tables.
// ---------------------------------------------------------------------------

/// Direct dependencies of each src/ module, mirroring the
/// target_link_libraries edges in src/*/CMakeLists.txt. The checker
/// takes the transitive closure, so a module may include anything it
/// links against directly or indirectly.
const std::map<std::string, std::vector<std::string>>& ModuleDeps() {
  static const std::map<std::string, std::vector<std::string>> kDeps = {
      {"common", {}},
      {"crypto", {"common"}},
      {"sim", {"common"}},
      {"obs", {"common", "sim"}},
      {"storage", {"common", "sim"}},
      {"tee", {"common", "crypto", "obs", "sim"}},
      {"securestore", {"common", "crypto", "storage", "tee"}},
      {"sql", {"common", "sim", "obs", "storage", "securestore"}},
      {"tpch", {"common", "sql"}},
      {"net", {"common", "crypto", "obs", "sim", "sql"}},
      {"policy", {"common", "sql"}},
      {"monitor", {"common", "crypto", "obs", "policy", "tee", "sql"}},
      {"engine",
       {"common", "obs", "sql", "net", "monitor", "policy", "tee",
        "securestore"}},
      // The distributed fleet generalizes engine's single-node testbed;
      // it may not include tpch (partition specs flow through
      // sql/partition.h) nor server.
      {"dist", {"common", "obs", "sim", "net", "storage", "engine"}},
      // The serving layer sits on top of everything; no lower module may
      // include server (enforced by its absence from their dep lists).
      {"server", {"common", "obs", "net", "engine"}},
  };
  return kDeps;
}

/// Transitive closure of ModuleDeps() plus self, computed once.
const std::map<std::string, std::set<std::string>>& ModuleClosure() {
  static const std::map<std::string, std::set<std::string>> kClosure = [] {
    std::map<std::string, std::set<std::string>> closure;
    for (const auto& [mod, _] : ModuleDeps()) {
      std::set<std::string>& reach = closure[mod];
      std::vector<std::string> stack = {mod};
      while (!stack.empty()) {
        std::string cur = stack.back();
        stack.pop_back();
        if (!reach.insert(cur).second) continue;
        auto it = ModuleDeps().find(cur);
        if (it == ModuleDeps().end()) continue;
        for (const std::string& dep : it->second) stack.push_back(dep);
      }
    }
    return closure;
  }();
  return kClosure;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}
bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// src/<module>/... -> module; anything else (bench, tests, examples,
/// tools) is unrestricted and returns "".
std::string ModuleOf(std::string_view rel_path) {
  if (!StartsWith(rel_path, "src/")) return "";
  std::string_view rest = rel_path.substr(4);
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

bool IsHeader(std::string_view rel_path) { return EndsWith(rel_path, ".h"); }

bool IsSecureWorld(std::string_view rel_path) {
  return StartsWith(rel_path, "src/tee/") ||
         StartsWith(rel_path, "src/securestore/");
}

/// Files whose serialized output order is observable: trace/metric
/// exporters, the JSON writer, and the wire format.
bool IsOrderedOutputFile(std::string_view rel_path) {
  if (StartsWith(rel_path, "src/obs/")) return true;
  std::string p(rel_path);
  for (const char* needle : {"wire", "export", "serial", "writer", "trace"})
    if (p.find(needle) != std::string::npos) return true;
  return false;
}

/// Files allowed to read real clocks: the bench wall-clock shim and the
/// thread-pool timing shim. Everything else must use simulated time (or
/// carry an explicit allow() with its justification).
bool IsTimingShim(std::string_view rel_path) {
  return rel_path == "bench/bench_util.h" ||
         rel_path == "src/common/thread_pool.cc";
}

/// True when `toks[i]` followed by '(' reads as a *call* of toks[i].
/// Member access (x.time(), x->printf()) and qualification by anything
/// but std (foo::time()) belong to someone else; an identifier before it
/// (`void printf(`, `long time(`) makes it a declaration, which no rule
/// bans.
bool LooksLikeCall(const std::vector<Token>& toks, size_t i) {
  if (i + 1 >= toks.size() || toks[i + 1].text != "(") return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == Token::Kind::kPunct) {
    if (prev.text == "." || prev.text == "->") return false;
    if (prev.text == "::") return i >= 2 && toks[i - 2].text == "std";
    return true;
  }
  static const std::set<std::string> kCallKeywords = {"return", "case", "else",
                                                      "do", "throw"};
  return kCallKeywords.count(prev.text) > 0;
}

struct Checker {
  std::string_view rel_path;
  const Lexed& lx;
  std::vector<Diagnostic>* diags;

  void Emit(const char* rule, int line, std::string message) {
    if (lx.suppressed.count({line, rule})) return;
    diags->push_back({rule, std::string(rel_path), line, std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// Rule: layering.
// ---------------------------------------------------------------------------

void CheckLayering(Checker& c) {
  std::string mod = ModuleOf(c.rel_path);
  if (mod.empty()) return;
  auto closure_it = ModuleClosure().find(mod);
  if (closure_it == ModuleClosure().end()) {
    c.Emit("layering", c.lx.first_code_line == 0 ? 1 : c.lx.first_code_line,
           "src module '" + mod +
               "' is not declared in the layering DAG (tools/ironsafe_lint)");
    return;
  }
  for (const Directive& d : c.lx.directives) {
    if (d.kind != Directive::Kind::kInclude || d.angled) continue;
    size_t slash = d.arg.find('/');
    // Same-directory quoted include ("foo.h") stays inside the module.
    if (slash == std::string::npos) continue;
    std::string target = d.arg.substr(0, slash);
    if (closure_it->second.count(target)) continue;
    if (ModuleClosure().count(target)) {
      c.Emit("layering", d.line,
             "module '" + mod + "' must not include '" + d.arg +
                 "': '" + target + "' is not in its dependency closure");
    } else {
      c.Emit("layering", d.line,
             "module '" + mod + "' includes '" + d.arg +
                 "' from outside the src library DAG");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: enclave-boundary.
// ---------------------------------------------------------------------------

void CheckEnclaveBoundary(Checker& c) {
  if (!IsSecureWorld(c.rel_path)) return;
  for (const Directive& d : c.lx.directives) {
    if (d.kind != Directive::Kind::kInclude) continue;
    bool banned = EndsWith(d.arg, "logging.h") || d.arg == "iostream" ||
                  d.arg == "fstream" || d.arg == "cstdio" ||
                  d.arg == "stdio.h" || d.arg == "ostream" ||
                  d.arg == "iosfwd";
    if (banned) {
      c.Emit("enclave-boundary", d.line,
             "secure-world file includes untrusted I/O header <" + d.arg +
                 ">; enclave code must not perform host I/O");
    }
  }
  static const std::set<std::string> kPrintfFamily = {
      "printf", "fprintf",  "sprintf", "snprintf", "vprintf",
      "vfprintf", "vsnprintf", "puts",  "fputs",   "putchar"};
  const auto& toks = c.lx.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || !kPrintfFamily.count(toks[i].text))
      continue;
    if (!LooksLikeCall(toks, i)) continue;
    c.Emit("enclave-boundary", toks[i].line,
           "secure-world file calls '" + toks[i].text +
               "'; enclave code must not perform host I/O");
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism.
// ---------------------------------------------------------------------------

void CheckDeterminismClocks(Checker& c) {
  if (IsTimingShim(c.rel_path)) return;
  static const std::set<std::string> kBannedIdents = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock", "gettimeofday", "clock_gettime"};
  static const std::set<std::string> kBannedCalls = {"rand", "srand", "time",
                                                     "clock", "localtime",
                                                     "gmtime"};
  const auto& toks = c.lx.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& id = toks[i].text;
    if (kBannedIdents.count(id)) {
      // Member access (x.system_clock) would be a false positive, but
      // scope-qualified std::chrono::system_clock must still fire.
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
        continue;
      c.Emit("determinism", toks[i].line,
             "'" + id +
                 "' breaks run-to-run determinism; use sim::CostModel time "
                 "or common/random.h seeded PRNG");
      continue;
    }
    if (kBannedCalls.count(id) && LooksLikeCall(toks, i)) {
      c.Emit("determinism", toks[i].line,
             "'" + id +
                 "(' is nondeterministic; use sim::CostModel time or "
                 "common/random.h seeded PRNG");
    }
  }
}

/// In ordered-output files, find identifiers declared as
/// unordered_map/unordered_set and flag range-fors (and .begin() walks)
/// over them: hash order must never reach serialized output.
void CheckDeterminismUnorderedIteration(Checker& c) {
  if (!IsOrderedOutputFile(c.rel_path)) return;
  const auto& toks = c.lx.tokens;

  // Pass 1: collect declared unordered container variable names.
  std::set<std::string> unordered_vars;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set")
      continue;
    size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">") {
        if (--depth == 0) break;
      }
    }
    // After the closing '>': optional &/* then the declared name.
    for (++j; j < toks.size() && (toks[j].text == "&" || toks[j].text == "*");
         ++j) {
    }
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent)
      unordered_vars.insert(toks[j].text);
  }
  if (unordered_vars.empty()) return;

  // Pass 2: range-fors whose range expression names a tracked variable.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
    int depth = 0;
    size_t colon = 0, close = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;
    // Flag only a bare variable / member chain (`m`, `this->m_`, `obj.m`);
    // a call like `SortedKeys(m)` is how the fix is spelled, so any '('
    // in the range expression exempts it.
    bool plain_chain = true;
    std::string flagged;
    int flagged_line = 0;
    for (size_t j = colon + 1; j < close; ++j) {
      const std::string& t = toks[j].text;
      if (toks[j].kind == Token::Kind::kIdent) {
        if (unordered_vars.count(t)) {
          flagged = t;
          flagged_line = toks[j].line;
        }
        continue;
      }
      if (t != "." && t != "->" && t != "::" && t != "*" && t != "&") {
        plain_chain = false;
        break;
      }
    }
    if (plain_chain && !flagged.empty()) {
      c.Emit("determinism", flagged_line,
             "iteration over unordered container '" + flagged +
                 "' in an ordered-output file serializes hash order; "
                 "iterate sorted keys instead");
    }
  }

  // Pass 3: explicit iterator walks, `v.begin(`.
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent &&
        unordered_vars.count(toks[i].text) &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin") &&
        toks[i + 3].text == "(") {
      c.Emit("determinism", toks[i].line,
             "iteration over unordered container '" + toks[i].text +
                 "' in an ordered-output file serializes hash order; "
                 "iterate sorted keys instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-status.
// ---------------------------------------------------------------------------

/// Modules carrying fault-injection sites (docs/FAULT_INJECTION.md): a
/// discarded Status/Result from a fallible call here silently swallows an
/// injected — or real — fault.
bool IsFaultInjectableModule(std::string_view rel_path) {
  return StartsWith(rel_path, "src/net/") || StartsWith(rel_path, "src/tee/") ||
         StartsWith(rel_path, "src/securestore/");
}

/// Method/function names in the fault-injectable modules that return
/// Status or Result<T>. Void-returning writers (WriteFrame, WriteMetadata,
/// Append) are deliberately absent.
const std::set<std::string>& FallibleCallNames() {
  static const std::set<std::string> kNames = {
      "Send",        "Receive",   "AuthenticatedWrite", "ProgramKey",
      "Provision",   "Write",     "Read",               "ReadPage",
      "WritePage",   "ReadFrame", "CommitRoot",         "VerifyRoot",
      "Initialize",  "EndBatch",  "Persist",            "EnterExit",
      "GetDataKey",  "VerifyLeaf", "Seal",              "Unseal",
      "Open"};
  return kNames;
}

/// Flags statement-position calls (chain of idents joined by ::/./->
/// directly between statement boundaries, immediately followed by an
/// argument list and ';') whose final callee is a known fallible name.
/// `return f();`, assignments, and `(void)f();` casts all break the
/// statement-position pattern and are exempt.
void CheckUncheckedStatus(Checker& c) {
  if (!IsFaultInjectableModule(c.rel_path)) return;
  const auto& toks = c.lx.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (prev.kind != Token::Kind::kPunct ||
          (prev.text != ";" && prev.text != "{" && prev.text != "}"))
        continue;
    }
    if (toks[i].kind != Token::Kind::kIdent) continue;
    size_t j = i;
    std::string callee = toks[j].text;
    while (j + 2 < toks.size() && toks[j + 1].kind == Token::Kind::kPunct &&
           (toks[j + 1].text == "::" || toks[j + 1].text == "." ||
            toks[j + 1].text == "->") &&
           toks[j + 2].kind == Token::Kind::kIdent) {
      j += 2;
      callee = toks[j].text;
    }
    if (j + 1 >= toks.size() || toks[j + 1].text != "(") continue;
    if (!FallibleCallNames().count(callee)) continue;
    int depth = 0;
    size_t k = j + 1;
    for (; k < toks.size(); ++k) {
      if (toks[k].text == "(") {
        ++depth;
      } else if (toks[k].text == ")" && --depth == 0) {
        break;
      }
    }
    if (k + 1 >= toks.size() || toks[k + 1].text != ";") continue;
    c.Emit("unchecked-status", toks[i].line,
           "result of fallible call '" + callee +
               "' is discarded; fault-injectable modules must check every "
               "Status/Result (RETURN_IF_ERROR or explicit handling)");
  }
}

// ---------------------------------------------------------------------------
// Rule: vector-kernel-boxing.
// ---------------------------------------------------------------------------

/// The vectorized engine's innermost kernels (sql/vector_kernels.*) work
/// on raw payload arrays; touching the boxed Value type there would
/// reintroduce per-row allocation on the hottest loops.
bool IsVectorKernelFile(std::string_view rel_path) {
  return rel_path.find("vector_kernels") != std::string_view::npos;
}

void CheckVectorKernelBoxing(Checker& c) {
  if (!IsVectorKernelFile(c.rel_path)) return;
  for (const Token& t : c.lx.tokens) {
    if (t.kind == Token::Kind::kIdent && t.text == "Value") {
      c.Emit("vector-kernel-boxing", t.line,
             "vector kernels must stay unboxed: 'Value' is banned in "
             "vector_kernels files; operate on raw payload arrays and let "
             "vector_eval.cc do any boxing");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: oblivious-branching.
// ---------------------------------------------------------------------------

/// The oblivious mode's innermost kernels (sql/oblivious_kernels.*) must
/// be branch-free: their control flow may depend only on public shapes
/// (element counts, network size, limits), never on decrypted values.
/// Data-dependent decisions have to go through arithmetic selects — a
/// conditional branch would leak the decision through the instruction
/// and data access stream. for/while loops over public bounds are the
/// only allowed control flow.
bool IsObliviousKernelFile(std::string_view rel_path) {
  return rel_path.find("oblivious_kernels") != std::string_view::npos;
}

void CheckObliviousBranching(Checker& c) {
  if (!IsObliviousKernelFile(c.rel_path)) return;
  static const std::set<std::string> kBannedKeywords = {
      "if", "else", "switch", "case", "goto", "break", "continue"};
  for (const Token& t : c.lx.tokens) {
    bool banned =
        (t.kind == Token::Kind::kIdent && kBannedKeywords.count(t.text) > 0) ||
        (t.kind == Token::Kind::kPunct && t.text == "?");
    if (banned) {
      c.Emit("oblivious-branching", t.line,
             "data-dependent branching ('" + t.text +
                 "') is banned in oblivious_kernels files; the access "
                 "sequence must be a pure function of public shapes — use "
                 "arithmetic selects and fixed-trip loops instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: hygiene.
// ---------------------------------------------------------------------------

void CheckHygiene(Checker& c) {
  if (!IsHeader(c.rel_path)) return;
  const auto& dirs = c.lx.directives;
  bool guarded = false;
  for (const Directive& d : dirs) {
    if (d.kind == Directive::Kind::kPragmaOnce) guarded = true;
  }
  if (!guarded && dirs.size() >= 2 &&
      dirs[0].kind == Directive::Kind::kIfndef &&
      dirs[1].kind == Directive::Kind::kDefine && dirs[0].arg == dirs[1].arg &&
      !dirs[0].arg.empty()) {
    // The guard must open the file: no code tokens before the #ifndef.
    guarded = c.lx.tokens.empty() || c.lx.tokens[0].line >= dirs[0].line;
  }
  if (!guarded) {
    c.Emit("hygiene", 1,
           "header lacks an include guard (#ifndef/#define pair or "
           "#pragma once)");
  }

  const auto& toks = c.lx.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "using" && toks[i + 1].text == "namespace" &&
        toks[i + 2].text == "std") {
      c.Emit("hygiene", toks[i].line,
             "'using namespace std;' in a header pollutes every includer");
    }
  }
}

// ---------------------------------------------------------------------------
// Tree walk + include-cycle detection.
// ---------------------------------------------------------------------------

bool IsCppFile(const std::filesystem::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string ReadFile(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Resolves a quoted include to a scanned file's root-relative path.
/// Quoted includes resolve against src/ (the include root), the repo
/// root (bench/ headers), and the includer's own directory.
std::string ResolveInclude(const std::set<std::string>& files,
                           const std::string& includer,
                           const std::string& inc) {
  std::string candidates[3];
  candidates[0] = "src/" + inc;
  candidates[1] = inc;
  size_t slash = includer.rfind('/');
  candidates[2] =
      slash == std::string::npos ? inc : includer.substr(0, slash + 1) + inc;
  for (const std::string& cand : candidates)
    if (files.count(cand)) return cand;
  return "";
}

void CheckIncludeCycles(
    const std::map<std::string, std::vector<std::string>>& graph,
    std::vector<Diagnostic>* diags) {
  // Iterative three-color DFS; a back edge closes a cycle.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  for (const auto& [start, _] : graph) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, size_t>> stack = {{start, 0}};
    std::vector<std::string> path = {start};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& edges = graph.at(node);
      if (next < edges.size()) {
        std::string child = edges[next++];
        if (!graph.count(child)) continue;
        if (color[child] == 1) {
          auto at = std::find(path.begin(), path.end(), child);
          std::string chain;
          for (auto it = at; it != path.end(); ++it) chain += *it + " -> ";
          chain += child;
          diags->push_back({"layering", node, 1,
                            "include cycle: " + chain});
          continue;
        }
        if (color[child] == 0) {
          color[child] = 1;
          stack.emplace_back(child, 0);
          path.push_back(child);
        }
      } else {
        color[node] = 2;
        stack.pop_back();
        path.pop_back();
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> LintSource(std::string_view rel_path,
                                   std::string_view text) {
  Lexed lx = Lex(text);
  std::vector<Diagnostic> diags;
  Checker c{rel_path, lx, &diags};
  CheckLayering(c);
  CheckEnclaveBoundary(c);
  CheckDeterminismClocks(c);
  CheckDeterminismUnorderedIteration(c);
  CheckUncheckedStatus(c);
  CheckVectorKernelBoxing(c);
  CheckObliviousBranching(c);
  CheckHygiene(c);
  return diags;
}

Report LintTree(const Options& opts) {
  namespace fs = std::filesystem;
  Report report;
  fs::path root = fs::path(opts.tree_root);

  std::vector<std::string> rel_paths;
  for (const std::string& sub : opts.roots) {
    fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsCppFile(entry.path())) continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      bool excluded = false;
      for (const std::string& needle : opts.exclude_substrings)
        if (rel.find(needle) != std::string::npos) excluded = true;
      if (!excluded) rel_paths.push_back(std::move(rel));
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::set<std::string> file_set(rel_paths.begin(), rel_paths.end());
  std::map<std::string, std::vector<std::string>> include_graph;
  for (const std::string& rel : rel_paths) {
    std::string text = ReadFile(root / rel);
    ++report.files_scanned;
    Lexed lx = Lex(text);
    Checker c{rel, lx, &report.diagnostics};
    CheckLayering(c);
    CheckEnclaveBoundary(c);
    CheckDeterminismClocks(c);
    CheckDeterminismUnorderedIteration(c);
    CheckUncheckedStatus(c);
    CheckVectorKernelBoxing(c);
    CheckObliviousBranching(c);
    CheckHygiene(c);

    std::vector<std::string>& edges = include_graph[rel];
    for (const Directive& d : lx.directives) {
      if (d.kind != Directive::Kind::kInclude || d.angled) continue;
      std::string target = ResolveInclude(file_set, rel, d.arg);
      if (!target.empty() && target != rel) edges.push_back(target);
    }
  }
  CheckIncludeCycles(include_graph, &report.diagnostics);

  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

std::string ReportToJson(const Report& report) {
  std::ostringstream out;
  out << "{\"version\":1,\"files_scanned\":" << report.files_scanned
      << ",\"violation_count\":" << report.diagnostics.size()
      << ",\"diagnostics\":[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i) out << ",";
    out << "{\"rule\":" << obs::JsonQuote(d.rule)
        << ",\"file\":" << obs::JsonQuote(d.file) << ",\"line\":" << d.line
        << ",\"message\":" << obs::JsonQuote(d.message) << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace ironsafe::lint
