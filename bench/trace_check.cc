// Validates a Chrome trace_event file produced by a bench's
// `--trace-json=<path>` flag:
//
//   trace_check <trace.json> [required-span-name...]
//
// Checks that the file parses as JSON, that every event is a well-formed
// complete ("ph":"X") event with a unique id and a resolvable parent,
// that children lie inside their parent's [ts, ts+dur] interval, and
// that for every root span named "query" the direct children tile the
// root exactly — their simulated durations sum to the root's duration,
// which is the bench's reported total cost for that query. Any span
// names given on the command line must appear at least once.
//
// Exit status: 0 on success, 1 on any violation (printed to stderr).

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace ironsafe::bench {
namespace {

using obs::JsonValue;

int errors = 0;

void Fail(const std::string& message) {
  std::fprintf(stderr, "trace_check: %s\n", message.c_str());
  ++errors;
}

/// ts/dur are written as decimal microseconds with exactly three
/// fractional digits, so nanoseconds round-trip exactly.
int64_t UsToNs(double us) { return std::llround(us * 1000.0); }

struct Event {
  std::string name;
  int64_t id = -1;
  int64_t parent = -1;
  int64_t ts_ns = 0;
  int64_t dur_ns = 0;
  bool detail = false;
};

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_check <trace.json> [required-span-name...]\n");
    return 1;
  }

  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    Fail(std::string("cannot open ") + argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto doc_or = obs::JsonParse(text);
  if (!doc_or.ok()) {
    Fail("invalid JSON: " + doc_or.status().ToString());
    return 1;
  }
  const JsonValue& doc = *doc_or;
  if (!doc.is_object()) {
    Fail("top-level value is not an object");
    return 1;
  }
  const JsonValue* events_json = doc.Find("traceEvents");
  if (events_json == nullptr || !events_json->is_array()) {
    Fail("missing traceEvents array");
    return 1;
  }

  std::vector<Event> events;
  std::map<int64_t, size_t> by_id;
  for (size_t i = 0; i < events_json->array_value.size(); ++i) {
    const JsonValue& ev = events_json->array_value[i];
    std::string where = "event #" + std::to_string(i);
    if (!ev.is_object()) {
      Fail(where + " is not an object");
      continue;
    }
    Event out;
    const JsonValue* name = ev.Find("name");
    const JsonValue* ph = ev.Find("ph");
    const JsonValue* ts = ev.Find("ts");
    const JsonValue* dur = ev.Find("dur");
    const JsonValue* args = ev.Find("args");
    if (name == nullptr || !name->is_string()) {
      Fail(where + " has no string name");
      continue;
    }
    out.name = name->string_value;
    where += " (" + out.name + ")";
    if (ph == nullptr || !ph->is_string() || ph->string_value != "X") {
      Fail(where + " is not a complete (ph=X) event");
    }
    if (ts == nullptr || !ts->is_number() || dur == nullptr ||
        !dur->is_number()) {
      Fail(where + " lacks numeric ts/dur");
      continue;
    }
    out.ts_ns = UsToNs(ts->number_value);
    out.dur_ns = UsToNs(dur->number_value);
    if (out.ts_ns < 0 || out.dur_ns < 0) {
      Fail(where + " has negative ts or dur");
    }
    if (args == nullptr || !args->is_object()) {
      Fail(where + " has no args object");
      continue;
    }
    const JsonValue* id = args->Find("id");
    const JsonValue* parent = args->Find("parent");
    if (id == nullptr || !id->is_number() || parent == nullptr ||
        !parent->is_number()) {
      Fail(where + " args lack numeric id/parent");
      continue;
    }
    out.id = std::llround(id->number_value);
    out.parent = std::llround(parent->number_value);
    const JsonValue* detail = args->Find("detail");
    out.detail = detail != nullptr && detail->bool_value;
    if (!by_id.emplace(out.id, events.size()).second) {
      Fail(where + " reuses span id " + std::to_string(out.id));
    }
    events.push_back(out);
  }

  // Parent resolution and containment.
  for (const Event& ev : events) {
    if (ev.parent < 0) continue;
    auto it = by_id.find(ev.parent);
    if (it == by_id.end()) {
      // Detail spans may reference an exported parent only; non-detail
      // spans must resolve.
      if (!ev.detail) {
        Fail("span " + ev.name + " references missing parent " +
             std::to_string(ev.parent));
      }
      continue;
    }
    const Event& parent = events[it->second];
    if (ev.ts_ns < parent.ts_ns ||
        ev.ts_ns + ev.dur_ns > parent.ts_ns + parent.dur_ns) {
      Fail("span " + ev.name + " [" + std::to_string(ev.ts_ns) + "," +
           std::to_string(ev.ts_ns + ev.dur_ns) + "]ns escapes parent " +
           parent.name + " [" + std::to_string(parent.ts_ns) + "," +
           std::to_string(parent.ts_ns + parent.dur_ns) + "]ns");
    }
  }

  // Every root "query" span must be tiled exactly by its direct
  // (non-detail) children: the phase durations sum to the total cost.
  int query_roots = 0;
  for (const Event& root : events) {
    if (root.parent != -1 || root.name != "query") continue;
    ++query_roots;
    int64_t child_sum = 0;
    for (const Event& ev : events) {
      if (ev.parent == root.id && !ev.detail) child_sum += ev.dur_ns;
    }
    if (child_sum != root.dur_ns) {
      Fail("query root id " + std::to_string(root.id) +
           ": phase durations sum to " + std::to_string(child_sum) +
           " ns but the root spans " + std::to_string(root.dur_ns) + " ns");
    }
  }

  // Required span names from the command line.
  std::set<std::string> seen;
  for (const Event& ev : events) seen.insert(ev.name);
  for (int i = 2; i < argc; ++i) {
    if (seen.count(argv[i]) == 0) {
      Fail(std::string("required span \"") + argv[i] + "\" not found");
    }
  }

  if (errors > 0) {
    std::fprintf(stderr, "trace_check: %d error(s) in %s\n", errors, argv[1]);
    return 1;
  }
  std::printf("trace_check: %s ok (%zu events, %d query roots)\n", argv[1],
              events.size(), query_roots);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
