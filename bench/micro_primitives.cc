// google-benchmark microbenchmarks of the primitives every IronSafe
// query exercises: hashing, MACs, page encryption, signatures, the
// Merkle tree, the secure page store, the secure channel, and the
// vectorized engine's filter/hash-probe kernels (with a boxed
// row-at-a-time counterpart for before/after comparison).

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "bench/bench_util.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "net/secure_channel.h"
#include "securestore/merkle_tree.h"
#include "securestore/secure_store.h"
#include "sql/column_batch.h"
#include "sql/value.h"
#include "sql/vector_kernels.h"

namespace ironsafe {
namespace {

void BM_Sha256_4KiB(benchmark::State& state) {
  Bytes data(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Sha256_4KiB);

void BM_Sha512_4KiB(benchmark::State& state) {
  Bytes data(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha512::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Sha512_4KiB);

void BM_HmacSha512_4KiB(benchmark::State& state) {
  Bytes key(32, 1), data(4096, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha512(key, data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HmacSha512_4KiB);

void BM_AesCbcEncrypt_4KiB(benchmark::State& state) {
  Bytes key(32, 1), iv(16, 2), page(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::AesCbcEncrypt(key, iv, page));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AesCbcEncrypt_4KiB);

void BM_ChaCha20_4KiB(benchmark::State& state) {
  Bytes key(32, 1), nonce(12, 2), data(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ChaCha20(key, nonce, 0, data));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ChaCha20_4KiB);

void BM_Ed25519_Sign(benchmark::State& state) {
  auto kp = *crypto::Ed25519KeyPairFromSeed(Bytes(32, 7));
  Bytes msg = ToBytes("attestation quote payload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Ed25519Sign(kp.private_key, msg));
  }
}
BENCHMARK(BM_Ed25519_Sign);

void BM_Ed25519_Verify(benchmark::State& state) {
  auto kp = *crypto::Ed25519KeyPairFromSeed(Bytes(32, 7));
  Bytes msg = ToBytes("attestation quote payload");
  Bytes sig = *crypto::Ed25519Sign(kp.private_key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Ed25519Verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519_Verify);

void BM_X25519(benchmark::State& state) {
  Bytes scalar(32, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::X25519Base(scalar));
  }
}
BENCHMARK(BM_X25519);

void BM_MerkleVerify(benchmark::State& state) {
  const uint64_t leaves = state.range(0);
  securestore::MerkleTree tree(Bytes(32, 1), leaves);
  for (uint64_t i = 0; i < leaves; ++i) {
    tree.UpdateLeaf(i, crypto::Sha256::Hash(std::to_string(i)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes mac = crypto::Sha256::Hash(std::to_string(i % leaves));
    benchmark::DoNotOptimize(tree.VerifyLeaf(i % leaves, mac));
    ++i;
  }
}
BENCHMARK(BM_MerkleVerify)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SecureStoreReadPage(benchmark::State& state) {
  tee::DeviceManufacturer mfg(ToBytes("m"));
  tee::TrustZoneDevice device(ToBytes("d"), mfg, {"n", "eu", 1});
  securestore::SecureStorageTa ta(&device);
  storage::BlockDevice disk;
  auto store = *securestore::SecureStore::Create(&disk, &ta);
  store->BeginBatch();
  for (uint64_t i = 0; i < 64; ++i) {
    (void)store->WritePage(i, Bytes(4096, static_cast<uint8_t>(i)));
  }
  (void)store->EndBatch();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->ReadPage(i++ % 64));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SecureStoreReadPage);

void BM_SecureChannelRoundTrip(benchmark::State& state) {
  auto pair = *net::Handshake::FromSessionKey(Bytes(32, 9));
  Bytes payload(state.range(0), 0x5A);
  for (auto _ : state) {
    auto frame = pair.first->Send(payload, nullptr);
    benchmark::DoNotOptimize(pair.second->Receive(*frame, nullptr));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SecureChannelRoundTrip)->Arg(1024)->Arg(65536);

// ---- Vectorized-engine kernels ----
// One ColumnBatch worth of rows per iteration, matching the batch size
// the executor feeds the kernels.

constexpr size_t kKernelRows = sql::ColumnBatch::kBatchRows;

/// Values 0..99 round-robin, so a cutoff of `pct` keeps ~pct% of rows.
std::vector<int64_t> KernelColumn() {
  std::vector<int64_t> vals(kKernelRows);
  for (size_t i = 0; i < kKernelRows; ++i) {
    vals[i] = static_cast<int64_t>(i % 100);
  }
  return vals;
}

/// FilterI64 over a full batch; Arg = selectivity in percent (0/50/100).
void BM_VecFilterI64(benchmark::State& state) {
  std::vector<int64_t> vals = KernelColumn();
  int64_t cutoff = state.range(0);  // keeps vals[i] < cutoff
  std::vector<uint32_t> sel(kKernelRows);
  for (auto _ : state) {
    for (size_t i = 0; i < kKernelRows; ++i) sel[i] = static_cast<uint32_t>(i);
    benchmark::DoNotOptimize(sql::vec::FilterI64(
        vals.data(), sql::vec::CmpOp::kLt, cutoff, sel.data(), kKernelRows));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kKernelRows));
}
BENCHMARK(BM_VecFilterI64)->Arg(0)->Arg(50)->Arg(100);

/// The row engine's equivalent: one boxed Value compare per row. The
/// BM_VecFilterI64 / BM_RowFilterValue ratio is the per-tuple overhead
/// the vectorized engine removes.
void BM_RowFilterValue(benchmark::State& state) {
  std::vector<int64_t> raw = KernelColumn();
  std::vector<sql::Value> vals;
  vals.reserve(kKernelRows);
  for (int64_t v : raw) vals.push_back(sql::Value::Int(v));
  sql::Value cutoff = sql::Value::Int(state.range(0));
  std::vector<uint32_t> sel;
  sel.reserve(kKernelRows);
  for (auto _ : state) {
    sel.clear();
    for (size_t i = 0; i < kKernelRows; ++i) {
      if (vals[i].Compare(cutoff) < 0) sel.push_back(static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kKernelRows));
}
BENCHMARK(BM_RowFilterValue)->Arg(0)->Arg(50)->Arg(100);

/// Normalized-key hash probe at varying batch sizes; Arg = probe batch.
/// Build side: 64Ki keys, every probe hits.
void BM_VecHashProbe(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  constexpr size_t kBuildKeys = 64 * 1024;
  std::unordered_map<std::string, uint32_t> build;
  build.reserve(kBuildKeys);
  std::vector<uint8_t> key;
  for (size_t i = 0; i < kBuildKeys; ++i) {
    key.clear();
    sql::vec::AppendKeyI64(&key, static_cast<int64_t>(i));
    build.emplace(std::string(key.begin(), key.end()),
                  static_cast<uint32_t>(i));
  }
  std::vector<int64_t> probes(batch);
  for (size_t i = 0; i < batch; ++i) {
    probes[i] = static_cast<int64_t>((i * 2654435761u) % kBuildKeys);
  }
  std::string probe_key;
  for (auto _ : state) {
    uint64_t matched = 0;
    for (size_t i = 0; i < batch; ++i) {
      key.clear();
      sql::vec::AppendKeyI64(&key, probes[i]);
      probe_key.assign(key.begin(), key.end());
      auto it = build.find(probe_key);
      if (it != build.end()) matched += it->second;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_VecHashProbe)->Arg(64)->Arg(256)->Arg(2048)->Arg(8192);

/// FNV prehash of normalized keys, the probe loop's hashing component.
void BM_VecKeyHash(benchmark::State& state) {
  std::vector<int64_t> vals = KernelColumn();
  std::vector<uint8_t> key;
  for (auto _ : state) {
    uint64_t h = 0;
    for (size_t i = 0; i < kKernelRows; ++i) {
      key.clear();
      sql::vec::AppendKeyI64(&key, vals[i]);
      h ^= sql::vec::HashBytes(key.data(), key.size());
    }
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kKernelRows));
}
BENCHMARK(BM_VecKeyHash);

}  // namespace
}  // namespace ironsafe

int main(int argc, char** argv) {
  ironsafe::bench::WallClock wall;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ironsafe::bench::PrintWallClock(wall, "all microbenchmarks");
  return 0;
}
