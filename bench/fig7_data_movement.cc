// Figure 7: reduction in data exchanged between host and storage server
// when using CSA — the ratio of pages shipped to the host in host-only
// mode versus the filtered record batches shipped in CS mode. The paper
// reports an average IO reduction of 2.1x and notes query speedup is
// almost directly correlated with this reduction.

#include "bench/bench_util.h"

namespace ironsafe::bench {
namespace {

using engine::SystemConfig;

int Main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  double sf = args.scale_factor;
  BenchTracer tracer(args);
  BENCH_ASSIGN(auto system, MakeLoadedSystem(sf));

  PrintHeader("Figure 7: host<->storage data movement reduction (SF=" +
              std::to_string(sf) + ")");
  std::printf("%5s %16s %16s %12s\n", "query", "host-only(KiB)",
              "comp-storage(KiB)", "reduction");

  WallClock wall;
  double sum = 0;
  int n = 0;
  for (const auto& query : tpch::Queries()) {
    BENCH_ASSIGN(auto hons, system->Run(SystemConfig::kHons, query.sql));
    BENCH_ASSIGN(auto vcs, system->Run(SystemConfig::kVcs, query.sql));
    double host_only_kib = static_cast<double>(hons.cost.network_bytes()) / 1024.0;
    double cs_kib = static_cast<double>(vcs.cost.network_bytes()) / 1024.0;
    double reduction = cs_kib > 0 ? host_only_kib / cs_kib : 0;
    sum += reduction;
    ++n;
    std::printf("%5d %16.1f %16.1f %11.2fx\n", query.number, host_only_kib,
                cs_kib, reduction);
  }
  std::printf("\naverage IO reduction: %.2fx (paper: 2.1x average)\n",
              sum / n);
  PrintWallClock(wall);
  return 0;
}

}  // namespace
}  // namespace ironsafe::bench

int main(int argc, char** argv) { return ironsafe::bench::Main(argc, argv); }
