#ifndef IRONSAFE_TESTS_LINT_FIXTURES_CYCLE_B_H_
#define IRONSAFE_TESTS_LINT_FIXTURES_CYCLE_B_H_

// Other half of the deliberate include cycle.
#include "cycle/a.h"

inline int B() { return 0; }

#endif  // IRONSAFE_TESTS_LINT_FIXTURES_CYCLE_B_H_
