#include "obs/metrics.h"

#include <algorithm>

namespace ironsafe::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot() const {
  std::vector<std::pair<std::string, int64_t>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value());
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
}

}  // namespace ironsafe::obs
