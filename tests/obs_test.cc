#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "engine/csa_system.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace ironsafe::obs {
namespace {

// ---------------- tracer: span structure ----------------

TEST(TracerTest, NestedSpansTileTheTimeline) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard root("root", "test", &cost);
    {
      SpanGuard a("a", "test", &cost);
      cost.ChargeFixed(1000);
      SpanGuard b("b", "test", &cost);
      cost.ChargeFixed(250);
    }
    {
      SpanGuard c("c", "test", &cost);
      cost.ChargeFixed(500);
    }
  }
  ASSERT_EQ(tracer.open_count(), 0u);
  std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);

  const Span& root = spans[0];
  const Span& a = spans[1];
  const Span& b = spans[2];
  const Span& c = spans[3];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.parent, -1);
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(a.parent, root.id);
  EXPECT_EQ(a.depth, 1);
  EXPECT_EQ(b.parent, a.id);
  EXPECT_EQ(b.depth, 2);
  EXPECT_EQ(c.parent, root.id);

  // a charged 1000 before opening b and b charged 250 inside it.
  EXPECT_EQ(a.sim_start_ns, 0u);
  EXPECT_EQ(a.sim_duration_ns(), 1250u);
  EXPECT_EQ(b.sim_duration_ns(), 250u);
  // c starts where its sibling a ended.
  EXPECT_EQ(c.sim_start_ns, a.sim_end_ns);
  EXPECT_EQ(c.sim_duration_ns(), 500u);
  // The root spans exactly the sum of its children.
  EXPECT_EQ(root.sim_duration_ns(), a.sim_duration_ns() + c.sim_duration_ns());
  // Wall clock moves forward (auxiliary, not asserted tightly).
  EXPECT_GE(root.wall_end_us, root.wall_start_us);
}

TEST(TracerTest, NullModelSpanDerivesDurationFromChildren) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard root("root", "test", nullptr);
    {
      SpanGuard a("a", "test", &cost);
      cost.ChargeFixed(100);
    }
    {
      SpanGuard b("b", "test", &cost);
      cost.ChargeFixed(300);
    }
  }
  std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].sim_duration_ns(), 400u);
}

TEST(TracerTest, SequentialRootsDoNotOverlap) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard first("first", "test", &cost);
    cost.ChargeFixed(700);
  }
  {
    SpanGuard second("second", "test", &cost);
    cost.ChargeFixed(100);
  }
  std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].sim_start_ns, spans[0].sim_end_ns);
}

TEST(TracerTest, TagsAttachToTheirSpan) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard span("tagged", "test", &cost);
    span.Tag("rows", int64_t{42});
    span.Tag("table", "lineitem");
  }
  std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].tags.size(), 2u);
  EXPECT_EQ(spans[0].tags[0], (std::pair<std::string, std::string>{"rows",
                                                                   "42"}));
  EXPECT_EQ(spans[0].tags[1].second, "lineitem");
}

TEST(TracerTest, DetailSpanDoesNotAdvanceTheCursor) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard root("root", "test", &cost);
    tracer.AddDetailSpan("morsel", "test", 5000, /*lane=*/2, 0, 0);
    {
      SpanGuard child("child", "test", &cost);
      cost.ChargeFixed(100);
    }
  }
  std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_TRUE(spans[1].detail);
  EXPECT_EQ(spans[1].lane, 2);
  EXPECT_EQ(spans[1].sim_duration_ns(), 5000u);
  // The detail span starts where the next real child starts: it did not
  // move the parent's layout cursor.
  EXPECT_EQ(spans[2].sim_start_ns, spans[1].sim_start_ns);
}

TEST(TracerTest, TimelineSpanSitsAtExplicitCoordinates) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard root("root", "test", &cost);
    cost.ChargeFixed(1000);
    // An event-driven component places the span itself: no cursor is
    // consulted, so the coordinates land exactly as given (this is how
    // overlapping pipeline stages of different sessions render).
    tracer.AddTimelineSpan("stage-execute", "server.pipeline", 200, 450,
                           /*lane=*/2);
    {
      SpanGuard child("child", "test", &cost);
      cost.ChargeFixed(100);
    }
  }
  std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  const Span& stage = spans[1];
  EXPECT_TRUE(stage.detail);
  EXPECT_EQ(stage.lane, 2);
  EXPECT_EQ(stage.sim_start_ns, 200u);
  EXPECT_EQ(stage.sim_end_ns, 450u);
  EXPECT_EQ(stage.sim_duration_ns(), 250u);
  EXPECT_EQ(stage.parent, spans[0].id);  // tree readers keep parentage
  // The cursor never moved: the next real child starts at the parent's
  // layout cursor (no completed siblings yet), not where the timeline
  // span ended.
  EXPECT_EQ(spans[2].sim_start_ns, 0u);
}

TEST(TracerTest, TimelineSpanClampsInvertedIntervalsAndCanBeARoot) {
  Tracer tracer;
  ScopedTracer scope(&tracer);
  tracer.AddTimelineSpan("stream", "server.pipeline", 900, 100, /*lane=*/4);
  std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, -1);  // no open span: a detail root
  EXPECT_EQ(spans[0].sim_start_ns, 900u);
  EXPECT_EQ(spans[0].sim_end_ns, 900u);  // end clamps to start
}

TEST(ChromeExportTest, TimelineSpansAreExcludedFromTheDefaultExport) {
  // Timeline spans are detail spans: the default (deterministic) export
  // drops them, the opt-in detail export shows them at their explicit
  // simulated coordinates.
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard root("root", "test", &cost);
    cost.ChargeFixed(5000);
    tracer.AddTimelineSpan("stage-decode", "server.pipeline", 1000, 3000,
                           /*lane=*/0);
  }
  std::ostringstream plain;
  tracer.ExportChromeTrace(plain, ExportOptions{});
  EXPECT_EQ(plain.str().find("stage-decode"), std::string::npos);

  ExportOptions opts;
  opts.include_detail = true;
  std::ostringstream detail;
  tracer.ExportChromeTrace(detail, opts);
  auto doc = JsonParse(detail.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_EQ(events->array_value.size(), 2u);
  const JsonValue& stage = events->array_value[1];
  EXPECT_EQ(stage.Find("name")->string_value, "stage-decode");
  EXPECT_DOUBLE_EQ(stage.Find("ts")->number_value, 1.0);   // 1000 ns
  EXPECT_DOUBLE_EQ(stage.Find("dur")->number_value, 2.0);  // 2000 ns
  EXPECT_TRUE(stage.Find("args")->Find("detail")->bool_value);
}

TEST(TracerTest, SpanGuardIsInertWithoutATracer) {
  ASSERT_EQ(CurrentTracer(), nullptr);
  SpanGuard guard("orphan", "test", nullptr);
  EXPECT_FALSE(guard.active());
  guard.Tag("ignored", "value");  // must not crash
  guard.Close();
}

TEST(TracerTest, TreeExportIndentsByDepth) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard root("outer", "test", &cost);
    SpanGuard child("inner", "test", &cost);
    cost.ChargeFixed(1234);
  }
  std::ostringstream out;
  tracer.ExportTree(out);
  EXPECT_NE(out.str().find("outer  1.234 us"), std::string::npos);
  EXPECT_NE(out.str().find("  inner  1.234 us"), std::string::npos);
}

// ---------------- tracer: Chrome export ----------------

TEST(ChromeExportTest, ProducesWellFormedRenumberedJson) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard root("que\"ry\n", "engine", &cost);  // needs escaping
    tracer.AddDetailSpan("morsel", "sql", 100, 0, 0, 0);
    SpanGuard child("scan", "sql", &cost);
    cost.ChargeFixed(2500);
  }
  std::ostringstream out;
  tracer.ExportChromeTrace(out, ExportOptions{});
  auto doc = JsonParse(out.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // The detail span is excluded by default and the remaining ids are
  // renumbered contiguously so the export is worker-count independent.
  ASSERT_EQ(events->array_value.size(), 2u);
  for (size_t i = 0; i < events->array_value.size(); ++i) {
    const JsonValue& ev = events->array_value[i];
    EXPECT_EQ(ev.Find("ph")->string_value, "X");
    EXPECT_DOUBLE_EQ(ev.Find("args")->Find("id")->number_value,
                     static_cast<double>(i));
  }
  EXPECT_EQ(events->array_value[0].Find("name")->string_value, "que\"ry\n");
  EXPECT_DOUBLE_EQ(events->array_value[1].Find("dur")->number_value, 2.5);
  // Wall-clock fields are opt-in.
  EXPECT_EQ(out.str().find("wall_start_us"), std::string::npos);
}

TEST(ChromeExportTest, DetailAndWallAreOptIn) {
  sim::CostModel cost;
  Tracer tracer;
  ScopedTracer scope(&tracer);
  {
    SpanGuard root("root", "test", &cost);
    tracer.AddDetailSpan("morsel", "sql", 100, 3, 10, 20);
  }
  ExportOptions opts;
  opts.include_detail = true;
  opts.include_wall = true;
  std::ostringstream out;
  tracer.ExportChromeTrace(out, opts);
  auto doc = JsonParse(out.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_EQ(events->array_value.size(), 2u);
  const JsonValue& morsel = events->array_value[1];
  EXPECT_TRUE(morsel.Find("args")->Find("detail")->bool_value);
  EXPECT_DOUBLE_EQ(morsel.Find("tid")->number_value, 4);  // lane + 1
  EXPECT_DOUBLE_EQ(morsel.Find("args")->Find("wall_dur_us")->number_value, 10);
}

TEST(ChromeExportTest, SnapshotsCountersWhenRequested) {
  MetricsRegistry registry;
  registry.counter("obs_test.alpha").Add(7);
  registry.gauge("obs_test.beta").Set(-2);
  Tracer tracer;
  ExportOptions opts;
  opts.metrics = &registry;
  std::ostringstream out;
  tracer.ExportChromeTrace(out, opts);
  auto doc = JsonParse(out.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("obs_test.alpha")->number_value, 7);
  EXPECT_DOUBLE_EQ(counters->Find("obs_test.beta")->number_value, -2);
}

// ---------------- metrics ----------------

TEST(MetricsTest, ConcurrentCountersSumExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Get-or-create races on a handful of shared names on purpose.
      Counter& counter =
          registry.counter("metrics_test.c" + std::to_string(t % 4));
      for (int i = 0; i < kIters; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  int64_t total = 0;
  for (const auto& [name, value] : registry.Snapshot()) total += value;
  EXPECT_EQ(total, int64_t{kThreads} * kIters);
}

TEST(MetricsTest, RegistryReferencesAreStable) {
  MetricsRegistry registry;
  Counter& first = registry.counter("metrics_test.stable");
  for (int i = 0; i < 100; ++i) {
    registry.counter("metrics_test.filler" + std::to_string(i));
  }
  EXPECT_EQ(&first, &registry.counter("metrics_test.stable"));
}

TEST(MetricsTest, MacroAccumulatesInTheGlobalRegistry) {
  Counter& counter = GetCounter("metrics_test.macro");
  counter.Reset();
  IRONSAFE_COUNTER_ADD("metrics_test.macro", 3);
  IRONSAFE_COUNTER_ADD("metrics_test.macro", 4);
  EXPECT_EQ(counter.value(), 7);
}

// ---------------- JSON parser ----------------

TEST(JsonTest, ParsesTheValueGrammar) {
  auto doc = JsonParse(
      R"({"a": [1, 2.5, -3e2, true, false, null], "b": {"nested": "A\n"}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* a = doc->Find("a");
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_value.size(), 6u);
  EXPECT_DOUBLE_EQ(a->array_value[2].number_value, -300.0);
  EXPECT_TRUE(a->array_value[3].bool_value);
  EXPECT_EQ(a->array_value[5].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc->Find("b")->Find("nested")->string_value, "A\n");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonParse("").ok());
  EXPECT_FALSE(JsonParse("{").ok());
  EXPECT_FALSE(JsonParse("[1,]").ok());
  EXPECT_FALSE(JsonParse("tru").ok());
  EXPECT_FALSE(JsonParse("1 2").ok());          // trailing garbage
  EXPECT_FALSE(JsonParse("\"\x01\"").ok());     // raw control char
  EXPECT_FALSE(JsonParse(std::string(200, '[')).ok());  // depth bomb
}

TEST(JsonTest, QuoteRoundTrips) {
  const std::string nasty = "a\"b\\c\nd\te\x1f";
  auto doc = JsonParse(JsonQuote(nasty));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->string_value, nasty);
}

// ---------------- end-to-end determinism ----------------

// Runs Q6 under IronSafe's split config on a freshly loaded system with
// the given worker cap and returns the default (deterministic) export.
std::string TraceOfScsRun(int workers) {
  common::ThreadPool::set_max_workers(workers);
  engine::CsaOptions options;
  options.scale_factor = 0.001;
  auto system = engine::CsaSystem::Create(options);
  if (!system.ok()) return "create failed";
  Status load = (*system)->Load([&](sql::Database* db) {
    tpch::TpchGenerator gen(tpch::TpchConfig{options.scale_factor, 42});
    return gen.LoadInto(db);
  });
  if (!load.ok()) return "load failed";
  auto query = tpch::GetQuery(6);
  if (!query.ok()) return "no query";

  Tracer tracer;
  {
    ScopedTracer scope(&tracer);
    auto outcome = (*system)->Run(engine::SystemConfig::kScs, (*query)->sql);
    if (!outcome.ok()) return "run failed";
  }
  std::ostringstream out;
  tracer.ExportChromeTrace(out, ExportOptions{});
  return out.str();
}

TEST(TraceDeterminismTest, SimulatedTraceIsWorkerCountInvariant) {
  std::string one = TraceOfScsRun(1);
  std::string four = TraceOfScsRun(4);
  common::ThreadPool::set_max_workers(0);  // restore the hardware default
  ASSERT_TRUE(JsonParse(one).ok());
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(one.find("\"name\":\"storage-phase\""), std::string::npos);
  EXPECT_NE(one.find("\"name\":\"host-phase\""), std::string::npos);
}

}  // namespace
}  // namespace ironsafe::obs
