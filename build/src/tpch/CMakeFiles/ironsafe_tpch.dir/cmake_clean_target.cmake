file(REMOVE_RECURSE
  "libironsafe_tpch.a"
)
