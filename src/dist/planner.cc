#include "dist/planner.h"

#include <map>
#include <set>

#include "sql/parser.h"

namespace ironsafe::dist {

namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using sql::PartitionKind;
using sql::SelectStmt;
using sql::TablePartition;

const TablePartition* FindSpec(const std::vector<TablePartition>& scheme,
                               const std::string& table) {
  for (const TablePartition& spec : scheme) {
    if (spec.table == table) return &spec;
  }
  return nullptr;
}

bool IsPartitioned(const std::vector<TablePartition>& scheme,
                   const std::string& table) {
  const TablePartition* spec = FindSpec(scheme, table);
  return spec != nullptr && spec->kind != PartitionKind::kReplicated;
}

std::string Unqualify(const std::string& column) {
  auto dot = column.rfind('.');
  return dot == std::string::npos ? column : column.substr(dot + 1);
}

bool ExprHasSubquery(const Expr* e) {
  if (e == nullptr) return false;
  if (e->subquery) return true;
  if (ExprHasSubquery(e->left.get()) || ExprHasSubquery(e->right.get())) {
    return true;
  }
  for (const auto& a : e->args) {
    if (ExprHasSubquery(a.get())) return true;
  }
  for (const auto& [w, t] : e->when_clauses) {
    if (ExprHasSubquery(w.get()) || ExprHasSubquery(t.get())) return true;
  }
  return ExprHasSubquery(e->else_expr.get());
}

/// Collects `col = col` conjuncts (the equi-join predicates).
void CollectEqLinks(const Expr* e,
                    std::vector<std::pair<std::string, std::string>>* links) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    CollectEqLinks(e->left.get(), links);
    CollectEqLinks(e->right.get(), links);
    return;
  }
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kEq &&
      e->left != nullptr && e->right != nullptr &&
      e->left->kind == ExprKind::kColumn &&
      e->right->kind == ExprKind::kColumn) {
    links->emplace_back(Unqualify(e->left->column_name),
                        Unqualify(e->right->column_name));
  }
}

bool MergeableAggregate(const Expr& e) {
  if (e.kind != ExprKind::kAggregate || e.distinct) return false;
  switch (e.agg_func) {
    case sql::AggFunc::kCountStar:
    case sql::AggFunc::kCount:
    case sql::AggFunc::kSum:
    case sql::AggFunc::kMin:
    case sql::AggFunc::kMax:
      return true;
    default:
      return false;  // AVG needs a SUM/COUNT rewrite; not worth the float
  }
}

const char* MergeFunction(sql::AggFunc f) {
  switch (f) {
    case sql::AggFunc::kMin:
      return "MIN";
    case sql::AggFunc::kMax:
      return "MAX";
    default:
      return "SUM";  // SUM and COUNT partials both merge by summation
  }
}

/// Attempts the whole-query partial-aggregation plan; returns an empty
/// optional-like plan (fragments empty) when the query is ineligible.
Result<DistPlan> TryPartialAggregation(const SelectStmt& stmt,
                                       const std::vector<TablePartition>& scheme,
                                       const PlannerOptions& options) {
  DistPlan none;
  if (stmt.distinct || stmt.having != nullptr || stmt.limit >= 0) return none;
  if (stmt.from.empty()) return none;

  // Base tables only, and no subquery anywhere in the statement.
  std::vector<const sql::TableRef*> refs;
  for (const auto& ref : stmt.from) {
    if (ref.subquery) return none;
    refs.push_back(&ref);
  }
  for (const auto& join : stmt.joins) {
    if (join.table.subquery) return none;
    refs.push_back(&join.table);
    if (ExprHasSubquery(join.on.get())) return none;
  }
  if (ExprHasSubquery(stmt.where.get()) || ExprHasSubquery(stmt.having.get())) {
    return none;
  }
  for (const auto& item : stmt.items) {
    if (ExprHasSubquery(item.expr.get())) return none;
  }
  for (const auto& g : stmt.group_by) {
    if (ExprHasSubquery(g.get())) return none;
  }
  for (const auto& o : stmt.order_by) {
    if (ExprHasSubquery(o.expr.get())) return none;
  }

  // Every partitioned table must co-locate with the others through
  // equi-join predicates on the partition keys; replicated tables are
  // present everywhere and constrain nothing.
  std::vector<const TablePartition*> partitioned;
  for (const sql::TableRef* ref : refs) {
    const TablePartition* spec = FindSpec(scheme, ref->table_name);
    if (spec != nullptr && spec->kind != PartitionKind::kReplicated) {
      partitioned.push_back(spec);
    }
  }
  if (partitioned.empty()) return none;  // would duplicate per shard
  if (partitioned.size() > 1) {
    std::vector<std::pair<std::string, std::string>> links;
    CollectEqLinks(stmt.where.get(), &links);
    for (const auto& join : stmt.joins) CollectEqLinks(join.on.get(), &links);

    std::set<std::string> connected{partitioned[0]->table};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const TablePartition* spec : partitioned) {
        if (connected.count(spec->table)) continue;
        for (const auto& [a, b] : links) {
          bool key_a = a == spec->key_column;
          bool key_b = b == spec->key_column;
          if (!key_a && !key_b) continue;
          const std::string& other = key_a ? b : a;
          for (const TablePartition* peer : partitioned) {
            if (!connected.count(peer->table)) continue;
            if (other == peer->key_column) {
              connected.insert(spec->table);
              grew = true;
              break;
            }
          }
          if (connected.count(spec->table)) break;
        }
      }
    }
    for (const TablePartition* spec : partitioned) {
      if (!connected.count(spec->table)) return none;
      if (spec->kind != partitioned[0]->kind) return none;
      if (options.co_located &&
          !options.co_located(partitioned[0]->table, spec->table)) {
        return none;
      }
    }
  }

  // Classify the select items: mergeable aggregates vs grouping columns.
  std::vector<bool> is_agg(stmt.items.size(), false);
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const Expr& e = *stmt.items[i].expr;
    if (MergeableAggregate(e)) {
      is_agg[i] = true;
      continue;
    }
    bool grouped = false;
    for (const auto& g : stmt.group_by) {
      if (g->ToString() == e.ToString()) {
        grouped = true;
        break;
      }
    }
    if (!grouped) return none;
  }
  // Every grouping expression must be shipped, or distinct groups would
  // collapse in the host-side re-aggregation.
  for (const auto& g : stmt.group_by) {
    bool shipped = false;
    for (const auto& item : stmt.items) {
      if (item.expr->ToString() == g->ToString()) {
        shipped = true;
        break;
      }
    }
    if (!shipped) return none;
  }
  // ORDER BY must be expressible over the shipped columns.
  std::vector<size_t> order_item(stmt.order_by.size(), 0);
  for (size_t i = 0; i < stmt.order_by.size(); ++i) {
    const std::string repr = stmt.order_by[i].expr->ToString();
    bool found = false;
    for (size_t j = 0; j < stmt.items.size(); ++j) {
      if (stmt.items[j].expr->ToString() == repr ||
          (!stmt.items[j].alias.empty() && stmt.items[j].alias == repr)) {
        order_item[i] = j;
        found = true;
        break;
      }
    }
    if (!found) return none;
  }

  // The per-shard fragment: the whole statement with canonical output
  // names f0..fN and no ORDER BY (ordering happens after the merge).
  auto frag_stmt = stmt.Clone();
  frag_stmt->order_by.clear();
  for (size_t i = 0; i < frag_stmt->items.size(); ++i) {
    frag_stmt->items[i].alias = "f" + std::to_string(i);
  }

  DistPlan plan;
  plan.partial_aggregation = true;
  FragmentPlacement placement;
  placement.fragment.source_table =
      refs.size() == 1 ? refs[0]->table_name : "*";
  placement.fragment.dest_table = "partials_a0";
  placement.fragment.sql = frag_stmt->ToString();
  placement.partitioned = true;  // every group contributes a partial
  plan.fragments.push_back(std::move(placement));

  // The host-side re-aggregation over the union of partials.
  std::string host_sql = "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) host_sql += ", ";
    std::string shipped = "f" + std::to_string(i);
    std::string out_name =
        stmt.items[i].alias.empty() ? shipped : stmt.items[i].alias;
    if (is_agg[i]) {
      host_sql += std::string(MergeFunction(stmt.items[i].expr->agg_func)) +
                  "(" + shipped + ") AS " + out_name;
    } else {
      host_sql += shipped + " AS " + out_name;
    }
  }
  host_sql += " FROM partials_a0";
  bool first_group = true;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (is_agg[i]) continue;
    host_sql += first_group ? " GROUP BY " : ", ";
    host_sql += "f" + std::to_string(i);
    first_group = false;
  }
  for (size_t i = 0; i < stmt.order_by.size(); ++i) {
    host_sql += i == 0 ? " ORDER BY " : ", ";
    size_t j = order_item[i];
    host_sql += stmt.items[j].alias.empty() ? "f" + std::to_string(j)
                                            : stmt.items[j].alias;
    if (stmt.order_by[i].desc) host_sql += " DESC";
  }
  ASSIGN_OR_RETURN(plan.host_query, sql::ParseSelect(host_sql));
  return plan;
}

}  // namespace

Result<DistPlan> PlanQuery(const sql::SelectStmt& stmt,
                           const sql::Database& shard_db,
                           const std::vector<sql::TablePartition>& scheme,
                           const PlannerOptions& options) {
  if (options.partial_aggregation) {
    ASSIGN_OR_RETURN(DistPlan partial,
                     TryPartialAggregation(stmt, scheme, options));
    if (!partial.fragments.empty()) return partial;
  }

  // Default placement: the single-node filter-pushdown split, with each
  // fragment either fanned out across every shard group (partitioned
  // source) or pinned to one round-robin home group (replicated source).
  engine::PartitionOptions part_options;  // no whole-query offload
  ASSIGN_OR_RETURN(engine::PartitionedQuery split,
                   PartitionQuery(stmt, shard_db, part_options));

  DistPlan plan;
  plan.host_query = std::move(split.host_query);
  int replicated_seen = 0;
  for (auto& frag : split.fragments) {
    FragmentPlacement placement;
    placement.partitioned = IsPartitioned(scheme, frag.source_table);
    if (placement.partitioned) {
      placement.merge_key = FindSpec(scheme, frag.source_table)->key_column;
    } else {
      placement.home_group =
          options.shard_count > 0 ? replicated_seen++ % options.shard_count
                                  : 0;
    }
    placement.fragment = std::move(frag);
    plan.fragments.push_back(std::move(placement));
  }
  return plan;
}

}  // namespace ironsafe::dist
