file(REMOVE_RECURSE
  "CMakeFiles/tpch_offload.dir/tpch_offload.cpp.o"
  "CMakeFiles/tpch_offload.dir/tpch_offload.cpp.o.d"
  "tpch_offload"
  "tpch_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
