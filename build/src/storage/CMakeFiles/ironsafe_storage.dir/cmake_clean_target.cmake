file(REMOVE_RECURSE
  "libironsafe_storage.a"
)
