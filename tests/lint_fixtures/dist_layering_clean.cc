// Clean fixture: dist may include its own headers plus anything
// reachable through its declared deps (common, obs, sim, net, storage,
// engine — and transitively sql, securestore, tee, crypto).
#include "dist/fleet.h"
#include "dist/planner.h"
#include "engine/csa_system.h"
#include "net/secure_channel.h"
#include "obs/trace.h"
#include "securestore/secure_store.h"
#include "sim/fault.h"
#include "sql/partition.h"
#include "storage/block_device.h"
#include "tee/trustzone.h"

void DistLayeringCleanFixture() {}
