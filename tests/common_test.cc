#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace ironsafe {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("page 7 MAC mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "Corruption: page 7 MAC mismatch");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(RetryClassificationTest, DistinguishesBackpressureFromNodeDown) {
  // Both transient kinds are retryable, but they are distinct
  // conditions: backpressure (an admission queue or quota rejection)
  // resolves by waiting on the same path, node-down may need another.
  Status backpressure = Status::ResourceExhausted("admission queue full");
  Status node_down = Status::Unavailable("storage node lost");
  EXPECT_EQ(ClassifyTransient(backpressure), TransientKind::kBackpressure);
  EXPECT_EQ(ClassifyTransient(node_down), TransientKind::kNodeDown);
  EXPECT_TRUE(IsRetryableTransient(backpressure));
  EXPECT_TRUE(IsRetryableTransient(node_down));
  EXPECT_TRUE(IsBackpressure(backpressure));
  EXPECT_FALSE(IsBackpressure(node_down));
  EXPECT_TRUE(backpressure.IsResourceExhausted());
}

TEST(RetryClassificationTest, PermanentFailuresAreNotTransient) {
  for (Status s : {Status::PermissionDenied("policy"), Status::NotFound("t"),
                   Status::Corruption("mac"), Status::Unauthenticated("key"),
                   Status::OK()}) {
    EXPECT_EQ(ClassifyTransient(s), TransientKind::kNone) << s.ToString();
    EXPECT_FALSE(IsRetryableTransient(s));
    EXPECT_FALSE(IsBackpressure(s));
  }
}

TEST(RetryClassificationTest, DrivesRetryPolicyAsClassifier) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.retryable = IsRetryableTransient;
  int calls = 0;
  Status st = RetryWithBackoff(policy, [&]() -> Status {
    ++calls;
    return calls < 3 ? Status::ResourceExhausted("queue full") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);

  // Non-transient failures pass through without a second attempt.
  calls = 0;
  st = RetryWithBackoff(policy, [&]() -> Status {
    ++calls;
    return Status::PermissionDenied("no");
  });
  EXPECT_TRUE(st.IsPermissionDenied());
  EXPECT_EQ(calls, 1);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("hello");
    return Status::NotFound("no");
  };
  auto chain = [&](bool ok) -> Result<size_t> {
    ASSIGN_OR_RETURN(std::string s, make(ok));
    return s.size();
  };
  EXPECT_EQ(*chain(true), 5u);
  EXPECT_TRUE(chain(false).status().IsNotFound());
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(HexEncode(b), "deadbeef007f");
  auto decoded = HexDecode("deadbeef007f");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, b);
}

TEST(BytesTest, HexDecodeUppercase) {
  auto decoded = HexDecode("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(HexEncode(*decoded), "deadbeef");
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(BytesTest, IntegerCodecRoundTrip) {
  Bytes out;
  PutU16(&out, 0x1234);
  PutU32(&out, 0xdeadbeef);
  PutU64(&out, 0x0123456789abcdefULL);
  ByteReader r(out);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ReaderDetectsTruncation) {
  Bytes out;
  PutU16(&out, 7);
  ByteReader r(out);
  EXPECT_TRUE(r.ReadU32().status().IsInvalidArgument());
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  Bytes out;
  PutLengthPrefixed(out.empty() ? &out : &out, std::string_view("hello"));
  PutLengthPrefixed(&out, Bytes{9, 8, 7});
  ByteReader r(out);
  EXPECT_EQ(*r.ReadLengthPrefixedString(), "hello");
  EXPECT_EQ(*r.ReadLengthPrefixed(), (Bytes{9, 8, 7}));
}

TEST(BytesTest, LengthPrefixedTruncatedBody) {
  Bytes out;
  PutU32(&out, 100);  // claims 100 bytes, provides none
  ByteReader r(out);
  EXPECT_FALSE(r.ReadLengthPrefixed().ok());
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(2);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnceWithItsSlot) {
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<int> slots(kTasks, -2);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&runs, &slots, i] {
      ++runs[i];
      slots[i] = common::ThreadPool::current_slot();
    });
  }
  common::ThreadPool::Shared().RunTasks(tasks);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
    EXPECT_EQ(slots[i], i) << "task " << i;
  }
  EXPECT_EQ(common::ThreadPool::current_slot(), -1);
}

TEST(ThreadPoolTest, ConsecutiveBatchesReuseThePool) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back([&count] { ++count; });
    common::ThreadPool::Shared().RunTasks(tasks);
    ASSERT_EQ(count.load(), 8) << "round " << round;
  }
}

TEST(ThreadPoolTest, NestedRunTasksExecutesInline) {
  std::atomic<int> inner_total{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&inner_total] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 3; ++j) inner.push_back([&inner_total] { ++inner_total; });
      common::ThreadPool::Shared().RunTasks(inner);
    });
  }
  common::ThreadPool::Shared().RunTasks(outer);
  EXPECT_EQ(inner_total.load(), 12);
}

TEST(ThreadPoolTest, EffectiveWorkersHonorsRequestAndCap) {
  // The explicit cap is itself clamped to what the machine offers
  // (pool threads + the participating caller).
  const int machine = static_cast<int>(common::ThreadPool::Shared().size()) + 1;
  common::ThreadPool::set_max_workers(0);
  EXPECT_EQ(common::ThreadPool::EffectiveWorkers(1), 1);
  EXPECT_GE(common::ThreadPool::EffectiveWorkers(1000), 1);
  EXPECT_LE(common::ThreadPool::EffectiveWorkers(1000), machine);
  common::ThreadPool::set_max_workers(2);
  EXPECT_EQ(common::ThreadPool::EffectiveWorkers(1000), std::min(2, machine));
  EXPECT_EQ(common::ThreadPool::EffectiveWorkers(1), 1);
  common::ThreadPool::set_max_workers(0);
}

}  // namespace
}  // namespace ironsafe
