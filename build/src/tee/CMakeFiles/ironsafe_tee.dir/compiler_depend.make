# Empty compiler generated dependencies file for ironsafe_tee.
# This may be replaced when dependencies are built.
