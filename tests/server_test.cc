// Serving-layer sweep: FairScheduler and PlanCache units, the sealed
// statement codecs, and the QueryService acceptance properties from the
// serving design — admission provably bounds queue depth (backpressure is
// retryable and distinguishable from drain), plan-cache hits skip the
// monitor's control path and invalidate on policy-epoch change, drain
// loses and duplicates nothing, and a fixed 8-client schedule produces
// bit-identical cost totals and default trace at any worker count.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/thread_pool.h"
#include "engine/ironsafe.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/plan_cache.h"
#include "server/query_service.h"
#include "server/scheduler.h"
#include "sql/value.h"

namespace ironsafe::server {
namespace {

int64_t CounterValue(std::string_view name) {
  return obs::GetCounter(name).value();
}

// ---------------- FairScheduler ----------------

QueuedStatement Item(uint64_t session, uint64_t seq) {
  return QueuedStatement{session, seq, {}};
}

TEST(FairSchedulerTest, ServesSessionsRoundRobinByAscendingId) {
  FairScheduler sched(SchedulerLimits{});
  ASSERT_TRUE(sched.Admit(Item(2, 0)).ok());
  ASSERT_TRUE(sched.Admit(Item(1, 0)).ok());
  ASSERT_TRUE(sched.Admit(Item(1, 1)).ok());
  ASSERT_TRUE(sched.Admit(Item(3, 0)).ok());
  std::vector<std::pair<uint64_t, uint64_t>> order;
  while (auto next = sched.Next()) {
    order.emplace_back(next->session_id, next->seq);
  }
  // Round-robin by ascending session id, wrapping back to session 1 for
  // its second statement — never two in a row from one tenant while
  // another waits.
  EXPECT_EQ(order, (std::vector<std::pair<uint64_t, uint64_t>>{
                       {1, 0}, {2, 0}, {3, 0}, {1, 1}}));
  EXPECT_EQ(sched.depth(), 0u);
}

TEST(FairSchedulerTest, OrderIsAFunctionOfTheScheduleNotArrival) {
  // Interleaving Admit and Next mid-stream continues the rotation from
  // the last-served session.
  FairScheduler sched(SchedulerLimits{});
  ASSERT_TRUE(sched.Admit(Item(1, 0)).ok());
  ASSERT_TRUE(sched.Admit(Item(2, 0)).ok());
  EXPECT_EQ(sched.Next()->session_id, 1u);
  ASSERT_TRUE(sched.Admit(Item(1, 1)).ok());
  EXPECT_EQ(sched.Next()->session_id, 2u);  // not 1 again
  EXPECT_EQ(sched.Next()->session_id, 1u);
  EXPECT_FALSE(sched.Next().has_value());
}

TEST(FairSchedulerTest, PerSessionQuotaRejectsOnlyTheNoisyTenant) {
  FairScheduler sched(SchedulerLimits{/*max_per_session=*/2, /*max_total=*/64});
  ASSERT_TRUE(sched.Admit(Item(1, 0)).ok());
  ASSERT_TRUE(sched.Admit(Item(1, 1)).ok());
  Status over = sched.Admit(Item(1, 2));
  EXPECT_TRUE(over.IsResourceExhausted()) << over.ToString();
  EXPECT_TRUE(IsBackpressure(over));
  // A different session still has quota.
  EXPECT_TRUE(sched.Admit(Item(2, 0)).ok());
  EXPECT_EQ(sched.session_depth(1), 2u);
  EXPECT_EQ(sched.session_depth(2), 1u);
  // Popping frees the quota again.
  ASSERT_TRUE(sched.Next().has_value());
  EXPECT_TRUE(sched.Admit(Item(1, 2)).ok());
}

TEST(FairSchedulerTest, GlobalBoundCapsPeakDepth) {
  FairScheduler sched(SchedulerLimits{/*max_per_session=*/8, /*max_total=*/3});
  ASSERT_TRUE(sched.Admit(Item(1, 0)).ok());
  ASSERT_TRUE(sched.Admit(Item(2, 0)).ok());
  ASSERT_TRUE(sched.Admit(Item(3, 0)).ok());
  EXPECT_TRUE(sched.Admit(Item(4, 0)).IsResourceExhausted());
  EXPECT_EQ(sched.depth(), 3u);
  EXPECT_EQ(sched.peak_depth(), 3u);
  ASSERT_TRUE(sched.Next().has_value());
  EXPECT_EQ(sched.depth(), 2u);
  EXPECT_EQ(sched.peak_depth(), 3u);  // high-water mark sticks
  EXPECT_TRUE(sched.Admit(Item(4, 0)).ok());
  EXPECT_LE(sched.peak_depth(), sched.limits().max_total);
}

TEST(FairSchedulerTest, EvictSessionReturnsItsQueueInOrder) {
  FairScheduler sched(SchedulerLimits{});
  ASSERT_TRUE(sched.Admit(Item(1, 0)).ok());
  ASSERT_TRUE(sched.Admit(Item(2, 0)).ok());
  ASSERT_TRUE(sched.Admit(Item(1, 1)).ok());
  std::vector<QueuedStatement> evicted = sched.EvictSession(1);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0].seq, 0u);
  EXPECT_EQ(evicted[1].seq, 1u);
  EXPECT_EQ(sched.depth(), 1u);
  EXPECT_EQ(sched.session_depth(1), 0u);
  EXPECT_EQ(sched.Next()->session_id, 2u);
  EXPECT_TRUE(sched.EvictSession(1).empty());
}

TEST(FairSchedulerTest, WeightedTenantsShareInProportionUnderBacklog) {
  // WFQ share claim: with both sessions fully backlogged, a weight-4
  // gold tenant is served 4x as often as a weight-1 bronze tenant.
  FairScheduler sched(SchedulerLimits{/*max_per_session=*/32,
                                      /*max_total=*/64});
  ASSERT_TRUE(sched.SetSessionWeight(1, 4).ok());
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(sched.Admit(Item(1, i)).ok());
    ASSERT_TRUE(sched.Admit(Item(2, i)).ok());
  }
  int gold = 0;
  for (int pop = 0; pop < 10; ++pop) {
    auto item = sched.Next();
    ASSERT_TRUE(item.has_value());
    if (item->session_id == 1) ++gold;
  }
  EXPECT_EQ(gold, 8);  // 4:1 weights -> 8 of the first 10 pops
}

TEST(FairSchedulerTest, BackloggedBronzeIsBoundedByTheWeightRatio) {
  // Starvation bound: a backlogged session waits at most about
  // total_weight / weight pops between its own. With gold=8, silver=4,
  // bronze=1 (total 13), bronze must appear within every ~13-pop window.
  FairScheduler sched(SchedulerLimits{/*max_per_session=*/32,
                                      /*max_total=*/96});
  ASSERT_TRUE(sched.SetSessionWeight(1, 8).ok());
  ASSERT_TRUE(sched.SetSessionWeight(2, 4).ok());
  ASSERT_TRUE(sched.SetSessionWeight(3, 1).ok());
  for (uint64_t i = 0; i < 26; ++i) {
    ASSERT_TRUE(sched.Admit(Item(1, i)).ok());
    ASSERT_TRUE(sched.Admit(Item(2, i)).ok());
    if (i < 4) ASSERT_TRUE(sched.Admit(Item(3, i)).ok());
  }
  std::vector<int> bronze_positions;
  std::map<uint64_t, int> pops;
  for (int pop = 0; pop < 26; ++pop) {
    auto item = sched.Next();
    ASSERT_TRUE(item.has_value());
    ++pops[item->session_id];
    if (item->session_id == 3) bronze_positions.push_back(pop);
  }
  // Proportional service over two full virtual-time rounds.
  EXPECT_EQ(pops[1], 16);
  EXPECT_EQ(pops[2], 8);
  EXPECT_EQ(pops[3], 2);
  // And the gap between consecutive bronze pops respects the bound.
  ASSERT_GE(bronze_positions.size(), 2u);
  EXPECT_LE(bronze_positions[1] - bronze_positions[0], 14);
}

TEST(FairSchedulerTest, ZeroWeightIsRejectedAsStarvationNotFairness) {
  FairScheduler sched(SchedulerLimits{});
  Status zero = sched.SetSessionWeight(7, 0);
  EXPECT_TRUE(zero.IsInvalidArgument()) << zero.ToString();
  EXPECT_EQ(sched.session_weight(7), 1u);  // unchanged default
  ASSERT_TRUE(sched.SetSessionWeight(7, 8).ok());
  EXPECT_EQ(sched.session_weight(7), 8u);
  // The rejection leaves scheduling intact: admitted work still pops.
  ASSERT_TRUE(sched.Admit(Item(7, 0)).ok());
  EXPECT_EQ(sched.Next()->session_id, 7u);
}

// ---------------- PlanCache ----------------

CachedPlan Plan(sim::SimNanos ns) {
  CachedPlan plan;
  plan.authorize_ns = ns;
  return plan;
}

TEST(PlanCacheTest, MissThenHitWithinOneEpoch) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Lookup("c0", "", "SELECT 1", 1), nullptr);
  cache.Insert("c0", "", "SELECT 1", 1, Plan(42));
  std::shared_ptr<const CachedPlan> hit = cache.Lookup("c0", "", "SELECT 1", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->authorize_ns, 42u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, KeyCoversClientPolicyAndSql) {
  PlanCache cache(8);
  cache.Insert("c0", "", "SELECT 1", 1, Plan(1));
  EXPECT_EQ(cache.Lookup("c1", "", "SELECT 1", 1), nullptr);
  EXPECT_EQ(cache.Lookup("c0", "redact", "SELECT 1", 1), nullptr);
  EXPECT_EQ(cache.Lookup("c0", "", "SELECT 2", 1), nullptr);
  // Length prefixes keep field boundaries: ("ab","c") != ("a","bc").
  cache.Insert("ab", "c", "q", 1, Plan(2));
  EXPECT_EQ(cache.Lookup("a", "bc", "q", 1), nullptr);
}

TEST(PlanCacheTest, NewerEpochInvalidatesEverything) {
  PlanCache cache(8);
  cache.Insert("c0", "", "SELECT 1", 1, Plan(1));
  cache.Insert("c0", "", "SELECT 2", 1, Plan(2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup("c0", "", "SELECT 1", 2), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidations(), 2u);
  // The cache now lives in the new epoch; fresh inserts stick.
  cache.Insert("c0", "", "SELECT 1", 2, Plan(3));
  EXPECT_NE(cache.Lookup("c0", "", "SELECT 1", 2), nullptr);
}

TEST(PlanCacheTest, CapacityEvictsOldestInsertion) {
  PlanCache cache(2);
  cache.Insert("c0", "", "q1", 1, Plan(1));
  cache.Insert("c0", "", "q2", 1, Plan(2));
  cache.Insert("c0", "", "q3", 1, Plan(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup("c0", "", "q1", 1), nullptr);  // oldest gone
  EXPECT_NE(cache.Lookup("c0", "", "q2", 1), nullptr);
  EXPECT_NE(cache.Lookup("c0", "", "q3", 1), nullptr);
}

TEST(PlanCacheTest, ZeroCapacityNeverStores) {
  PlanCache cache(0);
  EXPECT_EQ(cache.Insert("c0", "", "q", 1, Plan(1)), nullptr);
  EXPECT_EQ(cache.Lookup("c0", "", "q", 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------- statement codecs ----------------

TEST(StatementCodecTest, RequestRoundTripAllFields) {
  StatementRequest request;
  request.sql = "INSERT INTO t (a) VALUES (1)";
  request.execution_policy = "read ::= sessionKeyIs(c0)";
  request.insert_expiry = 12345;
  request.insert_reuse = 1;
  auto back = DecodeStatementRequest(EncodeStatementRequest(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->sql, request.sql);
  EXPECT_EQ(back->execution_policy, request.execution_policy);
  EXPECT_EQ(back->insert_expiry, request.insert_expiry);
  EXPECT_EQ(back->insert_reuse, request.insert_reuse);
}

TEST(StatementCodecTest, RequestRoundTripPreservesAbsentOptionals) {
  StatementRequest request;
  request.sql = "SELECT 1";
  auto back = DecodeStatementRequest(EncodeStatementRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->insert_expiry.has_value());
  EXPECT_FALSE(back->insert_reuse.has_value());
}

TEST(StatementCodecTest, ResponseRoundTripOk) {
  StatementResponse response;
  response.result.schema.AddColumn(sql::Column{"owner", sql::Type::kString});
  response.result.rows.push_back(sql::Row{sql::Value::String("user7")});
  response.monitor_ns = 11;
  response.execution_ns = 22;
  response.offloaded = true;
  response.plan_cache_hit = true;
  auto back = DecodeStatementResponse(EncodeStatementResponse(response));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->status.ok());
  ASSERT_EQ(back->result.rows.size(), 1u);
  EXPECT_EQ(back->result.rows[0][0].AsString(), "user7");
  EXPECT_EQ(back->monitor_ns, 11u);
  EXPECT_EQ(back->execution_ns, 22u);
  EXPECT_TRUE(back->offloaded);
  EXPECT_TRUE(back->plan_cache_hit);
  EXPECT_EQ(back->total_ns(), 33u);
}

TEST(StatementCodecTest, ResponseRoundTripError) {
  // Policy rejections travel inside the sealed channel like any result.
  StatementResponse response;
  response.status = Status::PermissionDenied("policy forbids SELECT *");
  auto back = DecodeStatementResponse(EncodeStatementResponse(response));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->status.IsPermissionDenied());
  EXPECT_EQ(back->status.message(), "policy forbids SELECT *");
}

TEST(StatementCodecTest, GarbageAndTrailingBytesRejected) {
  EXPECT_FALSE(DecodeStatementRequest({}).ok());
  EXPECT_FALSE(DecodeStatementRequest(ToBytes("junk")).ok());
  EXPECT_FALSE(DecodeStatementResponse({}).ok());
  StatementRequest request;
  request.sql = "SELECT 1";
  Bytes padded = EncodeStatementRequest(request);
  padded.push_back(0xFF);
  EXPECT_FALSE(DecodeStatementRequest(padded).ok());
}

// ---------------- QueryService ----------------

class QueryServiceTest : public ::testing::Test {
 protected:
  static constexpr int kConsumers = 8;

  static std::unique_ptr<engine::IronSafeSystem> NewSystem() {
    engine::IronSafeSystem::Options options;
    options.csa.scale_factor = 0.001;
    auto system = engine::IronSafeSystem::Create(options);
    if (!system.ok()) return nullptr;
    if (!(*system)->Bootstrap().ok()) return nullptr;
    (*system)->set_current_date(*sql::ParseDate("1997-06-01"));
    (*system)->RegisterClient("producer");
    std::string policy = "read ::= sessionKeyIs(producer)";
    for (int c = 0; c < kConsumers; ++c) {
      std::string key = "c" + std::to_string(c);
      (*system)->RegisterClient(key);
      policy += " | sessionKeyIs(" + key + ")";
    }
    policy += "\nwrite ::= sessionKeyIs(producer)\n";
    if (!(*system)
             ->CreateProtectedTable(
                 "producer",
                 "CREATE TABLE accounts "
                 "(id INTEGER, owner VARCHAR, balance DOUBLE)",
                 policy, /*with_expiry=*/false, /*with_reuse=*/false)
             .ok()) {
      return nullptr;
    }
    std::string insert = "INSERT INTO accounts (id, owner, balance) VALUES ";
    for (int i = 0; i < 40; ++i) {
      if (i) insert += ", ";
      insert += "(" + std::to_string(i) + ", 'user" + std::to_string(i) +
                "', " + std::to_string(100.0 + i) + ")";
    }
    if (!(*system)->Execute("producer", insert).ok()) return nullptr;
    return std::move(*system);
  }

  void SetUp() override {
    system_ = NewSystem();
    ASSERT_NE(system_, nullptr);
  }

  struct End {
    uint64_t id = 0;
    std::unique_ptr<net::SecureChannel> channel;
  };

  static End Open(QueryService& service, const std::string& key) {
    auto session = service.OpenSession(key);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    if (!session.ok()) return {};
    return End{session->id, std::move(session->channel)};
  }

  static Bytes SealRequest(End& end, const std::string& sql) {
    StatementRequest request;
    request.sql = sql;
    auto frame = end.channel->Send(EncodeStatementRequest(request), nullptr);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    return frame.ok() ? *frame : Bytes{};
  }

  static StatementResponse MustDecode(End& end, Completion& done) {
    StatementResponse failed;
    failed.status = Status::Internal("decode failed");
    EXPECT_TRUE(done.transport.ok()) << done.transport.ToString();
    if (!done.transport.ok()) return failed;
    auto plain = end.channel->Receive(done.response_frame, nullptr);
    EXPECT_TRUE(plain.ok()) << plain.status().ToString();
    if (!plain.ok()) return failed;
    auto response = DecodeStatementResponse(*plain);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? std::move(*response) : failed;
  }

  std::unique_ptr<engine::IronSafeSystem> system_;
};

TEST_F(QueryServiceTest, OpenSessionRejectsUnknownClients) {
  QueryService service(system_.get(), ServiceOptions{});
  auto session = service.OpenSession("never-registered");
  EXPECT_TRUE(session.status().IsUnauthenticated())
      << session.status().ToString();
  EXPECT_EQ(service.stats().sessions_opened, 0u);
}

TEST_F(QueryServiceTest, SealedStatementRoundTripsThroughTheEngine) {
  QueryService service(system_.get(), ServiceOptions{});
  End c0 = Open(service, "c0");
  Bytes frame =
      SealRequest(c0, "SELECT owner, balance FROM accounts WHERE id = 7");
  auto seq = service.Submit(c0.id, frame);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(service.RunUntilIdle(), 1u);
  auto done = service.TakeCompletions(c0.id);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].seq, *seq);
  StatementResponse response = MustDecode(c0, done[0]);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.result.rows.size(), 1u);
  EXPECT_EQ(response.result.rows[0][0].AsString(), "user7");
  EXPECT_FALSE(response.plan_cache_hit);
  EXPECT_GT(response.monitor_ns, 0u);
  EXPECT_GT(response.execution_ns, 0u);
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.statements_admitted, 1u);
  EXPECT_EQ(stats.statements_executed, 1u);
  EXPECT_EQ(stats.statements_aborted, 0u);
  // Completions are consumed exactly once.
  EXPECT_TRUE(service.TakeCompletions(c0.id).empty());
}

TEST_F(QueryServiceTest, PolicyRejectionTravelsInsideTheChannel) {
  QueryService service(system_.get(), ServiceOptions{});
  End c0 = Open(service, "c0");
  // c0 has read but not write on accounts.
  Bytes frame = SealRequest(
      c0, "INSERT INTO accounts (id, owner, balance) VALUES (99, 'x', 1.0)");
  ASSERT_TRUE(service.Submit(c0.id, frame).ok());
  service.RunUntilIdle();
  auto done = service.TakeCompletions(c0.id);
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(done[0].transport.ok());  // transport fine; engine said no
  StatementResponse response = MustDecode(c0, done[0]);
  EXPECT_TRUE(response.status.IsPermissionDenied())
      << response.status.ToString();
}

TEST_F(QueryServiceTest, AdmissionBoundsQueueDepthWithRetryableBackpressure) {
  ServiceOptions options;
  options.limits.max_per_session = 2;
  options.limits.max_total = 3;
  QueryService service(system_.get(), options);
  End a = Open(service, "c0");
  End b = Open(service, "c1");
  int64_t rejected_before = CounterValue("server.admission.rejected");

  Bytes a1 = SealRequest(a, "SELECT owner FROM accounts WHERE id = 1");
  Bytes a2 = SealRequest(a, "SELECT owner FROM accounts WHERE id = 2");
  Bytes a3 = SealRequest(a, "SELECT owner FROM accounts WHERE id = 3");
  Bytes b1 = SealRequest(b, "SELECT owner FROM accounts WHERE id = 4");
  Bytes b2 = SealRequest(b, "SELECT owner FROM accounts WHERE id = 5");

  ASSERT_TRUE(service.Submit(a.id, a1).ok());
  ASSERT_TRUE(service.Submit(a.id, a2).ok());
  // Per-session quota.
  auto quota = service.Submit(a.id, a3);
  EXPECT_TRUE(quota.status().IsResourceExhausted()) << quota.status().ToString();
  EXPECT_TRUE(IsBackpressure(quota.status()));
  // Global bound: c1 has quota room but only one global slot remains.
  ASSERT_TRUE(service.Submit(b.id, b1).ok());
  auto global = service.Submit(b.id, b2);
  EXPECT_TRUE(global.status().IsResourceExhausted());
  EXPECT_TRUE(IsBackpressure(global.status()));

  EXPECT_EQ(CounterValue("server.admission.rejected") - rejected_before, 2);
  EXPECT_EQ(service.stats().peak_queue_depth, options.limits.max_total);

  // Backpressure resolves on the same path: pump, resubmit the SAME
  // frames (channel sequence numbers survive the rejection).
  EXPECT_EQ(service.RunUntilIdle(), 3u);
  ASSERT_TRUE(service.Submit(a.id, a3).ok());
  ASSERT_TRUE(service.Submit(b.id, b2).ok());
  EXPECT_EQ(service.RunUntilIdle(), 2u);

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.statements_admitted, 5u);
  EXPECT_EQ(stats.statements_rejected, 2u);
  EXPECT_EQ(stats.statements_executed, 5u);
  EXPECT_LE(stats.peak_queue_depth, options.limits.max_total);

  auto done_a = service.TakeCompletions(a.id);
  auto done_b = service.TakeCompletions(b.id);
  ASSERT_EQ(done_a.size(), 3u);
  ASSERT_EQ(done_b.size(), 2u);
  for (Completion& done : done_a) {
    EXPECT_TRUE(MustDecode(a, done).status.ok());
  }
  for (Completion& done : done_b) {
    EXPECT_TRUE(MustDecode(b, done).status.ok());
  }
}

TEST_F(QueryServiceTest, PlanCacheHitSkipsTheMonitorControlPath) {
  QueryService service(system_.get(), ServiceOptions{});
  End c0 = Open(service, "c0");
  const std::string hot = "SELECT owner, balance FROM accounts WHERE id = 7";
  int64_t hits_before = CounterValue("server.plan_cache.hit");

  obs::Tracer tracer;
  obs::ScopedTracer scope(&tracer);
  ASSERT_TRUE(service.Submit(c0.id, SealRequest(c0, hot)).ok());
  service.RunUntilIdle();
  ASSERT_TRUE(service.Submit(c0.id, SealRequest(c0, hot)).ok());
  service.RunUntilIdle();

  auto done = service.TakeCompletions(c0.id);
  ASSERT_EQ(done.size(), 2u);
  StatementResponse first = MustDecode(c0, done[0]);
  StatementResponse second = MustDecode(c0, done[1]);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(CounterValue("server.plan_cache.hit") - hits_before, 1);
  // The cached path pays only the monitor's per-execution half.
  EXPECT_LT(second.monitor_ns, first.monitor_ns);
  // Same rows either way.
  ASSERT_EQ(second.result.rows.size(), first.result.rows.size());
  EXPECT_EQ(second.result.rows[0][0].AsString(),
            first.result.rows[0][0].AsString());

  // The trace shows both shapes inside the pipeline's authorize stage: a
  // full "authorize" for the miss, an "authorize-cached" wrapping the
  // monitor's "cached-auth" for the hit.
  std::ostringstream trace;
  tracer.ExportChromeTrace(trace, obs::ExportOptions{});
  std::string json = trace.str();
  EXPECT_NE(json.find("stage-authorize"), std::string::npos);
  EXPECT_NE(json.find("stage-execute"), std::string::npos);
  EXPECT_NE(json.find("\"authorize\""), std::string::npos);
  EXPECT_NE(json.find("authorize-cached"), std::string::npos);
  EXPECT_NE(json.find("cached-auth"), std::string::npos);

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
}

TEST_F(QueryServiceTest, PolicyEpochChangeInvalidatesCachedPlans) {
  QueryService service(system_.get(), ServiceOptions{});
  End c0 = Open(service, "c0");
  const std::string hot = "SELECT owner FROM accounts WHERE id = 9";

  auto run_one = [&]() -> StatementResponse {
    EXPECT_TRUE(service.Submit(c0.id, SealRequest(c0, hot)).ok());
    service.RunUntilIdle();
    auto done = service.TakeCompletions(c0.id);
    EXPECT_EQ(done.size(), 1u);
    return MustDecode(c0, done[0]);
  };

  EXPECT_FALSE(run_one().plan_cache_hit);  // cold
  EXPECT_TRUE(run_one().plan_cache_hit);   // warm

  // Any policy-relevant registration bumps the monitor's rewrite epoch;
  // the warmed plan must not survive it.
  int64_t invalidated_before = CounterValue("server.plan_cache.invalidated");
  system_->RegisterClient("late-tenant");
  EXPECT_FALSE(run_one().plan_cache_hit);
  EXPECT_GE(CounterValue("server.plan_cache.invalidated") - invalidated_before,
            1);
  EXPECT_TRUE(run_one().plan_cache_hit);  // re-warmed under the new epoch

  // The access-time input to the rewrite counts too.
  system_->set_current_date(*sql::ParseDate("1997-06-02"));
  EXPECT_FALSE(run_one().plan_cache_hit);
}

TEST_F(QueryServiceTest, DrainFlushesEveryAdmittedStatementExactlyOnce) {
  QueryService service(system_.get(), ServiceOptions{});
  End a = Open(service, "c0");
  End b = Open(service, "c1");
  std::vector<Bytes> frames_a, frames_b;
  for (int i = 0; i < 3; ++i) {
    frames_a.push_back(
        SealRequest(a, "SELECT owner FROM accounts WHERE id = " +
                           std::to_string(i)));
    frames_b.push_back(
        SealRequest(b, "SELECT owner FROM accounts WHERE id = " +
                           std::to_string(10 + i)));
    ASSERT_TRUE(service.Submit(a.id, frames_a.back()).ok());
    ASSERT_TRUE(service.Submit(b.id, frames_b.back()).ok());
  }

  EXPECT_EQ(service.Drain(), 6u);
  EXPECT_TRUE(service.draining());

  // Post-drain rejections are kUnavailable — NOT backpressure, so a
  // well-behaved client fails over instead of hammering retries.
  Bytes late = SealRequest(a, "SELECT owner FROM accounts WHERE id = 1");
  auto refused = service.Submit(a.id, late);
  EXPECT_TRUE(refused.status().IsUnavailable()) << refused.status().ToString();
  EXPECT_FALSE(IsBackpressure(refused.status()));
  EXPECT_TRUE(service.OpenSession("c2").status().IsUnavailable());
  EXPECT_EQ(service.Drain(), 0u);  // idempotent

  // Zero loss, zero duplication: every admitted statement has exactly
  // one OK completion, in submission order.
  auto done_a = service.TakeCompletions(a.id);
  auto done_b = service.TakeCompletions(b.id);
  ASSERT_EQ(done_a.size(), 3u);
  ASSERT_EQ(done_b.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(done_a[i].seq, i);
    EXPECT_TRUE(MustDecode(a, done_a[i]).status.ok());
    EXPECT_EQ(done_b[i].seq, i);
    EXPECT_TRUE(MustDecode(b, done_b[i]).status.ok());
  }
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.statements_admitted, 6u);
  EXPECT_EQ(stats.statements_executed, 6u);
  EXPECT_EQ(stats.statements_aborted, 0u);
}

TEST_F(QueryServiceTest, CloseSessionAbortsQueuedWorkAndZeroizesKeys) {
  QueryService service(system_.get(), ServiceOptions{});
  End c0 = Open(service, "c0");
  Bytes f1 = SealRequest(c0, "SELECT owner FROM accounts WHERE id = 1");
  Bytes f2 = SealRequest(c0, "SELECT owner FROM accounts WHERE id = 2");
  ASSERT_TRUE(service.Submit(c0.id, f1).ok());
  ASSERT_TRUE(service.Submit(c0.id, f2).ok());

  int64_t closed_before = CounterValue("net.channel.closed");
  ASSERT_TRUE(service.CloseSession(c0.id).ok());
  // The service side of the channel zeroized its keys on close.
  EXPECT_EQ(CounterValue("net.channel.closed") - closed_before, 1);

  // Both queued statements complete kUnavailable: they provably never
  // ran, so resubmitting on a new session is safe.
  auto done = service.TakeCompletions(c0.id);
  ASSERT_EQ(done.size(), 2u);
  for (Completion& c : done) {
    EXPECT_TRUE(c.transport.IsUnavailable()) << c.transport.ToString();
    EXPECT_TRUE(c.response_frame.empty());
  }
  EXPECT_EQ(service.RunUntilIdle(), 0u);
  EXPECT_TRUE(service.Submit(c0.id, f1).status().IsNotFound());
  EXPECT_TRUE(service.CloseSession(c0.id).IsNotFound());
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.statements_aborted, 2u);
  EXPECT_EQ(stats.sessions_closed, 1u);
}

TEST_F(QueryServiceTest, ZeroWeightSessionsAreRejectedEverywhere) {
  QueryService service(system_.get(), ServiceOptions{});
  auto zero = service.OpenSession("c0", /*weight=*/0);
  EXPECT_TRUE(zero.status().IsInvalidArgument()) << zero.status().ToString();
  EXPECT_EQ(service.stats().sessions_opened, 0u);
  End c0 = Open(service, "c0");
  EXPECT_TRUE(service.SetSessionWeight(c0.id, 0).IsInvalidArgument());
  EXPECT_TRUE(service.SetSessionWeight(c0.id, 4).ok());
  EXPECT_TRUE(service.SetSessionWeight(9999, 4).IsNotFound());
}

TEST_F(QueryServiceTest, GoldWeightOutranksBronzeUnderBacklog) {
  QueryService service(system_.get(), ServiceOptions{});
  auto gold_session = service.OpenSession("c0", /*weight=*/8);
  ASSERT_TRUE(gold_session.ok());
  End gold{gold_session->id, std::move(gold_session->channel)};
  auto bronze_session = service.OpenSession("c1", /*weight=*/1);
  ASSERT_TRUE(bronze_session.ok());
  End bronze{bronze_session->id, std::move(bronze_session->channel)};

  // A backlog deeper than the pipeline window, bronze submitted FIRST
  // each round: any priority gold gets comes from its weight, never from
  // arrival order, and the pops beyond the window carry real scheduling
  // delay on the simulated timeline.
  for (int i = 0; i < 8; ++i) {
    std::string sql =
        "SELECT owner FROM accounts WHERE id = " + std::to_string(i);
    ASSERT_TRUE(service.Submit(bronze.id, SealRequest(bronze, sql)).ok());
    ASSERT_TRUE(service.Submit(gold.id, SealRequest(gold, sql)).ok());
  }
  service.RunUntilIdle();

  auto gold_done = service.TakeCompletions(gold.id);
  auto bronze_done = service.TakeCompletions(bronze.id);
  ASSERT_EQ(gold_done.size(), 8u);
  ASSERT_EQ(bronze_done.size(), 8u);
  sim::SimNanos gold_total = 0, bronze_total = 0;
  for (Completion& c : gold_done) {
    EXPECT_TRUE(MustDecode(gold, c).status.ok());
    gold_total += c.sched_delay_ns;
  }
  for (Completion& c : bronze_done) {
    EXPECT_TRUE(MustDecode(bronze, c).status.ok());
    bronze_total += c.sched_delay_ns;
  }
  // Nearly the whole gold backlog clears inside the intake window while
  // bronze queues behind it, so the bronze class accumulates strictly
  // more scheduling delay — the per-SLO-class latency ordering the
  // serve_scale bench measures at 10k sessions.
  EXPECT_LT(gold_total, bronze_total);
  EXPECT_GT(bronze_total, 0u);
}

TEST_F(QueryServiceTest, OpenSessionBatchMintsRealSessionsWithPerSpecFailures) {
  QueryService service(system_.get(), ServiceOptions{});
  int64_t batch_before = CounterValue("server.sessions.batch_opens");
  std::vector<QueryService::SessionSpec> specs;
  for (int c = 0; c < 4; ++c) {
    specs.push_back({"c" + std::to_string(c), /*weight=*/c == 0 ? 8u : 1u});
  }
  specs.push_back({"never-registered", 1});  // unknown key
  specs.push_back({"c5", 0});                // starving weight
  auto out = service.OpenSessionBatch(specs);
  ASSERT_EQ(out.size(), specs.size());
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(out[c].ok()) << out[c].status().ToString();
  }
  // Failures are per-spec: they do not poison the cohort.
  EXPECT_TRUE(out[4].status().IsUnauthenticated());
  EXPECT_TRUE(out[5].status().IsInvalidArgument());
  EXPECT_EQ(CounterValue("server.sessions.batch_opens") - batch_before, 1);
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.batch_opens, 1u);
  EXPECT_EQ(stats.sessions_opened, 4u);

  // Batch-minted channels are full sessions: seal, execute, unseal.
  End e{out[2]->id, std::move(out[2]->channel)};
  ASSERT_TRUE(
      service.Submit(e.id, SealRequest(e, "SELECT owner FROM accounts "
                                          "WHERE id = 5")).ok());
  service.RunUntilIdle();
  auto done = service.TakeCompletions(e.id);
  ASSERT_EQ(done.size(), 1u);
  StatementResponse response = MustDecode(e, done[0]);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.result.rows.size(), 1u);
  EXPECT_EQ(response.result.rows[0][0].AsString(), "user5");
  // And closing a batch-minted session zeroizes like any other.
  EXPECT_TRUE(service.CloseSession(e.id).ok());
}

TEST_F(QueryServiceTest, QuotaExhaustionMidStreamIsRetryableAndLossless) {
  // Per-session quota hits while earlier responses are still streaming:
  // the rejection must be plain backpressure, and the retried statement
  // must land exactly once with the same streamed answer.
  ServiceOptions options;
  options.limits.max_per_session = 2;
  options.stream.chunk_bytes = 64;  // every multi-row response streams
  QueryService service(system_.get(), options);
  End c0 = Open(service, "c0");
  const std::string big =
      "SELECT owner, balance FROM accounts WHERE balance > 100.5";
  ASSERT_TRUE(service.Submit(c0.id, SealRequest(c0, big)).ok());
  ASSERT_TRUE(service.Submit(c0.id, SealRequest(c0, big)).ok());

  Bytes third = SealRequest(c0, big);
  auto rejected = service.Submit(c0.id, third);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_TRUE(IsBackpressure(rejected.status()));

  service.RunUntilIdle();  // drains the quota (and the streams)
  ASSERT_TRUE(service.Submit(c0.id, third).ok());
  service.RunUntilIdle();

  auto done = service.TakeCompletions(c0.id);
  ASSERT_EQ(done.size(), 3u);
  uint64_t chunk_total = 0;
  for (size_t i = 0; i < done.size(); ++i) {
    EXPECT_EQ(done[i].seq, i);
    StatementResponse response = MustDecode(c0, done[i]);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.result.rows.size(), 39u);  // ids 1..39
    EXPECT_GE(done[i].stream_chunks, 2u);  // chunked delivery really ran
    EXPECT_GE(done[i].e2e_ns, done[i].sched_delay_ns);
    chunk_total += done[i].stream_chunks;
  }
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.statements_rejected, 1u);
  EXPECT_EQ(stats.statements_executed, 3u);
  EXPECT_EQ(stats.stream_chunks, chunk_total);
}

TEST_F(QueryServiceTest, SmallResponsesShipWholeLargeOnesStream) {
  ServiceOptions options;
  options.stream.chunk_bytes = 256;
  QueryService service(system_.get(), options);
  End c0 = Open(service, "c0");
  ASSERT_TRUE(service.Submit(c0.id, SealRequest(c0, "SELECT owner FROM "
                                                    "accounts WHERE id = 3"))
                  .ok());
  ASSERT_TRUE(
      service.Submit(c0.id, SealRequest(c0, "SELECT owner, balance FROM "
                                            "accounts WHERE balance > 100.5"))
          .ok());
  service.RunUntilIdle();
  auto done = service.TakeCompletions(c0.id);
  ASSERT_EQ(done.size(), 2u);
  // The point lookup fits one frame: no chunking, no stall.
  EXPECT_EQ(done[0].stream_chunks, 0u);
  EXPECT_EQ(done[0].stream_stall_ns, 0u);
  EXPECT_EQ(MustDecode(c0, done[0]).result.rows.size(), 1u);
  // The range scan exceeds the threshold: credit-window delivery, and
  // the extra shipping time shows up in its end-to-end latency.
  EXPECT_GE(done[1].stream_chunks, 2u);
  EXPECT_GT(done[1].e2e_ns, done[0].e2e_ns);
  EXPECT_EQ(MustDecode(c0, done[1]).result.rows.size(), 39u);
}

TEST_F(QueryServiceTest, EpochBumpWithStatementsInFlightStaysCoherent) {
  // The pipelined race the shared_ptr cache entries exist for: a policy
  // epoch bump lands while a session has statements admitted but not yet
  // authorized. The stale plan must not be reused, and the statements
  // must still complete correctly under the new epoch.
  QueryService service(system_.get(), ServiceOptions{});
  End c0 = Open(service, "c0");
  const std::string hot = "SELECT owner FROM accounts WHERE id = 7";

  // Warm the cache under the current epoch.
  ASSERT_TRUE(service.Submit(c0.id, SealRequest(c0, hot)).ok());
  service.RunUntilIdle();
  auto warm = service.TakeCompletions(c0.id);
  ASSERT_EQ(warm.size(), 1u);
  StatementResponse baseline = MustDecode(c0, warm[0]);
  ASSERT_TRUE(baseline.status.ok());
  EXPECT_FALSE(baseline.plan_cache_hit);

  // Two in-flight statements, then the bump before dispatch.
  ASSERT_TRUE(service.Submit(c0.id, SealRequest(c0, hot)).ok());
  ASSERT_TRUE(service.Submit(c0.id, SealRequest(c0, hot)).ok());
  system_->RegisterClient("mid-flight-tenant");  // bumps the rewrite epoch
  service.RunUntilIdle();

  auto done = service.TakeCompletions(c0.id);
  ASSERT_EQ(done.size(), 2u);
  StatementResponse first = MustDecode(c0, done[0]);
  StatementResponse second = MustDecode(c0, done[1]);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  // The warmed plan died with its epoch; the first statement re-derives
  // and re-warms, the second hits the new-epoch entry.
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  for (const StatementResponse* r : {&first, &second}) {
    ASSERT_EQ(r->result.rows.size(), baseline.result.rows.size());
    EXPECT_EQ(r->result.rows[0][0].AsString(),
              baseline.result.rows[0][0].AsString());
  }
}

TEST_F(QueryServiceTest, PipelinedAndSynchronousAgreeOnEveryResponse) {
  // The pipeline refactor's equivalence bar: the event-driven path must
  // produce exactly the decoded responses of the synchronous baseline for
  // the same submission schedule (latency differs; content never).
  auto run = [](ExecutionMode mode) {
    std::unique_ptr<engine::IronSafeSystem> system = NewSystem();
    EXPECT_NE(system, nullptr);
    if (system == nullptr) return std::string{};
    ServiceOptions options;
    options.mode = mode;
    QueryService service(system.get(), options);
    End c0 = Open(service, "c0");
    End c1 = Open(service, "c1");
    for (int round = 0; round < 3; ++round) {
      for (End* end : {&c0, &c1}) {
        std::string hot = "SELECT owner, balance FROM accounts WHERE id = 11";
        std::string probe = "SELECT owner FROM accounts WHERE balance > " +
                            std::to_string(100 + round * 9) + ".5";
        for (const std::string& sql : {hot, probe}) {
          auto seq = service.Submit(end->id, SealRequest(*end, sql));
          EXPECT_TRUE(seq.ok()) << seq.status().ToString();
        }
      }
      service.RunUntilIdle();
    }
    service.Drain();
    std::ostringstream fingerprint;
    int which = 0;
    for (End* end : {&c0, &c1}) {
      for (Completion& done : service.TakeCompletions(end->id)) {
        StatementResponse response = MustDecode(*end, done);
        EXPECT_TRUE(response.status.ok()) << response.status.ToString();
        fingerprint << "c" << which << " seq " << done.seq << ": hit "
                    << response.plan_cache_hit << " offloaded "
                    << response.offloaded << " monitor "
                    << response.monitor_ns << " exec "
                    << response.execution_ns;
        for (const sql::Row& row : response.result.rows) {
          for (const sql::Value& value : row) {
            fingerprint << " " << value.ToString();
          }
        }
        fingerprint << "\n";
      }
      ++which;
    }
    service.Shutdown();
    return fingerprint.str();
  };
  std::string pipelined = run(ExecutionMode::kPipelined);
  std::string synchronous = run(ExecutionMode::kSynchronous);
  EXPECT_FALSE(pipelined.empty());
  EXPECT_EQ(pipelined, synchronous);
  EXPECT_NE(pipelined.find(" hit 1"), std::string::npos);
}

TEST_F(QueryServiceTest, EightClientWorkloadIsWorkerCountInvariant) {
  // The serving determinism contract end to end: a fixed 8-client mixed
  // schedule (hot statements for cache hits, varying probes, deliberate
  // backpressure with retry) produces bit-identical decoded responses,
  // aggregate stats, and default trace whether the engine's morsels run
  // on 1 worker, 4, or 16.
  auto run = [](int workers) {
    common::ThreadPool::set_max_workers(workers);
    std::unique_ptr<engine::IronSafeSystem> system = NewSystem();
    EXPECT_NE(system, nullptr);
    ServiceOptions options;
    options.limits.max_per_session = 4;
    options.limits.max_total = 14;  // tight: 16 submissions/round
    QueryService service(system.get(), options);

    obs::Tracer tracer;
    obs::ScopedTracer scope(&tracer);
    std::vector<End> ends;
    for (int c = 0; c < kConsumers; ++c) {
      ends.push_back(Open(service, "c" + std::to_string(c)));
    }
    RetryPolicy retry;
    retry.max_attempts = 4;
    retry.retryable = [](const Status& s) { return IsBackpressure(s); };
    retry.on_backoff = [&](int, uint64_t, const Status&) {
      service.RunUntilIdle();
    };
    for (int round = 0; round < 3; ++round) {
      for (int c = 0; c < kConsumers; ++c) {
        End& end = ends[c];
        std::string hot = "SELECT owner, balance FROM accounts WHERE id = " +
                          std::to_string(c * 3 % 40);
        std::string probe = "SELECT owner FROM accounts WHERE balance > " +
                            std::to_string(100 + (round * kConsumers + c) % 40) +
                            ".5";
        for (const std::string& sql : {hot, probe}) {
          Bytes frame = SealRequest(end, sql);
          Status st = RetryWithBackoff(retry, [&]() -> Status {
            auto seq = service.Submit(end.id, frame);
            return seq.ok() ? Status::OK() : seq.status();
          });
          EXPECT_TRUE(st.ok()) << st.ToString();
        }
      }
      service.RunUntilIdle();
    }
    service.Drain();

    // Canonical run fingerprint: every decoded response plus the stats.
    std::ostringstream fingerprint;
    for (int c = 0; c < kConsumers; ++c) {
      for (Completion& done : service.TakeCompletions(ends[c].id)) {
        StatementResponse response = MustDecode(ends[c], done);
        EXPECT_TRUE(response.status.ok()) << response.status.ToString();
        fingerprint << "c" << c << " seq " << done.seq << ": rows "
                    << response.result.rows.size() << " hit "
                    << response.plan_cache_hit << " offloaded "
                    << response.offloaded << " monitor "
                    << response.monitor_ns << " exec "
                    << response.execution_ns << "\n";
      }
    }
    QueryService::Stats stats = service.stats();
    fingerprint << "admitted " << stats.statements_admitted << " rejected "
                << stats.statements_rejected << " executed "
                << stats.statements_executed << " aborted "
                << stats.statements_aborted << " hits "
                << stats.plan_cache_hits << " misses "
                << stats.plan_cache_misses << " peak "
                << stats.peak_queue_depth << " monitor_ns "
                << stats.total_monitor_ns << " exec_ns "
                << stats.total_execution_ns << " serve_ns "
                << stats.total_serve_ns << "\n";
    std::ostringstream trace;
    tracer.ExportChromeTrace(trace, obs::ExportOptions{});
    service.Shutdown();
    return std::make_pair(fingerprint.str(), trace.str());
  };

  auto one = run(1);
  auto four = run(4);
  auto sixteen = run(16);
  common::ThreadPool::set_max_workers(0);
  EXPECT_EQ(one.first, four.first) << "stats/responses must be bit-identical";
  EXPECT_EQ(one.second, four.second) << "default trace must be byte-identical";
  EXPECT_EQ(one.first, sixteen.first) << "16-worker run must match too";
  EXPECT_EQ(one.second, sixteen.second);
  // The workload really exercised the interesting paths.
  EXPECT_NE(one.first.find(" hit 1"), std::string::npos);
  EXPECT_NE(one.second.find("authorize-cached"), std::string::npos);
}

TEST_F(QueryServiceTest, ConcurrentSubmittersNeverLoseACompletion) {
  // TSan target: client threads submit (and pump on backpressure) while
  // other threads dispatch. Linearizability bar: every successfully
  // admitted statement ends in exactly one OK completion.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  ServiceOptions options;
  options.limits.max_per_session = 4;
  options.limits.max_total = 8;
  QueryService service(system_.get(), options);
  std::vector<End> ends;
  for (int t = 0; t < kThreads; ++t) {
    ends.push_back(Open(service, "c" + std::to_string(t)));
  }

  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        StatementRequest request;
        request.sql = "SELECT owner FROM accounts WHERE id = " +
                      std::to_string((t * kPerThread + i) % 40);
        auto frame =
            ends[t].channel->Send(EncodeStatementRequest(request), nullptr);
        if (!frame.ok()) return;
        for (;;) {
          auto seq = service.Submit(ends[t].id, *frame);
          if (seq.ok()) {
            ++admitted;
            break;
          }
          if (!IsBackpressure(seq.status())) return;
          service.RunUntilIdle();  // pump from the submitting thread
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  service.Drain();

  EXPECT_EQ(admitted.load(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t completions = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (Completion& done : service.TakeCompletions(ends[t].id)) {
      StatementResponse response = MustDecode(ends[t], done);
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.result.rows.size(), 1u);
      ++completions;
    }
  }
  EXPECT_EQ(completions, admitted.load());
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.statements_executed, admitted.load());
  EXPECT_EQ(stats.statements_aborted, 0u);
  service.Shutdown();
}

}  // namespace
}  // namespace ironsafe::server
