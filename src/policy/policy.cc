#include "policy/policy.h"

#include <cctype>
#include <map>

namespace ironsafe::policy {

std::string_view PermName(Perm p) {
  switch (p) {
    case Perm::kRead:
      return "read";
    case Perm::kWrite:
      return "write";
    case Perm::kExec:
      return "exec";
  }
  return "?";
}

namespace {

const std::map<std::string, PredKind>& PredNames() {
  static const auto* kMap = new std::map<std::string, PredKind>{
      {"sessionkeyis", PredKind::kSessionKeyIs},
      {"storagelocis", PredKind::kStorageLocIs},
      {"hostlocis", PredKind::kHostLocIs},
      {"fwversionstorage", PredKind::kFwVersionStorage},
      {"fwversionhost", PredKind::kFwVersionHost},
      {"le", PredKind::kLe},
      {"reusemap", PredKind::kReuseMap},
      {"logupdate", PredKind::kLogUpdate},
  };
  return *kMap;
}

std::string_view PredName(PredKind k) {
  switch (k) {
    case PredKind::kSessionKeyIs: return "sessionKeyIs";
    case PredKind::kStorageLocIs: return "storageLocIs";
    case PredKind::kHostLocIs: return "hostLocIs";
    case PredKind::kFwVersionStorage: return "fwVersionStorage";
    case PredKind::kFwVersionHost: return "fwVersionHost";
    case PredKind::kLe: return "le";
    case PredKind::kReuseMap: return "reuseMap";
    case PredKind::kLogUpdate: return "logUpdate";
  }
  return "?";
}

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Minimal hand-rolled scanner for the policy grammar.
class PolicyParser {
 public:
  explicit PolicyParser(std::string_view text) : text_(text) {}

  Result<PolicySet> Parse() {
    PolicySet set;
    SkipSpace();
    while (!AtEnd()) {
      ASSIGN_OR_RETURN(PolicyRule rule, ParseRule());
      set.rules.push_back(std::move(rule));
      SkipSpace();
    }
    if (set.rules.empty()) {
      return Status::InvalidArgument("empty policy document");
    }
    return set;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_[pos_] == '#') {  // comments to end of line
        while (!AtEnd() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool Match(std::string_view s) {
    SkipSpace();
    if (text_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  Result<std::string> ReadWord() {
    SkipSpace();
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                        text_[pos_] == '_' || text_[pos_] == '-' ||
                        text_[pos_] == '.' || text_[pos_] == ':' ||
                        text_[pos_] == '*')) {
      // ':' handled here only inside args; rule separators match earlier.
      if (text_[pos_] == ':' && text_.substr(pos_, 2) == "::") break;
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected word at offset " +
                                     std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<PolicyRule> ParseRule() {
    ASSIGN_OR_RETURN(std::string perm_word, ReadWord());
    std::string lp = Lower(perm_word);
    PolicyRule rule;
    if (lp == "read") {
      rule.perm = Perm::kRead;
    } else if (lp == "write") {
      rule.perm = Perm::kWrite;
    } else if (lp == "exec") {
      rule.perm = Perm::kExec;
    } else {
      return Status::InvalidArgument("unknown permission: " + perm_word);
    }
    if (!Match("::=") && !Match(":--") && !Match(":-")) {
      return Status::InvalidArgument("expected '::=' after permission");
    }
    ASSIGN_OR_RETURN(rule.expr, ParseOr());
    return rule;
  }

  Result<std::unique_ptr<PolicyExpr>> ParseOr() {
    ASSIGN_OR_RETURN(auto left, ParseAnd());
    while (Match("|")) {
      ASSIGN_OR_RETURN(auto right, ParseAnd());
      auto node = std::make_unique<PolicyExpr>();
      node->kind = PolicyExpr::Kind::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<PolicyExpr>> ParseAnd() {
    ASSIGN_OR_RETURN(auto left, ParseFactor());
    while (Match("&")) {
      ASSIGN_OR_RETURN(auto right, ParseFactor());
      auto node = std::make_unique<PolicyExpr>();
      node->kind = PolicyExpr::Kind::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<PolicyExpr>> ParseFactor() {
    if (Match("(")) {
      ASSIGN_OR_RETURN(auto inner, ParseOr());
      if (!Match(")")) return Status::InvalidArgument("expected ')'");
      return inner;
    }
    ASSIGN_OR_RETURN(std::string name, ReadWord());
    auto it = PredNames().find(Lower(name));
    if (it == PredNames().end()) {
      return Status::InvalidArgument("unknown predicate: " + name);
    }
    auto node = std::make_unique<PolicyExpr>();
    node->kind = PolicyExpr::Kind::kPredicate;
    node->pred = it->second;
    if (!Match("(")) {
      return Status::InvalidArgument("expected '(' after " + name);
    }
    if (!Match(")")) {
      do {
        ASSIGN_OR_RETURN(std::string arg, ReadWord());
        node->args.push_back(std::move(arg));
      } while (Match(","));
      if (!Match(")")) return Status::InvalidArgument("expected ')'");
    }
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<PolicyExpr> PolicyExpr::Clone() const {
  auto e = std::make_unique<PolicyExpr>();
  e->kind = kind;
  e->pred = pred;
  e->args = args;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  return e;
}

std::string PolicyExpr::ToString() const {
  switch (kind) {
    case Kind::kPredicate: {
      std::string out(PredName(pred));
      out += "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i];
      }
      out += ")";
      return out;
    }
    case Kind::kAnd:
      return "(" + left->ToString() + " & " + right->ToString() + ")";
    case Kind::kOr:
      return "(" + left->ToString() + " | " + right->ToString() + ")";
  }
  return "?";
}

const PolicyExpr* PolicySet::Find(Perm perm) const {
  for (const PolicyRule& rule : rules) {
    if (rule.perm == perm) return rule.expr.get();
  }
  return nullptr;
}

std::string PolicySet::ToString() const {
  std::string out;
  for (const PolicyRule& rule : rules) {
    out += std::string(PermName(rule.perm)) + " ::= " + rule.expr->ToString() +
           "\n";
  }
  return out;
}

Result<PolicySet> ParsePolicy(std::string_view text) {
  PolicyParser parser(text);
  return parser.Parse();
}

}  // namespace ironsafe::policy
