#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "sql/column_batch.h"
#include "sql/database.h"
#include "sql/exec_internal.h"
#include "sql/oblivious_kernels.h"

/// The oblivious execution mode (docs/OBLIVIOUS.md). One dummy-padded
/// pipeline serves both ExecEngine settings: the engine only selects the
/// scan decode path (row cursor vs batch decode), which touches the same
/// pages in the same order and charges the same constants, so the two
/// variants return bit-identical rows, stats, cost and access traces.
///
/// Obliviousness invariants, enforced at the page/batch/operator-event
/// granularity the access-trace harness observes (tests/oblivious_test.cc):
///  - scans read every morsel unit of each base table in order, with no
///    predicate pushdown narrowing what is fetched;
///  - filters never drop rows — they flip validity flags, so every
///    downstream pass keeps its shape, and conjuncts are never
///    short-circuited (the evaluation count per row is fixed);
///  - sorts run on a bitonic merge network whose compare-exchange
///    sequence is a pure function of the padded size;
///  - equi-joins are sort-merge over both *full* inputs — filtered-out
///    rows participate with their validity flag down, so the merge
///    structure depends only on the join-key multiplicity of the stored
///    data (public), never on predicate selectivity;
///  - aggregation output is padded to its worst-case bound (one group
///    per input row), with null-filled dummy rows for the slack.
/// Row-level arithmetic inside the simulated enclave (expression
/// evaluation, aggregate accumulation) is below this model's
/// granularity; the branch-free discipline is enforced mechanically for
/// the kernels in oblivious_kernels.* by ironsafe_lint.
namespace ironsafe::sql::exec {

namespace {

/// A dummy-padded relation: `rows` always carries well-typed data (real
/// scanned/joined tuples, or null-filled dummies after aggregation);
/// `valid[i]` says whether row i logically exists. Validity never drives
/// control flow inside the pipeline — only the final declassification
/// compacts on it.
struct ORel {
  Schema schema;
  std::vector<Row> rows;
  std::vector<uint8_t> valid;
};

uint64_t ORelBytes(const ORel& rel) {
  uint64_t total = 0;
  for (const Row& r : rel.rows) total += RowBytes(r);
  return total;
}

/// Pads `items` to the next power of two with default-constructed
/// sentinels (every sortable item type below defaults to pad = 1, which
/// all comparators order last), runs the bitonic network, charges the
/// exchange count and records the network's shape, then drops the
/// sentinels again. The whole access sequence is a function of
/// items->size() alone.
template <typename T, typename Cmp>
void SortNetwork(Ctx* ctx, std::vector<T>* items, const Cmp& cmp) {
  const size_t n = items->size();
  const size_t padded = NextPow2(std::max<size_t>(n, 1));
  items->resize(padded);
  uint64_t exchanges = BitonicSort(items, cmp);
  ctx->Charge(exchanges * kOblSortCmpCycles);
  ctx->RecordAccess(obs::AccessKind::kSortNetwork, padded, exchanges);
  items->resize(n);
}

int CompareU64(uint64_t a, uint64_t b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

// ---- Scan ----

struct OblScanSlice {
  std::vector<Row> rows;
  uint64_t rows_scanned = 0;
  uint64_t cycles = 0;
  std::optional<sim::CostModel> cost;
  obs::AccessLog access;
  Status status = Status::OK();
  uint64_t unit_begin = 0;
  uint64_t unit_end = 0;
  int64_t wall_start_us = 0;
  int64_t wall_end_us = 0;
};

/// Full-table morsel scan with no pushed filters: every unit is read in
/// table order regardless of values. Workers scan contiguous unit
/// ranges against private cost/access slices which merge in worker
/// order, so rows, charges and the unit-read event sequence are
/// identical for every real worker count. The decode path follows
/// opts.engine (cursor vs batch), but both read the same pages and
/// charge the same flat constant per row — the `cached` decode discount
/// is deliberately not taken, so cost stays engine- and
/// history-independent.
Status ScanTableOblivious(Ctx* ctx, Table* table, ORel* rel) {
  uint64_t units = table->morsel_units();
  if (units == 0) {
    // Empty table (or a store without partitioned scans): plain serial
    // cursor over whatever is there — still a full scan.
    auto cursor = table->NewCursor(ctx->cost);
    Row row;
    while (true) {
      ASSIGN_OR_RETURN(bool more, cursor->Next(&row));
      if (!more) break;
      if (ctx->stats != nullptr) ++ctx->stats->rows_scanned;
      ctx->Charge(kOblScanRowCycles);
      rel->rows.push_back(std::move(row));
    }
    rel->valid.assign(rel->rows.size(), 1);
    return Status::OK();
  }

  int workers = PlanWorkers(*ctx, units, kMinScanUnitsPerWorker);
  std::vector<OblScanSlice> slices(workers);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  const size_t num_cols = rel->schema.size();
  const bool batch_decode = ctx->opts.engine == ExecEngine::kVectorized;
  const bool record = ctx->access != nullptr;
  obs::Tracer* tracer = ctx->traced ? obs::CurrentTracer() : nullptr;
  for (int w = 0; w < workers; ++w) {
    uint64_t begin = units * w / workers;
    uint64_t end = units * (w + 1) / workers;
    OblScanSlice* slice = &slices[w];
    slice->unit_begin = begin;
    slice->unit_end = end;
    if (ctx->cost != nullptr) slice->cost.emplace(ctx->cost->profile());
    tasks.push_back([table, num_cols, batch_decode, record, begin, end, slice,
                     tracer] {
      if (tracer != nullptr) slice->wall_start_us = tracer->WallNowUs();
      sim::CostModel* wcost = slice->cost ? &*slice->cost : nullptr;
      [&] {
        Row row;
        for (uint64_t unit = begin; unit < end; ++unit) {
          uint64_t unit_rows = 0;
          if (batch_decode) {
            Result<DecodedMorsel> decoded = table->DecodeMorselBatch(unit, wcost);
            if (!decoded.ok()) {
              slice->status = decoded.status();
              return;
            }
            const auto& batch = decoded->batch;
            size_t n = batch == nullptr ? 0 : batch->rows();
            for (size_t i = 0; i < n; ++i) {
              batch->MaterializeRow(i, &row);
              slice->rows.push_back(row);
            }
            unit_rows = n;
            (void)num_cols;
          } else {
            auto cursor = table->NewMorselCursor(unit, unit + 1, wcost);
            while (true) {
              Result<bool> more = cursor->Next(&row);
              if (!more.ok()) {
                slice->status = more.status();
                return;
              }
              if (!*more) break;
              ++unit_rows;
              slice->rows.push_back(std::move(row));
            }
          }
          slice->rows_scanned += unit_rows;
          slice->cycles += unit_rows * kOblScanRowCycles;
          if (record) {
            slice->access.Record(obs::AccessKind::kUnitRead, unit, unit_rows);
          }
        }
      }();
      if (tracer != nullptr) slice->wall_end_us = tracer->WallNowUs();
    });
  }

  table->BeginParallelScan(workers);
  common::ThreadPool::Shared().RunTasks(tasks);
  table->EndParallelScan();

  size_t total = rel->rows.size();
  for (const OblScanSlice& s : slices) total += s.rows.size();
  rel->rows.reserve(total);
  for (int w = 0; w < workers; ++w) {
    OblScanSlice& s = slices[w];
    RETURN_IF_ERROR(s.status);
    if (ctx->stats != nullptr) ctx->stats->rows_scanned += s.rows_scanned;
    ctx->Charge(s.cycles);
    if (ctx->cost != nullptr && s.cost.has_value()) {
      ctx->cost->MergeChild(*s.cost);
    }
    if (ctx->access != nullptr) ctx->access->Append(s.access);
    if (tracer != nullptr) {
      int64_t id = tracer->AddDetailSpan(
          "morsel", "sql", s.cost ? s.cost->elapsed_ns() : 0, w,
          s.wall_start_us, s.wall_end_us);
      tracer->AddTag(id, "worker", static_cast<int64_t>(w));
      tracer->AddTag(id, "unit_begin", static_cast<int64_t>(s.unit_begin));
      tracer->AddTag(id, "unit_end", static_cast<int64_t>(s.unit_end));
      tracer->AddTag(id, "rows_scanned", static_cast<int64_t>(s.rows_scanned));
    }
    for (Row& r : s.rows) rel->rows.push_back(std::move(r));
  }
  rel->valid.assign(rel->rows.size(), 1);
  return Status::OK();
}

/// Evaluates `exprs` on every row (valid and dummy alike, with no
/// short-circuiting, so the evaluation count per row is fixed) and ANDs
/// the outcome into the validity flags. Rows are never dropped.
Status MaskedFilterExprs(Ctx* ctx, ORel* rel,
                         const std::vector<const Expr*>& exprs) {
  if (exprs.empty()) return Status::OK();
  const size_t n = rel->rows.size();
  ctx->Charge(static_cast<uint64_t>(n) * exprs.size() * kOblFilterRowCycles);
  std::vector<uint8_t> pass(n, 1);
  for (size_t i = 0; i < n; ++i) {
    EvalScope scope{&rel->schema, &rel->rows[i], ctx->outer};
    for (const Expr* e : exprs) {
      ASSIGN_OR_RETURN(bool ok, ctx->eval->EvalBool(*e, scope));
      pass[i] = static_cast<uint8_t>(pass[i] & static_cast<uint8_t>(ok));
    }
  }
  MaskedFilterUpdate(&rel->valid, pass);
  ctx->RecordAccess(obs::AccessKind::kFilter, n, n);
  return Status::OK();
}

Result<ORel> ExecutePaddedPipeline(Database* db, const SelectStmt& stmt,
                                   const EvalScope* outer,
                                   sim::CostModel* cost,
                                   const ExecOptions& opts, ExecStats* stats);

Result<ORel> ScanRelationOblivious(Ctx* ctx, const TableRef& ref,
                                   std::vector<ConjunctInfo>* conjuncts) {
  StageSpan span(ctx, "scan");
  span.Tag("table", ref.subquery ? "derived:" + ref.alias : ref.table_name);
  ctx->RecordAccess(obs::AccessKind::kScanBegin);
  ORel rel;
  if (ref.subquery) {
    // Derived table: the subquery's *padded* relation flows through —
    // its width is shape-derived, so the outer pipeline never sees the
    // (value-dependent) compacted row count. As in the plain engines,
    // the inner pipeline charges the shared cost model but not the
    // outer ExecStats; the derived relation's valid rows count as
    // scanned.
    ASSIGN_OR_RETURN(ORel sub,
                     ExecutePaddedPipeline(ctx->db, *ref.subquery, ctx->outer,
                                           ctx->cost, ctx->opts,
                                           /*stats=*/nullptr));
    rel.schema = sub.schema.Qualified(ref.alias);
    rel.rows = std::move(sub.rows);
    rel.valid = std::move(sub.valid);
    if (ctx->stats != nullptr) {
      ctx->stats->rows_scanned += MaskedCount(rel.valid);
    }
    ctx->Charge(rel.rows.size() * kOblScanRowCycles);
  } else {
    ASSIGN_OR_RETURN(Table * t, ctx->db->GetTable(ref.table_name));
    rel.schema = t->schema().Qualified(ref.alias);
    RETURN_IF_ERROR(ScanTableOblivious(ctx, t, &rel));
  }

  // The conjuncts the plain engines push into the scan are applied here
  // as a validity mask instead — same consumption bookkeeping, but the
  // fetch above never depended on them.
  std::vector<const Expr*> filters;
  if (conjuncts != nullptr) {
    for (ConjunctInfo& info : *conjuncts) {
      if (info.consumed || info.has_subquery) continue;
      if (!info.columns.empty() && ResolvableBy(info.columns, rel.schema)) {
        filters.push_back(info.expr);
        info.consumed = true;
      }
    }
  }
  RETURN_IF_ERROR(MaskedFilterExprs(ctx, &rel, filters));
  span.Tag("rows_out", static_cast<int64_t>(rel.rows.size()));
  ctx->RecordAccess(obs::AccessKind::kScanEnd, rel.rows.size());
  return rel;
}

// ---- Join ----

struct EquiKey {
  const Expr* left_expr;
  const Expr* right_expr;
};

/// Sortable join-side item. Default-constructed items are network
/// padding and order last.
struct JoinItem {
  std::string key;
  uint64_t seq = 0;
  uint8_t pad = 1;
  uint8_t valid = 0;
  Row row;
};

int CompareJoinItems(const JoinItem& a, const JoinItem& b) {
  if (a.pad != b.pad) return a.pad < b.pad ? -1 : 1;
  int c = a.key.compare(b.key);
  if (c != 0) return c;
  return CompareU64(a.seq, b.seq);
}

/// Evaluates the equi-key expressions for every row of `rel` — valid
/// and invalid alike — into sortable items. Key expressions are
/// subquery-free by construction, so a runner-less evaluator suffices.
Result<std::vector<JoinItem>> ComputeJoinItems(
    Ctx* ctx, const ORel& rel, const std::vector<const Expr*>& exprs) {
  std::vector<JoinItem> items(rel.rows.size());
  ctx->Charge(rel.rows.size() * kOblMergeRowCycles);
  Evaluator eval(nullptr);
  std::vector<Value> kv;
  for (size_t i = 0; i < rel.rows.size(); ++i) {
    EvalScope scope{&rel.schema, &rel.rows[i], ctx->outer};
    kv.clear();
    kv.reserve(exprs.size());
    for (const Expr* e : exprs) {
      ASSIGN_OR_RETURN(Value v, eval.Eval(*e, scope));
      kv.push_back(std::move(v));
    }
    Bytes key = KeyOf(kv);
    items[i].key.assign(key.begin(), key.end());
    items[i].seq = i;
    items[i].pad = 0;
    items[i].valid = rel.valid[i];
    items[i].row = rel.rows[i];
  }
  return items;
}

/// Sort-merge join over both full inputs. Every row participates in the
/// sort and merge whether or not upstream filters invalidated it; an
/// output pair is valid only when both parents are. The merge structure
/// therefore depends on the stored data's join-key multiplicity (public
/// shape), never on predicate selectivity. Non-equi joins fall back to
/// the full cross product — all nl*nr pairs, validity-masked.
Result<ORel> JoinRelationsOblivious(Ctx* ctx, ORel left, ORel right,
                                    std::vector<ConjunctInfo>* conjuncts,
                                    const Expr* on) {
  StageSpan span(ctx, "join");
  span.Tag("left_rows", static_cast<int64_t>(left.rows.size()));
  span.Tag("right_rows", static_cast<int64_t>(right.rows.size()));
  ctx->RecordAccess(obs::AccessKind::kJoinBegin, left.rows.size(),
                    right.rows.size());
  Schema combined = Schema::Concat(left.schema, right.schema);

  std::vector<ConjunctInfo> on_infos = AnalyzeConjuncts(on);
  std::vector<ConjunctInfo*> applicable;
  for (ConjunctInfo& info : on_infos) applicable.push_back(&info);
  if (conjuncts != nullptr) {
    for (ConjunctInfo& info : *conjuncts) {
      if (info.consumed || info.has_subquery || info.columns.empty()) continue;
      if (ResolvableBy(info.columns, combined)) {
        applicable.push_back(&info);
        info.consumed = true;
      }
    }
  }

  std::vector<EquiKey> keys;
  std::vector<const Expr*> residual;
  for (ConjunctInfo* info : applicable) {
    const Expr* e = info->expr;
    bool is_equi = false;
    if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kEq) {
      std::set<std::string> lcols, rcols;
      bool lsub = false, rsub = false;
      CollectColumns(*e->left, &lcols, &lsub);
      CollectColumns(*e->right, &rcols, &rsub);
      if (!lsub && !rsub && !lcols.empty() && !rcols.empty()) {
        if (ResolvableBy(lcols, left.schema) &&
            ResolvableBy(rcols, right.schema)) {
          keys.push_back(EquiKey{e->left.get(), e->right.get()});
          is_equi = true;
        } else if (ResolvableBy(lcols, right.schema) &&
                   ResolvableBy(rcols, left.schema)) {
          keys.push_back(EquiKey{e->right.get(), e->left.get()});
          is_equi = true;
        }
      }
    }
    if (!is_equi) residual.push_back(e);
  }

  ctx->TrackMemory(ORelBytes(left) + ORelBytes(right));

  ORel out;
  out.schema = combined;
  span.Tag("kind", keys.empty() ? "nested-loop" : "sort-merge");
  if (!keys.empty()) {
    std::vector<const Expr*> left_exprs, right_exprs;
    left_exprs.reserve(keys.size());
    right_exprs.reserve(keys.size());
    for (const EquiKey& k : keys) {
      left_exprs.push_back(k.left_expr);
      right_exprs.push_back(k.right_expr);
    }
    ASSIGN_OR_RETURN(std::vector<JoinItem> litems,
                     ComputeJoinItems(ctx, left, left_exprs));
    ASSIGN_OR_RETURN(std::vector<JoinItem> ritems,
                     ComputeJoinItems(ctx, right, right_exprs));
    SortNetwork(ctx, &litems, CompareJoinItems);
    SortNetwork(ctx, &ritems, CompareJoinItems);

    // Group-wise merge in key order; within a key group pairs emit in
    // (left seq, right seq) order, so the output is deterministic.
    const size_t nl = litems.size();
    const size_t nr = ritems.size();
    size_t i = 0, j = 0;
    while (i < nl && j < nr) {
      int c = litems[i].key.compare(ritems[j].key);
      if (c < 0) {
        ++i;
        continue;
      }
      if (c > 0) {
        ++j;
        continue;
      }
      size_t i2 = i;
      while (i2 < nl && litems[i2].key == litems[i].key) ++i2;
      size_t j2 = j;
      while (j2 < nr && ritems[j2].key == ritems[j].key) ++j2;
      for (size_t li = i; li < i2; ++li) {
        for (size_t rj = j; rj < j2; ++rj) {
          Row joined = litems[li].row;
          joined.insert(joined.end(), ritems[rj].row.begin(),
                        ritems[rj].row.end());
          out.rows.push_back(std::move(joined));
          out.valid.push_back(
              static_cast<uint8_t>(litems[li].valid & ritems[rj].valid));
        }
      }
      i = i2;
      j = j2;
    }
    ctx->Charge((nl + nr + out.rows.size()) * kOblMergeRowCycles);
    ctx->RecordAccess(obs::AccessKind::kJoinMerge, out.rows.size(), 1);
  } else {
    // Cross product of both full inputs.
    out.rows.reserve(left.rows.size() * right.rows.size());
    for (size_t li = 0; li < left.rows.size(); ++li) {
      for (size_t rj = 0; rj < right.rows.size(); ++rj) {
        Row joined = left.rows[li];
        joined.insert(joined.end(), right.rows[rj].begin(),
                      right.rows[rj].end());
        out.rows.push_back(std::move(joined));
        out.valid.push_back(
            static_cast<uint8_t>(left.valid[li] & right.valid[rj]));
      }
    }
    ctx->Charge(out.rows.size() * kOblMergeRowCycles);
    ctx->RecordAccess(obs::AccessKind::kJoinMerge, out.rows.size(), 0);
  }

  RETURN_IF_ERROR(MaskedFilterExprs(ctx, &out, residual));
  span.Tag("rows_out", static_cast<int64_t>(out.rows.size()));
  ctx->RecordAccess(obs::AccessKind::kJoinEnd, out.rows.size(),
                    keys.empty() ? 0 : 1);
  return out;
}

// ---- Aggregation ----

struct AggState {
  double sum = 0;
  int64_t isum = 0;
  bool all_int = true;
  uint64_t count = 0;
  Value min, max;
  std::set<std::string> distinct;
};

Status AccumulateAgg(Ctx* ctx, const Schema& schema, const Row& row,
                     const std::vector<const Expr*>& aggs,
                     std::vector<AggState>* states) {
  EvalScope scope{&schema, &row, ctx->outer};
  for (size_t i = 0; i < aggs.size(); ++i) {
    const Expr* a = aggs[i];
    AggState& st = (*states)[i];
    if (a->agg_func == AggFunc::kCountStar) {
      ++st.count;
      continue;
    }
    ASSIGN_OR_RETURN(Value v, ctx->eval->Eval(*a->args[0], scope));
    if (v.is_null()) continue;
    if (a->distinct) {
      Bytes ser;
      v.Serialize(&ser);
      st.distinct.insert(std::string(ser.begin(), ser.end()));
      continue;
    }
    switch (a->agg_func) {
      case AggFunc::kCount:
        ++st.count;
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        ++st.count;
        st.sum += v.AsDouble();
        if (v.type() == Type::kInt64) {
          st.isum += v.AsInt();
        } else {
          st.all_int = false;
        }
        break;
      case AggFunc::kMin:
        if (st.count == 0 || v.Compare(st.min) < 0) st.min = v;
        ++st.count;
        break;
      case AggFunc::kMax:
        if (st.count == 0 || v.Compare(st.max) > 0) st.max = v;
        ++st.count;
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

Row FinalizeAgg(const std::vector<Value>& gvals,
                const std::vector<const Expr*>& aggs,
                std::vector<AggState>* states) {
  Row row = gvals;
  for (size_t i = 0; i < aggs.size(); ++i) {
    const Expr* a = aggs[i];
    AggState& st = (*states)[i];
    switch (a->agg_func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        row.push_back(Value::Int(
            a->distinct ? static_cast<int64_t>(st.distinct.size())
                        : static_cast<int64_t>(st.count)));
        break;
      case AggFunc::kSum:
        if (st.count == 0) {
          row.push_back(Value::Null());
        } else if (st.all_int) {
          row.push_back(Value::Int(st.isum));
        } else {
          row.push_back(Value::Double(st.sum));
        }
        break;
      case AggFunc::kAvg:
        row.push_back(st.count == 0
                          ? Value::Null()
                          : Value::Double(st.sum /
                                          static_cast<double>(st.count)));
        break;
      case AggFunc::kMin:
        row.push_back(st.count == 0 ? Value::Null() : st.min);
        break;
      case AggFunc::kMax:
        row.push_back(st.count == 0 ? Value::Null() : st.max);
        break;
    }
  }
  return row;
}

/// Sortable aggregation item; defaults are network padding.
struct AggItem {
  std::string key;
  uint64_t seq = 0;
  uint8_t pad = 1;
  uint8_t valid = 0;
  Row row;
  std::vector<Value> gvals;
};

int CompareAggItems(const AggItem& a, const AggItem& b) {
  if (a.pad != b.pad) return a.pad < b.pad ? -1 : 1;
  // Valid rows first so true groups are contiguous prefixes.
  if (a.valid != b.valid) return a.valid > b.valid ? -1 : 1;
  int c = a.key.compare(b.key);
  if (c != 0) return c;
  return CompareU64(a.seq, b.seq);
}

/// Oblivious grouped aggregation: sort all rows by (validity, group
/// key) on the network, then one fixed-length pass accumulates groups
/// and emits each group's result at its last position. The output is
/// padded to the worst-case bound — one group per input row — with
/// null-filled dummy rows for the slack; compacting the valid rows
/// yields exactly the plain engines' map-ordered output. A global
/// aggregate (no GROUP BY) has the public output width 1 and needs no
/// sort.
Result<ORel> AggregateOblivious(Ctx* ctx, ORel input, const SelectStmt& stmt,
                                std::map<std::string, const Expr*> agg_exprs) {
  ORel out;
  std::vector<const Expr*> group_exprs;
  for (const auto& g : stmt.group_by) group_exprs.push_back(g.get());
  for (const Expr* g : group_exprs) {
    out.schema.AddColumn(Column{g->ToString(), InferType(*g, input.schema)});
  }
  std::vector<const Expr*> aggs;
  for (const auto& [name, e] : agg_exprs) {
    aggs.push_back(e);
    out.schema.AddColumn(Column{name, InferType(*e, input.schema)});
  }

  const size_t n = input.rows.size();
  ctx->Charge(static_cast<uint64_t>(n) * kOblAggRowCycles);

  if (group_exprs.empty()) {
    // Global aggregate: one output row always exists, even over zero
    // valid inputs (matching the plain engines' empty-group special
    // case).
    std::vector<AggState> states(aggs.size());
    for (size_t i = 0; i < n; ++i) {
      if (!input.valid[i]) continue;
      RETURN_IF_ERROR(
          AccumulateAgg(ctx, input.schema, input.rows[i], aggs, &states));
    }
    out.rows.push_back(FinalizeAgg({}, aggs, &states));
    out.valid.push_back(1);
    ctx->RecordAccess(obs::AccessKind::kAggregate, n, 1);
    return out;
  }

  std::vector<AggItem> items(n);
  for (size_t i = 0; i < n; ++i) {
    EvalScope scope{&input.schema, &input.rows[i], ctx->outer};
    std::vector<Value> gvals;
    gvals.reserve(group_exprs.size());
    for (const Expr* g : group_exprs) {
      ASSIGN_OR_RETURN(Value v, ctx->eval->Eval(*g, scope));
      gvals.push_back(std::move(v));
    }
    Bytes key = KeyOf(gvals);
    items[i].key.assign(key.begin(), key.end());
    items[i].seq = i;
    items[i].pad = 0;
    items[i].valid = input.valid[i];
    items[i].row = std::move(input.rows[i]);
    items[i].gvals = std::move(gvals);
  }
  SortNetwork(ctx, &items, CompareAggItems);

  const Row dummy(out.schema.size(), Value::Null());
  out.rows.assign(n, dummy);
  out.valid.assign(n, 0);
  std::vector<AggState> states;
  std::vector<Value> cur_gvals;
  for (size_t i = 0; i < n; ++i) {
    const AggItem& item = items[i];
    bool starts_group =
        item.valid != 0 && (i == 0 || items[i - 1].valid == 0 ||
                            items[i - 1].key != item.key);
    if (starts_group) {
      states.assign(aggs.size(), AggState{});
      cur_gvals = item.gvals;
    }
    if (item.valid != 0) {
      RETURN_IF_ERROR(
          AccumulateAgg(ctx, input.schema, item.row, aggs, &states));
    }
    bool ends_group =
        item.valid != 0 && (i + 1 == n || items[i + 1].valid == 0 ||
                            items[i + 1].key != item.key);
    if (ends_group) {
      out.rows[i] = FinalizeAgg(cur_gvals, aggs, &states);
      out.valid[i] = 1;
    }
  }
  ctx->RecordAccess(obs::AccessKind::kAggregate, n, n);
  return out;
}

// ---- Projection / DISTINCT / ORDER BY bundles ----

/// A projected output row bundled with its hidden ORDER BY keys and
/// provenance, sortable on the network; defaults are padding.
struct OutItem {
  Row row;
  std::vector<Value> hidden;
  std::vector<Value> order_keys;
  std::string dedupe_key;
  uint64_t seq = 0;
  uint8_t pad = 1;
  uint8_t valid = 0;
};

// ---- Pipeline ----

Result<ORel> ExecutePaddedPipeline(Database* db, const SelectStmt& stmt,
                                   const EvalScope* outer,
                                   sim::CostModel* cost,
                                   const ExecOptions& opts,
                                   ExecStats* stats) {
  Ctx ctx;
  ctx.db = db;
  ctx.cost = cost;
  ctx.opts = opts;
  ctx.stats = stats;
  ctx.outer = outer;
  ctx.runner = std::make_unique<ExecSubqueryRunner>(db, cost, opts);
  ctx.eval = std::make_unique<Evaluator>(ctx.runner.get());
  ctx.traced =
      opts.trace && cost != nullptr && obs::CurrentTracer() != nullptr;
  ctx.access = opts.trace ? obs::CurrentAccessLog() : nullptr;

  StageSpan select_span(&ctx, "select");
  ctx.RecordAccess(obs::AccessKind::kQueryBegin, 1);

  std::vector<ConjunctInfo> conjuncts = AnalyzeConjuncts(stmt.where.get());

  // 1. Scan the first relation, then fold in the rest.
  ASSIGN_OR_RETURN(ORel current,
                   ScanRelationOblivious(&ctx, stmt.from[0], &conjuncts));
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    ASSIGN_OR_RETURN(ORel next,
                     ScanRelationOblivious(&ctx, stmt.from[i], &conjuncts));
    ASSIGN_OR_RETURN(current,
                     JoinRelationsOblivious(&ctx, std::move(current),
                                            std::move(next), &conjuncts,
                                            nullptr));
  }
  for (const JoinClause& join : stmt.joins) {
    ASSIGN_OR_RETURN(ORel next,
                     ScanRelationOblivious(&ctx, join.table, &conjuncts));
    ASSIGN_OR_RETURN(current,
                     JoinRelationsOblivious(&ctx, std::move(current),
                                            std::move(next), &conjuncts,
                                            join.on.get()));
  }

  // 2. Residual predicates (incl. subquery predicates) as a mask.
  {
    std::vector<const Expr*> residual;
    for (ConjunctInfo& info : conjuncts) {
      if (!info.consumed) residual.push_back(info.expr);
    }
    if (!residual.empty()) {
      StageSpan filter_span(&ctx, "filter");
      filter_span.Tag("rows_in", static_cast<int64_t>(current.rows.size()));
      filter_span.Tag("predicates", static_cast<int64_t>(residual.size()));
      RETURN_IF_ERROR(MaskedFilterExprs(&ctx, &current, residual));
      filter_span.Tag("rows_out", static_cast<int64_t>(current.rows.size()));
    }
  }

  // 3. Aggregation.
  std::map<std::string, const Expr*> agg_exprs;
  for (const SelectItem& item : stmt.items) {
    CollectAggregates(*item.expr, &agg_exprs);
  }
  if (stmt.having) CollectAggregates(*stmt.having, &agg_exprs);
  for (const OrderItem& o : stmt.order_by) CollectAggregates(*o.expr, &agg_exprs);

  bool aggregated = !agg_exprs.empty() || !stmt.group_by.empty();
  std::set<std::string> rewrite_names;
  std::vector<SelectItem> items;
  ExprPtr having;
  std::vector<OrderItem> order_by;

  if (aggregated) {
    for (const auto& g : stmt.group_by) rewrite_names.insert(g->ToString());
    for (const auto& [name, e] : agg_exprs) rewrite_names.insert(name);
    {
      StageSpan agg_span(&ctx, "aggregate");
      agg_span.Tag("rows_in", static_cast<int64_t>(current.rows.size()));
      ASSIGN_OR_RETURN(current, AggregateOblivious(&ctx, std::move(current),
                                                   stmt, agg_exprs));
      agg_span.Tag("groups", static_cast<int64_t>(current.rows.size()));
    }
    for (const SelectItem& item : stmt.items) {
      items.push_back(SelectItem{RewriteToColumns(*item.expr, rewrite_names),
                                 item.alias});
    }
    if (stmt.having) having = RewriteToColumns(*stmt.having, rewrite_names);
    for (const OrderItem& o : stmt.order_by) {
      order_by.push_back(
          OrderItem{RewriteToColumns(*o.expr, rewrite_names), o.desc});
    }
  } else {
    for (const SelectItem& item : stmt.items) {
      items.push_back(SelectItem{item.expr->Clone(), item.alias});
    }
    if (stmt.having) {
      return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
    }
    for (const OrderItem& o : stmt.order_by) {
      order_by.push_back(OrderItem{o.expr->Clone(), o.desc});
    }
  }

  // 4. HAVING as a mask.
  if (having) {
    std::vector<const Expr*> having_exprs{having.get()};
    RETURN_IF_ERROR(MaskedFilterExprs(&ctx, &current, having_exprs));
  }

  // 5. Projection over every row, dummies included (dummy rows carry
  //    well-typed data — real tuples or nulls — so item expressions
  //    evaluate uniformly). Hidden ORDER BY keys ride along as in the
  //    plain engines.
  ORel projected;
  std::vector<std::vector<Value>> hidden_keys;
  std::vector<bool> order_from_input(order_by.size(), false);
  bool any_hidden = false;
  {
    StageSpan project_span(&ctx, "project");
    project_span.Tag("rows", static_cast<int64_t>(current.rows.size()));
    ctx.Charge(current.rows.size() * kOblProjectRowCycles);
    ctx.RecordAccess(obs::AccessKind::kProject, current.rows.size());
    bool star_only = items.size() == 1 && items[0].expr->kind == ExprKind::kStar;
    if (star_only) {
      projected.schema = current.schema;
      projected.rows = std::move(current.rows);
      projected.valid = std::move(current.valid);
    } else {
      for (const SelectItem& item : items) {
        if (item.expr->kind == ExprKind::kStar) {
          return Status::InvalidArgument(
              "* must be the only item in a SELECT list");
        }
        std::string name = item.alias;
        if (name.empty()) {
          if (item.expr->kind == ExprKind::kColumn) {
            const std::string& cn = item.expr->column_name;
            size_t dot = cn.rfind('.');
            name = dot == std::string::npos ? cn : cn.substr(dot + 1);
          } else {
            name = item.expr->ToString();
          }
        }
        projected.schema.AddColumn(
            Column{name, InferType(*item.expr, current.schema)});
      }
      for (size_t k = 0; k < order_by.size(); ++k) {
        std::set<std::string> cols;
        bool sub = false;
        CollectColumns(*order_by[k].expr, &cols, &sub);
        if (!ResolvableBy(cols, projected.schema)) order_from_input[k] = true;
      }
      any_hidden = std::any_of(order_from_input.begin(),
                               order_from_input.end(),
                               [](bool b) { return b; });
      for (size_t i = 0; i < current.rows.size(); ++i) {
        EvalScope scope{&current.schema, &current.rows[i], ctx.outer};
        Row out_row;
        out_row.reserve(items.size());
        for (const SelectItem& item : items) {
          ASSIGN_OR_RETURN(Value v, ctx.eval->Eval(*item.expr, scope));
          out_row.push_back(std::move(v));
        }
        if (any_hidden) {
          std::vector<Value> hk;
          for (size_t k = 0; k < order_by.size(); ++k) {
            if (!order_from_input[k]) continue;
            ASSIGN_OR_RETURN(Value v, ctx.eval->Eval(*order_by[k].expr, scope));
            hk.push_back(std::move(v));
          }
          hidden_keys.push_back(std::move(hk));
        }
        projected.rows.push_back(std::move(out_row));
        projected.valid.push_back(current.valid[i]);
      }
    }
  }

  // 6/7. DISTINCT and ORDER BY share one sortable bundle.
  const size_t n_out = projected.rows.size();
  if (stmt.distinct || !order_by.empty()) {
    std::vector<OutItem> bundle(n_out);
    for (size_t i = 0; i < n_out; ++i) {
      OutItem& it = bundle[i];
      it.seq = i;
      it.pad = 0;
      it.valid = projected.valid[i];
      it.row = std::move(projected.rows[i]);
      if (any_hidden && i < hidden_keys.size()) {
        it.hidden = std::move(hidden_keys[i]);
      }
      if (stmt.distinct) {
        Bytes key = KeyOf(it.row);
        it.dedupe_key.assign(key.begin(), key.end());
      }
    }

    if (stmt.distinct) {
      // Sort by the visible row so duplicates are adjacent, then mask
      // every valid repeat; the first of each run (lowest seq) wins.
      auto cmp = [](const OutItem& a, const OutItem& b) {
        if (a.pad != b.pad) return a.pad < b.pad ? -1 : 1;
        if (a.valid != b.valid) return a.valid > b.valid ? -1 : 1;
        int c = a.dedupe_key.compare(b.dedupe_key);
        if (c != 0) return c;
        return CompareU64(a.seq, b.seq);
      };
      SortNetwork(&ctx, &bundle, cmp);
      for (size_t i = 0; i < bundle.size(); ++i) {
        bool dup = bundle[i].valid != 0 && i > 0 && bundle[i - 1].valid != 0 &&
                   bundle[i - 1].dedupe_key == bundle[i].dedupe_key;
        if (dup) bundle[i].valid = 0;
      }
      ctx.RecordAccess(obs::AccessKind::kDistinct, bundle.size(),
                       bundle.size());
    }

    if (!order_by.empty()) {
      StageSpan sort_span(&ctx, "sort");
      sort_span.Tag("rows", static_cast<int64_t>(bundle.size()));
      for (size_t i = 0; i < bundle.size(); ++i) {
        OutItem& it = bundle[i];
        it.order_keys.clear();
        EvalScope scope{&projected.schema, &it.row, ctx.outer};
        size_t hidden_pos = 0;
        for (size_t k = 0; k < order_by.size(); ++k) {
          if (order_from_input[k]) {
            it.order_keys.push_back(it.hidden[hidden_pos++]);
            continue;
          }
          ASSIGN_OR_RETURN(Value v, ctx.eval->Eval(*order_by[k].expr, scope));
          it.order_keys.push_back(std::move(v));
        }
      }
      auto cmp = [&order_by](const OutItem& a, const OutItem& b) {
        if (a.pad != b.pad) return a.pad < b.pad ? -1 : 1;
        if (a.pad != 0) return 0;  // two padding items carry no keys
        if (a.valid != b.valid) return a.valid > b.valid ? -1 : 1;
        for (size_t k = 0; k < order_by.size(); ++k) {
          int c = a.order_keys[k].Compare(b.order_keys[k]);
          if (c != 0) return order_by[k].desc ? -c : c;
        }
        return CompareU64(a.seq, b.seq);
      };
      SortNetwork(&ctx, &bundle, cmp);
    }

    for (size_t i = 0; i < bundle.size(); ++i) {
      projected.rows[i] = std::move(bundle[i].row);
      projected.valid[i] = bundle[i].valid;
    }
    ctx.TrackMemory(ORelBytes(projected));
  }

  // 8. LIMIT: keep the first `limit` valid rows by mask.
  if (stmt.limit >= 0) {
    MaskedLimit(&projected.valid, static_cast<uint64_t>(stmt.limit));
  }

  select_span.Tag("rows_out", static_cast<int64_t>(projected.rows.size()));
  ctx.RecordAccess(obs::AccessKind::kResult, projected.rows.size());
  ctx.FlushCharges();
  return projected;
}

}  // namespace

Result<QueryResult> ExecuteSelectOblivious(Database* db,
                                           const SelectStmt& stmt,
                                           const EvalScope* outer,
                                           sim::CostModel* cost,
                                           const ExecOptions& opts,
                                           ExecStats* stats) {
  if (stmt.from.empty()) {
    // SELECT without FROM touches no storage; the row engine's scalar
    // path is trivially oblivious.
    return ExecuteSelectRow(db, stmt, outer, cost, opts, stats);
  }
  ASSIGN_OR_RETURN(ORel padded, ExecutePaddedPipeline(db, stmt, outer, cost,
                                                      opts, stats));
  // Declassification: compact the valid rows, in padded order. The
  // result width is the query's (public) answer size; everything before
  // this point had shape-only width.
  QueryResult result;
  result.schema = std::move(padded.schema);
  uint64_t valid = MaskedCount(padded.valid);
  result.rows.reserve(valid);
  for (size_t i = 0; i < padded.rows.size(); ++i) {
    if (padded.valid[i] != 0) result.rows.push_back(std::move(padded.rows[i]));
  }
  if (stats != nullptr) stats->rows_output += result.rows.size();
  return result;
}

}  // namespace ironsafe::sql::exec
