#include "crypto/aead.h"

#include <algorithm>

#include "crypto/aes.h"
#include "crypto/hmac.h"

namespace ironsafe::crypto {

Result<Aead> Aead::Create(const Bytes& key) {
  if (key.size() != kKeySize) {
    return Status::InvalidArgument("AEAD key must be 64 bytes");
  }
  Bytes enc_key(key.begin(), key.begin() + 32);
  Bytes mac_key(key.begin() + 32, key.end());
  return Aead(std::move(enc_key), std::move(mac_key));
}

namespace {
Bytes MacInput(const Bytes& nonce, const Bytes& aad, const Bytes& ciphertext) {
  Bytes m;
  Append(&m, nonce);
  PutU64(&m, aad.size());
  Append(&m, aad);
  Append(&m, ciphertext);
  return m;
}
}  // namespace

Result<Bytes> Aead::Seal(const Bytes& nonce, const Bytes& aad,
                         const Bytes& plaintext) const {
  if (nonce.size() != kNonceSize) {
    return Status::InvalidArgument("AEAD nonce must be 16 bytes");
  }
  ASSIGN_OR_RETURN(Bytes ciphertext, AesCtr(enc_key_, nonce, plaintext));
  Bytes tag = HmacSha256(mac_key_, MacInput(nonce, aad, ciphertext));

  Bytes out;
  out.reserve(kOverhead + ciphertext.size());
  Append(&out, nonce);
  Append(&out, ciphertext);
  Append(&out, tag);
  return out;
}

Result<Bytes> Aead::Open(const Bytes& aad, const Bytes& sealed) const {
  if (sealed.size() < kOverhead) {
    return Status::Corruption("sealed message too short");
  }
  Bytes nonce(sealed.begin(), sealed.begin() + kNonceSize);
  Bytes ciphertext(sealed.begin() + kNonceSize, sealed.end() - kTagSize);
  Bytes tag(sealed.end() - kTagSize, sealed.end());

  Bytes expected = HmacSha256(mac_key_, MacInput(nonce, aad, ciphertext));
  if (!ConstantTimeEqual(expected, tag)) {
    return Status::Corruption("AEAD tag mismatch");
  }
  return AesCtr(enc_key_, nonce, ciphertext);
}

void Aead::Zeroize() {
  std::fill(enc_key_.begin(), enc_key_.end(), uint8_t{0});
  std::fill(mac_key_.begin(), mac_key_.end(), uint8_t{0});
}

}  // namespace ironsafe::crypto
