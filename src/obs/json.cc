#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ironsafe::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object_value.find(std::string(key));
  return it == object_value.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status s = ParseValue(&value);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing garbage at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    ++depth_;
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      s = ParseValue(&value);
      if (!s.ok()) return s;
      out->object_value.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    --depth_;
    return Status::OK();
  }

  Status ParseArray(JsonValue* out) {
    ++depth_;
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      Status s = ParseValue(&value);
      if (!s.ok()) return s;
      out->array_value.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    --depth_;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // Only BMP code points below 0x80 round-trip exactly; others are
          // written as UTF-8 without surrogate handling (our writer never
          // emits \u for them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace ironsafe::obs
