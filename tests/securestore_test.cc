#include <gtest/gtest.h>

#include "securestore/merkle_tree.h"
#include "securestore/secure_store.h"
#include "storage/block_device.h"
#include "tee/trustzone.h"

namespace ironsafe::securestore {
namespace {

using storage::BlockDevice;
using tee::DeviceManufacturer;
using tee::StorageNodeConfig;
using tee::TrustZoneDevice;

Bytes Page(uint8_t fill) { return Bytes(SecureStore::kPageSize, fill); }

// ---------------- Merkle tree ----------------

TEST(MerkleTreeTest, EmptyTreeHasStableRoot) {
  MerkleTree a(Bytes(32, 1), 0);
  MerkleTree b(Bytes(32, 1), 0);
  EXPECT_EQ(a.Root(), b.Root());
}

TEST(MerkleTreeTest, RootChangesWithLeaf) {
  MerkleTree t(Bytes(32, 1), 4);
  Bytes r0 = t.Root();
  t.UpdateLeaf(2, ToBytes("mac-a"));
  Bytes r1 = t.Root();
  EXPECT_NE(r0, r1);
  t.UpdateLeaf(2, ToBytes("mac-b"));
  EXPECT_NE(t.Root(), r1);
}

TEST(MerkleTreeTest, RootIsKeyDependent) {
  MerkleTree t1(Bytes(32, 1), 4);
  MerkleTree t2(Bytes(32, 2), 4);
  t1.UpdateLeaf(0, ToBytes("x"));
  t2.UpdateLeaf(0, ToBytes("x"));
  EXPECT_NE(t1.Root(), t2.Root());
}

TEST(MerkleTreeTest, VerifyLeafAcceptsCorrectMac) {
  MerkleTree t(Bytes(32, 7), 8);
  for (uint64_t i = 0; i < 8; ++i) {
    t.UpdateLeaf(i, ToBytes("leaf-" + std::to_string(i)));
  }
  for (uint64_t i = 0; i < 8; ++i) {
    uint64_t nodes = 0;
    EXPECT_TRUE(t.VerifyLeaf(i, ToBytes("leaf-" + std::to_string(i)), &nodes).ok());
    EXPECT_EQ(nodes, 3u);  // depth of an 8-leaf tree
  }
}

TEST(MerkleTreeTest, VerifyLeafRejectsWrongMac) {
  MerkleTree t(Bytes(32, 7), 4);
  t.UpdateLeaf(1, ToBytes("real"));
  EXPECT_TRUE(t.VerifyLeaf(1, ToBytes("fake")).IsCorruption());
}

TEST(MerkleTreeTest, GrowsBeyondInitialCapacity) {
  MerkleTree t(Bytes(32, 3), 2);
  t.UpdateLeaf(0, ToBytes("a"));
  t.UpdateLeaf(100, ToBytes("b"));  // forces growth
  EXPECT_GE(t.num_leaves(), 101u);
  EXPECT_TRUE(t.VerifyLeaf(0, ToBytes("a")).ok());
  EXPECT_TRUE(t.VerifyLeaf(100, ToBytes("b")).ok());
}

TEST(MerkleTreeTest, SerializeDeserializePreservesRoot) {
  MerkleTree t(Bytes(32, 9), 5);
  for (uint64_t i = 0; i < 5; ++i) t.UpdateLeaf(i, ToBytes(std::to_string(i)));
  auto back = MerkleTree::Deserialize(Bytes(32, 9), t.SerializeLeaves());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Root(), t.Root());
  EXPECT_EQ(back->num_leaves(), 5u);
}

TEST(MerkleTreeTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MerkleTree::Deserialize(Bytes(32, 0), ToBytes("junk")).ok());
}

// ---------------- SecureStore fixture ----------------

class SecureStoreTest : public ::testing::Test {
 protected:
  SecureStoreTest()
      : manufacturer_(ToBytes("mfg")),
        device_(ToBytes("serial-1"), manufacturer_,
                StorageNodeConfig{"s1", "eu", 1}),
        ta_(&device_) {}

  DeviceManufacturer manufacturer_;
  TrustZoneDevice device_;
  SecureStorageTa ta_;
  BlockDevice disk_;
};

TEST_F(SecureStoreTest, WriteReadRoundTrip) {
  auto store = SecureStore::Create(&disk_, &ta_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->WritePage(0, Page(0xAB)).ok());
  ASSERT_TRUE((*store)->WritePage(1, Page(0xCD)).ok());
  auto p0 = (*store)->ReadPage(0);
  auto p1 = (*store)->ReadPage(1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, Page(0xAB));
  EXPECT_EQ(*p1, Page(0xCD));
}

TEST_F(SecureStoreTest, RejectsWrongPageSize) {
  auto store = SecureStore::Create(&disk_, &ta_);
  EXPECT_TRUE((*store)->WritePage(0, Bytes(100, 0)).IsInvalidArgument());
}

TEST_F(SecureStoreTest, DataAtRestIsCiphertext) {
  auto store = SecureStore::Create(&disk_, &ta_);
  Bytes page = Page(0);
  std::string secret = "ssn=123-45-6789";
  std::copy(secret.begin(), secret.end(), page.begin());
  ASSERT_TRUE((*store)->WritePage(0, page).ok());

  const Bytes* frame = disk_.MutableFrame(0);
  ASSERT_NE(frame, nullptr);
  std::string raw(frame->begin(), frame->end());
  EXPECT_EQ(raw.find(secret), std::string::npos)
      << "plaintext leaked to the untrusted medium";
}

TEST_F(SecureStoreTest, BitFlipDetected) {
  auto store = SecureStore::Create(&disk_, &ta_);
  ASSERT_TRUE((*store)->WritePage(0, Page(0x11)).ok());
  // Adversary flips one ciphertext bit on the untrusted medium.
  (*disk_.MutableFrame(0))[40] ^= 0x01;
  EXPECT_TRUE((*store)->ReadPage(0).status().IsCorruption());
}

TEST_F(SecureStoreTest, MacTamperDetected) {
  auto store = SecureStore::Create(&disk_, &ta_);
  ASSERT_TRUE((*store)->WritePage(0, Page(0x11)).ok());
  Bytes* frame = disk_.MutableFrame(0);
  (*frame)[frame->size() - 1] ^= 0x80;  // flip a MAC bit
  EXPECT_TRUE((*store)->ReadPage(0).status().IsCorruption());
}

TEST_F(SecureStoreTest, PageDisplacementDetected) {
  auto store = SecureStore::Create(&disk_, &ta_);
  ASSERT_TRUE((*store)->WritePage(0, Page(0xAA)).ok());
  ASSERT_TRUE((*store)->WritePage(1, Page(0xBB)).ok());
  // Adversary swaps two validly-MACed frames; the per-page MAC binds the
  // index, so this must fail.
  disk_.SwapFrames(0, 1);
  EXPECT_TRUE((*store)->ReadPage(0).status().IsCorruption());
  EXPECT_TRUE((*store)->ReadPage(1).status().IsCorruption());
}

TEST_F(SecureStoreTest, RollbackOfWholeImageDetected) {
  auto store = SecureStore::Create(&disk_, &ta_);
  ASSERT_TRUE((*store)->WritePage(0, Page(0x01)).ok());
  auto stale = disk_.Snapshot();  // adversary snapshots v1
  ASSERT_TRUE((*store)->WritePage(0, Page(0x02)).ok());
  store->reset();  // "reboot"

  disk_.Restore(stale);  // adversary rolls the medium back to v1
  auto reopened = SecureStore::Open(&disk_, &ta_);
  EXPECT_TRUE(reopened.status().IsStaleData())
      << "rollback must be caught by the RPMB-anchored root";
}

TEST_F(SecureStoreTest, HonestRebootReopens) {
  {
    auto store = SecureStore::Create(&disk_, &ta_);
    ASSERT_TRUE((*store)->WritePage(0, Page(0x42)).ok());
    ASSERT_TRUE((*store)->WritePage(7, Page(0x43)).ok());
  }
  auto reopened = SecureStore::Open(&disk_, &ta_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto p = (*reopened)->ReadPage(7);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, Page(0x43));
}

TEST_F(SecureStoreTest, MetadataTamperDetectedAtOpen) {
  {
    auto store = SecureStore::Create(&disk_, &ta_);
    ASSERT_TRUE((*store)->WritePage(0, Page(0x01)).ok());
  }
  // Flip a byte inside the serialized Merkle image.
  Bytes* md = disk_.MutableMetadata();
  ASSERT_GT(md->size(), 20u);
  (*md)[md->size() - 1] ^= 0xFF;
  auto reopened = SecureStore::Open(&disk_, &ta_);
  EXPECT_FALSE(reopened.ok());
}

TEST_F(SecureStoreTest, BatchModeCommitsOnce) {
  auto store = SecureStore::Create(&disk_, &ta_);
  uint32_t counter_before = device_.rpmb()->write_counter();
  (*store)->BeginBatch();
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->WritePage(i, Page(static_cast<uint8_t>(i))).ok());
  }
  ASSERT_TRUE((*store)->EndBatch().ok());
  // Exactly one RPMB commit for the whole batch.
  EXPECT_EQ(device_.rpmb()->write_counter(), counter_before + 1);
  for (uint64_t i = 0; i < 50; ++i) {
    auto p = (*store)->ReadPage(i);
    ASSERT_TRUE(p.ok()) << i;
    EXPECT_EQ(*p, Page(static_cast<uint8_t>(i)));
  }
}

TEST_F(SecureStoreTest, CostChargedPerRead) {
  auto store = SecureStore::Create(&disk_, &ta_);
  (*store)->BeginBatch();
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE((*store)->WritePage(i, Page(1)).ok());
  }
  ASSERT_TRUE((*store)->EndBatch().ok());

  sim::CostModel cm;
  ASSERT_TRUE((*store)->ReadPage(3, &cm).ok());
  EXPECT_EQ(cm.pages_decrypted(), 1u);
  EXPECT_GT(cm.decrypt_ns(), 0u);
  EXPECT_GT(cm.freshness_ns(), 0u);
  EXPECT_GT(cm.disk_bytes(), SecureStore::kPageSize);  // frame overhead
}

TEST_F(SecureStoreTest, FreshnessDominatesDecryptInBreakdown) {
  // Paper Figure 9c: freshness verification ~70-80%, decryption ~15% of
  // secure-storage overhead. Our model must preserve that ordering.
  auto store = SecureStore::Create(&disk_, &ta_);
  (*store)->BeginBatch();
  for (uint64_t i = 0; i < 1024; ++i) {
    ASSERT_TRUE((*store)->WritePage(i, Page(7)).ok());
  }
  ASSERT_TRUE((*store)->EndBatch().ok());

  sim::CostModel cm;
  for (uint64_t i = 0; i < 1024; ++i) {
    ASSERT_TRUE((*store)->ReadPage(i, &cm).ok());
  }
  EXPECT_GT(cm.freshness_ns(), cm.decrypt_ns());
}

TEST_F(SecureStoreTest, OpenWithoutDataFails) {
  BlockDevice empty;
  EXPECT_FALSE(SecureStore::Open(&empty, &ta_).ok());
}

TEST_F(SecureStoreTest, SequentialEpochsSurviveManyReopens) {
  {
    auto store = SecureStore::Create(&disk_, &ta_);
    ASSERT_TRUE((*store)->WritePage(0, Page(1)).ok());
  }
  for (int round = 2; round < 6; ++round) {
    auto store = SecureStore::Open(&disk_, &ta_);
    ASSERT_TRUE(store.ok()) << "round " << round;
    ASSERT_TRUE(
        (*store)->WritePage(0, Page(static_cast<uint8_t>(round))).ok());
  }
  auto store = SecureStore::Open(&disk_, &ta_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->ReadPage(0), Page(5));
}

}  // namespace
}  // namespace ironsafe::securestore
