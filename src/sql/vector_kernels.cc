#include "sql/vector_kernels.h"

#include "common/bytes.h"

namespace ironsafe::sql::vec {

namespace {
template <typename T, typename Op>
size_t FilterImpl(const T* vals, Op pass, uint32_t* sel, size_t n) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t idx = sel[i];
    if (pass(vals[idx])) sel[out++] = idx;
  }
  return out;
}

template <typename T>
size_t FilterCmp(const T* vals, CmpOp op, const T& rhs, uint32_t* sel,
                 size_t n) {
  switch (op) {
    case CmpOp::kEq:
      return FilterImpl(vals, [&](const T& v) { return v == rhs; }, sel, n);
    case CmpOp::kNe:
      return FilterImpl(vals, [&](const T& v) { return v != rhs; }, sel, n);
    case CmpOp::kLt:
      return FilterImpl(vals, [&](const T& v) { return v < rhs; }, sel, n);
    case CmpOp::kLe:
      return FilterImpl(vals, [&](const T& v) { return v <= rhs; }, sel, n);
    case CmpOp::kGt:
      return FilterImpl(vals, [&](const T& v) { return v > rhs; }, sel, n);
    case CmpOp::kGe:
      return FilterImpl(vals, [&](const T& v) { return v >= rhs; }, sel, n);
  }
  return 0;
}
}  // namespace

size_t FilterI64(const int64_t* vals, CmpOp op, int64_t rhs, uint32_t* sel,
                 size_t n) {
  return FilterCmp(vals, op, rhs, sel, n);
}

size_t FilterI64AsF64(const int64_t* vals, CmpOp op, double rhs,
                      uint32_t* sel, size_t n) {
  switch (op) {
    case CmpOp::kEq:
      return FilterImpl(
          vals, [&](int64_t v) { return static_cast<double>(v) == rhs; }, sel,
          n);
    case CmpOp::kNe:
      return FilterImpl(
          vals, [&](int64_t v) { return static_cast<double>(v) != rhs; }, sel,
          n);
    case CmpOp::kLt:
      return FilterImpl(
          vals, [&](int64_t v) { return static_cast<double>(v) < rhs; }, sel,
          n);
    case CmpOp::kLe:
      return FilterImpl(
          vals, [&](int64_t v) { return static_cast<double>(v) <= rhs; }, sel,
          n);
    case CmpOp::kGt:
      return FilterImpl(
          vals, [&](int64_t v) { return static_cast<double>(v) > rhs; }, sel,
          n);
    case CmpOp::kGe:
      return FilterImpl(
          vals, [&](int64_t v) { return static_cast<double>(v) >= rhs; }, sel,
          n);
  }
  return 0;
}

size_t FilterF64(const int64_t* bits, CmpOp op, double rhs, uint32_t* sel,
                 size_t n) {
  switch (op) {
    case CmpOp::kEq:
      return FilterImpl(
          bits, [&](int64_t b) { return F64FromBits(b) == rhs; }, sel, n);
    case CmpOp::kNe:
      return FilterImpl(
          bits, [&](int64_t b) { return F64FromBits(b) != rhs; }, sel, n);
    case CmpOp::kLt:
      return FilterImpl(
          bits, [&](int64_t b) { return F64FromBits(b) < rhs; }, sel, n);
    case CmpOp::kLe:
      return FilterImpl(
          bits, [&](int64_t b) { return F64FromBits(b) <= rhs; }, sel, n);
    case CmpOp::kGt:
      return FilterImpl(
          bits, [&](int64_t b) { return F64FromBits(b) > rhs; }, sel, n);
    case CmpOp::kGe:
      return FilterImpl(
          bits, [&](int64_t b) { return F64FromBits(b) >= rhs; }, sel, n);
  }
  return 0;
}

size_t FilterStr(const std::string* vals, CmpOp op, const std::string& rhs,
                 uint32_t* sel, size_t n) {
  return FilterCmp(vals, op, rhs, sel, n);
}

size_t FilterBetweenI64(const int64_t* vals, int64_t lo, int64_t hi,
                        uint32_t* sel, size_t n) {
  return FilterImpl(
      vals, [&](int64_t v) { return v >= lo && v <= hi; }, sel, n);
}

size_t FilterBetweenF64(const int64_t* bits, double lo, double hi,
                        uint32_t* sel, size_t n) {
  return FilterImpl(
      bits,
      [&](int64_t b) {
        double v = F64FromBits(b);
        return v >= lo && v <= hi;
      },
      sel, n);
}

namespace {
template <typename T, typename Op>
void ArithScalarImpl(const T* a, Op f, T b, const uint32_t* sel, size_t n,
                     T* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = f(a[sel[i]], b);
}
template <typename T, typename Op>
void ArithColsImpl(const T* a, Op f, const T* b, const uint32_t* sel,
                   size_t n, T* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = f(a[sel[i]], b[sel[i]]);
}
}  // namespace

void ArithI64Scalar(const int64_t* a, ArithOp op, int64_t b,
                    const uint32_t* sel, size_t n, int64_t* dst) {
  switch (op) {
    case ArithOp::kAdd:
      return ArithScalarImpl(
          a, [](int64_t x, int64_t y) { return x + y; }, b, sel, n, dst);
    case ArithOp::kSub:
      return ArithScalarImpl(
          a, [](int64_t x, int64_t y) { return x - y; }, b, sel, n, dst);
    case ArithOp::kMul:
      return ArithScalarImpl(
          a, [](int64_t x, int64_t y) { return x * y; }, b, sel, n, dst);
  }
}

void ArithF64Scalar(const int64_t* a_bits, ArithOp op, double b,
                    const uint32_t* sel, size_t n, int64_t* dst_bits) {
  auto run = [&](auto f) {
    for (size_t i = 0; i < n; ++i) {
      dst_bits[i] = BitsFromF64(f(F64FromBits(a_bits[sel[i]]), b));
    }
  };
  switch (op) {
    case ArithOp::kAdd:
      return run([](double x, double y) { return x + y; });
    case ArithOp::kSub:
      return run([](double x, double y) { return x - y; });
    case ArithOp::kMul:
      return run([](double x, double y) { return x * y; });
  }
}

void ArithI64Cols(const int64_t* a, ArithOp op, const int64_t* b,
                  const uint32_t* sel, size_t n, int64_t* dst) {
  switch (op) {
    case ArithOp::kAdd:
      return ArithColsImpl(
          a, [](int64_t x, int64_t y) { return x + y; }, b, sel, n, dst);
    case ArithOp::kSub:
      return ArithColsImpl(
          a, [](int64_t x, int64_t y) { return x - y; }, b, sel, n, dst);
    case ArithOp::kMul:
      return ArithColsImpl(
          a, [](int64_t x, int64_t y) { return x * y; }, b, sel, n, dst);
  }
}

void ArithF64Cols(const int64_t* a_bits, ArithOp op, const int64_t* b_bits,
                  const uint32_t* sel, size_t n, int64_t* dst_bits) {
  auto run = [&](auto f) {
    for (size_t i = 0; i < n; ++i) {
      dst_bits[i] = BitsFromF64(
          f(F64FromBits(a_bits[sel[i]]), F64FromBits(b_bits[sel[i]])));
    }
  };
  switch (op) {
    case ArithOp::kAdd:
      return run([](double x, double y) { return x + y; });
    case ArithOp::kSub:
      return run([](double x, double y) { return x - y; });
    case ArithOp::kMul:
      return run([](double x, double y) { return x * y; });
  }
}

void AppendKeyF64(std::vector<uint8_t>* key, double v) {
  key->push_back(1);  // normalized-numeric tag
  PutU64(key, static_cast<uint64_t>(BitsFromF64(v)));
}

void AppendKeyDate(std::vector<uint8_t>* key, int64_t days) {
  key->push_back(5);  // serialized date tag
  PutU64(key, static_cast<uint64_t>(days));
}

void AppendKeyStr(std::vector<uint8_t>* key, const std::string& s) {
  key->push_back(4);  // serialized string tag
  PutU32(key, static_cast<uint32_t>(s.size()));
  key->insert(key->end(), s.begin(), s.end());
}

uint64_t HashBytes(const uint8_t* data, size_t n) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace ironsafe::sql::vec
