// Violating fixture: linted as if it lived in src/dist/. The fleet must
// stay workload-agnostic — partition specs flow through sql/partition.h,
// so including tpch (or the serving layer above) inverts the DAG.
#include "dist/fleet.h"
#include "tpch/table_spec.h"
#include "server/query_service.h"

void DistLayeringViolatingFixture() {}
