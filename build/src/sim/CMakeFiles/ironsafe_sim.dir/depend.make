# Empty dependencies file for ironsafe_sim.
# This may be replaced when dependencies are built.
