#ifndef IRONSAFE_TOOLS_IRONSAFE_LINT_LINT_H_
#define IRONSAFE_TOOLS_IRONSAFE_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

/// ironsafe-lint: a deliberately small static-analysis pass that enforces
/// the invariants IronSafe's correctness story rests on but no compiler
/// checks (see docs/STATIC_ANALYSIS.md for the rule catalog):
///
///   layering          — per-module allowed-include lists mirroring the
///                       library DAG declared in src/*/CMakeLists.txt,
///                       plus include-cycle detection over actual files.
///   enclave-boundary  — secure-world code (src/tee, src/securestore)
///                       must not reach untrusted I/O (logging, iostream,
///                       printf-family).
///   determinism       — no wall clocks or ambient randomness outside the
///                       timing-shim allowlist; no iteration over
///                       unordered containers in files whose output order
///                       is observable (exporters, trace, wire).
///   unchecked-status  — fault-injectable modules (src/net, src/tee,
///                       src/securestore) must not discard the Status /
///                       Result of a fallible call at statement position.
///   vector-kernel-boxing — the vectorized engine's kernel files
///                       (sql/vector_kernels.*) must not touch the boxed
///                       Value type; kernels operate on raw payload
///                       arrays only.
///   hygiene           — headers carry include guards; no
///                       `using namespace std;` in headers.
///
/// A diagnostic on line N is silenced by `// ironsafe-lint: allow(<rule>)`
/// on line N or on line N-1.
namespace ironsafe::lint {

struct Diagnostic {
  std::string rule;  ///< "layering", "enclave-boundary", "determinism",
                     ///< "unchecked-status", "vector-kernel-boxing",
                     ///< "hygiene"
  std::string file;  ///< path relative to the tree root
  int line = 0;      ///< 1-based
  std::string message;
};

struct Options {
  /// Absolute (or cwd-relative) path of the repo checkout.
  std::string tree_root = ".";
  /// Subtrees to walk, relative to tree_root.
  std::vector<std::string> roots = {"src", "bench", "tests"};
  /// Any file whose root-relative path contains one of these substrings
  /// is skipped (lint-rule fixtures violate rules on purpose).
  std::vector<std::string> exclude_substrings = {"lint_fixtures", "build"};
};

struct Report {
  std::vector<Diagnostic> diagnostics;  ///< sorted by (file, line, rule)
  int files_scanned = 0;
};

/// Lints one file from memory; `rel_path` (root-relative, '/'-separated)
/// selects which rules apply. Does not include cross-file checks
/// (include cycles). This is the unit-test entry point.
std::vector<Diagnostic> LintSource(std::string_view rel_path,
                                   std::string_view text);

/// Walks the configured subtrees, lints every .h/.cc/.cpp file, and runs
/// the cross-file include-cycle check.
Report LintTree(const Options& opts);

/// Machine-readable report: {"version":1, "files_scanned":N,
/// "violation_count":N, "diagnostics":[{rule,file,line,message}...]}.
std::string ReportToJson(const Report& report);

}  // namespace ironsafe::lint

#endif  // IRONSAFE_TOOLS_IRONSAFE_LINT_LINT_H_
