#include <gtest/gtest.h>

#include <optional>

#include "common/thread_pool.h"
#include "engine/csa_system.h"
#include "engine/ironsafe.h"
#include "engine/partitioner.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace ironsafe::engine {
namespace {

// ---------------- partitioner ----------------

class PartitionerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = sql::Database::CreateInMemory();
    ASSERT_TRUE(db_->Execute("CREATE TABLE lineitem (l_orderkey INTEGER, "
                             "l_shipdate DATE, l_price DOUBLE)")
                    .ok());
    ASSERT_TRUE(db_->Execute("CREATE TABLE orders (o_orderkey INTEGER, "
                             "o_orderdate DATE)")
                    .ok());
  }

  std::unique_ptr<sql::Database> db_;
};

TEST_F(PartitionerTest, PushesSingleTableFilters) {
  auto stmt = sql::ParseSelect(
      "SELECT sum(l_price) FROM lineitem, orders WHERE l_orderkey = "
      "o_orderkey AND l_shipdate > DATE '1995-01-01' AND o_orderdate < "
      "DATE '1995-06-01'");
  ASSERT_TRUE(stmt.ok());
  auto plan = PartitionQuery(**stmt, *db_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->fragments.size(), 2u);

  // Each fragment carries its table's own filter.
  EXPECT_NE(plan->fragments[0].sql.find("l_shipdate"), std::string::npos);
  EXPECT_NE(plan->fragments[1].sql.find("o_orderdate"), std::string::npos);

  // The join predicate stays on the host; pushed filters are gone.
  std::string host = plan->host_query->ToString();
  EXPECT_NE(host.find("l_orderkey"), std::string::npos);
  EXPECT_EQ(host.find("l_shipdate"), std::string::npos);
  EXPECT_NE(host.find(plan->fragments[0].dest_table), std::string::npos);
}

TEST_F(PartitionerTest, FragmentSqlIsParseable) {
  auto stmt = sql::ParseSelect(
      "SELECT * FROM lineitem WHERE l_shipdate BETWEEN DATE '1994-01-01' "
      "AND DATE '1994-12-31' AND l_price < 100.5");
  auto plan = PartitionQuery(**stmt, *db_);
  ASSERT_TRUE(plan.ok());
  for (const auto& frag : plan->fragments) {
    EXPECT_TRUE(sql::ParseSelect(frag.sql).ok()) << frag.sql;
  }
}

TEST_F(PartitionerTest, SubqueryTablesGetFragments) {
  auto stmt = sql::ParseSelect(
      "SELECT * FROM orders WHERE o_orderkey IN "
      "(SELECT l_orderkey FROM lineitem WHERE l_price > 10)");
  auto plan = PartitionQuery(**stmt, *db_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->fragments.size(), 2u);
  // The lineitem fragment keeps the pushable filter.
  bool found = false;
  for (const auto& frag : plan->fragments) {
    if (frag.source_table == "lineitem") {
      EXPECT_NE(frag.sql.find("l_price"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PartitionerTest, CorrelatedPredicateStaysOnHost) {
  auto stmt = sql::ParseSelect(
      "SELECT * FROM orders o WHERE EXISTS (SELECT 1 FROM lineitem l "
      "WHERE l.l_orderkey = o.o_orderkey)");
  auto plan = PartitionQuery(**stmt, *db_);
  ASSERT_TRUE(plan.ok());
  // The correlated equality must not be pushed into the lineitem fragment.
  for (const auto& frag : plan->fragments) {
    if (frag.source_table == "lineitem") {
      EXPECT_EQ(frag.sql.find("o_orderkey"), std::string::npos) << frag.sql;
    }
  }
}

TEST_F(PartitionerTest, AggregationPushdownOffloadsWholeQuery) {
  auto stmt = sql::ParseSelect(
      "SELECT sum(l_price) AS rev FROM lineitem WHERE l_shipdate > "
      "DATE '1995-01-01' GROUP BY l_orderkey");
  PartitionOptions options;
  options.aggregation_pushdown = true;
  auto plan = PartitionQuery(**stmt, *db_, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->whole_query_offloaded);
  ASSERT_EQ(plan->fragments.size(), 1u);
  // The fragment IS the query; the host side is a bare scan.
  EXPECT_NE(plan->fragments[0].sql.find("SUM"), std::string::npos);
  EXPECT_EQ(plan->host_query->ToString(),
            "SELECT * FROM " + plan->fragments[0].dest_table);
}

TEST_F(PartitionerTest, AggregationPushdownFallsBackOnJoins) {
  auto stmt = sql::ParseSelect(
      "SELECT count(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey");
  PartitionOptions options;
  options.aggregation_pushdown = true;
  auto plan = PartitionQuery(**stmt, *db_, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->whole_query_offloaded);
  EXPECT_EQ(plan->fragments.size(), 2u);
}

TEST_F(PartitionerTest, AggregationPushdownFallsBackOnSubqueries) {
  auto stmt = sql::ParseSelect(
      "SELECT count(*) FROM orders WHERE o_orderkey IN "
      "(SELECT l_orderkey FROM lineitem)");
  PartitionOptions options;
  options.aggregation_pushdown = true;
  auto plan = PartitionQuery(**stmt, *db_, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->whole_query_offloaded);
}

TEST_F(PartitionerTest, SameTableTwiceGetsTwoFragments) {
  auto stmt = sql::ParseSelect(
      "SELECT * FROM lineitem a, lineitem b WHERE a.l_orderkey = b.l_orderkey");
  auto plan = PartitionQuery(**stmt, *db_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->fragments.size(), 2u);
  EXPECT_NE(plan->fragments[0].dest_table, plan->fragments[1].dest_table);
}

// ---------------- CSA system ----------------

class CsaSystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CsaOptions options;
    options.scale_factor = 0.001;
    auto system = CsaSystem::Create(options);
    ASSERT_TRUE(system.ok());
    system_ = system->release();
    tpch::TpchGenerator gen(tpch::TpchConfig{options.scale_factor, 42});
    ASSERT_TRUE(system_
                    ->Load([&](sql::Database* db) {
                      tpch::TpchGenerator g(
                          tpch::TpchConfig{options.scale_factor, 42});
                      return g.LoadInto(db);
                    })
                    .ok());
  }

  static CsaSystem* system_;
};

CsaSystem* CsaSystemTest::system_ = nullptr;

std::string Canonical(const sql::QueryResult& result) {
  std::vector<std::string> lines;
  for (const auto& row : result.rows) {
    std::string line;
    for (const auto& v : row) {
      if (v.type() == sql::Type::kDouble) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", v.AsDouble());
        line += buf;
      } else {
        line += v.ToString();
      }
      line += "|";
    }
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (auto& l : lines) out += l + "\n";
  return out;
}

// The core integration property: all five configurations compute the
// same answer; only where and how securely the work runs differs.
class ConfigEquivalence : public CsaSystemTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(ConfigEquivalence, AllConfigsAgree) {
  auto q = tpch::GetQuery(GetParam());
  ASSERT_TRUE(q.ok());
  auto hons = system_->Run(SystemConfig::kHons, (*q)->sql);
  ASSERT_TRUE(hons.ok()) << hons.status().ToString();
  std::string expected = Canonical(hons->result);
  for (SystemConfig config : {SystemConfig::kHos, SystemConfig::kVcs,
                              SystemConfig::kScs, SystemConfig::kSos}) {
    auto outcome = system_->Run(config, (*q)->sql);
    ASSERT_TRUE(outcome.ok())
        << SystemConfigName(config) << ": " << outcome.status().ToString();
    EXPECT_EQ(Canonical(outcome->result), expected)
        << "config " << SystemConfigName(config) << " diverged on Q"
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(SelectedQueries, ConfigEquivalence,
                         ::testing::Values(3, 5, 6, 10, 12, 14, 19),
                         [](const auto& param_info) {
                           return "Q" + std::to_string(param_info.param);
                         });

// ---------------- morsel-parallel determinism ----------------

/// Exact serialization, order included: parallelism must not even
/// reorder rows.
std::string ExactRows(const sql::QueryResult& result) {
  std::string out;
  for (const auto& row : result.rows) {
    for (const auto& v : row) {
      out += v.ToString();
      out += "|";
    }
    out += "\n";
  }
  return out;
}

/// The tentpole invariant: the REAL worker count (a machine property)
/// never changes anything observable — rows, row order, ExecStats,
/// counters, or the simulated cost account. Only wall-clock time may
/// differ. Exercised under the split (scs) and host-only secure (hos)
/// configurations, whose page stores see genuinely concurrent reads.
class ParallelDeterminism : public CsaSystemTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(ParallelDeterminism, RealWorkerCountInvariantUnderScs) {
  auto q = tpch::GetQuery(GetParam());
  ASSERT_TRUE(q.ok());
  std::optional<QueryOutcome> base;
  for (int workers : {1, 4, 16}) {
    common::ThreadPool::set_max_workers(workers);
    auto out = system_->Run(SystemConfig::kScs, (*q)->sql);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    if (!base.has_value()) {
      base = std::move(*out);
      continue;
    }
    EXPECT_EQ(ExactRows(out->result), ExactRows(base->result))
        << "workers=" << workers;
    EXPECT_EQ(out->stats, base->stats) << "workers=" << workers;
    EXPECT_EQ(out->cost, base->cost) << "workers=" << workers;
    EXPECT_EQ(out->shipped_bytes, base->shipped_bytes);
    EXPECT_EQ(out->storage_pages_read, base->storage_pages_read);
  }
  common::ThreadPool::set_max_workers(0);
}

TEST_P(ParallelDeterminism, RealWorkerCountInvariantUnderHos) {
  auto q = tpch::GetQuery(GetParam());
  ASSERT_TRUE(q.ok());
  system_->set_host_parallelism(8);  // fixed simulated fan-out
  std::optional<QueryOutcome> base;
  for (int workers : {1, 4, 16}) {
    common::ThreadPool::set_max_workers(workers);
    auto out = system_->Run(SystemConfig::kHos, (*q)->sql);
    if (!out.ok()) {
      common::ThreadPool::set_max_workers(0);
      system_->set_host_parallelism(1);
    }
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    if (!base.has_value()) {
      base = std::move(*out);
      continue;
    }
    EXPECT_EQ(ExactRows(out->result), ExactRows(base->result))
        << "workers=" << workers;
    EXPECT_EQ(out->stats, base->stats) << "workers=" << workers;
    EXPECT_EQ(out->cost, base->cost) << "workers=" << workers;
    EXPECT_EQ(out->host_pages_read, base->host_pages_read);
  }
  common::ThreadPool::set_max_workers(0);
  system_->set_host_parallelism(1);
}

INSTANTIATE_TEST_SUITE_P(Queries, ParallelDeterminism,
                         ::testing::Values(3, 6),
                         [](const auto& param_info) {
                           return "Q" + std::to_string(param_info.param);
                         });

TEST_F(CsaSystemTest, StorageCoresKnobKeepsRowsAndStatsIdentical) {
  // Varying the SIMULATED fan-out legitimately changes the simulated
  // cost (Figure 10 depends on it) but never the answer or the stats.
  auto q = tpch::GetQuery(6);
  ASSERT_TRUE(q.ok());
  std::optional<QueryOutcome> base;
  sim::SimNanos prev_ns = 0;
  for (int cores : {1, 4, 16}) {
    system_->set_storage_cores(cores);
    auto out = system_->Run(SystemConfig::kScs, (*q)->sql);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    if (base.has_value()) {
      EXPECT_EQ(ExactRows(out->result), ExactRows(base->result));
      EXPECT_EQ(out->stats, base->stats);
      EXPECT_LT(out->cost.elapsed_ns(), prev_ns) << "more cores, less time";
    } else {
      base = *out;
    }
    prev_ns = out->cost.elapsed_ns();
  }
  system_->set_storage_cores(16);
}

TEST_F(CsaSystemTest, SplitExecutionShipsLessThanHostOnly) {
  // Q6 is highly selective: the CS configurations must move far fewer
  // bytes over the network than host-only page shipping (Figure 7).
  auto q = tpch::GetQuery(6);
  auto hons = system_->Run(SystemConfig::kHons, (*q)->sql);
  auto vcs = system_->Run(SystemConfig::kVcs, (*q)->sql);
  ASSERT_TRUE(hons.ok() && vcs.ok());
  EXPECT_GT(hons->cost.network_bytes(), vcs->cost.network_bytes());
  EXPECT_GT(hons->host_pages_read, 0u);
  EXPECT_GT(vcs->storage_pages_read, 0u);
}

TEST_F(CsaSystemTest, SecureConfigPaysCryptoCosts) {
  auto q = tpch::GetQuery(6);
  auto vcs = system_->Run(SystemConfig::kVcs, (*q)->sql);
  auto scs = system_->Run(SystemConfig::kScs, (*q)->sql);
  ASSERT_TRUE(vcs.ok() && scs.ok());
  EXPECT_EQ(vcs->cost.decrypt_ns(), 0u);
  EXPECT_GT(scs->cost.decrypt_ns(), 0u);
  EXPECT_GT(scs->cost.freshness_ns(), 0u);
  EXPECT_GT(scs->cost.elapsed_ns(), vcs->cost.elapsed_ns());
}

TEST_F(CsaSystemTest, HostOnlySecurePaysEnclaveTransitions) {
  auto q = tpch::GetQuery(6);
  auto hos = system_->Run(SystemConfig::kHos, (*q)->sql);
  ASSERT_TRUE(hos.ok());
  EXPECT_GT(hos->cost.enclave_transitions(), 0u);
  auto scs = system_->Run(SystemConfig::kScs, (*q)->sql);
  ASSERT_TRUE(scs.ok());
  // IronSafe crosses the enclave boundary once per shipped batch, far
  // fewer times than per-page host-only execution (§6.2).
  EXPECT_LT(scs->cost.enclave_transitions(), hos->cost.enclave_transitions());
}

TEST_F(CsaSystemTest, StorageOnlyChargesStorageCpu) {
  auto q = tpch::GetQuery(6);
  auto sos = system_->Run(SystemConfig::kSos, (*q)->sql);
  ASSERT_TRUE(sos.ok());
  EXPECT_EQ(sos->cost.network_bytes(), 0u);
  EXPECT_GT(sos->cost.decrypt_ns(), 0u);
}

TEST_F(CsaSystemTest, AggregationPushdownAgreesAndShipsLess) {
  auto q = tpch::GetQuery(6);
  auto filter_run = system_->Run(SystemConfig::kScs, (*q)->sql);
  ASSERT_TRUE(filter_run.ok());
  system_->set_aggregation_pushdown(true);
  auto whole_run = system_->Run(SystemConfig::kScs, (*q)->sql);
  system_->set_aggregation_pushdown(false);
  ASSERT_TRUE(whole_run.ok()) << whole_run.status().ToString();
  EXPECT_EQ(Canonical(whole_run->result), Canonical(filter_run->result));
  EXPECT_LT(whole_run->shipped_bytes, filter_run->shipped_bytes);
}

TEST_F(CsaSystemTest, UnknownQueryErrorsPropagate) {
  auto bad = system_->Run(SystemConfig::kScs, "SELECT * FROM nonexistent");
  EXPECT_FALSE(bad.ok());
}

// ---------------- IronSafe end-to-end ----------------

class IronSafeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IronSafeSystem::Options options;
    options.csa.scale_factor = 0.001;
    auto system = IronSafeSystem::Create(options);
    ASSERT_TRUE(system.ok());
    system_ = std::move(*system);
    ASSERT_TRUE(system_->Bootstrap().ok());
    system_->set_current_date(*sql::ParseDate("1997-06-01"));
    system_->RegisterClient("producer");
    system_->RegisterClient("consumer", /*reuse_bit=*/1);
  }

  std::unique_ptr<IronSafeSystem> system_;
};

TEST_F(IronSafeTest, TimelyDeletionAntiPattern) {
  // Anti-pattern #1: records expire; consumers cannot see expired rows.
  ASSERT_TRUE(system_
                  ->CreateProtectedTable(
                      "producer",
                      "CREATE TABLE bookings (id INTEGER, pax VARCHAR)",
                      "read ::= sessionKeyIs(producer) | "
                      "sessionKeyIs(consumer) & le(T, TIMESTAMP)\n"
                      "write ::= sessionKeyIs(producer)\n",
                      /*with_expiry=*/true, /*with_reuse=*/false)
                  .ok());

  int64_t live = *sql::ParseDate("1999-01-01");
  int64_t expired = *sql::ParseDate("1997-01-01");
  ASSERT_TRUE(system_
                  ->Execute("producer",
                            "INSERT INTO bookings (id, pax) VALUES (1, 'ann')",
                            "", live)
                  .ok());
  ASSERT_TRUE(system_
                  ->Execute("producer",
                            "INSERT INTO bookings (id, pax) VALUES (2, 'bob')",
                            "", expired)
                  .ok());

  // Producer sees both rows.
  auto p = system_->Execute("producer", "SELECT id FROM bookings");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->result.rows.size(), 2u);

  // Consumer sees only the unexpired row.
  auto c = system_->Execute("consumer", "SELECT id FROM bookings");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c->result.rows.size(), 1u);
  EXPECT_EQ(c->result.rows[0][0].AsInt(), 1);
}

TEST_F(IronSafeTest, ReuseMapAntiPattern) {
  // Anti-pattern #2: rows opt in per service via a bitmap.
  ASSERT_TRUE(system_
                  ->CreateProtectedTable(
                      "producer",
                      "CREATE TABLE profiles (id INTEGER)",
                      "read ::= sessionKeyIs(producer) | "
                      "sessionKeyIs(consumer) & reuseMap(m)\n"
                      "write ::= sessionKeyIs(producer)\n",
                      false, /*with_reuse=*/true)
                  .ok());
  // Row 1 opts into service bit 1 (consumer's bit); row 2 does not.
  ASSERT_TRUE(system_
                  ->Execute("producer", "INSERT INTO profiles (id) VALUES (1)",
                            "", std::nullopt, /*reuse=*/0b010)
                  .ok());
  ASSERT_TRUE(system_
                  ->Execute("producer", "INSERT INTO profiles (id) VALUES (2)",
                            "", std::nullopt, /*reuse=*/0b100)
                  .ok());

  auto c = system_->Execute("consumer", "SELECT id FROM profiles");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c->result.rows.size(), 1u);
  EXPECT_EQ(c->result.rows[0][0].AsInt(), 1);
}

TEST_F(IronSafeTest, TransparencyAntiPatternLogsConsumerQueries) {
  ASSERT_TRUE(system_
                  ->CreateProtectedTable(
                      "producer", "CREATE TABLE pii (id INTEGER)",
                      "read ::= sessionKeyIs(producer) | "
                      "sessionKeyIs(consumer) & logUpdate(shares, K, Q)\n"
                      "write ::= sessionKeyIs(producer)\n",
                      false, false)
                  .ok());
  ASSERT_TRUE(
      system_->Execute("producer", "INSERT INTO pii (id) VALUES (7)").ok());

  size_t before = system_->monitor()->audit_log()->entries().size();
  ASSERT_TRUE(system_->Execute("consumer", "SELECT id FROM pii").ok());
  const auto& entries = system_->monitor()->audit_log()->entries();
  ASSERT_EQ(entries.size(), before + 1);
  EXPECT_EQ(entries.back().client_key_id, "consumer");
  // The regulator can verify the log end-to-end.
  EXPECT_TRUE(monitor::AuditLog::Verify(
                  entries, system_->monitor()->audit_log()->head_signature(),
                  system_->monitor()->audit_log()->public_key())
                  .ok());
}

TEST_F(IronSafeTest, UnauthorizedClientDenied) {
  ASSERT_TRUE(system_
                  ->CreateProtectedTable(
                      "producer", "CREATE TABLE vault (id INTEGER)",
                      "read ::= sessionKeyIs(producer)\n"
                      "write ::= sessionKeyIs(producer)\n",
                      false, false)
                  .ok());
  auto denied = system_->Execute("consumer", "SELECT * FROM vault");
  EXPECT_TRUE(denied.status().IsPermissionDenied());
}

TEST_F(IronSafeTest, ExecutionPolicyForcesHostOnly) {
  ASSERT_TRUE(system_
                  ->CreateProtectedTable(
                      "producer", "CREATE TABLE t (id INTEGER)",
                      "read ::= sessionKeyIs(producer)\n"
                      "write ::= sessionKeyIs(producer)\n",
                      false, false)
                  .ok());
  ASSERT_TRUE(system_->Execute("producer", "INSERT INTO t (id) VALUES (1)").ok());

  auto offloaded = system_->Execute("producer", "SELECT * FROM t",
                                    "exec ::= storageLocIs(eu-west-1)");
  ASSERT_TRUE(offloaded.ok()) << offloaded.status().ToString();
  EXPECT_TRUE(offloaded->offloaded);

  auto host_only = system_->Execute("producer", "SELECT * FROM t",
                                    "exec ::= storageLocIs(us-east-1)");
  ASSERT_TRUE(host_only.ok()) << host_only.status().ToString();
  EXPECT_FALSE(host_only->offloaded);
  EXPECT_EQ(host_only->result.rows.size(), offloaded->result.rows.size());
}

TEST_F(IronSafeTest, RightToErasureDeletesThroughPolicyPath) {
  // GDPR right to erasure: the producer deletes one data subject's rows;
  // subsequent reads (by anyone) no longer see them, and the delete went
  // through the monitor like any other statement.
  ASSERT_TRUE(system_
                  ->CreateProtectedTable(
                      "producer",
                      "CREATE TABLE subjects (id INTEGER, who VARCHAR)",
                      "read ::= sessionKeyIs(producer) | "
                      "sessionKeyIs(consumer)\n"
                      "write ::= sessionKeyIs(producer)\n",
                      false, false)
                  .ok());
  ASSERT_TRUE(system_
                  ->Execute("producer",
                            "INSERT INTO subjects (id, who) VALUES "
                            "(1, 'ann'), (2, 'bob'), (3, 'ann')")
                  .ok());

  // The consumer cannot erase (write permission belongs to the producer).
  auto blocked =
      system_->Execute("consumer", "DELETE FROM subjects WHERE who = 'ann'");
  EXPECT_TRUE(blocked.status().IsPermissionDenied());

  auto erased =
      system_->Execute("producer", "DELETE FROM subjects WHERE who = 'ann'");
  ASSERT_TRUE(erased.ok()) << erased.status().ToString();
  EXPECT_EQ(erased->result.rows[0][0].AsInt(), 2);

  auto after = system_->Execute("consumer", "SELECT who FROM subjects");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->result.rows.size(), 1u);
  EXPECT_EQ(after->result.rows[0][0].AsString(), "bob");
}

TEST_F(IronSafeTest, UpdateThroughPolicyPath) {
  ASSERT_TRUE(system_
                  ->CreateProtectedTable(
                      "producer", "CREATE TABLE accts (id INTEGER, bal DOUBLE)",
                      "read ::= sessionKeyIs(producer)\n"
                      "write ::= sessionKeyIs(producer)\n",
                      false, false)
                  .ok());
  ASSERT_TRUE(system_
                  ->Execute("producer",
                            "INSERT INTO accts (id, bal) VALUES (1, 10.0)")
                  .ok());
  auto updated = system_->Execute(
      "producer", "UPDATE accts SET bal = bal + 5 WHERE id = 1");
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  auto check = system_->Execute("producer", "SELECT bal FROM accts");
  ASSERT_TRUE(check.ok());
  EXPECT_NEAR(check->result.rows[0][0].AsDouble(), 15.0, 1e-9);
}

TEST_F(IronSafeTest, ProofOfComplianceVerifies) {
  ASSERT_TRUE(system_
                  ->CreateProtectedTable(
                      "producer", "CREATE TABLE t2 (id INTEGER)",
                      "read ::= sessionKeyIs(producer)\n"
                      "write ::= sessionKeyIs(producer)\n",
                      false, false)
                  .ok());
  auto result = system_->Execute("producer", "SELECT * FROM t2");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(monitor::TrustedMonitor::VerifyProof(
      result->proof, system_->monitor()->public_key()));
  EXPECT_EQ(result->proof.host_measurement,
            system_->csa()->host_enclave()->measurement());
}

}  // namespace
}  // namespace ironsafe::engine
