#include "sql/exec_internal.h"

#include <cstring>

#include "common/thread_pool.h"

namespace ironsafe::sql::exec {

void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    SplitConjuncts(e->left.get(), out);
    SplitConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

void CollectColumns(const Expr& e, std::set<std::string>* cols,
                    bool* has_subquery) {
  switch (e.kind) {
    case ExprKind::kColumn:
      cols->insert(e.column_name);
      return;
    case ExprKind::kScalarSubquery:
    case ExprKind::kExists:
    case ExprKind::kInSubquery:
      *has_subquery = true;
      if (e.left) CollectColumns(*e.left, cols, has_subquery);
      return;
    default:
      break;
  }
  if (e.left) CollectColumns(*e.left, cols, has_subquery);
  if (e.right) CollectColumns(*e.right, cols, has_subquery);
  for (const auto& a : e.args) CollectColumns(*a, cols, has_subquery);
  for (const auto& [w, t] : e.when_clauses) {
    CollectColumns(*w, cols, has_subquery);
    CollectColumns(*t, cols, has_subquery);
  }
  if (e.else_expr) CollectColumns(*e.else_expr, cols, has_subquery);
}

bool ResolvableBy(const std::set<std::string>& cols, const Schema& schema) {
  // Find() returns -1 when absent; -2 (ambiguous) still counts as present.
  for (const std::string& c : cols) {
    if (schema.Find(c) == -1) return false;
  }
  return true;
}

std::vector<ConjunctInfo> AnalyzeConjuncts(const Expr* where) {
  std::vector<const Expr*> parts;
  SplitConjuncts(where, &parts);
  std::vector<ConjunctInfo> infos;
  for (const Expr* e : parts) {
    ConjunctInfo info;
    info.expr = e;
    CollectColumns(*e, &info.columns, &info.has_subquery);
    infos.push_back(std::move(info));
  }
  return infos;
}

bool HasAggregate(const Expr& e) {
  if (e.kind == ExprKind::kAggregate) return true;
  if (e.left && HasAggregate(*e.left)) return true;
  if (e.right && HasAggregate(*e.right)) return true;
  for (const auto& a : e.args) {
    if (HasAggregate(*a)) return true;
  }
  for (const auto& [w, t] : e.when_clauses) {
    if (HasAggregate(*w) || HasAggregate(*t)) return true;
  }
  if (e.else_expr && HasAggregate(*e.else_expr)) return true;
  return false;  // subquery bodies have their own aggregation contexts
}

void CollectAggregates(const Expr& e,
                       std::map<std::string, const Expr*>* aggs) {
  if (e.kind == ExprKind::kAggregate) {
    aggs->emplace(e.ToString(), &e);
    return;
  }
  if (e.left) CollectAggregates(*e.left, aggs);
  if (e.right) CollectAggregates(*e.right, aggs);
  for (const auto& a : e.args) CollectAggregates(*a, aggs);
  for (const auto& [w, t] : e.when_clauses) {
    CollectAggregates(*w, aggs);
    CollectAggregates(*t, aggs);
  }
  if (e.else_expr) CollectAggregates(*e.else_expr, aggs);
}

ExprPtr RewriteToColumns(const Expr& e, const std::set<std::string>& names) {
  std::string printed = e.ToString();
  if (names.count(printed)) return Expr::MakeColumn(printed);
  ExprPtr c = e.Clone();
  if (c->left) c->left = RewriteToColumns(*e.left, names);
  if (c->right) c->right = RewriteToColumns(*e.right, names);
  for (size_t i = 0; i < c->args.size(); ++i) {
    c->args[i] = RewriteToColumns(*e.args[i], names);
  }
  for (size_t i = 0; i < c->when_clauses.size(); ++i) {
    c->when_clauses[i].first =
        RewriteToColumns(*e.when_clauses[i].first, names);
    c->when_clauses[i].second =
        RewriteToColumns(*e.when_clauses[i].second, names);
  }
  if (c->else_expr) c->else_expr = RewriteToColumns(*e.else_expr, names);
  return c;
}

Type InferType(const Expr& e, const Schema& schema) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.type();
    case ExprKind::kColumn: {
      int idx = schema.Find(e.column_name);
      return idx >= 0 ? schema.column(idx).type : Type::kNull;
    }
    case ExprKind::kUnary:
      return e.un_op == UnOp::kNot ? Type::kBool : InferType(*e.left, schema);
    case ExprKind::kBinary:
      switch (e.bin_op) {
        case BinOp::kEq: case BinOp::kNe: case BinOp::kLt: case BinOp::kLe:
        case BinOp::kGt: case BinOp::kGe: case BinOp::kAnd: case BinOp::kOr:
          return Type::kBool;
        case BinOp::kConcat:
          return Type::kString;
        case BinOp::kDiv:
          return Type::kDouble;
        default: {
          Type l = InferType(*e.left, schema);
          Type r = InferType(*e.right, schema);
          if (l == Type::kDate || r == Type::kDate) {
            return e.bin_op == BinOp::kSub && l == Type::kDate &&
                           r == Type::kDate
                       ? Type::kInt64
                       : Type::kDate;
          }
          if (l == Type::kDouble || r == Type::kDouble) return Type::kDouble;
          return Type::kInt64;
        }
      }
    case ExprKind::kAggregate:
      switch (e.agg_func) {
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          return Type::kInt64;
        case AggFunc::kAvg:
          return Type::kDouble;
        case AggFunc::kSum: {
          Type t = InferType(*e.args[0], schema);
          return t == Type::kInt64 ? Type::kInt64 : Type::kDouble;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          return InferType(*e.args[0], schema);
      }
      return Type::kNull;
    case ExprKind::kFunction: {
      const std::string& f = e.func_name;
      if (f == "year" || f == "month" || f == "day" || f == "length") {
        return Type::kInt64;
      }
      if (f == "date_add") return Type::kDate;
      if (f == "substr" || f == "substring" || f == "upper" || f == "lower") {
        return Type::kString;
      }
      if (f == "round" || f == "abs") return InferType(*e.args[0], schema);
      if (f == "coalesce" && !e.args.empty()) {
        return InferType(*e.args[0], schema);
      }
      return Type::kNull;
    }
    case ExprKind::kCase:
      if (!e.when_clauses.empty()) {
        return InferType(*e.when_clauses[0].second, schema);
      }
      return Type::kNull;
    case ExprKind::kScalarSubquery:
      return Type::kDouble;  // unknown without executing; numeric is common
    default:
      return Type::kBool;  // predicates
  }
}

Bytes KeyOf(const std::vector<Value>& values) {
  Bytes key;
  for (const Value& v : values) {
    // Normalize numerics so INT 3 and DOUBLE 3.0 group/join together.
    if (v.IsNumeric() && v.type() != Type::kDate) {
      key.push_back(1);
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      PutU64(&key, bits);
    } else {
      v.Serialize(&key);
    }
  }
  return key;
}

int PlanWorkers(const Ctx& ctx, uint64_t work, uint64_t min_per_worker) {
  int workers = common::ThreadPool::EffectiveWorkers(ctx.opts.parallelism);
  if (min_per_worker > 0) {
    uint64_t fit = std::max<uint64_t>(1, work / min_per_worker);
    workers = static_cast<int>(
        std::min<uint64_t>(static_cast<uint64_t>(workers), fit));
  }
  return std::max(1, workers);
}

}  // namespace ironsafe::sql::exec
