# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tee_test[1]_include.cmake")
include("/root/repo/build/tests/securestore_test[1]_include.cmake")
include("/root/repo/build/tests/sql_value_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql_exec_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
