# Empty dependencies file for ironsafe_securestore.
# This may be replaced when dependencies are built.
