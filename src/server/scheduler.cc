#include "server/scheduler.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "sim/fault.h"

namespace ironsafe::server {

Status FairScheduler::Admit(QueuedStatement item) {
  // Injected admission overflow: the queue behaves as if full, so the
  // client exercises its backpressure-retry path.
  if (sim::FaultAt(sim::fault_site::kServerAdmissionOverflow)) {
    IRONSAFE_COUNTER_ADD("server.admission.injected_overflows", 1);
    return Status::ResourceExhausted("injected: admission queue full");
  }
  if (depth_ >= limits_.max_total) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(limits_.max_total) +
        " statements)");
  }
  std::deque<QueuedStatement>& q = queues_[item.session_id];
  if (q.size() >= limits_.max_per_session) {
    if (q.empty()) queues_.erase(item.session_id);
    return Status::ResourceExhausted(
        "session quota full (" + std::to_string(limits_.max_per_session) +
        " statements for session " + std::to_string(item.session_id) + ")");
  }
  q.push_back(std::move(item));
  ++depth_;
  peak_depth_ = std::max(peak_depth_, depth_);
  return Status::OK();
}

std::optional<QueuedStatement> FairScheduler::Next() {
  if (depth_ == 0) return std::nullopt;
  // First non-empty session strictly after the last served, wrapping.
  // Empty per-session queues are erased eagerly, so every map entry is
  // servable and the two lookups below suffice.
  auto it = queues_.upper_bound(last_served_);
  if (it == queues_.end()) it = queues_.begin();
  QueuedStatement item = std::move(it->second.front());
  it->second.pop_front();
  last_served_ = it->first;
  if (it->second.empty()) queues_.erase(it);
  --depth_;
  return item;
}

std::vector<QueuedStatement> FairScheduler::EvictSession(uint64_t session_id) {
  std::vector<QueuedStatement> evicted;
  auto it = queues_.find(session_id);
  if (it == queues_.end()) return evicted;
  evicted.assign(std::make_move_iterator(it->second.begin()),
                 std::make_move_iterator(it->second.end()));
  depth_ -= evicted.size();
  queues_.erase(it);
  return evicted;
}

size_t FairScheduler::session_depth(uint64_t session_id) const {
  auto it = queues_.find(session_id);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace ironsafe::server
