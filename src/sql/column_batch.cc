#include "sql/column_batch.h"

#include <cstring>

namespace ironsafe::sql {

namespace {
int64_t NumPayload(const Value& v) {
  if (v.type() == Type::kDouble) {
    double d = v.AsDouble();
    int64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
  }
  if (v.type() == Type::kString || v.is_null()) return 0;
  return v.AsInt();
}
}  // namespace

void ColumnBatch::PushValue(size_t c, const Value& v) {
  Col& col = cols_[c];
  auto tag = static_cast<uint8_t>(v.type());
  if (!col.tags.empty() && tag != col.tags[0]) col.uniform_ = false;
  col.tags.push_back(tag);
  col.nums.push_back(NumPayload(v));
  if (v.is_null()) col.has_null = true;
  if (v.type() == Type::kString) {
    if (!col.has_string) {
      col.has_string = true;
      col.strs.resize(col.tags.size() - 1);
    }
  }
  if (col.has_string) {
    col.strs.emplace_back(v.type() == Type::kString ? v.AsString()
                                                    : std::string());
  }
}

void ColumnBatch::AppendRow(const Row& row) {
  size_t bytes = sizeof(Row) + row.size() * sizeof(Value);
  for (size_t c = 0; c < cols_.size() && c < row.size(); ++c) {
    PushValue(c, row[c]);
    if (row[c].type() == Type::kString) bytes += row[c].AsString().size();
  }
  for (size_t c = row.size(); c < cols_.size(); ++c) {
    PushValue(c, Value::Null());
  }
  row_bytes_.push_back(static_cast<uint32_t>(bytes));
  total_row_bytes_ += bytes;
  ++rows_;
}

Status ColumnBatch::AppendSerialized(ByteReader* reader) {
  ASSIGN_OR_RETURN(uint16_t n, reader->ReadU16());
  size_t bytes = sizeof(Row) + n * sizeof(Value);
  for (uint16_t c = 0; c < n; ++c) {
    ASSIGN_OR_RETURN(Value v, Value::Deserialize(reader));
    if (v.type() == Type::kString) bytes += v.AsString().size();
    if (c < cols_.size()) PushValue(c, v);
  }
  for (size_t c = n; c < cols_.size(); ++c) {
    PushValue(c, Value::Null());
  }
  row_bytes_.push_back(static_cast<uint32_t>(bytes));
  total_row_bytes_ += bytes;
  ++rows_;
  return Status::OK();
}

Value ColumnBatch::GetValue(size_t c, size_t r) const {
  const Col& col = cols_[c];
  switch (static_cast<Type>(col.tags[r])) {
    case Type::kNull:
      return Value::Null();
    case Type::kBool:
      return Value::Bool(col.nums[r] != 0);
    case Type::kInt64:
      return Value::Int(col.nums[r]);
    case Type::kDouble: {
      double d;
      std::memcpy(&d, &col.nums[r], 8);
      return Value::Double(d);
    }
    case Type::kString:
      return Value::String(col.strs[r]);
    case Type::kDate:
      return Value::Date(col.nums[r]);
  }
  return Value::Null();
}

void ColumnBatch::MaterializeRow(size_t r, Row* out) const {
  out->clear();
  out->reserve(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) out->push_back(GetValue(c, r));
}

Result<std::shared_ptr<const ColumnBatch>> ColumnBatch::FromPage(
    const Bytes& page, size_t num_cols) {
  auto batch = std::make_shared<ColumnBatch>(num_cols);
  ByteReader reader(page);
  ASSIGN_OR_RETURN(uint16_t n, reader.ReadU16());
  for (uint16_t i = 0; i < n; ++i) {
    RETURN_IF_ERROR(batch->AppendSerialized(&reader));
  }
  return std::shared_ptr<const ColumnBatch>(std::move(batch));
}

}  // namespace ironsafe::sql
