# Empty dependencies file for ironsafe_policy.
# This may be replaced when dependencies are built.
