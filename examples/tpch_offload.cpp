// TPC-H offloading walkthrough: loads a small TPC-H database into the
// simulated CSA testbed, shows how the partitioner splits a query, and
// compares the five system configurations of the paper's Table 2 on it.
//
//   build/examples/tpch_offload [query_number] [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "engine/csa_system.h"
#include "engine/partitioner.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using ironsafe::Status;
using ironsafe::engine::CsaOptions;
using ironsafe::engine::CsaSystem;
using ironsafe::engine::SystemConfig;

namespace {
void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}
template <typename T>
T Check(ironsafe::Result<T> result) {
  Check(result.status());
  return std::move(*result);
}
}  // namespace

int main(int argc, char** argv) {
  int query_number = argc > 1 ? std::atoi(argv[1]) : 6;
  double sf = argc > 2 ? std::atof(argv[2]) : 0.002;

  CsaOptions options;
  options.scale_factor = sf;
  auto system = Check(CsaSystem::Create(options));
  Check(system->Load([&](ironsafe::sql::Database* db) {
    ironsafe::tpch::TpchGenerator gen(ironsafe::tpch::TpchConfig{sf, 7});
    return gen.LoadInto(db);
  }));

  const auto* query = Check(ironsafe::tpch::GetQuery(query_number));
  std::printf("TPC-H Q%d (%s), SF %.4f\n\n%s\n", query->number,
              query->name.c_str(), sf, query->sql.c_str());

  // Show what the partitioner does with it.
  auto stmt = Check(ironsafe::sql::ParseSelect(query->sql));
  auto plan =
      Check(ironsafe::engine::PartitionQuery(*stmt, *system->plain_db()));
  std::printf("--- storage-side fragments (%zu) ---\n",
              plan.fragments.size());
  for (const auto& frag : plan.fragments) {
    std::printf("  %s <= %s\n", frag.dest_table.c_str(), frag.sql.c_str());
  }
  std::printf("--- host-side remainder ---\n  %s\n\n",
              plan.host_query->ToString().c_str());

  // Compare all five configurations.
  std::printf("%-6s %14s %12s %14s %12s %12s\n", "config", "sim-time(ms)",
              "net(KiB)", "transitions", "epc-faults", "rows");
  for (SystemConfig config :
       {SystemConfig::kHons, SystemConfig::kHos, SystemConfig::kVcs,
        SystemConfig::kScs, SystemConfig::kSos}) {
    auto outcome = Check(system->Run(config, query->sql));
    std::printf("%-6s %14.3f %12.1f %14llu %12llu %12zu\n",
                std::string(SystemConfigName(config)).c_str(),
                outcome.cost.elapsed_ms(),
                static_cast<double>(outcome.cost.network_bytes()) / 1024.0,
                static_cast<unsigned long long>(
                    outcome.cost.enclave_transitions()),
                static_cast<unsigned long long>(outcome.cost.epc_faults()),
                outcome.result.rows.size());
  }
  return 0;
}
