# Empty compiler generated dependencies file for table3_gdpr.
# This may be replaced when dependencies are built.
