#ifndef IRONSAFE_CRYPTO_AES_H_
#define IRONSAFE_CRYPTO_AES_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace ironsafe::crypto {

/// AES block cipher (FIPS 197) supporting 128- and 256-bit keys.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  /// Key must be 16 or 32 bytes.
  static Result<Aes> Create(const Bytes& key);

  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

 private:
  Aes() = default;
  void ExpandKey(const Bytes& key);

  uint32_t round_keys_[60];
  int rounds_ = 0;
};

/// AES-CBC with PKCS#7 padding. `iv` must be 16 bytes. The paper's secure
/// storage encrypts each 4 KiB page with AES-256-CBC and a random IV.
Result<Bytes> AesCbcEncrypt(const Bytes& key, const Bytes& iv,
                            const Bytes& plaintext);
Result<Bytes> AesCbcDecrypt(const Bytes& key, const Bytes& iv,
                            const Bytes& ciphertext);

/// AES-CTR keystream encryption (encrypt == decrypt). `nonce` must be
/// 16 bytes (big-endian counter in the low 8 bytes).
Result<Bytes> AesCtr(const Bytes& key, const Bytes& nonce, const Bytes& data);

}  // namespace ironsafe::crypto

#endif  // IRONSAFE_CRYPTO_AES_H_
