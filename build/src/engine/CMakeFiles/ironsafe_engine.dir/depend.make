# Empty dependencies file for ironsafe_engine.
# This may be replaced when dependencies are built.
