#include "tee/rpmb.h"

#include "crypto/hmac.h"
#include "obs/metrics.h"
#include "obs/retry.h"
#include "sim/fault.h"

namespace ironsafe::tee {

namespace {
Bytes WriteFrame(uint32_t slot, uint32_t counter, const Bytes& data) {
  Bytes m;
  PutU32(&m, slot);
  PutU32(&m, counter);
  Append(&m, data);
  return m;
}

Bytes ReadFrame(uint32_t slot, uint32_t counter, const Bytes& data,
                const Bytes& nonce) {
  Bytes m = WriteFrame(slot, counter, data);
  Append(&m, nonce);
  return m;
}
}  // namespace

Status RpmbDevice::ProgramKey(const Bytes& key) {
  if (!key_.empty()) {
    return Status::FailedPrecondition("RPMB key already programmed");
  }
  if (key.empty()) return Status::InvalidArgument("empty RPMB key");
  key_ = key;
  return Status::OK();
}

Bytes RpmbDevice::MakeWriteMac(const Bytes& key, uint32_t slot,
                               uint32_t counter, const Bytes& data) {
  return crypto::HmacSha256(key, WriteFrame(slot, counter, data));
}

Bytes RpmbDevice::MakeReadMac(const Bytes& key, uint32_t slot,
                              uint32_t counter, const Bytes& data,
                              const Bytes& nonce) {
  return crypto::HmacSha256(key, ReadFrame(slot, counter, data, nonce));
}

Status RpmbDevice::AuthenticatedWrite(uint32_t slot, const Bytes& data,
                                      uint32_t counter, const Bytes& mac) {
  if (key_.empty()) {
    return Status::FailedPrecondition("RPMB key not programmed");
  }
  if (slot >= kNumSlots) return Status::InvalidArgument("RPMB slot OOB");
  if (data.size() > kSlotSize) {
    return Status::InvalidArgument("RPMB data exceeds slot size");
  }
  if (counter != write_counter_) {
    IRONSAFE_COUNTER_ADD("tee.rpmb.auth_failures", 1);
    return Status::Unauthenticated("RPMB write counter mismatch (replay?)");
  }
  Bytes expected = MakeWriteMac(key_, slot, counter, data);
  if (!ConstantTimeEqual(expected, mac)) {
    IRONSAFE_COUNTER_ADD("tee.rpmb.auth_failures", 1);
    return Status::Unauthenticated("RPMB write MAC invalid");
  }
  slots_[slot] = data;
  ++write_counter_;
  IRONSAFE_COUNTER_ADD("tee.rpmb.writes", 1);
  return Status::OK();
}

Result<RpmbDevice::ReadResponse> RpmbDevice::Read(uint32_t slot,
                                                  const Bytes& nonce) const {
  if (key_.empty()) {
    return Status::FailedPrecondition("RPMB key not programmed");
  }
  if (slot >= kNumSlots) return Status::InvalidArgument("RPMB slot OOB");
  ReadResponse resp;
  auto it = slots_.find(slot);
  if (it != slots_.end()) resp.data = it->second;
  resp.counter = write_counter_;
  resp.mac = MakeReadMac(key_, slot, resp.counter, resp.data, nonce);
  IRONSAFE_COUNTER_ADD("tee.rpmb.reads", 1);
  return resp;
}

Status RpmbClient::Provision() {
  if (device_->key_programmed()) return Status::OK();
  return device_->ProgramKey(key_);
}

Status RpmbClient::WriteOnce(uint32_t slot, const Bytes& data) {
  uint32_t counter = device_->write_counter();
  // Injected counter rollback: the client presents a stale counter (as a
  // host would after a reboot with a lost write ack) and the device must
  // reject the frame as a replay.
  if (sim::FaultAt(sim::fault_site::kRpmbCounterRollback)) {
    counter = counter > 0 ? counter - 1 : counter + 1;
  }
  Bytes mac = RpmbDevice::MakeWriteMac(key_, slot, counter, data);
  // Injected MAC damage: one byte of the authentication tag flips in the
  // frame on its way to the device.
  if (auto hit = sim::FaultAt(sim::fault_site::kRpmbMacCorrupt)) {
    mac[hit->param % mac.size()] ^= 0x01;
  }
  return device_->AuthenticatedWrite(slot, data, counter, mac);
}

Status RpmbClient::Write(uint32_t slot, const Bytes& data) {
  // Recovery: WriteOnce re-reads the device counter and re-MACs the frame
  // on every attempt, so a retry heals stale-counter and damaged-MAC
  // failures; a device that keeps rejecting (wrong key) still fails after
  // the bounded attempts. The first attempt is hook-free.
  RetryPolicy policy = obs::ObservedRetryPolicy("tee.rpmb.write", nullptr);
  policy.retryable = [](const Status& s) { return s.IsUnauthenticated(); };
  return RetryWithBackoff(
      policy, [&]() -> Status { return WriteOnce(slot, data); });
}

Result<Bytes> RpmbClient::Read(uint32_t slot, const Bytes& nonce) {
  ASSIGN_OR_RETURN(RpmbDevice::ReadResponse resp, device_->Read(slot, nonce));
  Bytes expected =
      RpmbDevice::MakeReadMac(key_, slot, resp.counter, resp.data, nonce);
  if (!ConstantTimeEqual(expected, resp.mac)) {
    return Status::Unauthenticated("RPMB read response MAC invalid");
  }
  return resp.data;
}

}  // namespace ironsafe::tee
