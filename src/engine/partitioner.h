#ifndef IRONSAFE_ENGINE_PARTITIONER_H_
#define IRONSAFE_ENGINE_PARTITIONER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/database.h"

namespace ironsafe::engine {

/// The query partitioner (§4.1 / Figure 5): splits a SELECT into
/// storage-side fragments and a host-side remainder.
///
/// Strategy (mirroring the paper's manual filter pushdown): every base
/// table referenced anywhere in the query becomes one storage fragment
/// `SELECT * FROM t a WHERE <pushable single-table conjuncts>`, executed
/// near the data; the host query is the original query with those
/// conjuncts removed and each table reference renamed to the shipped
/// intermediate. Joins, group-bys, aggregations and subquery logic stay
/// on the host (§5: storage-side queries are filters; the host performs
/// group-bys and aggregations).
struct PartitionedQuery {
  struct StorageFragment {
    std::string source_table;  ///< base table on the storage node
    std::string dest_table;    ///< intermediate name on the host
    std::string sql;           ///< fragment executed by the storage engine
  };
  std::vector<StorageFragment> fragments;
  std::unique_ptr<sql::SelectStmt> host_query;
  bool whole_query_offloaded = false;  ///< aggregation pushdown fired
};

struct PartitionOptions {
  /// The paper's §8 future work: when a query touches a single base
  /// table and contains no subqueries, offload the *entire* query —
  /// filters, grouping and aggregation — to the storage engine and ship
  /// only the final rows. Off by default to match the paper's evaluated
  /// filter-pushdown partitioning; the ablation bench compares both.
  bool aggregation_pushdown = false;
};

/// Partitions `query`. `storage_db` supplies table schemas for deciding
/// which WHERE conjuncts are pushable.
Result<PartitionedQuery> PartitionQuery(const sql::SelectStmt& query,
                                        const sql::Database& storage_db,
                                        const PartitionOptions& options = {});

}  // namespace ironsafe::engine

#endif  // IRONSAFE_ENGINE_PARTITIONER_H_
