# Empty compiler generated dependencies file for ironsafe_common.
# This may be replaced when dependencies are built.
