#include "common/retry.h"

#include <algorithm>
#include <utility>

namespace ironsafe {

uint64_t BackoffForAttempt(const RetryPolicy& policy, int attempt) {
  if (attempt <= 2) return std::min(policy.initial_backoff_ns, policy.max_backoff_ns);
  uint64_t backoff = policy.initial_backoff_ns;
  for (int i = 2; i < attempt; ++i) {
    if (backoff >= policy.max_backoff_ns / std::max<uint32_t>(policy.backoff_multiplier, 1)) {
      return policy.max_backoff_ns;
    }
    backoff *= std::max<uint32_t>(policy.backoff_multiplier, 1);
  }
  return std::min(backoff, policy.max_backoff_ns);
}

TransientKind ClassifyTransient(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return TransientKind::kNodeDown;
    case StatusCode::kResourceExhausted:
      return TransientKind::kBackpressure;
    default:
      return TransientKind::kNone;
  }
}

bool IsRetryableTransient(const Status& status) {
  return ClassifyTransient(status) != TransientKind::kNone;
}

bool IsBackpressure(const Status& status) {
  return ClassifyTransient(status) == TransientKind::kBackpressure;
}

namespace retry_internal {

bool PrepareRetry(const RetryPolicy& policy, int failed_attempt,
                  const Status& failure) {
  if (failed_attempt >= policy.max_attempts) return false;
  if (policy.retryable && !policy.retryable(failure)) return false;
  int next_attempt = failed_attempt + 1;
  if (policy.on_backoff) {
    policy.on_backoff(next_attempt, BackoffForAttempt(policy, next_attempt),
                      failure);
  }
  return true;
}

}  // namespace retry_internal

Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& op) {
  for (int attempt = 1;; ++attempt) {
    Status status = op();
    if (status.ok()) return status;
    if (!retry_internal::PrepareRetry(policy, attempt, status)) return status;
  }
}

Status ResumeRetryWithBackoff(const RetryPolicy& policy, Status first_failure,
                              const std::function<Status()>& op) {
  Status status = std::move(first_failure);
  for (int attempt = 1; !status.ok(); ++attempt) {
    if (!retry_internal::PrepareRetry(policy, attempt, status)) return status;
    status = op();
  }
  return status;
}

}  // namespace ironsafe
