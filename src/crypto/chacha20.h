#ifndef IRONSAFE_CRYPTO_CHACHA20_H_
#define IRONSAFE_CRYPTO_CHACHA20_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"

namespace ironsafe::crypto {

/// ChaCha20 stream cipher (RFC 7539). key = 32 bytes, nonce = 12 bytes.
/// Encrypt == decrypt. `counter` is the initial block counter.
Result<Bytes> ChaCha20(const Bytes& key, const Bytes& nonce, uint32_t counter,
                       const Bytes& data);

/// Deterministic random bit generator built on ChaCha20. Seeded explicitly
/// so the whole simulation is reproducible; reseeds itself by ratcheting.
class Drbg {
 public:
  /// Seeds from arbitrary bytes (hashed into a 32-byte key).
  explicit Drbg(const Bytes& seed);

  /// Fills `out` with pseudorandom bytes.
  void Generate(uint8_t* out, size_t len);
  Bytes Generate(size_t len);

  /// Convenience: a fresh random 16-byte IV / 32-byte key.
  Bytes RandomIv() { return Generate(16); }
  Bytes RandomKey() { return Generate(32); }

 private:
  void Ratchet();

  Bytes key_;        // 32 bytes
  uint64_t block_ = 0;
  Bytes pool_;       // unconsumed keystream
};

}  // namespace ironsafe::crypto

#endif  // IRONSAFE_CRYPTO_CHACHA20_H_
