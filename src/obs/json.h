#ifndef IRONSAFE_OBS_JSON_H_
#define IRONSAFE_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ironsafe::obs {

/// Minimal JSON DOM used by the trace tooling and tests to validate
/// exporter output. Supports the full value grammar (RFC 8259) minus
/// \uXXXX surrogate pairs (escaped verbatim by our writer anyway).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array_value;
  std::map<std::string, JsonValue> object_value;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
Result<JsonValue> JsonParse(std::string_view text);

/// `s` escaped per JSON string rules, surrounded by double quotes.
std::string JsonQuote(std::string_view s);

}  // namespace ironsafe::obs

#endif  // IRONSAFE_OBS_JSON_H_
