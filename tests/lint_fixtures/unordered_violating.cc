// Linted as src/obs/unordered_violating.cc (an ordered-output file):
// serializing an unordered_map in hash order, two ways.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace ironsafe::obs {
std::string Export(const std::unordered_map<std::string, int>& counters,
                   const std::unordered_set<std::string>& names) {
  std::string out;
  for (const auto& [k, v] : counters) {
    out += k;
    out += static_cast<char>('0' + v % 10);
  }
  for (auto it = names.begin(); it != names.end(); ++it) out += *it;
  return out;
}
}  // namespace ironsafe::obs
