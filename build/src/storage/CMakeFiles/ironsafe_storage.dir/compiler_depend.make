# Empty compiler generated dependencies file for ironsafe_storage.
# This may be replaced when dependencies are built.
