#ifndef IRONSAFE_SQL_VECTOR_EVAL_H_
#define IRONSAFE_SQL_VECTOR_EVAL_H_

#include <vector>

#include "sql/column_batch.h"
#include "sql/eval.h"
#include "sql/vector_kernels.h"

namespace ironsafe::sql {

/// Result of evaluating one expression over the active rows of a batch:
/// a dense typed array when the expression hit a kernel fast path, or
/// boxed values from the scalar fallback. Indexed by selection position
/// (0..n over sel), not by batch row.
struct VecCol {
  enum class Kind { kI64, kF64, kDate, kGeneric };
  Kind kind = Kind::kGeneric;
  /// kI64/kDate payloads, or kF64 IEEE-754 bit patterns.
  std::vector<int64_t> nums;
  std::vector<Value> vals;  ///< kGeneric only

  size_t size() const {
    return kind == Kind::kGeneric ? vals.size() : nums.size();
  }
  /// Boxes the value at selection position `i`.
  Value Get(size_t i) const {
    switch (kind) {
      case Kind::kI64:
        return Value::Int(nums[i]);
      case Kind::kF64:
        return Value::Double(vec::F64FromBits(nums[i]));
      case Kind::kDate:
        return Value::Date(nums[i]);
      case Kind::kGeneric:
        return vals[i];
    }
    return Value::Null();
  }
};

/// Appends the executor's normalized grouping/join key encoding of the
/// value at selection position `i` of `c` — byte-identical to the row
/// engine's KeyOf, so hash tables built by either engine agree.
void AppendNormalizedKey(const VecCol& c, size_t i, Bytes* key);

/// Batch-at-a-time expression evaluation. Predicates with a proven
/// uniform-typed shape (non-null single-type column vs literal) run as
/// tight kernels over the raw payload arrays; everything else falls back
/// to the scalar Evaluator row by row against a scratch row, so results
/// and error behaviour match the row engine exactly. The fallback is
/// what makes the fast paths safe to grow incrementally.
class VectorEvaluator {
 public:
  /// `fallback` must outlive this object; `outer` is the correlation
  /// scope (as in EvalScope).
  VectorEvaluator(const Evaluator* fallback, const Schema* schema,
                  const EvalScope* outer)
      : eval_(fallback), schema_(schema), outer_(outer) {}

  /// Narrows `sel` to the rows of `batch` passing `pred`.
  Status Filter(const Expr& pred, const ColumnBatch& batch, SelVec* sel);

  /// Evaluates `e` at every active row; `out` is indexed by selection
  /// position.
  Status Eval(const Expr& e, const ColumnBatch& batch, const SelVec& sel,
              VecCol* out);

 private:
  /// Returns true when the predicate ran as a kernel (sel narrowed).
  Result<bool> TryFilterFast(const Expr& pred, const ColumnBatch& batch,
                             SelVec* sel);
  /// Single column-vs-literal comparison; `flip` mirrors the operator
  /// when the literal was on the left.
  Result<bool> TryFilterCmp(const Expr& col_e, vec::CmpOp op,
                            const Value& lit, const ColumnBatch& batch,
                            SelVec* sel);
  Status FilterFallback(const Expr& pred, const ColumnBatch& batch,
                        SelVec* sel);
  Result<bool> TryEvalFast(const Expr& e, const ColumnBatch& batch,
                           const SelVec& sel, VecCol* out);
  Status EvalFallback(const Expr& e, const ColumnBatch& batch,
                      const SelVec& sel, VecCol* out);

  /// Schema index of a plain column reference usable by kernels, or -1
  /// (unknown / ambiguous / outer-scope names take the fallback, which
  /// reproduces the scalar resolution rules including its errors).
  int FastColumn(const Expr& e) const;

  const Evaluator* eval_;
  const Schema* schema_;
  const EvalScope* outer_;
  Row scratch_;
  SelVec iota_;  ///< identity selection for positional kernel calls
};

}  // namespace ironsafe::sql

#endif  // IRONSAFE_SQL_VECTOR_EVAL_H_
