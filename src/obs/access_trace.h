#ifndef IRONSAFE_OBS_ACCESS_TRACE_H_
#define IRONSAFE_OBS_ACCESS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ironsafe::obs {

class Tracer;

/// What an access event describes. The stream is the machine-checkable
/// record of the executor's externally observable behaviour: which scan
/// units (pages / row blocks) were touched in which order, and the shape
/// parameters of every operator pass. For the oblivious execution mode
/// the whole stream must be a function of input *shapes* only; for the
/// plain engines it legitimately tracks selectivity (rows kept per
/// filter, join output sizes, group counts), which is exactly the leak
/// the property harness demonstrates.
enum class AccessKind : uint8_t {
  kQueryBegin,   ///< a = 1 when oblivious mode, 0 plain
  kScanBegin,    ///< a = morsel units, b = table row count
  kUnitRead,     ///< a = unit index, b = rows decoded from the unit
  kScanEnd,      ///< a = rows kept (plain) / rows padded through (oblivious)
  kFilter,       ///< a = rows in, b = rows out (oblivious: in == out)
  kJoinBegin,    ///< a = left rows, b = right rows
  kSortNetwork,  ///< a = padded (power-of-two) size, b = compare-exchanges
  kJoinMerge,    ///< a = merged pair count, b = 1 when merge-path, 0 NL
  kJoinEnd,      ///< a = output rows, b = 1 when hash/merge, 0 nested-loop
  kAggregate,    ///< a = rows in, b = groups out (oblivious: b == a pad)
  kSort,         ///< a = rows sorted (plain comparison sort)
  kProject,      ///< a = rows projected
  kDistinct,     ///< a = rows in, b = rows out (oblivious: in == out)
  kResult,       ///< a = padded pipeline width (NOT the declassified
                 ///< result row count; see docs/OBLIVIOUS.md)
};

std::string_view AccessKindName(AccessKind kind);

struct AccessEvent {
  AccessKind kind = AccessKind::kQueryBegin;
  uint64_t a = 0;
  uint64_t b = 0;

  bool operator==(const AccessEvent&) const = default;
};

/// An append-only log of access events for one traced run.
///
/// Not thread-safe by design: the session thread records operator-level
/// events directly, and scan workers record their unit reads into
/// private per-slice logs which the session thread appends in worker
/// order after the pool drains — the same merge discipline the engines
/// already use for cost slices, so the merged stream is identical for
/// every real worker count.
class AccessLog {
 public:
  void Record(AccessKind kind, uint64_t a = 0, uint64_t b = 0) {
    events_.push_back(AccessEvent{kind, a, b});
  }
  void Append(const AccessLog& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  }

  const std::vector<AccessEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  /// Canonical one-event-per-line rendering; two logs are equal iff
  /// their renderings are byte-identical.
  std::string ToString() const;

  /// FNV-1a 64 over the canonical rendering. Bit-identical fingerprints
  /// are the property the oblivious suite asserts across value-randomized
  /// same-shape inputs and across real worker counts.
  uint64_t Fingerprint() const;

 private:
  std::vector<AccessEvent> events_;
};

/// The access log the current thread records to, or null (recording
/// off). Thread-local, mirroring obs::CurrentTracer: worker threads do
/// not inherit the session thread's log.
AccessLog* CurrentAccessLog();
void SetCurrentAccessLog(AccessLog* log);

/// Installs `log` as the current thread's access log for a scope.
class ScopedAccessLog {
 public:
  explicit ScopedAccessLog(AccessLog* log) : prev_(CurrentAccessLog()) {
    SetCurrentAccessLog(log);
  }
  ~ScopedAccessLog() { SetCurrentAccessLog(prev_); }
  ScopedAccessLog(const ScopedAccessLog&) = delete;
  ScopedAccessLog& operator=(const ScopedAccessLog&) = delete;

 private:
  AccessLog* prev_;
};

/// FNV-1a 64 of raw bytes (the fingerprint primitive used above).
uint64_t Fnv1a64(std::string_view bytes);

/// Extractor over the PR 2 tracer: canonically serializes the
/// deterministic span stream (non-detail spans only — detail spans
/// legitimately vary with the real worker cap) as
/// `name|category|id|parent|depth|sim_start|sim_end|tag=value|...`
/// lines. Stage tags such as rows_out make the plain engines' spans
/// diverge across value-randomized same-shape inputs, while an
/// oblivious run's signature must be bit-identical; the simulated
/// timestamps additionally pin every cost charge.
std::string DeterministicSpanSignature(const Tracer& tracer);

/// FNV-1a 64 of DeterministicSpanSignature.
uint64_t SpanFingerprint(const Tracer& tracer);

}  // namespace ironsafe::obs

#endif  // IRONSAFE_OBS_ACCESS_TRACE_H_
