#include <gtest/gtest.h>

#include <optional>

#include "common/thread_pool.h"
#include "sql/database.h"
#include "sql/eval.h"
#include "sql/parser.h"

namespace ironsafe::sql {
namespace {

class SqlExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::CreateInMemory();
    Run("CREATE TABLE emp (id INTEGER, name VARCHAR, dept VARCHAR, "
        "salary DOUBLE, hired DATE)");
    Run("INSERT INTO emp VALUES "
        "(1, 'alice', 'eng', 120000.0, '2015-02-01'), "
        "(2, 'bob', 'eng', 95000.0, '2017-06-15'), "
        "(3, 'carol', 'sales', 80000.0, '2016-01-10'), "
        "(4, 'dave', 'sales', 85000.0, '2019-09-30'), "
        "(5, 'erin', 'hr', 70000.0, '2020-11-20')");
    Run("CREATE TABLE dept (dname VARCHAR, budget DOUBLE)");
    Run("INSERT INTO dept VALUES ('eng', 2000000.0), ('sales', 800000.0), "
        "('hr', 300000.0)");
  }

  QueryResult Run(const std::string& sql) {
    auto r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Status RunStatus(const std::string& sql) {
    return db_->Execute(sql).status();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlExecTest, SelectStar) {
  auto r = Run("SELECT * FROM emp");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.schema.size(), 5u);
}

TEST_F(SqlExecTest, WhereFilter) {
  auto r = Run("SELECT name FROM emp WHERE salary > 90000");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlExecTest, Projection) {
  auto r = Run("SELECT name, salary * 1.1 AS raised FROM emp WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.schema.column(1).name, "raised");
  EXPECT_NEAR(r.rows[0][1].AsDouble(), 132000.0, 0.01);
}

TEST_F(SqlExecTest, OrderByAscDesc) {
  auto r = Run("SELECT name FROM emp ORDER BY salary DESC");
  EXPECT_EQ(r.rows[0][0].AsString(), "alice");
  EXPECT_EQ(r.rows.back()[0].AsString(), "erin");

  auto r2 = Run("SELECT name FROM emp ORDER BY name");
  EXPECT_EQ(r2.rows[0][0].AsString(), "alice");
  EXPECT_EQ(r2.rows[4][0].AsString(), "erin");
}

TEST_F(SqlExecTest, MultiKeyOrder) {
  auto r = Run("SELECT dept, name FROM emp ORDER BY dept, salary DESC");
  EXPECT_EQ(r.rows[0][1].AsString(), "alice");   // eng high
  EXPECT_EQ(r.rows[1][1].AsString(), "bob");     // eng low
}

TEST_F(SqlExecTest, Limit) {
  EXPECT_EQ(Run("SELECT * FROM emp LIMIT 2").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT * FROM emp LIMIT 0").rows.size(), 0u);
}

TEST_F(SqlExecTest, Distinct) {
  auto r = Run("SELECT DISTINCT dept FROM emp");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SqlExecTest, GlobalAggregates) {
  auto r = Run("SELECT count(*), sum(salary), avg(salary), min(name), "
               "max(hired) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_NEAR(r.rows[0][1].AsDouble(), 450000.0, 0.01);
  EXPECT_NEAR(r.rows[0][2].AsDouble(), 90000.0, 0.01);
  EXPECT_EQ(r.rows[0][3].AsString(), "alice");
  EXPECT_EQ(FormatDate(r.rows[0][4].AsInt()), "2020-11-20");
}

TEST_F(SqlExecTest, AggregateOverEmptyInput) {
  auto r = Run("SELECT count(*), sum(salary) FROM emp WHERE id > 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(SqlExecTest, GroupBy) {
  auto r = Run("SELECT dept, count(*) AS n, avg(salary) AS pay FROM emp "
               "GROUP BY dept ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "eng");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_NEAR(r.rows[0][2].AsDouble(), 107500.0, 0.01);
}

TEST_F(SqlExecTest, GroupByExpression) {
  auto r = Run("SELECT year(hired) AS y, count(*) AS n FROM emp GROUP BY "
               "year(hired) ORDER BY y");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2015);
}

TEST_F(SqlExecTest, Having) {
  auto r = Run("SELECT dept, count(*) AS n FROM emp GROUP BY dept "
               "HAVING count(*) > 1 ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 2u);  // eng, sales
}

TEST_F(SqlExecTest, CountDistinct) {
  auto r = Run("SELECT count(DISTINCT dept) FROM emp");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(SqlExecTest, ExplicitJoin) {
  auto r = Run("SELECT name, budget FROM emp JOIN dept ON dept = dname "
               "WHERE budget > 500000 ORDER BY name");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].AsString(), "alice");
}

TEST_F(SqlExecTest, CommaJoinWithWhereEquiKey) {
  auto r = Run("SELECT e.name FROM emp e, dept d WHERE e.dept = d.dname AND "
               "d.budget < 500000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "erin");
}

TEST_F(SqlExecTest, CrossProductWithoutPredicate) {
  auto r = Run("SELECT count(*) FROM emp, dept");
  EXPECT_EQ(r.rows[0][0].AsInt(), 15);
}

TEST_F(SqlExecTest, SelfJoinWithAliases) {
  auto r = Run("SELECT a.name, b.name FROM emp a, emp b WHERE a.dept = b.dept "
               "AND a.id < b.id");
  EXPECT_EQ(r.rows.size(), 2u);  // (alice,bob), (carol,dave)
}

TEST_F(SqlExecTest, ScalarSubquery) {
  auto r = Run("SELECT name FROM emp WHERE salary = (SELECT max(salary) FROM emp)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "alice");
}

TEST_F(SqlExecTest, CorrelatedScalarSubquery) {
  // Employees earning above their department average.
  auto r = Run("SELECT name FROM emp e WHERE salary > "
               "(SELECT avg(salary) FROM emp e2 WHERE e2.dept = e.dept) "
               "ORDER BY name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "alice");
  EXPECT_EQ(r.rows[1][0].AsString(), "dave");
}

TEST_F(SqlExecTest, InSubquery) {
  auto r = Run("SELECT name FROM emp WHERE dept IN "
               "(SELECT dname FROM dept WHERE budget >= 800000) ORDER BY name");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(SqlExecTest, NotExistsCorrelated) {
  Run("CREATE TABLE bonus (emp_id INTEGER)");
  Run("INSERT INTO bonus VALUES (1), (3)");
  auto r = Run("SELECT name FROM emp e WHERE NOT EXISTS "
               "(SELECT 1 FROM bonus b WHERE b.emp_id = e.id) ORDER BY name");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
}

TEST_F(SqlExecTest, CaseExpression) {
  auto r = Run("SELECT name, CASE WHEN salary >= 100000 THEN 'high' "
               "WHEN salary >= 80000 THEN 'mid' ELSE 'low' END AS band "
               "FROM emp ORDER BY id");
  EXPECT_EQ(r.rows[0][1].AsString(), "high");
  EXPECT_EQ(r.rows[2][1].AsString(), "mid");
  EXPECT_EQ(r.rows[4][1].AsString(), "low");
}

TEST_F(SqlExecTest, LikePatterns) {
  EXPECT_EQ(Run("SELECT name FROM emp WHERE name LIKE 'a%'").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT name FROM emp WHERE name LIKE '%o%'").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT name FROM emp WHERE name LIKE '_ob'").rows.size(), 1u);
  // bob and erin are the only names without an 'a'.
  EXPECT_EQ(Run("SELECT name FROM emp WHERE name NOT LIKE '%a%'").rows.size(),
            2u);
}

TEST_F(SqlExecTest, BetweenAndIn) {
  EXPECT_EQ(
      Run("SELECT * FROM emp WHERE salary BETWEEN 80000 AND 95000").rows.size(),
      3u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE dept IN ('eng', 'hr')").rows.size(),
            3u);
  EXPECT_EQ(
      Run("SELECT * FROM emp WHERE dept NOT IN ('eng', 'hr')").rows.size(),
      2u);
}

TEST_F(SqlExecTest, DateComparisonsAndArithmetic) {
  auto r = Run("SELECT name FROM emp WHERE hired < DATE '2017-01-01'");
  EXPECT_EQ(r.rows.size(), 2u);

  // < 2017-06-15 excludes bob, whose hire date is exactly the boundary.
  auto r2 = Run("SELECT name FROM emp WHERE hired < DATE '2016-06-15' + "
                "INTERVAL '1' YEAR");
  EXPECT_EQ(r2.rows.size(), 2u);
  auto r3 = Run("SELECT name FROM emp WHERE hired <= DATE '2016-06-15' + "
                "INTERVAL '1' YEAR");
  EXPECT_EQ(r3.rows.size(), 3u);
}

TEST_F(SqlExecTest, ScalarFunctions) {
  auto r = Run("SELECT substr(name, 1, 3), length(name), upper(dept) "
               "FROM emp WHERE id = 3");
  EXPECT_EQ(r.rows[0][0].AsString(), "car");
  EXPECT_EQ(r.rows[0][1].AsInt(), 5);
  EXPECT_EQ(r.rows[0][2].AsString(), "SALES");
}

TEST_F(SqlExecTest, ArithmeticSemantics) {
  auto r = Run("SELECT 7 / 2, 7 % 3, -salary FROM emp WHERE id = 1");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 3.5);
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), -120000.0);
}

TEST_F(SqlExecTest, DivisionByZeroFails) {
  EXPECT_FALSE(RunStatus("SELECT 1 / 0 FROM emp").ok());
}

TEST_F(SqlExecTest, UnknownColumnFails) {
  EXPECT_FALSE(RunStatus("SELECT nonexistent FROM emp").ok());
}

TEST_F(SqlExecTest, UnknownTableFails) {
  EXPECT_TRUE(RunStatus("SELECT * FROM ghosts").IsNotFound());
}

TEST_F(SqlExecTest, AmbiguousColumnFails) {
  EXPECT_FALSE(RunStatus("SELECT name FROM emp a, emp b").ok());
}

TEST_F(SqlExecTest, DeleteWithPredicate) {
  auto r = Run("DELETE FROM emp WHERE dept = 'sales'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(Run("SELECT count(*) FROM emp").rows[0][0].AsInt(), 3);
}

TEST_F(SqlExecTest, Update) {
  auto r = Run("UPDATE emp SET salary = salary * 2 WHERE dept = 'hr'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  auto check = Run("SELECT salary FROM emp WHERE name = 'erin'");
  EXPECT_NEAR(check.rows[0][0].AsDouble(), 140000.0, 0.01);
}

TEST_F(SqlExecTest, InsertIntoSubsetOfColumns) {
  Run("INSERT INTO emp (id, name) VALUES (9, 'zed')");
  auto r = Run("SELECT dept FROM emp WHERE id = 9");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(SqlExecTest, SelectWithoutFrom) {
  auto r = Run("SELECT 1 + 2 AS three, 'x'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(SqlExecTest, IsNullFiltering) {
  Run("INSERT INTO emp (id, name) VALUES (10, 'nix')");
  EXPECT_EQ(Run("SELECT * FROM emp WHERE dept IS NULL").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE dept IS NOT NULL").rows.size(), 5u);
}

TEST(LikeMatchTest, Cases) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_FALSE(LikeMatch("hello", "h_lo"));
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));
  EXPECT_TRUE(LikeMatch("green metallic", "%green%"));
  EXPECT_FALSE(LikeMatch("gren", "%green%"));
}

// ---------------- paged + secure databases ----------------

TEST(PagedDatabaseTest, WorksOverPlainPages) {
  storage::BlockDevice disk;
  PlainPageStore store(&disk);
  auto db = Database::CreatePaged(&store);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  // Enough rows to span multiple pages.
  std::vector<Row> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back(Row{Value::Int(i), Value::String("row-" + std::to_string(i))});
  }
  ASSERT_TRUE(db->BulkLoad("t", rows).ok());
  auto t = db->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_GT((*t)->page_count(), 5u);

  auto r = db->Execute("SELECT count(*), min(a), max(a) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 2000);
  EXPECT_EQ(r->rows[0][1].AsInt(), 0);
  EXPECT_EQ(r->rows[0][2].AsInt(), 1999);
}

TEST(PagedDatabaseTest, ChargesDiskCostPerScan) {
  storage::BlockDevice disk;
  PlainPageStore store(&disk);
  auto db = Database::CreatePaged(&store);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) rows.push_back(Row{Value::Int(i)});
  ASSERT_TRUE(db->BulkLoad("t", rows).ok());

  sim::CostModel cm;
  ASSERT_TRUE(db->Execute("SELECT sum(a) FROM t", &cm).ok());
  EXPECT_GT(cm.disk_bytes(), 0u);
  EXPECT_GT(cm.elapsed_ns(), 0u);
}

TEST(PagedDatabaseTest, WorksOverSecureStore) {
  tee::DeviceManufacturer mfg(ToBytes("m"));
  tee::TrustZoneDevice device(ToBytes("s"), mfg, {"n1", "eu", 1});
  securestore::SecureStorageTa ta(&device);
  storage::BlockDevice disk;
  auto secure = securestore::SecureStore::Create(&disk, &ta);
  ASSERT_TRUE(secure.ok());
  SecurePageStore store(secure->get());

  auto db = Database::CreatePaged(&store);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, s VARCHAR)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back(Row{Value::Int(i), Value::String("secret-" + std::to_string(i))});
  }
  ASSERT_TRUE(db->BulkLoad("t", rows).ok());

  sim::CostModel cm;
  auto r = db->Execute("SELECT count(*) FROM t WHERE a % 2 = 0", &cm);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 250);
  EXPECT_GT(cm.pages_decrypted(), 0u);
  EXPECT_GT(cm.freshness_ns(), 0u);
}

// ---------------- morsel-parallel execution ----------------

void ExpectSameRows(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].size(), b.rows[i].size());
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      EXPECT_EQ(a.rows[i][j].Compare(b.rows[i][j]), 0)
          << "row " << i << " col " << j;
    }
  }
}

TEST(ParallelExecTest, WorkerCountNeverChangesResultsStatsOrCost) {
  storage::BlockDevice disk;
  PlainPageStore store(&disk);
  auto db = Database::CreatePaged(&store);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back(
        Row{Value::Int(i), Value::String("g" + std::to_string(i % 37))});
  }
  ASSERT_TRUE(db->BulkLoad("t", rows).ok());

  // Scan + filter + hash join + aggregation, at a fixed simulated
  // fan-out. Only the real worker count varies below; everything
  // observable must stay bit-identical.
  auto stmt = ParseSelect(
      "SELECT t1.b, count(*), sum(t1.a) FROM t t1 JOIN t t2 "
      "ON t1.a = t2.a WHERE t1.a % 3 = 0 GROUP BY t1.b ORDER BY t1.b");
  ASSERT_TRUE(stmt.ok());
  ExecOptions opts;
  opts.parallelism = 8;

  std::optional<QueryResult> base;
  std::optional<sim::CostModel> base_cost;
  ExecStats base_stats;
  for (int workers : {1, 4, 16}) {
    common::ThreadPool::set_max_workers(workers);
    sim::CostModel cm;
    ExecStats stats;
    auto r = ExecuteSelect(db.get(), **stmt, nullptr, &cm, opts, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (!base.has_value()) {
      base = std::move(*r);
      base_cost = cm;
      base_stats = stats;
      continue;
    }
    ExpectSameRows(*r, *base);
    EXPECT_EQ(stats, base_stats) << "workers=" << workers;
    EXPECT_EQ(cm, *base_cost) << "workers=" << workers;
  }
  common::ThreadPool::set_max_workers(0);
}

TEST(ParallelExecTest, MorselScanPreservesTableOrder) {
  storage::BlockDevice disk;
  PlainPageStore store(&disk);
  auto db = Database::CreatePaged(&store);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 10000; ++i) rows.push_back(Row{Value::Int(i)});
  ASSERT_TRUE(db->BulkLoad("t", rows).ok());

  common::ThreadPool::set_max_workers(16);
  ExecOptions opts;
  opts.parallelism = 16;
  sim::CostModel cm;
  auto stmt = ParseSelect("SELECT a FROM t");  // no ORDER BY
  ASSERT_TRUE(stmt.ok());
  auto r = ExecuteSelect(db.get(), **stmt, nullptr, &cm, opts);
  common::ThreadPool::set_max_workers(0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 10000u);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(r->rows[i][0].AsInt(), i) << "morsel concatenation broke order";
  }
}

TEST(ParallelExecTest, SimulatedFanOutStillSpeedsUpSimulatedTime) {
  // The parallelism knob keeps its simulated meaning (Figure 10): more
  // ways divide the charged CPU cycles, independent of real workers.
  auto db = Database::CreateInMemory();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INTEGER)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) rows.push_back(Row{Value::Int(i)});
  ASSERT_TRUE(db->BulkLoad("t", rows).ok());
  auto stmt = ParseSelect("SELECT count(*) FROM t WHERE a % 2 = 0");
  ASSERT_TRUE(stmt.ok());

  common::ThreadPool::set_max_workers(1);  // real threads pinned
  ExecOptions one, four;
  one.parallelism = 1;
  four.parallelism = 4;
  sim::CostModel cm1, cm4;
  ASSERT_TRUE(ExecuteSelect(db.get(), **stmt, nullptr, &cm1, one).ok());
  ASSERT_TRUE(ExecuteSelect(db.get(), **stmt, nullptr, &cm4, four).ok());
  common::ThreadPool::set_max_workers(0);
  EXPECT_GT(cm1.elapsed_ns(), cm4.elapsed_ns());
}

TEST(ExecOptionsTest, MemoryCapCausesSpillCharges) {
  auto db = Database::CreateInMemory();
  ASSERT_TRUE(db->Execute("CREATE TABLE big (a INTEGER, pad VARCHAR)").ok());
  std::vector<Row> rows;
  for (int i = 0; i < 3000; ++i) {
    rows.push_back(Row{Value::Int(i % 100), Value::String(std::string(100, 'x'))});
  }
  ASSERT_TRUE(db->BulkLoad("big", rows).ok());

  ExecOptions opts;
  opts.memory_cap_bytes = 1024;  // absurdly small: force spills
  sim::CostModel cm;
  ExecStats stats;
  auto stmt = ParseSelect(
      "SELECT a, count(*) FROM big b1, big b2 WHERE b1.a = b2.a GROUP BY a");
  // Use a cheaper query: hash join build side exceeds 1KB.
  auto stmt2 = ParseSelect("SELECT b1.a FROM big b1 JOIN big b2 ON b1.a = b2.a LIMIT 1");
  ASSERT_TRUE(stmt2.ok());
  auto r = ExecuteSelect(db.get(), **stmt2, nullptr, &cm, opts, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.spill_bytes, 0u);
  EXPECT_GT(stats.peak_memory_bytes, opts.memory_cap_bytes);
  // The spill-out is a disk write (plus the read-back), not two reads.
  EXPECT_EQ(cm.disk_write_bytes(), stats.spill_bytes);
  EXPECT_GE(cm.disk_bytes(), 2 * stats.spill_bytes);
}

}  // namespace
}  // namespace ironsafe::sql
