#ifndef IRONSAFE_COMMON_LOGGING_H_
#define IRONSAFE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ironsafe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kWarning
/// so tests and benchmarks stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ironsafe

#define IRONSAFE_LOG(level)                                          \
  if (::ironsafe::LogLevel::k##level < ::ironsafe::GetLogLevel()) {  \
  } else                                                             \
    ::ironsafe::internal_logging::LogMessage(                        \
        ::ironsafe::LogLevel::k##level, __FILE__, __LINE__)          \
        .stream()

/// Fatal invariant check; aborts with a message. Used for programmer
/// errors only — recoverable failures must return Status.
#define IRONSAFE_CHECK(cond)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // IRONSAFE_COMMON_LOGGING_H_
